"""Deterministic fault injection for the resilience layer's own tests.

The chaos harness wraps a shard function so that chosen ``(shard,
attempt)`` pairs **crash** the worker process (``os._exit``), **hang**
past the configured timeout, or **raise** — on a schedule that is a pure
function of a seed, so a chaotic run is exactly reproducible.

Faults must be decided *per attempt* across *process boundaries*: the
first attempt of shard 3 crashes, the retry of shard 3 runs in a fresh
worker that has no memory of the crash.  The harness therefore keeps its
cross-process state in a ``state_dir`` on disk:

* **attempt claims** — each ``(shard, attempt)`` is claimed exactly once
  via an ``O_CREAT | O_EXCL`` marker file, so a worker deterministically
  learns which attempt it is executing even after crashes;
* **fault log** — every injected fault appends one line (a single
  ``O_APPEND`` write, atomic for short lines) so tests can reconcile the
  injected faults against the :class:`~repro.exec.resilience.ExecutionReport`.

Faults only fire in *worker* processes: the wrapper records the owning
pid and passes straight through when called in-process, so a map that
degrades to serial execution always completes.

This module deliberately uses ``numpy.random.default_rng`` directly
instead of :func:`repro.sim.rng.stream`: injection schedules are test
scaffolding that must never share (or perturb) the simulation's seed
universe.  reprolint rule R005 is path-exempted for exactly this file —
see ``PATH_RULE_EXEMPTIONS`` in ``tools/reprolint/rules.py``.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import time
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "ChaosController",
    "ChaosError",
    "ChaosSchedule",
    "ChaosWrapped",
    "InjectedFault",
    "active",
    "current",
    "item_key",
    "wrap",
]

#: Salt word mixed into every schedule draw so chaos streams can never
#: collide with simulation streams even under an identical seed.
_CHAOS_SALT = 0xC4A0_5F00

#: Fault kinds, in the priority order the rate thresholds are checked.
_KINDS = ("crash", "hang", "raise")


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` fault throws in the worker."""


@dataclass(frozen=True)
class InjectedFault:
    """One fault the harness actually injected (parsed from the log)."""

    index: int
    attempt: int
    kind: str
    pid: int


@dataclass(frozen=True)
class ChaosSchedule:
    """A deterministic fault schedule: pure function of ``(seed, shard, attempt)``.

    ``crash_rate`` / ``hang_rate`` / ``raise_rate`` are per-attempt
    probabilities (summing to <= 1) resolved by one uniform draw from
    ``default_rng(SeedSequence([salt, seed, index, attempt]))`` — the
    same ``(seed, index, attempt)`` always yields the same decision, in
    any process.  ``faults`` pins explicit faults instead: a tuple of
    ``(shard index, (kind per attempt, ...))`` entries, e.g.
    ``ChaosSchedule.explicit({2: ("crash", "hang")})`` crashes shard 2's
    first attempt and hangs its second.  ``max_faults_per_shard`` caps
    rate-drawn faults so a retry budget of ``max_retries`` always
    suffices; explicit faults are taken literally.  ``crash_delay``
    holds a crash fault for that many seconds before ``os._exit`` so the
    dispatcher observes the shard running and attributes the crash to it
    (instant crashes are indistinguishable from queued-shard loss).
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    hang_seconds: float = 30.0
    crash_delay: float = 0.0
    max_faults_per_shard: int = 1
    faults: tuple[tuple[int, tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "raise_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_rate + self.hang_rate + self.raise_rate > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to <= 1")
        if self.hang_seconds <= 0:
            raise ValueError(f"hang_seconds must be > 0, got {self.hang_seconds}")
        if self.crash_delay < 0:
            raise ValueError(f"crash_delay must be >= 0, got {self.crash_delay}")
        if self.max_faults_per_shard < 0:
            raise ValueError(
                f"max_faults_per_shard must be >= 0, got {self.max_faults_per_shard}"
            )
        for entry in self.faults:
            index, kinds = entry
            if index < 0:
                raise ValueError(f"explicit fault index must be >= 0, got {index}")
            for kind in kinds:
                if kind not in _KINDS:
                    raise ValueError(
                        f"unknown fault kind {kind!r}; expected one of {_KINDS}"
                    )

    @classmethod
    def explicit(
        cls,
        faults: Mapping[int, Sequence[str]],
        *,
        hang_seconds: float = 30.0,
        crash_delay: float = 0.0,
    ) -> ChaosSchedule:
        """Schedule with pinned faults only: ``{shard: [kind, ...]}``."""
        entries = tuple(
            sorted((int(i), tuple(kinds)) for i, kinds in faults.items())
        )
        return cls(faults=entries, hang_seconds=hang_seconds, crash_delay=crash_delay)

    def fault_for(self, index: int, attempt: int) -> str | None:
        """Fault kind for attempt ``attempt`` (1-based) of shard ``index``.

        Returns ``"crash"``, ``"hang"``, ``"raise"``, or ``None``.
        Deterministic across processes and runs.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        for fault_index, kinds in self.faults:
            if fault_index == index:
                if attempt <= len(kinds):
                    return kinds[attempt - 1]
                return None
        total = self.crash_rate + self.hang_rate + self.raise_rate
        if total <= 0.0 or attempt > self.max_faults_per_shard:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence([_CHAOS_SALT, self.seed, index, attempt])
        )
        u = float(rng.random())
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.hang_rate:
            return "hang"
        if u < total:
            return "raise"
        return None


@dataclass
class ChaosController:
    """Active chaos state: the schedule plus the on-disk coordination dir."""

    schedule: ChaosSchedule
    state_dir: str

    def claim_attempt(self, index: int) -> int:
        """Claim and return the next attempt number (1-based) for a shard.

        Uses ``O_CREAT | O_EXCL`` marker files so exactly one process
        owns each ``(shard, attempt)`` pair, even across crashes.
        """
        attempt = 1
        while True:
            marker = os.path.join(self.state_dir, f"attempt-{index}-{attempt}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def log_fault(self, index: int, attempt: int, kind: str) -> None:
        """Append one fault record; a single O_APPEND write is atomic."""
        line = f"{index}\t{attempt}\t{kind}\t{os.getpid()}\n".encode()
        fd = os.open(
            os.path.join(self.state_dir, "faults.log"),
            os.O_CREAT | os.O_WRONLY | os.O_APPEND,
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def injected_faults(self) -> list[InjectedFault]:
        """Every fault actually injected so far, in log order."""
        path = os.path.join(self.state_dir, "faults.log")
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return []
        out: list[InjectedFault] = []
        for line in raw.decode().splitlines():
            index, attempt, kind, pid = line.split("\t")
            out.append(InjectedFault(int(index), int(attempt), kind, int(pid)))
        return out


# Module-global controller consulted by parallel_map; set via active().
_CURRENT: ChaosController | None = None


def current() -> ChaosController | None:
    """The controller installed by :func:`active`, or ``None``."""
    return _CURRENT


@contextlib.contextmanager
def active(schedule: ChaosSchedule, state_dir: str) -> Iterator[ChaosController]:
    """Install a chaos controller for the duration of a ``with`` block.

    While active, ``parallel_map`` wraps its shard function with
    :func:`wrap`, injecting the schedule's faults into worker processes.
    """
    global _CURRENT
    if _CURRENT is not None:
        raise RuntimeError("chaos is already active; nesting is not supported")
    os.makedirs(state_dir, exist_ok=True)
    controller = ChaosController(schedule=schedule, state_dir=state_dir)
    _CURRENT = controller
    try:
        yield controller
    finally:
        _CURRENT = None


def item_key(item: Any) -> str:
    """Stable cross-process identity for a shard item (pickle digest)."""
    payload = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()


class ChaosWrapped:
    """Picklable shard-function wrapper that injects scheduled faults.

    Identifies the shard by the pickle digest of its item (future-based
    dispatch hands workers one item at a time with no index), claims the
    attempt number through the controller's marker files, and fires the
    scheduled fault *before* calling through — so a successful return is
    always a genuine, fault-free execution of the real shard function.

    Faults fire only in worker processes: when called by the owning
    process (serial fast path or post-degradation cleanup) the wrapper
    passes straight through.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        schedule: ChaosSchedule,
        state_dir: str,
        index_by_key: dict[str, int],
    ) -> None:
        self.fn = fn
        self.schedule = schedule
        self.state_dir = state_dir
        self.index_by_key = index_by_key
        self.owner_pid = os.getpid()

    def __call__(self, item: Any) -> Any:
        if os.getpid() == self.owner_pid:
            return self.fn(item)
        index = self.index_by_key.get(item_key(item))
        if index is None:  # pragma: no cover - defensive: unknown item
            return self.fn(item)
        controller = ChaosController(
            schedule=self.schedule, state_dir=self.state_dir
        )
        attempt = controller.claim_attempt(index)
        kind = self.schedule.fault_for(index, attempt)
        if kind is not None:
            if kind == "crash":
                # Delay so the dispatcher can observe the shard RUNNING
                # before the pool breaks — an instantaneous crash is
                # indistinguishable from queued-innocent loss, which
                # would make fault attribution nondeterministic.  Log
                # after the delay: a worker killed mid-delay (e.g. by a
                # timeout teardown) never actually crashed.
                if self.schedule.crash_delay > 0.0:
                    time.sleep(self.schedule.crash_delay)
                controller.log_fault(index, attempt, kind)
                os._exit(1)
            controller.log_fault(index, attempt, kind)
            if kind == "hang":
                time.sleep(self.schedule.hang_seconds)
                raise ChaosError(
                    f"hung shard {index} attempt {attempt} was never reaped"
                )
            raise ChaosError(f"injected raise: shard {index} attempt {attempt}")
        return self.fn(item)


def wrap(
    fn: Callable[[Any], Any],
    controller: ChaosController,
    items: Sequence[Any],
) -> ChaosWrapped:
    """Wrap ``fn`` so the controller's schedule fires on these items."""
    index_by_key = {item_key(item): i for i, item in enumerate(items)}
    return ChaosWrapped(fn, controller.schedule, controller.state_dir, index_by_key)

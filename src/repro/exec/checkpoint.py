"""Crash-safe sweep checkpointing: an append-only shard-result journal.

A resilient map can spill each completed shard's result to disk so a
killed sweep resumes without recomputing finished shards.  The journal
is a single append-only file:

* an 8-byte magic header (``REPROCK1`` — the trailing byte is the format
  version, bumped on incompatible layout changes),
* then framed records, each ``<u32 length> <u32 crc32> <payload>``
  where the payload is a pickled ``(index, result)`` tuple — except the
  **first** record, whose payload is the sweep's *plan key*.

The plan key (:func:`plan_key`) is a SHA-256 digest of the shard
function's label and every task item's pickle, so a journal can only be
resumed by the *identical* shard plan — a changed grid, seed set, or
backend silently starting a fresh journal (with a ``RuntimeWarning``)
instead of serving stale results.

Crash safety comes from the framing, not from atomic rename: every
append is a single ``write`` + ``fsync``, and :meth:`CheckpointJournal.load`
stops at the first truncated or CRC-corrupt record, discarding only the
torn tail.  Records after a kill are therefore either fully present or
fully ignored, and completed shards are never recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import warnings
import zlib
from collections.abc import Iterable
from types import TracebackType
from typing import Any, BinaryIO

__all__ = ["CheckpointJournal", "plan_key"]

_MAGIC = b"REPROCK1"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


def plan_key(label: str, items: Iterable[Any]) -> str:
    """Deterministic identity of a shard plan: fn label + every task.

    Two sweeps share a plan key iff they would dispatch byte-identical
    task tuples to the same shard function, which is exactly when their
    journals are interchangeable.
    """
    digest = hashlib.sha256()
    digest.update(label.encode())
    for item in items:
        payload = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        digest.update(_FRAME.pack(len(payload), zlib.crc32(payload)))
        digest.update(payload)
    return digest.hexdigest()


class CheckpointJournal:
    """Append-only on-disk journal of completed shard results.

    ``CheckpointJournal(path, key)`` opens (or creates) the journal at
    ``path`` for the shard plan identified by ``key``.  An existing
    journal with a *different* key is discarded with a
    ``RuntimeWarning`` and restarted fresh; a matching journal's intact
    records become :meth:`completed`.  Use as a context manager or call
    :meth:`close` — the file handle appends with ``fsync`` per record,
    so a kill at any instant loses at most the record being written.
    """

    def __init__(self, path: str | os.PathLike[str], key: str) -> None:
        self.path = os.fspath(path)
        self.key = key
        self._completed: dict[int, Any] = {}
        self._fh: BinaryIO | None = None
        existing = self._load()
        if existing is None:
            self._start_fresh()
        else:
            self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    def _load(self) -> bool | None:
        """Read intact records; ``None`` means start a fresh journal."""
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        if len(raw) < len(_MAGIC) or not raw.startswith(_MAGIC):
            warnings.warn(
                f"checkpoint journal {self.path!r} is not a journal file; "
                "starting fresh",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        offset = len(_MAGIC)
        records: list[Any] = []
        while offset + _FRAME.size <= len(raw):
            length, crc = _FRAME.unpack_from(raw, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(raw):
                break  # torn tail: the kill landed mid-append
            payload = raw[start:end]
            if zlib.crc32(payload) != crc:
                break  # corrupt tail
            records.append(pickle.loads(payload))
            offset = end
        if not records:
            return None
        journal_key = records[0]
        if journal_key != self.key:
            warnings.warn(
                f"checkpoint journal {self.path!r} belongs to a different "
                "shard plan; discarding it and starting fresh",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        for record in records[1:]:
            index, result = record
            self._completed[int(index)] = result
        if offset != len(raw):
            # Truncate the torn tail so future appends start clean.
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
        return True

    def _start_fresh(self) -> None:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            self._append_payload(fh, pickle.dumps(self.key, protocol=pickle.HIGHEST_PROTOCOL))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")

    @staticmethod
    def _append_payload(fh: Any, payload: bytes) -> None:
        fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)

    # ------------------------------------------------------------------
    def completed(self) -> dict[int, Any]:
        """Shard results restored from disk (and recorded this run)."""
        return dict(self._completed)

    def record(self, index: int, result: Any) -> None:
        """Durably append one completed shard result."""
        if self._fh is None:
            raise ValueError("journal is closed")
        payload = pickle.dumps((index, result), protocol=pickle.HIGHEST_PROTOCOL)
        self._append_payload(self._fh, payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._completed[int(index)] = result

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> CheckpointJournal:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

"""Resilient shard execution: retries, timeouts, pool rebuilds, degradation.

:class:`ShardExecutor` replaces the bare ``pool.map`` inside
:func:`repro.experiments.common.parallel_map`.  Shards are dispatched as
individual futures so each one has its own fault story:

* a shard whose worker **raises** is retried up to
  :attr:`RetryPolicy.max_retries` times with exponential backoff and
  deterministic jitter; when the budget is exhausted the *original*
  exception propagates (callers keep their typed errors);
* a shard whose worker **hangs** past :attr:`RetryPolicy.timeout` is
  timed out.  A single hung process cannot be stopped through the
  ``concurrent.futures`` API, so the whole pool is torn down
  (terminate + join) and rebuilt; innocent shards that were queued or
  running are re-dispatched without being charged an attempt;
* a shard whose worker **crashes** (``os._exit``, OOM-kill, segfault)
  surfaces as ``BrokenProcessPool``.  The pool is rebuilt and the shards
  that were actually executing are charged a crash attempt — rebuilt
  workers re-attach the shared-memory network lazily
  (:mod:`repro.graphs.shared` caches per process), so recovery stays
  zero-copy;
* when rebuilds exceed :attr:`RetryPolicy.max_pool_rebuilds` the
  executor **degrades** to in-process serial execution with a one-time
  :class:`RuntimeWarning` — a flaky pool never takes the sweep down.

Results keep input order, and because shard functions are deterministic
pure functions of their task tuples, a failed-then-retried shard is
bit-for-bit identical to a fault-free run (pinned by
``tests/resilience/``).  Every attempt, retry, timeout, crash, and
degradation is accounted per shard in an :class:`ExecutionReport`.

Backoff jitter draws from the salted stream discipline
(:func:`repro.sim.rng.stream`), so delays are deterministic per
``(policy seed, shard, attempt)`` — reproducible scheduling, no
thundering-herd resubmits.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..sim.rng import stream

if TYPE_CHECKING:  # pragma: no cover
    from .checkpoint import CheckpointJournal

__all__ = [
    "ExecutionReport",
    "RetryPolicy",
    "ShardExecutor",
    "ShardFailedError",
    "ShardRecord",
    "ShardTimeoutError",
    "WorkerCrashError",
]

#: Seconds between future polls; bounds timeout-detection latency.
_POLL_INTERVAL = 0.02


class ShardFailedError(RuntimeError):
    """A shard exhausted its retry budget on timeouts/crashes.

    Raised only for faults that have no exception of their own (hangs and
    worker deaths); a shard that exhausts its budget *raising* re-raises
    the worker's original exception instead, so callers keep typed errors.
    """

    def __init__(self, index: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"shard {index} failed after {attempts} attempt(s): {reason}"
        )
        self.index = index
        self.attempts = attempts


class ShardTimeoutError(RuntimeError):
    """A shard's worker ran past the per-shard timeout."""


class WorkerCrashError(RuntimeError):
    """A shard's worker process died mid-execution (BrokenProcessPool)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one resilient map: retries, timeout, backoff, degradation.

    ``max_retries`` bounds *faulted* attempts per shard (a shard may run
    ``max_retries + 1`` times); ``timeout`` is per-shard wall-clock
    seconds measured from when the worker is first observed running
    (queue wait does not count), ``None`` disables timeouts.  Backoff
    before retry ``a`` sleeps ``min(backoff_max, backoff_base *
    backoff_factor**(a-1))`` scaled by a deterministic jitter in
    ``[1, 1 + jitter]`` drawn from ``stream(seed, "backoff", shard, a)``.
    After ``max_pool_rebuilds`` pool teardowns the map degrades to
    in-process serial execution (one-time :class:`RuntimeWarning`).
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    max_pool_rebuilds: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout is not None and not self.timeout > 0:
            raise ValueError(f"timeout must be > 0 seconds or None, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based) of a shard."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))
        if base <= 0.0:
            return 0.0
        if self.jitter <= 0.0:
            return base
        u = float(stream(self.seed, "backoff", index, attempt).random())
        return base * (1.0 + self.jitter * u)


@dataclass
class ShardRecord:
    """Per-shard fault accounting for one resilient map."""

    index: int
    attempts: int = 0  # times the shard actually consumed a dispatch
    retries: int = 0  # faulted attempts that were re-dispatched
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0  # exceptions raised by the shard function
    degraded: bool = False  # ran in-process after the pool gave up
    resumed: bool = False  # restored from a checkpoint journal


@dataclass
class ExecutionReport:
    """Aggregated fault accounting across one or more resilient maps.

    One report can be threaded through several ``parallel_map`` calls
    (``run_experiments`` runs one map per sweep); each map appends its
    own block of :class:`ShardRecord` s.  :meth:`shard` indexes the most
    recent map's block, the ``total_*`` properties sum everything.
    """

    shards: list[ShardRecord] = field(default_factory=list)
    pool_rebuilds: int = 0
    crash_rebuilds: int = 0
    timeout_rebuilds: int = 0
    degraded: bool = False
    resumed_shards: int = 0
    maps: int = 0
    _last_offset: int = field(default=0, repr=False)

    def start_map(self, n: int) -> int:
        """Open a block of ``n`` fresh records; returns its offset."""
        offset = len(self.shards)
        self.shards.extend(ShardRecord(index=i) for i in range(n))
        self._last_offset = offset
        self.maps += 1
        return offset

    def shard(self, index: int) -> ShardRecord:
        """Record ``index`` of the most recently started map."""
        return self.shards[self._last_offset + index]

    @property
    def total_attempts(self) -> int:
        return sum(rec.attempts for rec in self.shards)

    @property
    def total_retries(self) -> int:
        return sum(rec.retries for rec in self.shards)

    @property
    def total_timeouts(self) -> int:
        return sum(rec.timeouts for rec in self.shards)

    @property
    def total_crashes(self) -> int:
        return sum(rec.crashes for rec in self.shards)

    @property
    def total_errors(self) -> int:
        return sum(rec.errors for rec in self.shards)

    @property
    def total_faults(self) -> int:
        """Every observed fault event: timeouts + crashes + raised errors."""
        return self.total_timeouts + self.total_crashes + self.total_errors

    def summary(self) -> str:
        """One line for CLI output."""
        return (
            f"{len(self.shards)} shard(s): {self.total_attempts} attempts, "
            f"{self.total_retries} retries ({self.total_timeouts} timeouts, "
            f"{self.total_crashes} crashes, {self.total_errors} errors), "
            f"{self.pool_rebuilds} pool rebuild(s), "
            f"{self.resumed_shards} resumed from checkpoint"
            + (", DEGRADED to serial" if self.degraded else "")
        )


# One-time warning guard for parallel -> serial degradation (satellite
# contract of parallel_map); tests reset it via _reset_degrade_warning.
_DEGRADE_WARNED = False


def _warn_degraded(reason: str) -> None:
    global _DEGRADE_WARNED
    if _DEGRADE_WARNED:
        return
    _DEGRADE_WARNED = True
    warnings.warn(
        "resilience degraded a parallel map to in-process serial execution "
        f"({reason}); results are unaffected but the sweep loses parallelism",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_degrade_warning() -> None:
    global _DEGRADE_WARNED
    _DEGRADE_WARNED = False


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is hung or already dead.

    ``shutdown(wait=True)`` would block forever on a hung worker, so the
    teardown is forced: cancel queued futures, terminate the worker
    processes, and join them with a bounded grace period (escalating to
    ``kill``).  ``_processes`` is an internal attribute, but it is the
    only handle the stdlib exposes to the worker processes — accessed
    defensively so a stdlib change degrades to a plain shutdown.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown is best-effort
        pass
    procs_map = getattr(pool, "_processes", None)
    procs = list(procs_map.values()) if procs_map else []
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    deadline = time.monotonic() + 5.0
    for proc in procs:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - terminate was ignored
                proc.kill()
                proc.join(1.0)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


class ShardExecutor:
    """Per-shard future dispatch with retries, timeouts, and rebuilds.

    ``run(fn, items, jobs=N)`` maps ``fn`` over ``items`` across worker
    processes under :class:`RetryPolicy` semantics (see the module
    docstring); ``jobs <= 1`` runs the same accounting in-process.  Pass
    a :class:`~repro.exec.checkpoint.CheckpointJournal` to spill each
    completed shard's result to disk and to skip shards already
    journaled by a previous (killed) run.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        report: ExecutionReport | None = None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.report = report if report is not None else ExecutionReport()

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        jobs: int | None = None,
        journal: CheckpointJournal | None = None,
    ) -> list[Any]:
        item_list = list(items)
        n = len(item_list)
        report = self.report
        report.start_map(n)
        results: list[Any] = [None] * n
        have = [False] * n
        if journal is not None:
            for idx, res in journal.completed().items():
                if 0 <= idx < n and not have[idx]:
                    results[idx] = res
                    have[idx] = True
                    report.shard(idx).resumed = True
                    report.resumed_shards += 1
        remaining = [i for i in range(n) if not have[i]]
        if not remaining:
            return results
        if jobs is None or jobs <= 1 or len(remaining) <= 1:
            attempts = [0] * n
            self._run_serial(
                fn, item_list, remaining, results, have, journal, attempts, degraded=False
            )
            return results
        self._run_parallel(fn, item_list, remaining, results, have, journal, jobs)
        return results

    # ------------------------------------------------------------------
    def _fault(
        self,
        index: int,
        attempts: list[int],
        ready_at: list[float],
        pending: deque[int],
        cause: BaseException | None,
        reason: str,
    ) -> None:
        """Book one faulted attempt; requeue with backoff or give up."""
        attempts[index] += 1
        if attempts[index] > self.policy.max_retries:
            if isinstance(cause, (ShardTimeoutError, WorkerCrashError)) or cause is None:
                raise ShardFailedError(index, attempts[index], reason) from cause
            raise cause  # the worker's own exception keeps its type
        self.report.shard(index).retries += 1
        ready_at[index] = time.monotonic() + self.policy.backoff_delay(
            index, attempts[index]
        )
        pending.append(index)

    def _run_parallel(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        remaining: list[int],
        results: list[Any],
        have: list[bool],
        journal: CheckpointJournal | None,
        jobs: int,
    ) -> None:
        policy = self.policy
        report = self.report
        n = len(items)
        max_workers = min(jobs, len(remaining))
        attempts = [0] * n  # faulted attempts (the retry budget)
        ready_at = [0.0] * n  # backoff gate per shard
        pending: deque[int] = deque(remaining)
        inflight: dict[Future[Any], int] = {}
        started: dict[Future[Any], float] = {}
        running_seen: set[Future[Any]] = set()
        rebuilds = 0
        pool: ProcessPoolExecutor | None = None

        def requeue_innocent(index: int) -> None:
            # A pool teardown took this shard down through no fault of its
            # own: re-dispatch without charging the attempt.
            report.shard(index).attempts -= 1
            pending.appendleft(index)

        def rebuild(kind: str) -> bool:
            """Tear the pool down; True means degrade to serial now."""
            nonlocal pool, rebuilds
            if pool is not None:
                _stop_pool(pool)
                pool = None
            inflight.clear()
            started.clear()
            running_seen.clear()
            rebuilds += 1
            report.pool_rebuilds += 1
            if kind == "crash":
                report.crash_rebuilds += 1
            else:
                report.timeout_rebuilds += 1
            return rebuilds > policy.max_pool_rebuilds

        def handle_break() -> bool:
            """Classify every in-flight shard after a pool break, rebuild.

            Shards observed RUNNING when the pool died are charged a
            crash attempt; shards still queued requeue for free.  True
            means the rebuild budget is spent: degrade to serial.
            """
            for fut, i in list(inflight.items()):
                if fut in running_seen:
                    report.shard(i).crashes += 1
                    self._fault(
                        i,
                        attempts,
                        ready_at,
                        pending,
                        WorkerCrashError(f"worker died while running shard {i}"),
                        "worker process crashed repeatedly",
                    )
                else:
                    requeue_innocent(i)
            return rebuild("crash")

        try:
            while pending or inflight:
                now = time.monotonic()
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                    except Exception:
                        report.degraded = True
                        _warn_degraded("worker pool could not be (re)built")
                        break
                # Dispatch every shard whose backoff window has passed.
                held: list[int] = []
                submit_broke = False
                while pending:
                    i = pending.popleft()
                    if ready_at[i] > now:
                        held.append(i)
                        continue
                    report.shard(i).attempts += 1
                    try:
                        fut = pool.submit(fn, items[i])
                    except BrokenProcessPool:
                        report.shard(i).attempts -= 1
                        held.append(i)
                        submit_broke = True
                        break
                    inflight[fut] = i
                    started[fut] = now
                pending.extend(held)
                if submit_broke:
                    if handle_break():
                        report.degraded = True
                        _warn_degraded("worker pool kept breaking")
                        break
                    continue
                if not inflight:
                    # Everything is backing off: sleep to the next window.
                    nxt = min(ready_at[i] for i in pending)
                    time.sleep(max(0.0, min(nxt - time.monotonic(), 0.1)))
                    continue

                done, _ = wait(
                    list(inflight), timeout=_POLL_INTERVAL, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                # The per-shard timeout clock starts when the worker is
                # first observed RUNNING, so queue wait never counts.
                for fut in inflight:
                    if fut not in running_seen and fut.running():
                        running_seen.add(fut)
                        started[fut] = now

                broken = False
                for fut in done:
                    i = inflight.pop(fut)
                    was_running = fut in running_seen
                    running_seen.discard(fut)
                    started.pop(fut, None)
                    try:
                        res = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        if was_running:
                            report.shard(i).crashes += 1
                            self._fault(
                                i,
                                attempts,
                                ready_at,
                                pending,
                                WorkerCrashError(
                                    f"worker died while running shard {i}"
                                ),
                                "worker process crashed repeatedly",
                            )
                        else:
                            requeue_innocent(i)
                    except (KeyboardInterrupt, SystemExit):
                        # Cancellation is not a shard fault: abort the
                        # whole map (the outer handler stops the pool,
                        # callers unlink their shm segments).
                        raise
                    except BaseException as exc:
                        report.shard(i).errors += 1
                        self._fault(
                            i, attempts, ready_at, pending, exc, "worker raised"
                        )
                    else:
                        results[i] = res
                        have[i] = True
                        if journal is not None:
                            journal.record(i, res)
                if broken:
                    # Every other in-flight future is poisoned too.
                    for fut, i in list(inflight.items()):
                        if fut in running_seen:
                            report.shard(i).crashes += 1
                            self._fault(
                                i,
                                attempts,
                                ready_at,
                                pending,
                                WorkerCrashError(
                                    f"worker died while running shard {i}"
                                ),
                                "worker process crashed repeatedly",
                            )
                        else:
                            requeue_innocent(i)
                    if rebuild("crash"):
                        report.degraded = True
                        _warn_degraded("worker pool kept breaking")
                        break
                    continue

                if policy.timeout is not None and inflight:
                    now = time.monotonic()
                    hung = [
                        (fut, i)
                        for fut, i in inflight.items()
                        if fut in running_seen and now - started[fut] > policy.timeout
                    ]
                    if hung:
                        hung_futs = {fut for fut, _ in hung}
                        for fut, i in hung:
                            report.shard(i).timeouts += 1
                            self._fault(
                                i,
                                attempts,
                                ready_at,
                                pending,
                                ShardTimeoutError(
                                    f"shard {i} exceeded the {policy.timeout}s "
                                    "per-shard timeout"
                                ),
                                "worker hung repeatedly",
                            )
                        # A hung worker cannot be stopped on its own: the
                        # pool dies with it, and bystanders requeue free.
                        for fut, i in list(inflight.items()):
                            if fut not in hung_futs:
                                requeue_innocent(i)
                        if rebuild("timeout"):
                            report.degraded = True
                            _warn_degraded("workers kept hanging past the timeout")
                            break
        except BaseException:
            if pool is not None:
                _stop_pool(pool)
            raise
        if report.degraded:
            leftovers = sorted(i for i in range(n) if not have[i])
            self._run_serial(
                fn, items, leftovers, results, have, journal, attempts, degraded=True
            )
            return
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        indices: list[int],
        results: list[Any],
        have: list[bool],
        journal: CheckpointJournal | None,
        attempts: list[int],
        degraded: bool,
    ) -> None:
        """In-process execution with the same retry/report accounting.

        Serves both the explicit serial path (``jobs <= 1`` with a
        policy/report/checkpoint attached) and post-degradation cleanup.
        Timeouts are not enforceable in-process and are not simulated.
        """
        report = self.report
        for i in indices:
            rec = report.shard(i)
            rec.degraded = degraded
            while True:
                rec.attempts += 1
                try:
                    res = fn(items[i])
                except Exception as exc:
                    rec.errors += 1
                    attempts[i] += 1
                    if attempts[i] > self.policy.max_retries:
                        raise
                    rec.retries += 1
                    delay = self.policy.backoff_delay(i, attempts[i])
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                results[i] = res
                have[i] = True
                if journal is not None:
                    journal.record(i, res)
                break

"""Fault-tolerant execution layer for sharded sweeps.

The batching stack (PRs 1-5) made one grid *fast*; this package makes it
*finish*.  ``repro.experiments.common.parallel_map`` routes its worker
pool through :class:`~repro.exec.resilience.ShardExecutor`, which turns
the previous all-or-nothing ``pool.map`` into per-shard future dispatch
with:

* bounded **retries** with exponential backoff + deterministic jitter
  (:class:`~repro.exec.resilience.RetryPolicy`),
* per-shard **timeouts** for hung workers (the pool is rebuilt; a hung
  process cannot be stopped individually),
* ``BrokenProcessPool`` **pool rebuilds** after worker crashes (workers
  re-attach the shared-memory network lazily, so a rebuilt pool resumes
  zero-copy), and
* graceful **degradation** to in-process serial execution — with a
  one-time :class:`RuntimeWarning` — when the pool fails repeatedly.

Every attempt is accounted in an
:class:`~repro.exec.resilience.ExecutionReport`; retried shards are
bit-for-bit identical to a fault-free run because shard functions are
deterministic pure functions of their task tuples.

:mod:`repro.exec.checkpoint` adds crash-safe **checkpoint/resume**: an
atomic on-disk journal keyed by the deterministic shard plan, so a
killed sweep resumes without recomputing finished shards.

:mod:`repro.exec.chaos` is the layer's own deterministic fault injector:
wrapped worker functions crash (``os._exit``), hang past the timeout, or
raise on a seeded schedule, which is how ``tests/resilience/`` proves the
guarantees above.
"""

from .checkpoint import CheckpointJournal, plan_key
from .chaos import ChaosSchedule, InjectedFault
from .resilience import (
    ExecutionReport,
    RetryPolicy,
    ShardExecutor,
    ShardFailedError,
    ShardRecord,
    ShardTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "ChaosSchedule",
    "CheckpointJournal",
    "ExecutionReport",
    "InjectedFault",
    "RetryPolicy",
    "ShardExecutor",
    "ShardFailedError",
    "ShardRecord",
    "ShardTimeoutError",
    "WorkerCrashError",
    "plan_key",
]

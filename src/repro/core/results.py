"""Result containers for counting runs."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from .._types import BoolArray, FloatArray, Int64Array, IntArray
from ..sim.metrics import MessageMeter, PhaseTrace

__all__ = ["BatchCountingResult", "CountingResult", "UNDECIDED"]

#: Sentinel phase value for nodes that never decided within ``max_phase``.
UNDECIDED = -1


@dataclass
class CountingResult:
    """Outcome of one Algorithm 1 / Algorithm 2 run.

    The protocol's per-node output is the phase index at which the node
    decided; the paper interprets that value directly as the node's
    estimate of ``log n`` (Algorithm 2 line 23).  Because the flooding
    metric of ``H`` contracts distances by ``log2(d-1)``, the natural
    *calibrated* size estimate is ``(d-1)^decided_phase`` — helpers for
    both views are provided.
    """

    n: int
    d: int
    k: int
    decided_phase: IntArray
    crashed: BoolArray
    byz: BoolArray
    meter: MessageMeter = field(default_factory=MessageMeter)
    trace: PhaseTrace = field(default_factory=PhaseTrace)
    injections_accepted: int = 0
    injections_rejected: int = 0

    # ------------------------------------------------------------------
    @property
    def honest(self) -> BoolArray:
        return ~self.byz

    @property
    def honest_uncrashed(self) -> BoolArray:
        return self.honest & ~self.crashed

    @property
    def estimates(self) -> IntArray:
        """Per-node estimate of ``log n`` (= decided phase; -1 undecided)."""
        return self.decided_phase

    def size_estimates(self) -> FloatArray:
        """Calibrated size estimates ``(d-1)^phase`` (0 for undecided)."""
        est = np.zeros(self.n, dtype=np.float64)
        mask = self.decided_phase > 0
        est[mask] = (self.d - 1.0) ** self.decided_phase[mask]
        return est

    def log_size_estimates(self) -> FloatArray:
        """Calibrated ``log2`` size estimates ``phase * log2(d-1)``."""
        est = np.full(self.n, np.nan)
        mask = self.decided_phase > 0
        est[mask] = self.decided_phase[mask] * np.log2(self.d - 1)
        return est

    # ------------------------------------------------------------------
    def fraction_decided(self) -> float:
        """Fraction of honest uncrashed nodes that decided."""
        pool = self.honest_uncrashed
        if not pool.any():
            return 0.0
        return float(np.mean(self.decided_phase[pool] != UNDECIDED))

    def in_band(self, c1: float, c2: float, *, of: str = "honest") -> BoolArray:
        """Mask of nodes with ``c1 * log2 n <= phase <= c2 * log2 n``.

        ``of`` selects the accounting population: ``"honest"`` counts all
        honest nodes (crashed and undecided fail the band, matching
        Definition 1's "all except B(n) + eps n honest nodes"), while
        ``"honest_uncrashed"`` restricts to survivors.
        """
        log_n = np.log2(self.n)
        ok = (self.decided_phase >= c1 * log_n) & (
            self.decided_phase <= c2 * log_n
        )
        if of == "honest":
            return ok & self.honest
        if of == "honest_uncrashed":
            return ok & self.honest_uncrashed
        raise ValueError(f"unknown population {of!r}")

    def fraction_in_band(self, c1: float, c2: float, *, of: str = "honest") -> float:
        pool = self.honest if of == "honest" else self.honest_uncrashed
        count = int(pool.sum())
        if count == 0:
            return 0.0
        return float(self.in_band(c1, c2, of=of).sum()) / count

    def decision_quantiles(self) -> tuple[float, float, float]:
        """(q10, median, q90) of decided phases among honest deciders."""
        pool = self.honest_uncrashed & (self.decided_phase != UNDECIDED)
        if not pool.any():
            return (np.nan, np.nan, np.nan)
        vals = self.decided_phase[pool]
        q10, med, q90 = np.percentile(vals, [10, 50, 90])
        return (float(q10), float(med), float(q90))

    def summary(self) -> dict[str, float]:
        q10, med, q90 = self.decision_quantiles()
        return {
            "n": self.n,
            "honest": int(self.honest.sum()),
            "crashed": int(self.crashed.sum()),
            "fraction_decided": self.fraction_decided(),
            "phase_q10": q10,
            "phase_median": med,
            "phase_q90": q90,
            "log2_n": float(np.log2(self.n)),
            "rounds": self.meter.rounds,
            "messages": self.meter.messages,
            "injections_accepted": self.injections_accepted,
            "injections_rejected": self.injections_rejected,
        }


@dataclass
class BatchCountingResult:
    """Per-trial :class:`CountingResult` list from one batched run.

    Sequence-like (``len``, indexing, iteration) so existing per-trial
    analysis code works unchanged, plus cross-trial aggregates for the
    experiment tables (every element shares one network, so ``n``/``d``
    agree across trials).
    """

    results: list[CountingResult]

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> CountingResult:
        return self.results[index]

    def __iter__(self) -> Iterator[CountingResult]:
        return iter(self.results)

    # ------------------------------------------------------------------
    def decided_matrix(self) -> IntArray:
        """``(B, n)`` matrix of per-node decided phases."""
        return np.stack([r.decided_phase for r in self.results])

    def rounds(self) -> Int64Array:
        """Per-trial executed round counts."""
        return np.array([r.meter.rounds for r in self.results], dtype=np.int64)

    def messages(self) -> Int64Array:
        """Per-trial metered message counts."""
        return np.array([r.meter.messages for r in self.results], dtype=np.int64)

    def fraction_decided(self) -> FloatArray:
        """Per-trial fraction of honest uncrashed nodes that decided."""
        return np.array([r.fraction_decided() for r in self.results])

    def median_phases(self) -> FloatArray:
        """Per-trial median decided phase among honest deciders."""
        return np.array([r.decision_quantiles()[1] for r in self.results])

    def mean_fraction_in_band(self, c1: float, c2: float, *, of: str = "honest") -> float:
        return float(
            np.mean([r.fraction_in_band(c1, c2, of=of) for r in self.results])
        )

"""The vectorized protocol engine shared by Algorithms 1 and 2.

One :func:`run_counting` call executes the full phase/subphase/round
schedule of the paper's pseudocode over a sampled network:

* **pre-phase** (Algorithm 2 lines 1-2, only when an adversary is present
  and verification is on): adjacency claims are exchanged and honest nodes
  with contradictory neighbors crash (:func:`repro.core.neighborhood.crash_phase`);
* **phase i** consists of ``subphase_count(i)`` subphases; each subphase
  draws geometric colors at active nodes and floods the running maximum
  along ``H`` edges for exactly ``i`` rounds, recording the per-round
  received maxima ``k_t``;
* a node decides ``i`` iff **no** subphase of phase ``i`` produced a
  last-round record above the threshold (Algorithm 2 lines 18-23).

Byzantine behaviour enters through the :class:`~repro.adversary.base.Adversary`
hooks; Lemma 16's verification guarantee is enforced here by rejecting
injections after round ``k - 1`` (see DESIGN.md §2.2 for why this is the
faithful rule-level equivalent of the message-level witness protocol, which
the agent engine implements literally).

Following the HPC guide, the inner loop is pure vectorized numpy with
preallocated buffers and in-place updates; a full run at ``n = 4096`` takes
a couple of seconds.

Round accounting is unconditional: every flooding round and the O(1)
pre-phase rounds are charged to the meter regardless of the
``count_messages`` knob, which gates only the (costlier) message counters.
``CountingResult.meter.rounds`` is therefore identical with metering on or
off (see ``tests/core/test_runner_batch.py``).

For sweeps over many independent trials of the *same* network and config,
:func:`repro.core.batch.run_counting_batch` drives this exact schedule for
all trials simultaneously on ``(n, B)`` trials-as-columns state matrices
(via :meth:`~repro.sim.flood.FloodKernel.neighbor_max_stacked`) —
bit-for-bit equal to ``B`` sequential calls, but with the numpy call and
memory-traffic overhead amortized across the batch.
"""

from __future__ import annotations

import numpy as np

from .._types import BoolArray, Int64Array, SeedLike
from ..adversary.base import Adversary, Injection, SubphasePlan, SubphaseState
from ..analysis.bounds import ball_size_bound
from ..graphs.smallworld import SmallWorldNetwork
from ..sim.flood import FloodKernel
from ..sim.metrics import MessageMeter, PhaseRecord, PhaseTrace
from ..sim.rng import make_rng, spawn
from .colors import sample_colors
from .config import CountingConfig
from .neighborhood import crash_phase
from .phases import color_threshold, subphase_count
from .results import UNDECIDED, CountingResult

__all__ = ["run_counting"]


def run_counting(
    network: SmallWorldNetwork,
    config: CountingConfig | None = None,
    seed: SeedLike = 0,
    adversary: Adversary | None = None,
    byz_mask: BoolArray | None = None,
) -> CountingResult:
    """Run the counting protocol; returns a :class:`CountingResult`.

    With ``adversary is None`` this is Algorithm 1 (the basic protocol);
    with an adversary and ``config.verification`` on it is Algorithm 2.
    """
    config = config or CountingConfig()
    n, d, k = network.n, network.d, network.k
    root = make_rng(seed)
    color_rng, adv_rng = spawn(root, 2)

    byz = (
        np.zeros(n, dtype=bool)
        if byz_mask is None
        else np.asarray(byz_mask, dtype=bool).copy()
    )
    if byz.shape != (n,):
        raise ValueError("byz_mask must have shape (n,)")
    if adversary is None and byz.any():
        raise ValueError("byz_mask given without an adversary")
    byz_nodes = np.flatnonzero(byz)

    meter = MessageMeter()
    trace = PhaseTrace()
    crashed = np.zeros(n, dtype=bool)

    if adversary is not None:
        adversary.bind(network, byz, adv_rng, config)
        if config.verification:
            claims = adversary.topology_claims()
            crashed = crash_phase(network, byz, claims)
            # The pre-phase spends its rounds whether or not messages are
            # being metered: everyone broadcasts its d-entry claim to all
            # G-neighbors, then one confirmation round (Remark 3: O(1)
            # rounds).  ``count_messages`` only gates the message counters.
            meter.add_round(2)
            if config.count_messages:
                total_ports = int(network.g_indptr[-1])
                meter.add_messages(total_ports, ids_each=d, bits_each=0)

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    decided = np.full(n, UNDECIDED, dtype=np.int64)
    witness_ball = min(ball_size_bound(d, k, 1), n)

    # Preallocated per-subphase buffers (in-place updates in the hot loop).
    colors = np.zeros(n, dtype=np.int64)
    cur = np.zeros(n, dtype=np.int64)
    sent = np.zeros(n, dtype=np.int64)
    prev_kt = np.zeros(n, dtype=np.int64)
    recv = np.zeros(n, dtype=np.int64)

    injections_accepted = 0
    injections_rejected = 0
    honest_uncrashed = ~byz & ~crashed

    for phase in range(1, config.max_phase + 1):
        undecided = honest_uncrashed & (decided == UNDECIDED)
        active_before = int(undecided.sum())
        if active_before == 0 and config.stop_when_all_decided:
            break
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        flag_continue = np.zeros(n, dtype=bool)
        phase_inj_acc = phase_inj_rej = 0

        for sub in range(1, n_sub + 1):
            # --- draw colors -------------------------------------------------
            colors.fill(0)
            gen_mask = undecided
            count = int(gen_mask.sum())
            if count:
                colors[gen_mask] = sample_colors(color_rng, count)

            plan: SubphasePlan | None = None
            if adversary is not None and byz_nodes.size:
                state = SubphaseState(
                    phase=phase,
                    subphase=sub,
                    rounds=phase,
                    k=k,
                    network=network,
                    byz_nodes=byz_nodes,
                    honest_colors=colors[~byz],
                    decided_phase=decided,
                    crashed=crashed,
                    rng=adv_rng,
                )
                plan = adversary.subphase_plan(state)

            np.copyto(cur, colors)
            if plan is not None and plan.initial_colors is not None:
                vals = np.asarray(plan.initial_colors, dtype=np.int64)
                if vals.shape != (byz_nodes.shape[0],):
                    raise ValueError("initial_colors must align with byz nodes")
                cur[byz_nodes] = vals
            injections_by_round: dict[int, list[Injection]] = {}
            if plan is not None:
                checked_nodes: set[int] = set()
                for inj in plan.injections:
                    # Malformed node arrays were rejected by Injection
                    # itself; membership in the Byzantine set needs run
                    # context and is enforced here, before any kernel math
                    # (once per distinct node array — schedules reuse one).
                    if id(inj.nodes) not in checked_nodes:
                        checked_nodes.add(id(inj.nodes))
                        inj.require_byzantine(byz)
                    injections_by_round.setdefault(inj.t, []).append(inj)

            prev_kt.fill(0)
            k_last: Int64Array | None = None
            for t in range(1, phase + 1):
                # --- adversary injections (Lemma 16 gate) --------------------
                for inj in injections_by_round.get(t, ()):  # rarely > 1
                    if config.verification and t > k - 1:
                        injections_rejected += 1
                        phase_inj_rej += 1
                        continue
                    injections_accepted += 1
                    phase_inj_acc += 1
                    cur[inj.nodes] = np.maximum(cur[inj.nodes], inj.value)

                # --- transmit ------------------------------------------------
                np.copyto(sent, cur)
                if crashed.any():
                    sent[crashed] = 0
                if plan is not None and not plan.relay:
                    sent[byz_nodes] = 0
                    for inj in injections_by_round.get(t, ()):
                        if not (config.verification and t > k - 1):
                            sent[inj.nodes] = inj.value

                # --- receive -------------------------------------------------
                kernel.neighbor_max(sent, out=recv)
                if crashed.any():
                    recv[crashed] = 0

                # New-record events drive the witness-query cost; count them
                # before the in-place running-max update consumes them.
                new_records = int(np.count_nonzero(recv > cur))

                if t < phase:
                    np.maximum(prev_kt, recv, out=prev_kt)
                else:
                    k_last = recv.copy()
                np.maximum(cur, recv, out=cur)
                if crashed.any():
                    cur[crashed] = 0

                # --- accounting ---------------------------------------------
                if config.count_messages:
                    senders = int(np.count_nonzero(sent))
                    meter.add_messages(senders * d, ids_each=0, bits_each=0)
                    if config.verification and adversary is not None:
                        meter.add_messages(
                            2 * new_records * min(witness_ball, 64), ids_each=1
                        )
                meter.add_round(
                    1
                    + (
                        config.verification_round_cost
                        if (config.verification and adversary is not None)
                        else 0
                    )
                )

            assert k_last is not None
            np.logical_or(
                flag_continue,
                (k_last > prev_kt) & (k_last > threshold),
                out=flag_continue,
            )

        newly = undecided & ~flag_continue
        decided[newly] = phase
        if config.record_phase_trace:
            trace.append(
                PhaseRecord(
                    phase=phase,
                    subphases=n_sub,
                    flooding_rounds=n_sub * phase,
                    newly_decided=int(newly.sum()),
                    active_before=active_before,
                    injections_accepted=phase_inj_acc,
                    injections_rejected=phase_inj_rej,
                )
            )
        if config.stop_when_all_decided and not (
            honest_uncrashed & (decided == UNDECIDED)
        ).any():
            break

    return CountingResult(
        n=n,
        d=d,
        k=k,
        decided_phase=decided,
        crashed=crashed,
        byz=byz,
        meter=meter,
        trace=trace,
        injections_accepted=injections_accepted,
        injections_rejected=injections_rejected,
    )

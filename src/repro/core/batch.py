"""Trial-batched execution engine for the counting protocol.

Experiment sweeps repeat :func:`repro.core.runner.run_counting` over many
independent trials (seeds x configs x placements) of the *same* network.
Each trial's per-round work is a handful of numpy calls on arrays of length
``n`` — small enough that interpreter and dispatch overhead dominate the
arithmetic.  Since trials are fully independent, the whole phase/subphase/
round schedule vectorizes across them: :func:`run_counting_batch` keeps the
protocol state as ``(n, B)`` trials-as-columns matrices and executes every
flooding round for all ``B`` trials with one batched kernel call
(:meth:`repro.sim.flood.FloodKernel.neighbor_max_stacked`; the ``(B, n)``
``neighbor_max_batch`` reduceat kernel is its fallback for non-regular
graphs).

Equivalence contract
--------------------
``run_counting_batch(network, seeds, config=cfg)`` is **bit-for-bit** equal
to ``[run_counting(network, cfg, seed=s) for s in seeds]``: per-trial
``decided_phase``, ``crashed``, phase traces, and meter totals all match.
This holds because

* each trial consumes its own named random stream, derived exactly as the
  sequential engine derives it (``make_rng`` -> ``spawn``), with color
  draws issued per-trial in the same order and sizes;
* integer max-flooding is exact, so batching changes no arithmetic;
* a trial leaves the batch precisely when the sequential run would break
  out of the phase loop, so round/message accounting stops at the same
  point.

The equivalence is enforced by the property tests in
``tests/core/test_runner_batch.py`` and ``tests/core/test_sweep.py``.

Adversarial (Algorithm 2) trials batch too: the engine drives the batched
adversary protocol (:meth:`~repro.adversary.base.Adversary.batch_subphase_plan`
over ``(byz, B)`` plans — see :mod:`repro.adversary.base`), simulates the
pre-phase crash rule per trial (deduplicating identical claim sets), gates
injections per Lemma 16 per trial, and meters witness traffic from ``(n, B)``
new-record counts.  Built-in strategies are natively vectorized; scalar
third-party adversaries run through the generic per-column wrapper
(:class:`~repro.adversary.base.PerTrialAdversaryBatch` when passed as a
factory), which keeps the flooding rounds batched while calling the scalar
hook once per trial.  Heterogeneous configs are grouped: trials sharing a
config batch together.

Per-trial placements
--------------------
``byz_mask`` may be one shared ``(n,)`` mask or a per-trial ``(B, n)``
stack (equivalently a length-``B`` list of ``(n,)`` masks), so sweeps that
vary the adversary's *location* — the governing variable of the
placement-sensitivity experiments — batch too.  Trials are sub-grouped by
distinct placement: each sub-group gets its own adversary (built by the
factory and bound to that placement, exactly as sequential runs bind one
adversary per trial) which plans only its own columns, while the flooding
rounds stay fused across the whole batch — crash masks, the Lemma 16 gate,
relay suppression, and witness metering are applied per column.  The crash
rule is memoized on (placement, claim content), so repeated seeds of one
placement simulate their crashes once.  A mask stack whose length disagrees
with ``seeds`` is rejected eagerly; a shared adversary *instance* cannot
drive multiple placements (its binding is per placement) and is likewise
rejected — pass a factory.

Dtype policy
------------
Honest runs keep color state in int32 (colors are ``O(log n)`` whp and
nothing injects).  Adversarial runs *start* in int32 too and widen to int64
lazily, at the first subphase whose bound plan (initial colors or scheduled
injections) exceeds ``INT32_MAX`` — adversaries are the only source of
unbounded values, and every built-in strategy stays far below the boundary,
so Byzantine sweeps normally run the narrow, cache-friendlier state end to
end.  Widening is exact: it happens before the plan is applied, and integer
max-flooding produces identical values in either dtype.

Network-axis batching
---------------------
:func:`run_counting_multinet` extends the batch across the *network* axis:
each trial carries its own network, and trials on different graphs — even
of different sizes — fuse into one padded trials-as-columns batch.  State
is padded to the largest ``n`` with a per-trial active-length vector; the
flooding rounds dispatch through
:class:`~repro.sim.flood.MultiFloodKernel`, whose masked reduction keeps
padding rows identically zero (they can never win a max), and decided
bookkeeping, crash masks, and witness metering apply only over each
column's live prefix.  The phase/subphase/round *schedule* depends only on
``(phase, eps, d)``, so one fused loop drives every size — which is why a
multi-network batch requires a homogeneous degree ``d`` (validated
eagerly).  Byzantine trials sub-group by (network, placement): each group's
adversary binds to its own graph and plans its own columns, while the
flooding stays fused.  Bit-for-bit equal to per-network
:func:`run_counting_batch` calls per trial, enforced by
``tests/integration/test_engine_equivalence.py`` and the hypothesis ragged
-padding properties in ``tests/property/test_padding_properties.py``.

Union-stack batching
--------------------
For *rectangular* (network x seed) grids — every network runs the same
seed axis — :func:`run_counting_unionstack` replaces padding with the
block-diagonal **union stack**: the networks are concatenated on the *row*
axis (total rows ``N = sum(n_g)``; one column = one seed replicated across
all sizes), so every flooding round is a single
:class:`~repro.sim.flood.UnionFloodKernel` row-gather over the
concatenated CSR — zero padding rows, no per-segment scratch copies, no
masked zeroing.  Per-network row segments (the kernel's ``offsets``) drive
decided counting, saturation/message accounting, crash masks, the
per-block Lemma 16 gate (each block's own ``k_g``), and witness metering
via segment-wise reductions; per-trial liveness is a ``(G, C)`` matrix, so
a finished (network, seed) cell stops drawing colors and accruing meter
charges exactly when its per-network batch would have dropped the column.
Byzantine trials sub-group by (network block, placement).  Bit-for-bit
equal to the padded and per-network engines per cell, enforced by the
5-engine grid in ``tests/integration/test_engine_equivalence.py`` and the
hypothesis properties in ``tests/property/test_unionstack_properties.py``.

Channel models
--------------
Every engine takes an optional ``channel``
(:class:`~repro.sim.channel.ChannelModel`): per-round Bernoulli message
loss and additive corruption noise applied inside the kernel call (see
:mod:`repro.sim.channel` for the determinism contract).  Each trial's
channel stream is the third spawned child of its root generator — spawned
only when a channel is active, which leaves the color and adversary
streams untouched (``Generator.spawn`` advances a child counter, not the
bit stream), so lossless runs stay bit-for-bit equal to the historical
output and a null channel is normalized away entirely.  Under an active
channel the honest engines switch from the receive-at-``phase-1``
shortcut to an explicit running-max ``prev_kt`` (a dropped message breaks
the monotonicity that shortcut relies on); sender-side metering still
charges *attempted* transmissions (corruption happens on a kernel-side
scratch copy), while verification's new-record metering naturally counts
only what the channel delivered.

Adaptive adversaries
--------------------
Byzantine engines invoke :meth:`~repro.adversary.base.Adversary.batch_adapt`
on every placement sub-group at the end of every subphase (so the first
subphase always runs the bound placement).  Adversaries that override the
hook observe per-node attempted-send traffic accumulated since the last
adaptation and may return a replacement placement mask for the group; the
engines then re-point the group's Byzantine set — affecting subsequent
planning, suppression, and the Lemma 16 membership check immediately,
and the undecided/color bookkeeping from the next phase boundary (the
per-phase draw schedule is fixed at phase start in every engine, which is
what keeps the three layouts bit-for-bit identical under adaptation).
Pre-phase crash simulation is not re-run: crashes are a property of the
verification phase, which precedes any adaptation.  All built-in static
strategies inherit the default no-op hook and are byte-for-byte
unaffected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .._types import AnyArray, BoolArray, Int64Array, IntArray, SeedLike
from ..adversary.base import (
    Adversary,
    BatchAdaptationState,
    BatchSubphasePlan,
    BatchSubphaseState,
    Injection,
    PerTrialAdversaryBatch,
    has_native_batch,
)
from ..analysis.bounds import ball_size_bound
from ..sim.channel import ChannelModel, ChannelState, _normalize_channel
from ..sim.flood import FloodKernel, MultiFloodKernel, UnionFloodKernel
from ..sim.metrics import MeterBatch, PhaseRecord, PhaseTrace
from ..sim.rng import make_rng, spawn
from .colors import sample_colors
from .config import CountingConfig
from .neighborhood import crash_phase
from .phases import color_threshold, subphase_count
from .results import UNDECIDED, BatchCountingResult, CountingResult

if TYPE_CHECKING:  # pragma: no cover
    from ..graphs.smallworld import SmallWorldNetwork

#: An ``adversary_factory`` argument: a zero-argument factory or a plain
#: (stateless, single-placement) instance.
AdversarySpec = "Adversary | Callable[[], Adversary]"

__all__ = ["run_counting_batch", "run_counting_multinet", "run_counting_unionstack"]

#: Boundaries of the narrow adversarial state: plans whose values fit
#: [INT32_MIN, INT32_MAX] run the subphase in int32; the first plan outside
#: widens the run to int64.  (Injection values are validated positive, but
#: initial colors are taken as-is — a negative value must stay negative and
#: inert under max-flooding, exactly as the sequential int64 engine keeps it.)
_INT32_MAX = int(np.iinfo(np.int32).max)
_INT32_MIN = int(np.iinfo(np.int32).min)


def run_counting_batch(
    network: SmallWorldNetwork,
    seeds: Sequence[SeedLike],
    config: CountingConfig | Sequence[CountingConfig] | None = None,
    adversary_factory: Callable[[], Adversary] | Adversary | None = None,
    byz_mask: AnyArray | Sequence[AnyArray | None] | None = None,
    backend: str | None = None,
    kernel: FloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> BatchCountingResult:
    """Run ``len(seeds)`` independent counting trials, batched.

    Parameters
    ----------
    network:
        The shared :class:`~repro.graphs.smallworld.SmallWorldNetwork`.
    seeds:
        One entry per trial; each is anything :func:`repro.sim.rng.make_rng`
        accepts (int, ``Generator``, or ``None``).
    config:
        A single :class:`CountingConfig` applied to every trial, or a
        sequence of per-trial configs (trials with equal configs are
        batched together).
    adversary_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.adversary.base.Adversary`, or a plain instance.
        Byzantine trials run on the batched engine: natively-batched
        adversaries (all built-ins) drive a whole placement sub-group as
        one instance; scalar-only classes passed as a factory are wrapped
        in :class:`~repro.adversary.base.PerTrialAdversaryBatch` (one
        instance per trial, exactly like the former sequential fallback).
        A plain scalar instance is driven through the generic per-column
        fallback, which assumes its hooks are stateless — pass a factory
        for stateful adversaries, and always for multi-placement batches.
    byz_mask:
        Byzantine placement(s); requires ``adversary_factory``.  Either a
        single ``(n,)`` mask shared by every trial, or a per-trial
        ``(B, n)`` stack / length-``B`` list of masks (trials sharing a
        placement are sub-grouped; see the module docstring).
    backend:
        Flood-kernel compute backend (``"numpy"``, ``"numba"``,
        ``"auto"``) or ``None`` for the default resolution (the
        ``REPRO_KERNEL_BACKEND`` env override, then auto).  Backends are
        bit-for-bit interchangeable — this is a speed knob, never a
        semantics knob (see :mod:`repro.sim.backends`).
    kernel:
        A pre-built :class:`~repro.sim.flood.FloodKernel` over this
        network's ``H`` adjacency to reuse across calls (the resident
        churn engine keeps kernels — and their cached gather plans — warm
        between epochs).  Mutually exclusive with ``backend`` (the kernel
        already carries one); its CSR must match the network, validated
        eagerly.  Kernel reuse is a speed knob with the same bit-for-bit
        guarantee as ``backend``.
    channel:
        Optional :class:`~repro.sim.channel.ChannelModel` applying
        per-round message loss / corruption noise inside every flooding
        round (see the module docstring's channel section).  ``None`` or
        a null model runs the exact lossless code path.

    Returns
    -------
    BatchCountingResult
        Per-trial :class:`~repro.core.results.CountingResult` objects, in
        ``seeds`` order, bit-for-bit equal to sequential ``run_counting``
        (when no channel is active; channel draws are deterministic per
        trial seed).
    """
    channel = _normalize_channel(channel)
    if kernel is not None:
        if backend is not None:
            raise ValueError(
                "pass either backend or a pre-built kernel, not both (the "
                "kernel already carries its backend)"
            )
        _check_kernel_csr(kernel, network, "kernel")
    seeds = list(seeds)
    batch = len(seeds)
    configs = _normalize_configs(config, batch)
    byz_bn = _normalize_byz_masks(byz_mask, batch, network.n)

    if adversary_factory is not None:
        if byz_bn is None:
            byz_bn = np.zeros((batch, network.n), dtype=bool)
        results: list[CountingResult | None] = [None] * batch
        for cfg, trial_ids in _group_by_config(configs).items():
            group = _run_byzantine_batched_group(
                network,
                [seeds[i] for i in trial_ids],
                cfg,
                adversary_factory,
                byz_bn[trial_ids],
                backend=backend,
                kernel=kernel,
                channel=channel,
            )
            for i, res in zip(trial_ids, group, strict=True):
                results[i] = res
        return BatchCountingResult(results)  # type: ignore[arg-type]
    if byz_bn is not None and byz_bn.any():
        raise ValueError("byz_mask given without an adversary_factory")

    results = [None] * batch
    for cfg, trial_ids in _group_by_config(configs).items():
        group = _run_batched_group(
            network, [seeds[i] for i in trial_ids], cfg, backend=backend,
            kernel=kernel, channel=channel,
        )
        for i, res in zip(trial_ids, group, strict=True):
            results[i] = res
    return BatchCountingResult(results)  # type: ignore[arg-type]


def _normalize_byz_masks(byz_mask: Any, batch: int, n: int) -> BoolArray | None:
    """Normalize ``byz_mask`` to a per-trial ``(batch, n)`` stack (or None).

    A single ``(n,)`` mask is broadcast to every trial; a ``(batch, n)``
    stack or a length-``batch`` sequence of masks is taken per trial.  A
    stack whose length disagrees with ``seeds`` is rejected here with a
    count-mismatch error rather than silently sharing one mask.
    """
    if byz_mask is None:
        return None
    if isinstance(byz_mask, (list, tuple)):
        masks = [np.asarray(m, dtype=bool) for m in byz_mask]
        if len(masks) != batch:
            raise ValueError(
                f"got {len(masks)} placement masks for {batch} seeds; provide "
                "one (n,) mask per trial or a single shared (n,) mask"
            )
        for m in masks:
            if m.shape != (n,):
                raise ValueError(
                    f"each placement mask must have shape ({n},), got {m.shape}"
                )
        return np.array(masks, dtype=bool).reshape(batch, n)
    arr = np.asarray(byz_mask, dtype=bool)
    if arr.ndim == 1:
        if arr.shape != (n,):
            raise ValueError(f"byz_mask must have shape ({n},), got {arr.shape}")
        out = np.empty((batch, n), dtype=bool)
        out[:] = arr
        return out
    if arr.ndim == 2:
        if arr.shape[0] != batch:
            raise ValueError(
                f"got {arr.shape[0]} placement masks for {batch} seeds; provide "
                "one (n,) mask per trial or a single shared (n,) mask"
            )
        if arr.shape[1] != n:
            raise ValueError(
                f"each placement mask must have shape ({n},), got ({arr.shape[1]},)"
            )
        return arr.copy()
    raise ValueError(
        f"byz_mask must be (n,) or (batch, n), got shape {arr.shape}"
    )


def _check_kernel_csr(
    kernel: FloodKernel, network: SmallWorldNetwork, name: str
) -> None:
    """Reject a reused kernel whose CSR drifted from the network's ``H``.

    The resident churn engine rebinds kernels via
    :meth:`~repro.sim.flood.FloodKernel.update_csr` after every delta;
    this guards the handoff so a missed rebind fails loudly instead of
    flooding a stale adjacency.
    """
    if kernel.n != network.n or not (
        np.array_equal(kernel.indptr, network.h.indptr)
        and np.array_equal(kernel.indices, network.h.indices)
    ):
        raise ValueError(
            f"{name} adjacency does not match the network's H CSR; rebind "
            "with kernel.update_csr(...) after mutating the overlay"
        )


def _batch_adversary(factory: AdversarySpec, batch: int) -> Adversary:
    """Resolve the adversary that will drive one placement sub-group."""
    if isinstance(factory, Adversary):
        # A shared instance: driven through its (native or generic
        # per-column) batch hooks, matching sequential re-binding for any
        # stateless adversary.
        return factory
    probe = factory()
    if has_native_batch(probe):
        return probe
    # Scalar-only third-party class: preserve one-instance-per-trial
    # semantics via the generic per-column wrapper.
    return PerTrialAdversaryBatch(factory, batch)


def _is_adaptive(adversary: Adversary) -> bool:
    """Whether this adversary overrides the between-subphase adapt hook.

    Static strategies inherit :meth:`Adversary.batch_adapt` unchanged, so
    identity on the unbound method gates all adaptation bookkeeping
    (traffic accumulation, hook dispatch) out of non-adaptive runs.
    """
    return type(adversary).batch_adapt is not Adversary.batch_adapt


def _adapted_mask(mask: AnyArray, n: int) -> BoolArray:
    """Validate one group's replacement placement from ``batch_adapt``."""
    arr = np.ascontiguousarray(np.asarray(mask, dtype=bool))
    if arr.shape != (n,):
        raise ValueError(
            f"batch_adapt must return an ({n},) placement mask or None, "
            f"got shape {arr.shape}"
        )
    return arr


def _normalize_configs(
    config: CountingConfig | Sequence[CountingConfig] | None, batch: int
) -> list[CountingConfig]:
    if config is None:
        config = CountingConfig()
    if isinstance(config, CountingConfig):
        return [config] * batch
    configs = list(config)
    if len(configs) != batch:
        raise ValueError(
            f"got {len(configs)} configs for {batch} seeds; provide one "
            "config per trial or a single shared config"
        )
    return configs


def _group_by_config(
    configs: list[CountingConfig],
) -> dict[CountingConfig, list[int]]:
    groups: dict[CountingConfig, list[int]] = {}
    for i, cfg in enumerate(configs):
        groups.setdefault(cfg, []).append(i)
    return groups


def _run_batched_group(
    network: SmallWorldNetwork,
    seeds: list[SeedLike],
    config: CountingConfig,
    backend: str | None = None,
    kernel: FloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """The batched engine proper: one config, ``B`` seeds, no adversary.

    Mirrors the adversary-free path of :func:`run_counting` statement for
    statement, with node vectors widened to ``(B, n)`` matrices.  The only
    per-trial Python work left in the hot loop is the color draw (each
    trial owns a private RNG stream whose draw order must match the
    sequential engine's).
    """
    n, d = network.n, network.d
    batch = len(seeds)
    if batch == 0:
        return []

    color_rngs: list[np.random.Generator] = []
    chan_rngs: list[np.random.Generator] = []
    for seed in seeds:
        root = make_rng(seed)
        color_rng, _adv_rng = spawn(root, 2)  # same split as run_counting
        color_rngs.append(color_rng)
        if channel is not None:
            # Child 2 of the trial root: spawned only when a channel is
            # active, which leaves the color/adversary streams bit-for-bit
            # unchanged (spawn advances a child counter, not the stream).
            chan_rngs.append(spawn(root, 1)[0])

    if kernel is None:
        kernel = FloodKernel(network.h.indptr, network.h.indices, backend=backend)
    decided = np.full((batch, n), UNDECIDED, dtype=np.int64)
    meters = MeterBatch(batch)
    traces = [PhaseTrace() for _ in range(batch)]
    alive = np.ones(batch, dtype=bool)

    for phase in range(1, config.max_phase + 1):
        undecided_all = decided == UNDECIDED
        active_before = undecided_all.sum(axis=1)
        if config.stop_when_all_decided:
            alive &= active_before > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive)
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active_before[live]
        all_undecided = counts == n
        # ``k > threshold`` for integer ``k`` equals ``k > floor(threshold)``,
        # so the comparison stays in int32 (no float64 promotion).
        thr_floor = int(np.floor(threshold))

        # One stream read per trial per phase: a single geometric draw of
        # ``n_sub * count`` values equals ``n_sub`` successive draws of
        # ``count`` (distribution sampling consumes the bit stream per
        # variate, independent of call boundaries), so per-trial streams
        # still match the sequential engine draw for draw.
        phase_draws: list[Int64Array | None] = []
        for row, trial in enumerate(live):
            count = int(counts[row])
            if count:
                draws = sample_colors(color_rngs[trial], n_sub * count)
                phase_draws.append(draws.reshape(n_sub, count))
            else:
                phase_draws.append(None)

        # Trials-as-columns int32 state: each node's live-trial values sit
        # in one cache line, which is what makes the stacked kernel fast.
        # Colors are O(log n) whp and the engine never injects, so int32
        # cannot overflow; results are widened back to int64 at the end.
        colors_bn = np.zeros((b_live, n), dtype=np.int32)
        cur_t = np.empty((n, b_live), dtype=np.int32)
        # ``recv`` is pointwise monotone across a subphase's rounds (cur
        # only grows, so each neighbor-max dominates the previous one);
        # hence max_{t < phase} recv_t == recv at round phase-1 and no
        # running "previous k_t" accumulation is needed — round phase-1's
        # receive buffer *is* prev_kt.  phase == 1 has no earlier rounds,
        # so prev stays at its zero initialization.  An active channel
        # breaks that monotonicity (a dropped message can shrink a
        # neighbor-max), so the lossy path below keeps an explicit running
        # maximum instead and resets it every subphase.
        prev_t = np.zeros((n, b_live), dtype=np.int32)
        recv_t = np.empty((n, b_live), dtype=np.int32)
        k_last_t = np.empty((n, b_live), dtype=np.int32)
        flag_continue = np.zeros((n, b_live), dtype=bool)
        senders = np.zeros(b_live, dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            chan = ChannelState(
                channel,
                [(row, 0, n, chan_rngs[int(t)]) for row, t in enumerate(live)],
            )

        for sub in range(n_sub):
            # Rows whose mask is partial keep untouched entries at their
            # initial 0 (the mask is fixed for the whole phase), so only
            # masked positions ever need writing.
            for row, _trial in enumerate(live):
                draws = phase_draws[row]
                if draws is None:
                    continue
                if all_undecided[row]:
                    colors_bn[row] = draws[sub]
                else:
                    colors_bn[row, und[row]] = draws[sub]
            np.copyto(cur_t, colors_bn.T)
            if chan is not None:
                prev_t.fill(0)

            senders.fill(0)
            saturated = False
            for t in range(1, phase + 1):
                # No crashes and no Byzantine suppression on this path, so
                # every node transmits its running max: sent == cur, and
                # the copy the sequential engine makes is unnecessary.
                # (The channel corrupts a kernel-side scratch copy, so the
                # sender count below still meters attempted transmissions.)
                if config.count_messages:
                    if saturated:
                        senders += n
                    else:
                        nonzero = np.count_nonzero(cur_t, axis=0)
                        senders += nonzero
                        # The nonzero set only grows within a subphase
                        # (running max), so once every node transmits in
                        # every trial the count stays pinned at n.
                        saturated = bool(nonzero.min() == n)
                if chan is not None:
                    # Lossy path: prev_kt must be an explicit running max
                    # over every pre-final round's (possibly shrunken)
                    # receive, not just round phase-1's.
                    if t == phase:
                        kernel.neighbor_max_stacked(
                            cur_t, out=k_last_t, channel=chan
                        )
                    else:
                        kernel.neighbor_max_stacked(
                            cur_t, out=recv_t, channel=chan
                        )
                        np.maximum(prev_t, recv_t, out=prev_t)
                        np.maximum(cur_t, recv_t, out=cur_t)
                elif t == phase:
                    # Last round: only k_t is still needed — recv, prev,
                    # and the running max are dead after this point.
                    kernel.neighbor_max_stacked(cur_t, out=k_last_t)
                elif t == phase - 1:
                    # By monotonicity this receive equals prev_kt.
                    kernel.neighbor_max_stacked(cur_t, out=prev_t)
                    np.maximum(cur_t, prev_t, out=cur_t)
                else:
                    kernel.neighbor_max_stacked(cur_t, out=recv_t)
                    np.maximum(cur_t, recv_t, out=cur_t)
            if config.count_messages:
                meters.add_messages(live, senders * d)
            np.logical_or(
                flag_continue,
                (k_last_t > prev_t) & (k_last_t > thr_floor),
                out=flag_continue,
            )
        # Without an adversary the per-round cost is exactly 1, so the
        # phase's round total factors out of the subphase loop.
        meters.add_rounds(live, n_sub * phase)

        newly = und & ~flag_continue.T
        rows = decided[live]
        rows[newly] = phase
        decided[live] = rows
        if config.record_phase_trace:
            newly_counts = newly.sum(axis=1)
            for row, trial in enumerate(live):
                traces[trial].append(
                    PhaseRecord(
                        phase=phase,
                        subphases=n_sub,
                        flooding_rounds=n_sub * phase,
                        newly_decided=int(newly_counts[row]),
                        active_before=int(counts[row]),
                        injections_accepted=0,
                        injections_rejected=0,
                    )
                )
        if config.stop_when_all_decided and not (decided == UNDECIDED).any():
            break

    k = network.k
    return [
        CountingResult(
            n=n,
            d=d,
            k=k,
            decided_phase=decided[b].copy(),
            crashed=np.zeros(n, dtype=bool),
            byz=np.zeros(n, dtype=bool),
            meter=meters.meter(b),
            trace=traces[b],
            injections_accepted=0,
            injections_rejected=0,
        )
        for b in range(batch)
    ]


def _claims_signature(claims: Any) -> tuple[Any, ...]:
    """Hashable content key for one trial's pre-phase claim mapping."""
    return tuple(sorted((int(v), tuple(c)) for v, c in claims.items()))


def _normalize_batch_plan(
    plan: BatchSubphasePlan, byz_count: int, batch: int
) -> tuple[
    Int64Array | None,
    list[dict[int, list[Injection]]],
    dict[int, Int64Array],
    dict[int, list[tuple[IntArray, IntArray, Int64Array]]],
    BoolArray,
]:
    """Validate a :class:`BatchSubphasePlan` and expand it to engine form.

    Returns ``(initial, inj_by_round, counts_by_round, groups_by_round,
    relay)``:

    * ``initial`` — the ``(byz, B)`` int64 matrix or None;
    * ``inj_by_round[j]`` — round ``t`` -> trial ``j``'s injections (used
      by the order-sensitive relay-suppression resend path);
    * ``counts_by_round[t]`` — per-trial injection counts at round ``t``
      (one vectorized accept/reject charge per round);
    * ``groups_by_round[t]`` — ``(nodes, cols, vals)`` triples applying
      every trial's round-``t`` injections as one 2-D masked maximum.
      Injections sharing a node array across trials collapse into one
      group; duplicate (trial, nodes) entries are max-combined up front,
      which is exact because injection application is a running maximum;
    * ``relay`` — ``(B,)`` bool vector.

    Identical per-trial schedules may share list objects (the engine never
    mutates them).
    """
    initial: Int64Array | None = None
    if plan.initial_colors is not None:
        initial = np.asarray(plan.initial_colors, dtype=np.int64)
        if initial.shape != (byz_count, batch):
            raise ValueError(
                f"initial_colors must have shape ({byz_count}, {batch}), "
                f"got {initial.shape}"
            )
    inj_by_round: list[dict[int, list[Injection]]] = [{} for _ in range(batch)]
    counts_by_round: dict[int, Int64Array] = {}
    raw_groups: dict[tuple[int, int], tuple[IntArray, dict[int, int], list[int]]] = {}
    if plan.injections is not None:
        if len(plan.injections) != batch:
            raise ValueError(
                f"got {len(plan.injections)} injection schedules for "
                f"{batch} trials"
            )
        for j, injs in enumerate(plan.injections):
            for inj in injs:
                inj_by_round[j].setdefault(inj.t, []).append(inj)
                counts = counts_by_round.get(inj.t)
                if counts is None:
                    counts = np.zeros(batch, dtype=np.int64)
                    counts_by_round[inj.t] = counts
                counts[j] += 1
                key = (inj.t, id(inj.nodes))
                group = raw_groups.get(key)
                if group is None:
                    raw_groups[key] = (inj.nodes, {j: 0}, [inj.value])
                else:
                    _, col_pos, vals = group
                    pos = col_pos.get(j)
                    if pos is None:
                        col_pos[j] = len(vals)
                        vals.append(inj.value)
                    else:
                        vals[pos] = max(vals[pos], inj.value)
    groups_by_round: dict[int, list[tuple[IntArray, IntArray, Int64Array]]] = {}
    for (t, _), (nodes, col_pos, vals) in raw_groups.items():
        # col_pos preserves insertion order, so its keys align with vals.
        cols = np.fromiter(col_pos.keys(), dtype=np.int64, count=len(col_pos))
        groups_by_round.setdefault(t, []).append(
            (nodes, cols, np.asarray(vals, dtype=np.int64))
        )
    relay = plan.relay
    if isinstance(relay, np.ndarray):
        relay = np.asarray(relay, dtype=bool)
        if relay.shape != (batch,):
            raise ValueError(f"relay must have shape ({batch},), got {relay.shape}")
    else:
        relay = np.full(batch, bool(relay))
    return initial, inj_by_round, counts_by_round, groups_by_round, relay


class _PlacementGroup:
    """One distinct Byzantine placement inside a batched config group.

    The flooding state stays fused across placements; only adversary
    planning, crash simulation, and the per-column mask applications run
    per group.  ``alive_local``/``sel``/``full`` are refreshed each phase:
    ``alive_local`` holds the group-local indices of the group's trials
    still running (what the adversary protocol calls ``trials``), ``sel``
    their columns in the live trials-as-columns state, and ``full`` whether
    the group currently covers the whole live batch (the common
    single-placement case, which then skips all column slicing).
    """

    __slots__ = (
        "trials",
        "byz",
        "byz_nodes",
        "honest_nodes",
        "adversary",
        "alive_local",
        "sel",
        "full",
        "dec_cols",
        "crash_cols",
        "rng_cols",
    )

    def __init__(self, trials: Int64Array, byz: BoolArray, adversary: Adversary) -> None:
        self.trials = trials
        self.byz = byz
        self.byz_nodes = np.flatnonzero(byz)
        self.honest_nodes = np.flatnonzero(~byz)
        self.adversary = adversary
        self.alive_local: IntArray = trials
        # Phase-refreshed slots (columns assigned before every use, so the
        # None sentinels never escape the engine loop).
        self.sel: Any = None
        self.full = True
        # Phase-constant column views (decided/crashed/rngs restricted to
        # the group's live columns), refreshed once per phase — only the
        # colors slice changes per subphase.
        self.dec_cols: Any = None
        self.crash_cols: Any = None
        self.rng_cols: tuple[np.random.Generator, ...] = ()


def _placement_groups(
    adversary_factory: AdversarySpec, byz_bn: BoolArray
) -> list["_PlacementGroup"]:
    """Sub-group trial columns by distinct placement, one adversary each."""
    group_map: dict[bytes, list[int]] = {}
    for j in range(byz_bn.shape[0]):
        group_map.setdefault(byz_bn[j].tobytes(), []).append(j)
    if len(group_map) > 1 and isinstance(adversary_factory, Adversary):
        raise ValueError(
            "a shared adversary instance cannot drive trials with different "
            "Byzantine placements (binding is per placement); pass a "
            "zero-argument adversary factory instead"
        )
    groups: list[_PlacementGroup] = []
    for idxs in group_map.values():
        trials = np.asarray(idxs, dtype=np.int64)
        byz = np.ascontiguousarray(byz_bn[idxs[0]])
        groups.append(
            _PlacementGroup(trials, byz, _batch_adversary(adversary_factory, len(idxs)))
        )
    return groups


def _run_byzantine_batched_group(
    network: SmallWorldNetwork,
    seeds: list[SeedLike],
    config: CountingConfig,
    adversary_factory: AdversarySpec,
    byz_bn: BoolArray,
    backend: str | None = None,
    kernel: FloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """Batched Algorithm 2: one config, ``B`` seeds, per-trial placements.

    Mirrors the adversarial path of :func:`repro.core.runner.run_counting`
    statement for statement on ``(n, B)`` trials-as-columns matrices:
    per-trial pre-phase crash masks (memoized on placement + claim
    content), the Lemma 16 injection gate, per-trial relay suppression,
    witness-traffic metering from new-record counts, and per-trial early
    exit.  Trials are sub-grouped by distinct placement
    (:class:`_PlacementGroup`); each sub-group's adversary plans its own
    columns while the flooding rounds execute fused over the whole batch.
    Color state starts in int32 and widens to int64 at the first plan
    whose values exceed ``INT32_MAX`` (see the module docstring's dtype
    policy).  Bit-for-bit equal to ``B`` sequential runs (enforced by
    ``tests/core/test_runner_batch.py`` / ``tests/core/test_sweep.py``).
    """
    n, d, k = network.n, network.d, network.k
    batch = len(seeds)
    if batch == 0:
        return []

    color_rngs: list[np.random.Generator] = []
    adv_rngs: list[np.random.Generator] = []
    chan_rngs: list[np.random.Generator] = []
    for seed in seeds:
        root = make_rng(seed)
        color_rng, adv_rng = spawn(root, 2)  # same split as run_counting
        color_rngs.append(color_rng)
        adv_rngs.append(adv_rng)
        if channel is not None:
            chan_rngs.append(spawn(root, 1)[0])  # child 2, channel stream

    groups = _placement_groups(adversary_factory, byz_bn)
    adaptive_groups = [g for g in groups if _is_adaptive(g.adversary)]
    meters = MeterBatch(batch)
    traces = [PhaseTrace() for _ in range(batch)]
    crashed_bn = np.zeros((batch, n), dtype=bool)

    for g in groups:
        g.adversary.bind_batch(
            network, g.byz, [adv_rngs[int(t)] for t in g.trials], config
        )
    if config.verification:
        for g in groups:
            claims_list = g.adversary.batch_topology_claims()
            if len(claims_list) != g.trials.shape[0]:
                raise ValueError(
                    f"batch_topology_claims returned {len(claims_list)} claim "
                    f"sets for {g.trials.shape[0]} trials"
                )
            # Built-in strategies lie deterministically, so most batches
            # share one claim set; simulate each distinct set's crashes
            # only once (object identity first, claim content as the
            # fallback key).  The caches are per group, which keys the
            # memo on (placement, claims) — crash results depend on both.
            by_id: dict[int, BoolArray] = {}
            cache: dict[tuple[Any, ...], BoolArray] = {}
            for local, trial in enumerate(g.trials):
                claims = claims_list[local]
                crashed = by_id.get(id(claims))
                if crashed is None:
                    key = _claims_signature(claims)
                    crashed = cache.get(key)
                    if crashed is None:
                        crashed = crash_phase(network, g.byz, claims)
                        cache[key] = crashed
                    by_id[id(claims)] = crashed
                crashed_bn[trial] = crashed
        all_trials = np.arange(batch)
        meters.add_rounds(all_trials, 2)
        if config.count_messages:
            total_ports = int(network.g_indptr[-1])
            meters.add_messages(all_trials, total_ports, ids_each=d)

    if kernel is None:
        kernel = FloodKernel(network.h.indptr, network.h.indices, backend=backend)
    decided = np.full((batch, n), UNDECIDED, dtype=np.int64)
    witness_ball = min(ball_size_bound(d, k, 1), n)
    witness_cap = min(witness_ball, 64)
    honest_uncrashed = ~byz_bn & ~crashed_bn
    alive = np.ones(batch, dtype=bool)
    inj_acc = np.zeros(batch, dtype=np.int64)
    inj_rej = np.zeros(batch, dtype=np.int64)
    round_cost = 1 + (config.verification_round_cost if config.verification else 0)
    # Narrow adversarial state until a plan proves it needs int64.
    state_dtype: type[np.signedinteger[Any]] = np.int32

    for phase in range(1, config.max_phase + 1):
        undecided_all = honest_uncrashed & (decided == UNDECIDED)
        active_before = undecided_all.sum(axis=1)
        if config.stop_when_all_decided:
            alive &= active_before > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive)
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active_before[live]

        live_pos = np.full(batch, -1, dtype=np.int64)
        live_pos[live] = np.arange(b_live)
        for g in groups:
            pos = live_pos[g.trials]
            keep = pos >= 0
            g.alive_local = np.flatnonzero(keep)
            g.sel = pos[keep]
            g.full = g.sel.shape[0] == b_live

        # One stream read per trial per phase (see _run_batched_group): the
        # undecided set is fixed across a phase's subphases, so a single
        # geometric draw of ``n_sub * count`` values replays the sequential
        # engine's per-subphase draws exactly.
        phase_draws: list[Int64Array | None] = []
        for row, trial in enumerate(live):
            count = int(counts[row])
            if count:
                draws = sample_colors(color_rngs[trial], n_sub * count)
                phase_draws.append(draws.reshape(n_sub, count))
            else:
                phase_draws.append(None)

        crashed_nb = np.ascontiguousarray(crashed_bn[live].T)
        any_crash = bool(crashed_nb.any())
        decided_nb = np.ascontiguousarray(decided[live].T)
        colors = np.zeros((n, b_live), dtype=state_dtype)
        cur = np.empty((n, b_live), dtype=state_dtype)
        sent = np.empty((n, b_live), dtype=state_dtype)
        prev_kt = np.empty((n, b_live), dtype=state_dtype)
        recv = np.empty((n, b_live), dtype=state_dtype)
        k_last = np.empty((n, b_live), dtype=state_dtype)
        flag_continue = np.zeros((n, b_live), dtype=bool)
        phase_inj_acc = np.zeros(b_live, dtype=np.int64)
        phase_inj_rej = np.zeros(b_live, dtype=np.int64)
        msg_senders = np.zeros(b_live, dtype=np.int64)
        msg_records = np.zeros(b_live, dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            chan = ChannelState(
                channel,
                [(row, 0, n, chan_rngs[int(c)]) for row, c in enumerate(live)],
            )
        traffic_nb = (
            np.zeros((n, b_live), dtype=np.int64) if adaptive_groups else None
        )
        live_rngs = tuple(adv_rngs[t] for t in live)
        for g in groups:
            if g.full:
                g.dec_cols, g.crash_cols, g.rng_cols = decided_nb, crashed_nb, live_rngs
            else:
                g.dec_cols = decided_nb[:, g.sel]
                g.crash_cols = crashed_nb[:, g.sel]
                g.rng_cols = tuple(live_rngs[int(c)] for c in g.sel)

        for sub in range(1, n_sub + 1):
            # --- draw colors (undecided honest nodes only) ---------------
            colors.fill(0)
            for row, _trial in enumerate(live):
                draws = phase_draws[row]
                if draws is not None:
                    colors[und[row], row] = draws[sub - 1]

            # --- per-placement adversary plans, merged to batch form -----
            initial_apps: list[tuple[IntArray, IntArray, Int64Array]] = []
            counts_by_round: dict[int, Int64Array] = {}
            groups_by_round: dict[int, list[tuple[IntArray, IntArray, Int64Array]]] = {}
            suppress_pairs: list[tuple[IntArray, IntArray]] = []
            suppressed_inj: dict[int, dict[int, list[Injection]]] = {}
            plan_max = 0
            plan_min = 0
            for g in groups:
                if g.byz_nodes.size == 0 or g.sel.shape[0] == 0:
                    continue
                sel = g.sel
                g_colors = (
                    colors[g.honest_nodes]
                    if g.full
                    else colors[np.ix_(g.honest_nodes, sel)]
                )
                state = BatchSubphaseState(
                    phase=phase,
                    subphase=sub,
                    rounds=phase,
                    k=k,
                    network=network,
                    byz_nodes=g.byz_nodes,
                    trials=g.alive_local,
                    honest_colors=g_colors,
                    decided_phase=g.dec_cols,
                    crashed=g.crash_cols,
                    rngs=g.rng_cols,
                )
                plan = g.adversary.batch_subphase_plan(state)
                (
                    initial_g,
                    inj_rounds_g,
                    counts_g,
                    groups_g,
                    relay_g,
                ) = _normalize_batch_plan(plan, g.byz_nodes.shape[0], sel.shape[0])
                # Schedules reuse node arrays across injections and trials;
                # check each distinct array against the group's Byzantine
                # set once (per group: membership depends on the placement).
                checked: set[int] = set()
                for by_round in inj_rounds_g:
                    for injs in by_round.values():
                        for inj in injs:
                            if id(inj.nodes) not in checked:
                                checked.add(id(inj.nodes))
                                inj.require_byzantine(g.byz)
                if initial_g is not None:
                    initial_apps.append((g.byz_nodes, sel, initial_g))
                    if initial_g.size:
                        plan_max = max(plan_max, int(initial_g.max()))
                        plan_min = min(plan_min, int(initial_g.min()))
                for t, cnts in counts_g.items():
                    acc = counts_by_round.get(t)
                    if acc is None:
                        acc = np.zeros(b_live, dtype=np.int64)
                        counts_by_round[t] = acc
                    acc[sel] += cnts
                for t, lst in groups_g.items():
                    merged = groups_by_round.setdefault(t, [])
                    for nodes, cols, vals in lst:
                        merged.append((nodes, sel[cols], vals))
                        if vals.size:
                            plan_max = max(plan_max, int(vals.max()))
                off_local = np.flatnonzero(~relay_g)
                if off_local.size:
                    suppress_pairs.append((g.byz_nodes, sel[off_local]))
                    for j_local in off_local:
                        by_round = inj_rounds_g[int(j_local)]
                        if by_round:
                            suppressed_inj[int(sel[int(j_local)])] = by_round

            if (
                plan_max > _INT32_MAX or plan_min < _INT32_MIN
            ) and state_dtype == np.int32:
                # Widen lazily, for the rest of the run: the only live
                # color state here is ``colors`` (``cur``/``prev_kt`` are
                # rebuilt below), so one astype converts it exactly.
                state_dtype = np.int64
                colors = colors.astype(np.int64)
                cur = np.empty((n, b_live), dtype=np.int64)
                sent = np.empty_like(cur)
                prev_kt = np.empty_like(cur)
                recv = np.empty_like(cur)
                k_last = np.empty_like(cur)

            np.copyto(cur, colors)
            for nodes_g, sel_g, initial_g in initial_apps:
                cur[np.ix_(nodes_g, sel_g)] = initial_g

            prev_kt.fill(0)
            for t in range(1, phase + 1):
                # --- adversary injections (Lemma 16 gate) ----------------
                accept = not (config.verification and t > k - 1)
                inj_counts = counts_by_round.get(t)
                if inj_counts is not None:
                    if accept:
                        phase_inj_acc += inj_counts
                        # One masked 2-D maximum applies a whole round's
                        # injections for every trial (the per-trial loop
                        # is only revisited for relay-suppression below).
                        for nodes, cols, vals in groups_by_round[t]:
                            ix = np.ix_(nodes, cols)
                            cur[ix] = np.maximum(cur[ix], vals[None, :])
                    else:
                        phase_inj_rej += inj_counts

                # --- transmit --------------------------------------------
                np.copyto(sent, cur)
                if any_crash:
                    sent[crashed_nb] = 0
                for nodes_g, cols_g in suppress_pairs:
                    sent[np.ix_(nodes_g, cols_g)] = 0
                if accept and suppressed_inj:
                    for col, by_round in suppressed_inj.items():
                        for inj in by_round.get(t, ()):
                            sent[inj.nodes, col] = inj.value

                # --- receive ---------------------------------------------
                kernel.neighbor_max_stacked(sent, out=recv, channel=chan)
                if any_crash:
                    recv[crashed_nb] = 0
                if traffic_nb is not None:
                    # Attempted (pre-channel) sends: what an observer of
                    # the medium's input would meter.
                    traffic_nb += sent != 0

                # --- accounting (before the running-max update eats the
                # new-record evidence) ------------------------------------
                if config.count_messages:
                    msg_senders += np.count_nonzero(sent, axis=0)
                    if config.verification:
                        msg_records += np.count_nonzero(recv > cur, axis=0)

                if t == phase:
                    np.copyto(k_last, recv)
                else:
                    np.maximum(prev_kt, recv, out=prev_kt)
                np.maximum(cur, recv, out=cur)
                if any_crash:
                    cur[crashed_nb] = 0

            np.logical_or(
                flag_continue,
                (k_last > prev_kt) & (k_last > threshold),
                out=flag_continue,
            )

            # --- between-subphase adaptation (mobility, re-planning) -----
            if traffic_nb is not None:
                relocated = False
                for g in adaptive_groups:
                    if g.sel.shape[0] == 0:
                        continue
                    mask = g.adversary.batch_adapt(
                        BatchAdaptationState(
                            phase=phase,
                            subphase=sub,
                            network=network,
                            byz_nodes=g.byz_nodes,
                            trials=g.alive_local,
                            traffic=(
                                traffic_nb if g.full else traffic_nb[:, g.sel]
                            ),
                            rngs=g.rng_cols,
                        )
                    )
                    if mask is not None:
                        new_byz = _adapted_mask(mask, n)
                        g.byz = new_byz
                        g.byz_nodes = np.flatnonzero(new_byz)
                        g.honest_nodes = np.flatnonzero(~new_byz)
                        byz_bn[g.trials] = new_byz
                        relocated = True
                if relocated:
                    # Future phases read the moved placement; this phase's
                    # draw schedule stays fixed (see module docstring).
                    honest_uncrashed = ~byz_bn & ~crashed_bn
                traffic_nb.fill(0)

        # Per-round message/round charges are additive, so the phase total
        # factors out of the round loop (witness messages cost 2 queries
        # of 1 ID each per new record, capped at 64 witnesses).
        if config.count_messages:
            meters.add_messages(live, msg_senders * d)
            if config.verification:
                meters.add_messages(live, 2 * msg_records * witness_cap, ids_each=1)
        meters.add_rounds(live, n_sub * phase * round_cost)
        inj_acc[live] += phase_inj_acc
        inj_rej[live] += phase_inj_rej

        newly = und & ~flag_continue.T
        rows = decided[live]
        rows[newly] = phase
        decided[live] = rows
        if config.record_phase_trace:
            newly_counts = newly.sum(axis=1)
            for row, trial in enumerate(live):
                traces[trial].append(
                    PhaseRecord(
                        phase=phase,
                        subphases=n_sub,
                        flooding_rounds=n_sub * phase,
                        newly_decided=int(newly_counts[row]),
                        active_before=int(counts[row]),
                        injections_accepted=int(phase_inj_acc[row]),
                        injections_rejected=int(phase_inj_rej[row]),
                    )
                )
        if config.stop_when_all_decided and not (
            honest_uncrashed & (decided == UNDECIDED)
        ).any():
            break

    return [
        CountingResult(
            n=n,
            d=d,
            k=k,
            decided_phase=decided[b].copy(),
            crashed=crashed_bn[b].copy(),
            byz=byz_bn[b].copy(),
            meter=meters.meter(b),
            trace=traces[b],
            injections_accepted=int(inj_acc[b]),
            injections_rejected=int(inj_rej[b]),
        )
        for b in range(batch)
    ]


# ----------------------------------------------------------------------
# Network-axis batching (padded multi-network trials-as-columns)
# ----------------------------------------------------------------------


def run_counting_multinet(
    networks: Sequence[SmallWorldNetwork],
    seeds: Sequence[SeedLike],
    config: CountingConfig | Sequence[CountingConfig] | None = None,
    adversary_factory: Callable[[], Adversary] | Adversary | None = None,
    byz_mask: Sequence[AnyArray | None] | None = None,
    backend: str | None = None,
    kernel: MultiFloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> BatchCountingResult:
    """Run independent counting trials on *per-trial networks*, batched.

    The network-axis extension of :func:`run_counting_batch`: trial ``i``
    runs on ``networks[i]``, and trials on different graphs — including
    graphs of different sizes — fuse into one padded trials-as-columns
    batch (see the module docstring's network-axis section).  Every trial
    is bit-for-bit equal to the per-network ``run_counting_batch`` /
    sequential ``run_counting`` call it replaces.

    Parameters
    ----------
    networks:
        One network per trial (``len(networks) == len(seeds)``); repeats
        of the same object share one kernel.  All networks must have the
        same degree ``d`` — the phase schedule is ``d``-dependent, so
        heterogeneous degrees cannot share a fused round loop.
    seeds, config, adversary_factory:
        As in :func:`run_counting_batch`.
    byz_mask:
        ``None`` (no Byzantine nodes) or a length-``B`` sequence with one
        entry per trial: an ``(n_i,)`` mask over *that trial's* network,
        or ``None`` for an empty placement.  A shared ``(n,)`` mask is
        meaningless across sizes and therefore not accepted here.
    backend:
        As in :func:`run_counting_batch`.  ``None`` additionally adopts a
        ``kernel_backend`` attribute shipped on the ``networks`` container
        (:class:`repro.graphs.shared.NetworkTuple`), so sharded workers
        inherit the sweep-level choice.
    kernel:
        A pre-built :class:`~repro.sim.flood.MultiFloodKernel` over the
        *distinct* networks of this batch (first-appearance order), reused
        across calls by the resident churn engine.  Mutually exclusive
        with ``backend``; member adjacencies are validated against the
        networks eagerly.
    channel:
        As in :func:`run_counting_batch`.  ``None`` additionally adopts a
        ``channel`` attribute shipped on the ``networks`` container
        (:class:`repro.graphs.shared.NetworkTuple`), so sharded workers
        inherit the sweep-level channel the way they inherit the backend.
    """
    if kernel is not None and backend is not None:
        raise ValueError(
            "pass either backend or a pre-built kernel, not both (the "
            "kernel already carries its backend)"
        )
    if backend is None and kernel is None:
        backend = getattr(networks, "kernel_backend", None)
    if channel is None:
        channel = getattr(networks, "channel", None)
    channel = _normalize_channel(channel)
    networks = list(networks)
    seeds = list(seeds)
    batch = len(seeds)
    if len(networks) != batch:
        raise ValueError(
            f"got {len(networks)} networks for {batch} seeds; provide one "
            "network per trial"
        )
    if batch == 0:
        return BatchCountingResult([])

    nets: list[SmallWorldNetwork] = []
    net_pos: dict[int, int] = {}
    net_of = np.empty(batch, dtype=np.int64)
    for i, net in enumerate(networks):
        pos = net_pos.get(id(net))
        if pos is None:
            pos = len(nets)
            net_pos[id(net)] = pos
            nets.append(net)
        net_of[i] = pos
    degrees = {int(net.d) for net in nets}
    if len(degrees) > 1:
        raise ValueError(
            "all networks in one multi-network batch must share the degree d "
            f"(the phase schedule is d-dependent); got d in {sorted(degrees)}"
        )
    sizes = [int(net.n) for net in nets]

    masks = _normalize_multinet_masks(byz_mask, batch, net_of, sizes)
    if adversary_factory is None and masks is not None:
        if any(m.any() for m in masks):
            raise ValueError("byz_mask given without an adversary_factory")
        masks = None

    if kernel is not None:
        if len(kernel.kernels) != len(nets):
            raise ValueError(
                f"kernel covers {len(kernel.kernels)} networks but this batch "
                f"has {len(nets)} distinct networks"
            )
        for g, net in enumerate(nets):
            _check_kernel_csr(kernel.kernels[g], net, f"kernel.kernels[{g}]")

    if len(nets) == 1:
        # One distinct graph: the single-network engine is this exact
        # computation without padding.
        return run_counting_batch(
            nets[0],
            seeds,
            config=config,
            adversary_factory=adversary_factory,
            byz_mask=masks,
            backend=backend,
            kernel=kernel.kernels[0] if kernel is not None else None,
            channel=channel,
        )

    configs = _normalize_configs(config, batch)
    results: list[CountingResult | None] = [None] * batch
    for cfg, trial_ids in _group_by_config(configs).items():
        if adversary_factory is not None:
            group_masks = (
                [np.zeros(sizes[int(net_of[i])], dtype=bool) for i in trial_ids]
                if masks is None
                else [masks[i] for i in trial_ids]
            )
            # Network-major, placement-second ordering keeps each
            # (network, placement) sub-group's columns contiguous.
            order = sorted(
                range(len(trial_ids)),
                key=lambda j: (int(net_of[trial_ids[j]]), group_masks[j].tobytes()),
            )
            ids = [trial_ids[j] for j in order]
            group = _run_multinet_byzantine_group(
                nets,
                net_of[ids],
                [seeds[i] for i in ids],
                cfg,
                adversary_factory,
                [group_masks[j] for j in order],
                backend=backend,
                kernel=kernel,
                channel=channel,
            )
        else:
            order = sorted(
                range(len(trial_ids)), key=lambda j: int(net_of[trial_ids[j]])
            )
            ids = [trial_ids[j] for j in order]
            group = _run_multinet_group(
                nets, net_of[ids], [seeds[i] for i in ids], cfg, backend=backend,
                kernel=kernel, channel=channel,
            )
        for i, res in zip(ids, group, strict=True):
            results[i] = res
    return BatchCountingResult(results)  # type: ignore[arg-type]


def _normalize_multinet_masks(
    byz_mask: Any, batch: int, net_of: Int64Array, sizes: list[int]
) -> list[BoolArray] | None:
    """Normalize per-trial multi-network masks (each over its own ``n_i``)."""
    if byz_mask is None:
        return None
    if isinstance(byz_mask, np.ndarray) and byz_mask.ndim == 1:
        raise ValueError(
            "a single shared mask cannot span a multi-network batch; provide "
            "one (n_i,) mask (or None) per trial"
        )
    masks_in = list(byz_mask)
    if len(masks_in) != batch:
        raise ValueError(
            f"got {len(masks_in)} placement masks for {batch} seeds; provide "
            "one (n_i,) mask (or None) per trial"
        )
    masks: list[BoolArray] = []
    for i, m in enumerate(masks_in):
        n_i = sizes[int(net_of[i])]
        if m is None:
            masks.append(np.zeros(n_i, dtype=bool))
            continue
        arr = np.asarray(m, dtype=bool)
        if arr.shape != (n_i,):
            raise ValueError(
                f"trial {i}'s placement mask must have shape ({n_i},) to match "
                f"its network, got {arr.shape}"
            )
        masks.append(arr)
    return masks


def _active_rows(
    net_of: Int64Array, sizes: list[int], n_pad: int
) -> tuple[Int64Array, BoolArray]:
    """Per-trial active lengths and the ``(B, n_pad)`` live-prefix mask."""
    n_act = np.asarray([sizes[int(g)] for g in net_of], dtype=np.int64)
    act_bn = np.arange(n_pad)[None, :] < n_act[:, None]
    return n_act, act_bn


def _run_multinet_group(
    nets: list[SmallWorldNetwork],
    net_of: Int64Array,
    seeds: list[SeedLike],
    config: CountingConfig,
    backend: str | None = None,
    kernel: MultiFloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """Padded multi-network Algorithm 1: one config, ``B`` (network, seed)
    trials as columns.

    Mirrors :func:`_run_batched_group` with state padded to the largest
    ``n``: a per-trial active-length vector restricts decided counting,
    color draws, and saturation/message accounting to each column's live
    prefix, and the flooding rounds dispatch through
    :class:`~repro.sim.flood.MultiFloodKernel`, which zeroes padding rows
    so they never win a max.  Bit-for-bit equal to per-network batched
    (hence sequential) runs.
    """
    d = nets[0].d
    batch = len(seeds)
    sizes = [int(net.n) for net in nets]
    n_pad = max(sizes)
    n_act, act_bn = _active_rows(net_of, sizes, n_pad)

    color_rngs: list[np.random.Generator] = []
    chan_rngs: list[np.random.Generator] = []
    for seed in seeds:
        root = make_rng(seed)
        color_rng, _adv_rng = spawn(root, 2)  # same split as run_counting
        color_rngs.append(color_rng)
        if channel is not None:
            chan_rngs.append(spawn(root, 1)[0])  # child 2, channel stream

    mkernel = kernel if kernel is not None else MultiFloodKernel(nets, backend=backend)
    decided = np.full((batch, n_pad), UNDECIDED, dtype=np.int64)
    meters = MeterBatch(batch)
    traces = [PhaseTrace() for _ in range(batch)]
    alive = np.ones(batch, dtype=bool)

    for phase in range(1, config.max_phase + 1):
        undecided_all = act_bn & (decided == UNDECIDED)
        active_before = undecided_all.sum(axis=1)
        if config.stop_when_all_decided:
            alive &= active_before > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive)
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active_before[live]
        n_act_live = n_act[live]
        all_undecided = counts == n_act_live
        thr_floor = int(np.floor(threshold))
        plan = mkernel.column_plan(net_of[live])

        phase_draws: list[Int64Array | None] = []
        for row, trial in enumerate(live):
            count = int(counts[row])
            if count:
                draws = sample_colors(color_rngs[trial], n_sub * count)
                phase_draws.append(draws.reshape(n_sub, count))
            else:
                phase_draws.append(None)

        colors_bn = np.zeros((b_live, n_pad), dtype=np.int32)
        cur_t = np.empty((n_pad, b_live), dtype=np.int32)
        prev_t = np.zeros((n_pad, b_live), dtype=np.int32)
        recv_t = np.empty((n_pad, b_live), dtype=np.int32)
        k_last_t = np.empty((n_pad, b_live), dtype=np.int32)
        flag_continue = np.zeros((n_pad, b_live), dtype=bool)
        senders = np.zeros(b_live, dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            # Slots cover each column's live prefix only, so a trial's
            # draws are sized by its own network — identical to what its
            # per-network batch would consume — and padding stays zero.
            chan = ChannelState(
                channel,
                [
                    (row, 0, int(n_act_live[row]), chan_rngs[int(c)])
                    for row, c in enumerate(live)
                ],
            )

        for sub in range(n_sub):
            for row, _trial in enumerate(live):
                draws = phase_draws[row]
                if draws is None:
                    continue
                if all_undecided[row]:
                    # The whole live prefix draws; padding stays 0.
                    colors_bn[row, : int(n_act_live[row])] = draws[sub]
                else:
                    colors_bn[row, und[row]] = draws[sub]
            np.copyto(cur_t, colors_bn.T)
            if chan is not None:
                prev_t.fill(0)

            senders.fill(0)
            saturated = False
            for t in range(1, phase + 1):
                if config.count_messages:
                    if saturated:
                        senders += n_act_live
                    else:
                        # Padding rows are identically 0, so a full-column
                        # nonzero count equals the live-prefix count.
                        nonzero = np.count_nonzero(cur_t, axis=0)
                        senders += nonzero
                        saturated = bool((nonzero == n_act_live).all())
                if chan is not None:
                    # Lossy path: explicit running-max prev (see
                    # _run_batched_group).
                    if t == phase:
                        mkernel.neighbor_max_stacked(
                            cur_t, plan, out=k_last_t, channel=chan
                        )
                    else:
                        mkernel.neighbor_max_stacked(
                            cur_t, plan, out=recv_t, channel=chan
                        )
                        np.maximum(prev_t, recv_t, out=prev_t)
                        np.maximum(cur_t, recv_t, out=cur_t)
                elif t == phase:
                    mkernel.neighbor_max_stacked(cur_t, plan, out=k_last_t)
                elif t == phase - 1:
                    mkernel.neighbor_max_stacked(cur_t, plan, out=prev_t)
                    np.maximum(cur_t, prev_t, out=cur_t)
                else:
                    mkernel.neighbor_max_stacked(cur_t, plan, out=recv_t)
                    np.maximum(cur_t, recv_t, out=cur_t)
            if config.count_messages:
                meters.add_messages(live, senders * d)
            np.logical_or(
                flag_continue,
                (k_last_t > prev_t) & (k_last_t > thr_floor),
                out=flag_continue,
            )
        meters.add_rounds(live, n_sub * phase)

        newly = und & ~flag_continue.T
        rows = decided[live]
        rows[newly] = phase
        decided[live] = rows
        if config.record_phase_trace:
            newly_counts = newly.sum(axis=1)
            for row, trial in enumerate(live):
                traces[trial].append(
                    PhaseRecord(
                        phase=phase,
                        subphases=n_sub,
                        flooding_rounds=n_sub * phase,
                        newly_decided=int(newly_counts[row]),
                        active_before=int(counts[row]),
                        injections_accepted=0,
                        injections_rejected=0,
                    )
                )
        if config.stop_when_all_decided and not (
            act_bn & (decided == UNDECIDED)
        ).any():
            break

    out: list[CountingResult] = []
    for b in range(batch):
        net = nets[int(net_of[b])]
        n_b = int(n_act[b])
        out.append(
            CountingResult(
                n=n_b,
                d=d,
                k=net.k,
                decided_phase=decided[b, :n_b].copy(),
                crashed=np.zeros(n_b, dtype=bool),
                byz=np.zeros(n_b, dtype=bool),
                meter=meters.meter(b),
                trace=traces[b],
                injections_accepted=0,
                injections_rejected=0,
            )
        )
    return out


class _NetPlacementGroup(_PlacementGroup):
    """A :class:`_PlacementGroup` bound to its own network in a
    multi-network batch (carries the graph and its ``(n, k)``)."""

    __slots__ = ("network", "n", "k")

    def __init__(
        self,
        trials: Int64Array,
        byz: BoolArray,
        adversary: Adversary,
        network: SmallWorldNetwork,
    ) -> None:
        super().__init__(trials, byz, adversary)
        self.network = network
        self.n = int(network.n)
        self.k = int(network.k)


def _multinet_placement_groups(
    adversary_factory: AdversarySpec,
    nets: list[SmallWorldNetwork],
    net_of: Int64Array,
    masks: list[BoolArray],
) -> list[_NetPlacementGroup]:
    """Sub-group trials by (network, placement), one bound adversary each."""
    group_map: dict[tuple[int, bytes], list[int]] = {}
    for j in range(len(masks)):
        group_map.setdefault(
            (int(net_of[j]), masks[j].tobytes()), []
        ).append(j)
    if len(group_map) > 1 and isinstance(adversary_factory, Adversary):
        raise ValueError(
            "a shared adversary instance cannot drive trials with different "
            "networks or Byzantine placements (binding is per placement); "
            "pass a zero-argument adversary factory instead"
        )
    groups: list[_NetPlacementGroup] = []
    for (g, _), idxs in group_map.items():
        trials = np.asarray(idxs, dtype=np.int64)
        byz = np.ascontiguousarray(masks[idxs[0]])
        groups.append(
            _NetPlacementGroup(
                trials, byz, _batch_adversary(adversary_factory, len(idxs)), nets[g]
            )
        )
    return groups


def _col_block(mat: AnyArray, sel: IntArray, n_rows: int) -> AnyArray:
    """``mat[:n_rows, sel]`` — a view when ``sel`` is one contiguous run."""
    if sel.shape[0] and int(sel[-1]) - int(sel[0]) + 1 == sel.shape[0]:
        return mat[:n_rows, int(sel[0]) : int(sel[-1]) + 1]
    return mat[:n_rows][:, sel]


def _run_multinet_byzantine_group(
    nets: list[SmallWorldNetwork],
    net_of: Int64Array,
    seeds: list[SeedLike],
    config: CountingConfig,
    adversary_factory: AdversarySpec,
    masks: list[BoolArray],
    backend: str | None = None,
    kernel: MultiFloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """Padded multi-network Algorithm 2: one config, per-trial networks and
    placements.

    Mirrors :func:`_run_byzantine_batched_group` on a padded
    ``(n_pad, B)`` state: trials sub-group by (network, placement) — each
    group's adversary binds to its own graph, simulates its own pre-phase
    crashes, and plans only its own columns — while the flooding rounds
    stay fused through the masked multi-network kernel.  Per-trial
    ``(n_i, k_i)`` drive the Lemma 16 gate and the witness-traffic cap, so
    crash masks, the injection gate, and witness metering all apply over
    each column's live prefix only.  Bit-for-bit equal to per-network
    batched (hence sequential) runs.
    """
    d = nets[0].d
    batch = len(seeds)
    sizes = [int(net.n) for net in nets]
    n_pad = max(sizes)
    n_act, act_bn = _active_rows(net_of, sizes, n_pad)
    k_vec = np.asarray([nets[int(g)].k for g in net_of], dtype=np.int64)
    witness_cap = np.asarray(
        [
            min(ball_size_bound(d, nets[int(g)].k, 1), sizes[int(g)], 64)
            for g in net_of
        ],
        dtype=np.int64,
    )

    color_rngs: list[np.random.Generator] = []
    adv_rngs: list[np.random.Generator] = []
    chan_rngs: list[np.random.Generator] = []
    for seed in seeds:
        root = make_rng(seed)
        color_rng, adv_rng = spawn(root, 2)  # same split as run_counting
        color_rngs.append(color_rng)
        adv_rngs.append(adv_rng)
        if channel is not None:
            chan_rngs.append(spawn(root, 1)[0])  # child 2, channel stream

    groups = _multinet_placement_groups(adversary_factory, nets, net_of, masks)
    adaptive_groups = [g for g in groups if _is_adaptive(g.adversary)]
    meters = MeterBatch(batch)
    traces = [PhaseTrace() for _ in range(batch)]
    byz_bn = np.zeros((batch, n_pad), dtype=bool)
    crashed_bn = np.zeros((batch, n_pad), dtype=bool)
    for j, mask in enumerate(masks):
        byz_bn[j, : mask.shape[0]] = mask

    for g in groups:
        g.adversary.bind_batch(
            g.network, g.byz, [adv_rngs[int(t)] for t in g.trials], config
        )
    if config.verification:
        for g in groups:
            claims_list = g.adversary.batch_topology_claims()
            if len(claims_list) != g.trials.shape[0]:
                raise ValueError(
                    f"batch_topology_claims returned {len(claims_list)} claim "
                    f"sets for {g.trials.shape[0]} trials"
                )
            by_id: dict[int, BoolArray] = {}
            cache: dict[tuple[Any, ...], BoolArray] = {}
            for local, trial in enumerate(g.trials):
                claims = claims_list[local]
                crashed = by_id.get(id(claims))
                if crashed is None:
                    key = _claims_signature(claims)
                    crashed = cache.get(key)
                    if crashed is None:
                        crashed = crash_phase(g.network, g.byz, claims)
                        cache[key] = crashed
                    by_id[id(claims)] = crashed
                crashed_bn[trial, : g.n] = crashed
        all_trials = np.arange(batch)
        meters.add_rounds(all_trials, 2)
        if config.count_messages:
            # Pre-phase claim broadcasts cost each trial its own network's
            # port total (d-entry claims on every G edge).
            ports = np.asarray(
                [int(nets[int(g_)].g_indptr[-1]) for g_ in net_of], dtype=np.int64
            )
            meters.add_messages(all_trials, ports, ids_each=d)

    mkernel = kernel if kernel is not None else MultiFloodKernel(nets, backend=backend)
    decided = np.full((batch, n_pad), UNDECIDED, dtype=np.int64)
    honest_uncrashed = act_bn & ~byz_bn & ~crashed_bn
    alive = np.ones(batch, dtype=bool)
    inj_acc = np.zeros(batch, dtype=np.int64)
    inj_rej = np.zeros(batch, dtype=np.int64)
    round_cost = 1 + (config.verification_round_cost if config.verification else 0)
    state_dtype: type[np.signedinteger[Any]] = np.int32

    for phase in range(1, config.max_phase + 1):
        undecided_all = honest_uncrashed & (decided == UNDECIDED)
        active_before = undecided_all.sum(axis=1)
        if config.stop_when_all_decided:
            alive &= active_before > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive)
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active_before[live]
        k_live = k_vec[live]
        plan = mkernel.column_plan(net_of[live])

        live_pos = np.full(batch, -1, dtype=np.int64)
        live_pos[live] = np.arange(b_live)
        for g in groups:
            pos = live_pos[g.trials]
            keep = pos >= 0
            g.alive_local = np.flatnonzero(keep)
            g.sel = pos[keep]
            g.full = g.sel.shape[0] == b_live

        phase_draws: list[Int64Array | None] = []
        for row, trial in enumerate(live):
            count = int(counts[row])
            if count:
                draws = sample_colors(color_rngs[trial], n_sub * count)
                phase_draws.append(draws.reshape(n_sub, count))
            else:
                phase_draws.append(None)

        crashed_nb = np.ascontiguousarray(crashed_bn[live].T)
        any_crash = bool(crashed_nb.any())
        decided_nb = np.ascontiguousarray(decided[live].T)
        colors = np.zeros((n_pad, b_live), dtype=state_dtype)
        cur = np.empty((n_pad, b_live), dtype=state_dtype)
        sent = np.empty((n_pad, b_live), dtype=state_dtype)
        prev_kt = np.empty((n_pad, b_live), dtype=state_dtype)
        recv = np.empty((n_pad, b_live), dtype=state_dtype)
        k_last = np.empty((n_pad, b_live), dtype=state_dtype)
        flag_continue = np.zeros((n_pad, b_live), dtype=bool)
        phase_inj_acc = np.zeros(b_live, dtype=np.int64)
        phase_inj_rej = np.zeros(b_live, dtype=np.int64)
        msg_senders = np.zeros(b_live, dtype=np.int64)
        msg_records = np.zeros(b_live, dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            chan = ChannelState(
                channel,
                [
                    (row, 0, int(n_act[int(c)]), chan_rngs[int(c)])
                    for row, c in enumerate(live)
                ],
            )
        traffic_nb = (
            np.zeros((n_pad, b_live), dtype=np.int64) if adaptive_groups else None
        )
        live_rngs = tuple(adv_rngs[t] for t in live)
        for g in groups:
            if g.full and g.n == n_pad:
                g.dec_cols, g.crash_cols, g.rng_cols = decided_nb, crashed_nb, live_rngs
            else:
                g.dec_cols = _col_block(decided_nb, g.sel, g.n)
                g.crash_cols = _col_block(crashed_nb, g.sel, g.n)
                g.rng_cols = (
                    live_rngs
                    if g.full
                    else tuple(live_rngs[int(c)] for c in g.sel)
                )

        for sub in range(1, n_sub + 1):
            # --- draw colors (undecided honest nodes only) ---------------
            colors.fill(0)
            for row, _trial in enumerate(live):
                draws = phase_draws[row]
                if draws is not None:
                    colors[und[row], row] = draws[sub - 1]

            # --- per-group adversary plans, merged to batch form ---------
            initial_apps: list[tuple[IntArray, IntArray, Int64Array]] = []
            counts_by_round: dict[int, Int64Array] = {}
            groups_by_round: dict[int, list[tuple[IntArray, IntArray, Int64Array]]] = {}
            suppress_pairs: list[tuple[IntArray, IntArray]] = []
            suppressed_inj: dict[int, dict[int, list[Injection]]] = {}
            plan_max = 0
            plan_min = 0
            for g in groups:
                if g.byz_nodes.size == 0 or g.sel.shape[0] == 0:
                    continue
                sel = g.sel
                g_colors = _col_block(colors, sel, g.n)[g.honest_nodes]
                state = BatchSubphaseState(
                    phase=phase,
                    subphase=sub,
                    rounds=phase,
                    k=g.k,
                    network=g.network,
                    byz_nodes=g.byz_nodes,
                    trials=g.alive_local,
                    honest_colors=g_colors,
                    decided_phase=g.dec_cols,
                    crashed=g.crash_cols,
                    rngs=g.rng_cols,
                )
                plan_g = g.adversary.batch_subphase_plan(state)
                (
                    initial_g,
                    inj_rounds_g,
                    counts_g,
                    groups_g,
                    relay_g,
                ) = _normalize_batch_plan(plan_g, g.byz_nodes.shape[0], sel.shape[0])
                checked: set[int] = set()
                for by_round in inj_rounds_g:
                    for injs in by_round.values():
                        for inj in injs:
                            if id(inj.nodes) not in checked:
                                checked.add(id(inj.nodes))
                                inj.require_byzantine(g.byz)
                if initial_g is not None:
                    initial_apps.append((g.byz_nodes, sel, initial_g))
                    if initial_g.size:
                        plan_max = max(plan_max, int(initial_g.max()))
                        plan_min = min(plan_min, int(initial_g.min()))
                for t, cnts in counts_g.items():
                    acc = counts_by_round.get(t)
                    if acc is None:
                        acc = np.zeros(b_live, dtype=np.int64)
                        counts_by_round[t] = acc
                    acc[sel] += cnts
                for t, lst in groups_g.items():
                    merged = groups_by_round.setdefault(t, [])
                    for nodes, cols, vals in lst:
                        merged.append((nodes, sel[cols], vals))
                        if vals.size:
                            plan_max = max(plan_max, int(vals.max()))
                off_local = np.flatnonzero(~relay_g)
                if off_local.size:
                    suppress_pairs.append((g.byz_nodes, sel[off_local]))
                    for j_local in off_local:
                        by_round = inj_rounds_g[int(j_local)]
                        if by_round:
                            suppressed_inj[int(sel[int(j_local)])] = by_round

            if (
                plan_max > _INT32_MAX or plan_min < _INT32_MIN
            ) and state_dtype == np.int32:
                state_dtype = np.int64
                colors = colors.astype(np.int64)
                cur = np.empty((n_pad, b_live), dtype=np.int64)
                sent = np.empty_like(cur)
                prev_kt = np.empty_like(cur)
                recv = np.empty_like(cur)
                k_last = np.empty_like(cur)

            np.copyto(cur, colors)
            for nodes_g, sel_g, initial_g in initial_apps:
                cur[np.ix_(nodes_g, sel_g)] = initial_g

            prev_kt.fill(0)
            for t in range(1, phase + 1):
                # --- adversary injections (Lemma 16 gate, per-trial k) ---
                acc_cols: BoolArray | None = None  # None: accept everywhere
                if config.verification:
                    acc_cols = t <= k_live - 1
                acc_all = acc_cols is None or bool(acc_cols.all())
                acc_none = acc_cols is not None and not acc_cols.any()
                inj_counts = counts_by_round.get(t)
                if inj_counts is not None:
                    if acc_all:
                        phase_inj_acc += inj_counts
                        for nodes, cols, vals in groups_by_round[t]:
                            ix = np.ix_(nodes, cols)
                            cur[ix] = np.maximum(cur[ix], vals[None, :])
                    elif acc_none:
                        phase_inj_rej += inj_counts
                    else:
                        assert acc_cols is not None
                        phase_inj_acc += np.where(acc_cols, inj_counts, 0)
                        phase_inj_rej += np.where(acc_cols, 0, inj_counts)
                        for nodes, cols, vals in groups_by_round[t]:
                            m = acc_cols[cols]
                            if not m.any():
                                continue
                            if not m.all():
                                cols, vals = cols[m], vals[m]
                            ix = np.ix_(nodes, cols)
                            cur[ix] = np.maximum(cur[ix], vals[None, :])

                # --- transmit --------------------------------------------
                np.copyto(sent, cur)
                if any_crash:
                    sent[crashed_nb] = 0
                for nodes_g, cols_g in suppress_pairs:
                    sent[np.ix_(nodes_g, cols_g)] = 0
                if suppressed_inj and not acc_none:
                    for col, by_round in suppressed_inj.items():
                        if acc_all or (acc_cols is not None and acc_cols[col]):
                            for inj in by_round.get(t, ()):
                                sent[inj.nodes, col] = inj.value

                # --- receive ---------------------------------------------
                mkernel.neighbor_max_stacked(sent, plan, out=recv, channel=chan)
                if any_crash:
                    recv[crashed_nb] = 0
                if traffic_nb is not None:
                    traffic_nb += sent != 0

                # --- accounting (before the running-max update eats the
                # new-record evidence) ------------------------------------
                if config.count_messages:
                    msg_senders += np.count_nonzero(sent, axis=0)
                    if config.verification:
                        msg_records += np.count_nonzero(recv > cur, axis=0)

                if t == phase:
                    np.copyto(k_last, recv)
                else:
                    np.maximum(prev_kt, recv, out=prev_kt)
                np.maximum(cur, recv, out=cur)
                if any_crash:
                    cur[crashed_nb] = 0

            np.logical_or(
                flag_continue,
                (k_last > prev_kt) & (k_last > threshold),
                out=flag_continue,
            )

            # --- between-subphase adaptation (mobility, re-planning) -----
            if traffic_nb is not None:
                relocated = False
                for g in adaptive_groups:
                    if g.sel.shape[0] == 0:
                        continue
                    mask = g.adversary.batch_adapt(
                        BatchAdaptationState(
                            phase=phase,
                            subphase=sub,
                            network=g.network,
                            byz_nodes=g.byz_nodes,
                            trials=g.alive_local,
                            traffic=_col_block(traffic_nb, g.sel, g.n),
                            rngs=g.rng_cols,
                        )
                    )
                    if mask is not None:
                        new_byz = _adapted_mask(mask, g.n)
                        g.byz = new_byz
                        g.byz_nodes = np.flatnonzero(new_byz)
                        g.honest_nodes = np.flatnonzero(~new_byz)
                        for trial in g.trials:
                            byz_bn[int(trial), : g.n] = new_byz
                        relocated = True
                if relocated:
                    honest_uncrashed = act_bn & ~byz_bn & ~crashed_bn
                traffic_nb.fill(0)

        if config.count_messages:
            meters.add_messages(live, msg_senders * d)
            if config.verification:
                meters.add_messages(
                    live, 2 * msg_records * witness_cap[live], ids_each=1
                )
        meters.add_rounds(live, n_sub * phase * round_cost)
        inj_acc[live] += phase_inj_acc
        inj_rej[live] += phase_inj_rej

        newly = und & ~flag_continue.T
        rows = decided[live]
        rows[newly] = phase
        decided[live] = rows
        if config.record_phase_trace:
            newly_counts = newly.sum(axis=1)
            for row, trial in enumerate(live):
                traces[trial].append(
                    PhaseRecord(
                        phase=phase,
                        subphases=n_sub,
                        flooding_rounds=n_sub * phase,
                        newly_decided=int(newly_counts[row]),
                        active_before=int(counts[row]),
                        injections_accepted=int(phase_inj_acc[row]),
                        injections_rejected=int(phase_inj_rej[row]),
                    )
                )
        if config.stop_when_all_decided and not (
            honest_uncrashed & (decided == UNDECIDED)
        ).any():
            break

    out: list[CountingResult] = []
    for b in range(batch):
        net = nets[int(net_of[b])]
        n_b = int(n_act[b])
        out.append(
            CountingResult(
                n=n_b,
                d=d,
                k=net.k,
                decided_phase=decided[b, :n_b].copy(),
                crashed=crashed_bn[b, :n_b].copy(),
                byz=byz_bn[b, :n_b].copy(),
                meter=meters.meter(b),
                trace=traces[b],
                injections_accepted=int(inj_acc[b]),
                injections_rejected=int(inj_rej[b]),
            )
        )
    return out


# ----------------------------------------------------------------------
# Union-stack batching (block-diagonal rectangular network x seed grids)
# ----------------------------------------------------------------------


def run_counting_unionstack(
    networks: Sequence[SmallWorldNetwork],
    seeds: Sequence[int | None],
    config: CountingConfig | Sequence[CountingConfig] | None = None,
    adversary_factory: Callable[[], Adversary] | Adversary | None = None,
    byz_mask: Any = None,
    backend: str | None = None,
    kernel: UnionFloodKernel | None = None,
    channel: ChannelModel | None = None,
) -> BatchCountingResult:
    """Run a rectangular (network x seed) grid as one union-stack batch.

    Every network is a row *block* of one block-diagonal state matrix and
    every seed is a *column* shared by all blocks, so the grid's
    ``G x C`` trials execute with zero padding (see the module docstring's
    union-stack section).  Each trial is bit-for-bit equal to the
    per-network :func:`run_counting_batch` / padded
    :func:`run_counting_multinet` run it replaces.

    Parameters
    ----------
    networks:
        The row blocks, one per network (``G`` entries; re-samples of one
        shape are distinct blocks).  All must share the degree ``d`` —
        the phase schedule is ``d``-dependent — validated eagerly.
    seeds:
        The column axis (``C`` entries).  Each seed is replicated across
        every network's block (trial ``(g, j)`` derives its streams from
        ``make_rng(seeds[j])``), so entries must be ints or ``None`` — a
        ``numpy`` ``Generator`` object cannot be replicated and is
        rejected eagerly with a :class:`TypeError`.
    config:
        A single :class:`CountingConfig` for the whole grid or one per
        *column* (columns sharing a config batch together).
    adversary_factory:
        As in :func:`run_counting_batch`.
    byz_mask:
        ``None`` or a length-``G`` sequence, one entry per network:
        ``None`` (empty placements), a single ``(n_g,)`` mask shared by
        every column, a ``(C, n_g)`` stack, or a length-``C`` sequence of
        per-column masks / Nones.
    backend:
        As in :func:`run_counting_multinet` (``None`` adopts the
        container's ``kernel_backend`` attribute when present).
    kernel:
        A pre-built :class:`~repro.sim.flood.UnionFloodKernel` whose
        block ``g`` is ``networks[g]``'s ``H`` adjacency, reused across
        calls by the resident churn engine.  Mutually exclusive with
        ``backend``; block sizes are validated eagerly.
    channel:
        As in :func:`run_counting_multinet` (``None`` adopts the
        container's ``channel`` attribute when present).  Channel draws
        are per (network, seed) trial, so lossy union runs stay
        bit-for-bit equal to the padded and per-network engines.

    Returns
    -------
    BatchCountingResult
        ``G * C`` per-trial results in network-major order: trial
        ``(g, j)`` is element ``g * C + j`` — the order of the equivalent
        ``run_counting_multinet([net_g for g .. for j ..], ...)`` call.
    """
    if channel is None:
        channel = getattr(networks, "channel", None)
    channel = _normalize_channel(channel)
    nets = list(networks)
    if not nets:
        raise ValueError("run_counting_unionstack needs at least one network")
    degrees = {int(net.d) for net in nets}
    if len(degrees) > 1:
        raise ValueError(
            "all networks in one union-stack batch must share the degree d "
            f"(the phase schedule is d-dependent); got d in {sorted(degrees)}"
        )
    seeds = list(seeds)
    for s in seeds:
        if isinstance(s, np.random.Generator):
            raise TypeError(
                "union-stack seeds must be ints (or None): each seed column "
                "is replicated across every network's row block, and a shared "
                "Generator object would interleave one stream across those "
                "trials; use run_counting_multinet for per-trial Generators"
            )
    cols = len(seeds)
    n_g = len(nets)
    if cols == 0:
        return BatchCountingResult([])

    masks = _normalize_union_masks(byz_mask, nets, cols)
    if adversary_factory is None and masks is not None:
        if any(m.any() for row in masks for m in row):
            raise ValueError("byz_mask given without an adversary_factory")
        masks = None

    if kernel is not None:
        if backend is not None:
            raise ValueError(
                "pass either backend or a pre-built kernel, not both (the "
                "kernel already carries its backend)"
            )
        if kernel.sizes != tuple(int(net.n) for net in nets):
            raise ValueError(
                f"kernel block sizes {kernel.sizes} do not match the "
                f"networks' sizes {tuple(int(net.n) for net in nets)}"
            )
        ukernel = kernel
    else:
        ukernel = _resolve_union_kernel(networks, nets, backend=backend)

    configs = _normalize_configs(config, cols)
    results: list[CountingResult | None] = [None] * (n_g * cols)
    for cfg, col_ids in _group_by_config(configs).items():
        col_seeds = [seeds[j] for j in col_ids]
        if adversary_factory is not None:
            group_masks = (
                [
                    [np.zeros(int(net.n), dtype=bool) for _ in col_ids]
                    for net in nets
                ]
                if masks is None
                else [[masks[g][j] for j in col_ids] for g in range(n_g)]
            )
            group = _run_union_byzantine_group(
                nets, ukernel, col_seeds, cfg, adversary_factory, group_masks,
                channel=channel,
            )
        else:
            group = _run_union_group(nets, ukernel, col_seeds, cfg, channel=channel)
        n_cols = len(col_ids)
        for g in range(n_g):
            for local, j in enumerate(col_ids):
                results[g * cols + j] = group[g * n_cols + local]
    return BatchCountingResult(results)  # type: ignore[arg-type]


def _normalize_union_masks(
    byz_mask: Any, nets: list[SmallWorldNetwork], cols: int
) -> list[list[BoolArray]] | None:
    """Normalize union masks to per-(network, column) ``(n_g,)`` arrays.

    Entry ``g`` of ``byz_mask`` covers network ``g``'s whole block: a
    single ``(n_g,)`` ndarray is shared by every column; a ``(C, n_g)``
    ndarray or any non-ndarray sequence is taken per column.
    """
    if byz_mask is None:
        return None
    if isinstance(byz_mask, np.ndarray) and byz_mask.ndim == 1:
        raise ValueError(
            "a single shared mask cannot span a union-stack batch; provide "
            "one entry per network (an (n_g,) mask, a (C, n_g) stack, a "
            "per-column mask list, or None)"
        )
    entries = list(byz_mask)
    if len(entries) != len(nets):
        raise ValueError(
            f"got {len(entries)} placement entries for {len(nets)} networks; "
            "provide one entry per network"
        )
    out: list[list[BoolArray]] = []
    for g, (net, entry) in enumerate(zip(nets, entries)):
        n_net = int(net.n)
        if entry is None:
            out.append([np.zeros(n_net, dtype=bool)] * cols)
            continue
        if isinstance(entry, np.ndarray):
            arr = np.asarray(entry, dtype=bool)
            if arr.ndim == 1:
                if arr.shape != (n_net,):
                    raise ValueError(
                        f"network {g}'s placement mask must have shape "
                        f"({n_net},), got {arr.shape}"
                    )
                out.append([arr] * cols)
                continue
            if arr.ndim == 2:
                if arr.shape != (cols, n_net):
                    raise ValueError(
                        f"network {g}'s placement stack must have shape "
                        f"({cols}, {n_net}), got {arr.shape}"
                    )
                out.append([np.ascontiguousarray(arr[j]) for j in range(cols)])
                continue
            raise ValueError(
                f"network {g}'s placement entry must be 1-D or 2-D, got "
                f"shape {arr.shape}"
            )
        per_col = list(entry)
        if len(per_col) != cols:
            raise ValueError(
                f"network {g}: got {len(per_col)} per-column masks for "
                f"{cols} seed columns"
            )
        row: list[BoolArray] = []
        for m in per_col:
            if m is None:
                row.append(np.zeros(n_net, dtype=bool))
                continue
            arr = np.asarray(m, dtype=bool)
            if arr.shape != (n_net,):
                raise ValueError(
                    f"network {g}'s placement masks must have shape "
                    f"({n_net},), got {arr.shape}"
                )
            row.append(arr)
        out.append(row)
    return out


def _resolve_union_kernel(
    networks_input: Any, nets: list[SmallWorldNetwork], backend: str | None = None
) -> UnionFloodKernel:
    """Build (or adopt) the block-diagonal union kernel for this batch.

    A pre-concatenated CSR attached to the input container (the
    ``union_csr`` attribute of :class:`repro.graphs.shared.NetworkTuple`,
    shipped through shared memory by ``SharedNetworkPack``) is adopted
    when its block sizes match, so sharded workers skip re-stacking.
    A ``kernel_backend`` attribute on the same container supplies the
    backend when no explicit one is given, so the sweep-level choice
    survives worker-side reconstruction.
    """
    if backend is None:
        backend = getattr(networks_input, "kernel_backend", None)
    shipped = getattr(networks_input, "union_csr", None)
    if shipped is not None:
        sizes, indptr, indices = shipped
        if tuple(int(s) for s in sizes) == tuple(int(net.n) for net in nets):
            return UnionFloodKernel(sizes, indptr, indices, backend=backend)
    return UnionFloodKernel.from_networks(nets, backend=backend)


def _run_union_group(
    nets: list[SmallWorldNetwork],
    ukernel: UnionFloodKernel,
    seeds: list[SeedLike],
    config: CountingConfig,
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """Union-stack Algorithm 1: one config, G network blocks x C columns.

    Mirrors :func:`_run_batched_group` with the node axis widened to the
    union's ``N = sum(n_g)`` rows: every flooding round is one plain
    row-gather over the concatenated CSR, and decided counting,
    saturation/message accounting, and per-trial liveness read the
    per-network row segments.  Bit-for-bit equal to per-network batched
    (hence sequential) runs; trial ``(g, j)`` is result ``g * C + j``.
    """
    d = nets[0].d
    blocks = len(nets)
    cols = len(seeds)
    rows_n = ukernel.n
    offsets = ukernel.offsets
    n_act = np.asarray(ukernel.sizes, dtype=np.int64)  # (G,)

    color_rngs: list[list[np.random.Generator]] = []
    chan_rngs: list[list[np.random.Generator]] = []
    for _g in range(blocks):
        row_rngs: list[np.random.Generator] = []
        crow_rngs: list[np.random.Generator] = []
        for seed in seeds:
            root = make_rng(seed)
            color_rng, _adv_rng = spawn(root, 2)  # same split as run_counting
            row_rngs.append(color_rng)
            if channel is not None:
                crow_rngs.append(spawn(root, 1)[0])  # child 2, channel stream
        color_rngs.append(row_rngs)
        chan_rngs.append(crow_rngs)

    decided = np.full((cols, rows_n), UNDECIDED, dtype=np.int64)
    meters = MeterBatch(blocks * cols)
    traces = [PhaseTrace() for _ in range(blocks * cols)]
    alive = np.ones((blocks, cols), dtype=bool)

    for phase in range(1, config.max_phase + 1):
        undecided_all = decided == UNDECIDED
        active = np.empty((blocks, cols), dtype=np.int64)
        for g in range(blocks):
            active[g] = np.count_nonzero(
                undecided_all[:, offsets[g] : offsets[g + 1]], axis=1
            )
        if config.stop_when_all_decided:
            alive &= active > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive.any(axis=0))
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active[:, live]
        alive_live = alive[:, live]
        all_undecided = counts == n_act[:, None]
        thr_floor = int(np.floor(threshold))
        # Flat (network-major) meter/trace ids of this phase's live trials.
        trial_ids = np.arange(blocks)[:, None] * cols + live[None, :]
        live_ids = trial_ids[alive_live]

        # One stream read per live trial per phase (see _run_batched_group);
        # a trial that left its per-network batch draws nothing.
        phase_draws: list[list[Int64Array | None]] = [
            [None] * b_live for _ in range(blocks)
        ]
        for g in range(blocks):
            for row, col in enumerate(live):
                if not alive_live[g, row]:
                    continue
                count = int(counts[g, row])
                if count:
                    draws = sample_colors(color_rngs[g][int(col)], n_sub * count)
                    phase_draws[g][row] = draws.reshape(n_sub, count)

        colors_cn = np.zeros((b_live, rows_n), dtype=np.int32)
        cur_t = np.empty((rows_n, b_live), dtype=np.int32)
        prev_t = np.zeros((rows_n, b_live), dtype=np.int32)
        recv_t = np.empty((rows_n, b_live), dtype=np.int32)
        k_last_t = np.empty((rows_n, b_live), dtype=np.int32)
        flag_continue = np.zeros((rows_n, b_live), dtype=bool)
        senders = np.zeros((blocks, b_live), dtype=np.int64)
        seg_nz = np.empty((blocks, b_live), dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            # One slot per live (network, seed) cell over its own block
            # segment: a dead cell stops consuming draws exactly when its
            # per-network batch would have dropped the column.
            chan = ChannelState(
                channel,
                [
                    (
                        row,
                        int(offsets[g]),
                        int(offsets[g + 1]),
                        chan_rngs[g][int(col)],
                    )
                    for g in range(blocks)
                    for row, col in enumerate(live)
                    if alive_live[g, row]
                ],
            )

        for sub in range(n_sub):
            for g in range(blocks):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                for row in range(b_live):
                    draws = phase_draws[g][row]
                    if draws is None:
                        continue
                    if all_undecided[g, row]:
                        colors_cn[row, lo:hi] = draws[sub]
                    else:
                        seg = colors_cn[row, lo:hi]
                        seg[und[row, lo:hi]] = draws[sub]
            np.copyto(cur_t, colors_cn.T)
            if chan is not None:
                prev_t.fill(0)

            senders.fill(0)
            saturated = False
            for t in range(1, phase + 1):
                if config.count_messages:
                    if saturated:
                        senders += n_act[:, None]
                    else:
                        nz = ukernel.segment_count_nonzero(cur_t, out=seg_nz)
                        senders += nz
                        # Saturation is per trial (the nonzero set only
                        # grows within a subphase); the shared flag trips
                        # once every live trial's block transmits in full
                        # — dead trials hold zero colors all phase.
                        saturated = bool(
                            ((nz == n_act[:, None]) | ~alive_live).all()
                        )
                if chan is not None:
                    # Lossy path: explicit running-max prev (see
                    # _run_batched_group).
                    if t == phase:
                        ukernel.neighbor_max_stacked(
                            cur_t, out=k_last_t, channel=chan
                        )
                    else:
                        ukernel.neighbor_max_stacked(
                            cur_t, out=recv_t, channel=chan
                        )
                        np.maximum(prev_t, recv_t, out=prev_t)
                        np.maximum(cur_t, recv_t, out=cur_t)
                elif t == phase:
                    ukernel.neighbor_max_stacked(cur_t, out=k_last_t)
                elif t == phase - 1:
                    ukernel.neighbor_max_stacked(cur_t, out=prev_t)
                    np.maximum(cur_t, prev_t, out=cur_t)
                else:
                    ukernel.neighbor_max_stacked(cur_t, out=recv_t)
                    np.maximum(cur_t, recv_t, out=cur_t)
            if config.count_messages:
                meters.add_messages(live_ids, senders[alive_live] * d)
            np.logical_or(
                flag_continue,
                (k_last_t > prev_t) & (k_last_t > thr_floor),
                out=flag_continue,
            )
        meters.add_rounds(live_ids, n_sub * phase)

        newly = und & ~flag_continue.T
        dec_rows = decided[live]
        dec_rows[newly] = phase
        decided[live] = dec_rows
        if config.record_phase_trace:
            for g in range(blocks):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                newly_counts = np.count_nonzero(newly[:, lo:hi], axis=1)
                for row, col in enumerate(live):
                    if not alive_live[g, row]:
                        continue
                    traces[g * cols + int(col)].append(
                        PhaseRecord(
                            phase=phase,
                            subphases=n_sub,
                            flooding_rounds=n_sub * phase,
                            newly_decided=int(newly_counts[row]),
                            active_before=int(counts[g, row]),
                            injections_accepted=0,
                            injections_rejected=0,
                        )
                    )
        if config.stop_when_all_decided and not (decided == UNDECIDED).any():
            break

    out: list[CountingResult] = []
    for g, net in enumerate(nets):
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        n_net = hi - lo
        for j in range(cols):
            out.append(
                CountingResult(
                    n=n_net,
                    d=d,
                    k=net.k,
                    decided_phase=decided[j, lo:hi].copy(),
                    crashed=np.zeros(n_net, dtype=bool),
                    byz=np.zeros(n_net, dtype=bool),
                    meter=meters.meter(g * cols + j),
                    trace=traces[g * cols + j],
                    injections_accepted=0,
                    injections_rejected=0,
                )
            )
    return out


class _UnionPlacementGroup:
    """One (network block, placement) sub-group of a union-stack batch.

    ``cols`` are the group's seed-column ids; ``lo``/``hi`` its row
    segment in the union stack.  ``byz_nodes`` are block-local node ids
    (what the adversary protocol speaks); ``byz_rows`` the same nodes as
    union-global rows (what the fused state indexes).  ``alive_local`` /
    ``sel`` are refreshed each phase exactly like
    :class:`_PlacementGroup`'s.
    """

    __slots__ = (
        "g",
        "network",
        "lo",
        "hi",
        "n",
        "k",
        "cols",
        "byz",
        "byz_nodes",
        "byz_rows",
        "honest_nodes",
        "adversary",
        "alive_local",
        "sel",
        "dec_cols",
        "crash_cols",
        "rng_cols",
    )

    def __init__(
        self,
        g: int,
        network: SmallWorldNetwork,
        lo: int,
        hi: int,
        cols: Int64Array,
        byz: BoolArray,
        adversary: Adversary,
    ) -> None:
        self.g = g
        self.network = network
        self.lo = lo
        self.hi = hi
        self.n = hi - lo
        self.k = int(network.k)
        self.cols = cols
        self.byz = byz
        self.byz_nodes = np.flatnonzero(byz)
        self.byz_rows = self.byz_nodes + lo
        self.honest_nodes = np.flatnonzero(~byz)
        self.adversary = adversary
        # Phase-refreshed slots (assigned before every use each phase).
        self.alive_local: Any = None
        self.sel: Any = None
        self.dec_cols: Any = None
        self.crash_cols: Any = None
        self.rng_cols: tuple[np.random.Generator, ...] = ()


def _union_placement_groups(
    adversary_factory: AdversarySpec,
    nets: list[SmallWorldNetwork],
    offsets: Int64Array,
    masks: list[list[BoolArray]],
) -> list[_UnionPlacementGroup]:
    """Sub-group (block, column) trials by (network, placement)."""
    cols = len(masks[0])
    group_map: dict[tuple[int, bytes], list[int]] = {}
    for g in range(len(nets)):
        for j in range(cols):
            group_map.setdefault((g, masks[g][j].tobytes()), []).append(j)
    if len(group_map) > 1 and isinstance(adversary_factory, Adversary):
        raise ValueError(
            "a shared adversary instance cannot drive trials with different "
            "networks or Byzantine placements (binding is per placement); "
            "pass a zero-argument adversary factory instead"
        )
    groups: list[_UnionPlacementGroup] = []
    for (g, _), idxs in group_map.items():
        col_ids = np.asarray(idxs, dtype=np.int64)
        byz = np.ascontiguousarray(masks[g][idxs[0]])
        groups.append(
            _UnionPlacementGroup(
                g,
                nets[g],
                int(offsets[g]),
                int(offsets[g + 1]),
                col_ids,
                byz,
                _batch_adversary(adversary_factory, len(idxs)),
            )
        )
    return groups


def _run_union_byzantine_group(
    nets: list[SmallWorldNetwork],
    ukernel: UnionFloodKernel,
    seeds: list[SeedLike],
    config: CountingConfig,
    adversary_factory: AdversarySpec,
    masks: list[list[BoolArray]],
    channel: ChannelModel | None = None,
) -> list[CountingResult]:
    """Union-stack Algorithm 2: one config, per-(network, column) placements.

    Mirrors :func:`_run_byzantine_batched_group` on the block-diagonal
    ``(N, C)`` state: trials sub-group by (network block, placement) —
    each group's adversary binds to its own graph, simulates its own
    pre-phase crashes, and plans only its own columns — while the
    flooding rounds run as single row-gathers over the union CSR.  The
    Lemma 16 gate and the witness cap are per *block* (each block's own
    ``(n_g, k_g)``), applied to the block's row segment only; crash
    masks apply as one ``(N, C)`` mask and witness metering reduces
    segment-wise.  Bit-for-bit equal to per-network batched (hence
    sequential) runs; trial ``(g, j)`` is result ``g * C + j``.
    """
    d = nets[0].d
    blocks = len(nets)
    cols = len(seeds)
    rows_n = ukernel.n
    offsets = ukernel.offsets
    n_act = np.asarray(ukernel.sizes, dtype=np.int64)
    witness_cap = np.asarray(
        [min(ball_size_bound(d, int(net.k), 1), int(net.n), 64) for net in nets],
        dtype=np.int64,
    )

    color_rngs: list[list[np.random.Generator]] = []
    adv_rngs: list[list[np.random.Generator]] = []
    chan_rngs: list[list[np.random.Generator]] = []
    for _g in range(blocks):
        crow: list[np.random.Generator] = []
        arow: list[np.random.Generator] = []
        chrow: list[np.random.Generator] = []
        for seed in seeds:
            root = make_rng(seed)
            color_rng, adv_rng = spawn(root, 2)  # same split as run_counting
            crow.append(color_rng)
            arow.append(adv_rng)
            if channel is not None:
                chrow.append(spawn(root, 1)[0])  # child 2, channel stream
        color_rngs.append(crow)
        adv_rngs.append(arow)
        chan_rngs.append(chrow)

    groups = _union_placement_groups(adversary_factory, nets, offsets, masks)
    adaptive_groups = [grp for grp in groups if _is_adaptive(grp.adversary)]
    meters = MeterBatch(blocks * cols)
    traces = [PhaseTrace() for _ in range(blocks * cols)]
    byz_cn = np.zeros((cols, rows_n), dtype=bool)
    crashed_cn = np.zeros((cols, rows_n), dtype=bool)
    for g in range(blocks):
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        for j in range(cols):
            byz_cn[j, lo:hi] = masks[g][j]

    for grp in groups:
        grp.adversary.bind_batch(
            grp.network, grp.byz, [adv_rngs[grp.g][int(j)] for j in grp.cols], config
        )
    if config.verification:
        for grp in groups:
            claims_list = grp.adversary.batch_topology_claims()
            if len(claims_list) != grp.cols.shape[0]:
                raise ValueError(
                    f"batch_topology_claims returned {len(claims_list)} claim "
                    f"sets for {grp.cols.shape[0]} trials"
                )
            by_id: dict[int, BoolArray] = {}
            cache: dict[tuple[Any, ...], BoolArray] = {}
            for local, j in enumerate(grp.cols):
                claims = claims_list[local]
                crashed = by_id.get(id(claims))
                if crashed is None:
                    key = _claims_signature(claims)
                    crashed = cache.get(key)
                    if crashed is None:
                        crashed = crash_phase(grp.network, grp.byz, claims)
                        cache[key] = crashed
                    by_id[id(claims)] = crashed
                crashed_cn[int(j), grp.lo : grp.hi] = crashed
        all_ids = np.arange(blocks * cols)
        meters.add_rounds(all_ids, 2)
        if config.count_messages:
            # Pre-phase claim broadcasts cost each trial its own network's
            # port total (d-entry claims on every G edge).
            ports = np.repeat(
                np.asarray([int(net.g_indptr[-1]) for net in nets], dtype=np.int64),
                cols,
            )
            meters.add_messages(all_ids, ports, ids_each=d)

    decided = np.full((cols, rows_n), UNDECIDED, dtype=np.int64)
    honest_uncrashed = ~byz_cn & ~crashed_cn
    alive = np.ones((blocks, cols), dtype=bool)
    inj_acc = np.zeros((blocks, cols), dtype=np.int64)
    inj_rej = np.zeros((blocks, cols), dtype=np.int64)
    round_cost = 1 + (config.verification_round_cost if config.verification else 0)
    state_dtype: type[np.signedinteger[Any]] = np.int32

    for phase in range(1, config.max_phase + 1):
        undecided_all = honest_uncrashed & (decided == UNDECIDED)
        active = np.empty((blocks, cols), dtype=np.int64)
        for g in range(blocks):
            active[g] = np.count_nonzero(
                undecided_all[:, offsets[g] : offsets[g + 1]], axis=1
            )
        if config.stop_when_all_decided:
            alive &= active > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive.any(axis=0))
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active[:, live]
        alive_live = alive[:, live]
        trial_ids = np.arange(blocks)[:, None] * cols + live[None, :]
        live_ids = trial_ids[alive_live]

        live_pos = np.full(cols, -1, dtype=np.int64)
        live_pos[live] = np.arange(b_live)
        for grp in groups:
            keep = alive[grp.g, grp.cols]
            grp.alive_local = np.flatnonzero(keep)
            kept = grp.cols[keep]
            grp.sel = live_pos[kept]
            grp.rng_cols = tuple(adv_rngs[grp.g][int(j)] for j in kept)

        phase_draws: list[list[Int64Array | None]] = [
            [None] * b_live for _ in range(blocks)
        ]
        for g in range(blocks):
            for row, col in enumerate(live):
                if not alive_live[g, row]:
                    continue
                count = int(counts[g, row])
                if count:
                    draws = sample_colors(color_rngs[g][int(col)], n_sub * count)
                    phase_draws[g][row] = draws.reshape(n_sub, count)

        crashed_nc = np.ascontiguousarray(crashed_cn[live].T)
        any_crash = bool(crashed_nc.any())
        decided_nc = np.ascontiguousarray(decided[live].T)
        colors = np.zeros((rows_n, b_live), dtype=state_dtype)
        cur = np.empty((rows_n, b_live), dtype=state_dtype)
        sent = np.empty((rows_n, b_live), dtype=state_dtype)
        prev_kt = np.empty((rows_n, b_live), dtype=state_dtype)
        recv = np.empty((rows_n, b_live), dtype=state_dtype)
        k_last = np.empty((rows_n, b_live), dtype=state_dtype)
        flag_continue = np.zeros((rows_n, b_live), dtype=bool)
        phase_inj_acc = np.zeros((blocks, b_live), dtype=np.int64)
        phase_inj_rej = np.zeros((blocks, b_live), dtype=np.int64)
        msg_senders = np.zeros((blocks, b_live), dtype=np.int64)
        msg_records = np.zeros((blocks, b_live), dtype=np.int64)
        seg_nz = np.empty((blocks, b_live), dtype=np.int64)
        seg_rec = np.empty((blocks, b_live), dtype=np.int64)
        chan: ChannelState | None = None
        if channel is not None:
            chan = ChannelState(
                channel,
                [
                    (
                        row,
                        int(offsets[g]),
                        int(offsets[g + 1]),
                        chan_rngs[g][int(col)],
                    )
                    for g in range(blocks)
                    for row, col in enumerate(live)
                    if alive_live[g, row]
                ],
            )
        traffic_nb = (
            np.zeros((rows_n, b_live), dtype=np.int64) if adaptive_groups else None
        )
        for grp in groups:
            grp.dec_cols = _col_block(decided_nc[grp.lo : grp.hi], grp.sel, grp.n)
            grp.crash_cols = _col_block(crashed_nc[grp.lo : grp.hi], grp.sel, grp.n)

        for sub in range(1, n_sub + 1):
            # --- draw colors (undecided honest nodes only) ---------------
            colors.fill(0)
            for g in range(blocks):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                for row in range(b_live):
                    draws = phase_draws[g][row]
                    if draws is None:
                        continue
                    colors[lo:hi, row][und[row, lo:hi]] = draws[sub - 1]

            # --- per-(block, placement) adversary plans ------------------
            group_plans: list[tuple[Any, ...]] = []
            suppress_pairs: list[tuple[IntArray, IntArray]] = []
            suppressed_resend: list[tuple[Any, ...]] = []
            plan_max = 0
            plan_min = 0
            for grp in groups:
                if grp.byz_nodes.size == 0 or grp.sel.shape[0] == 0:
                    continue
                sel = grp.sel
                g_colors = _col_block(colors[grp.lo : grp.hi], sel, grp.n)[
                    grp.honest_nodes
                ]
                state = BatchSubphaseState(
                    phase=phase,
                    subphase=sub,
                    rounds=phase,
                    k=grp.k,
                    network=grp.network,
                    byz_nodes=grp.byz_nodes,
                    trials=grp.alive_local,
                    honest_colors=g_colors,
                    decided_phase=grp.dec_cols,
                    crashed=grp.crash_cols,
                    rngs=grp.rng_cols,
                )
                plan = grp.adversary.batch_subphase_plan(state)
                (
                    initial_g,
                    inj_rounds_g,
                    counts_g,
                    groups_g,
                    relay_g,
                ) = _normalize_batch_plan(plan, grp.byz_nodes.shape[0], sel.shape[0])
                checked: set[int] = set()
                for by_round in inj_rounds_g:
                    for injs in by_round.values():
                        for inj in injs:
                            if id(inj.nodes) not in checked:
                                checked.add(id(inj.nodes))
                                inj.require_byzantine(grp.byz)
                if initial_g is not None and initial_g.size:
                    plan_max = max(plan_max, int(initial_g.max()))
                    plan_min = min(plan_min, int(initial_g.min()))
                for lst in groups_g.values():
                    for _nodes, _cols, vals in lst:
                        if vals.size:
                            plan_max = max(plan_max, int(vals.max()))
                off_local = np.flatnonzero(~relay_g)
                if off_local.size:
                    suppress_pairs.append((grp.byz_rows, sel[off_local]))
                    for j_local in off_local:
                        by_round = inj_rounds_g[int(j_local)]
                        if by_round:
                            # One entry per (group, column): a union column
                            # can carry suppressed byz nodes in several
                            # blocks at once, each with its own gate k.
                            suppressed_resend.append(
                                (grp, int(sel[int(j_local)]), by_round)
                            )
                group_plans.append((grp, initial_g, counts_g, groups_g))

            if (
                plan_max > _INT32_MAX or plan_min < _INT32_MIN
            ) and state_dtype == np.int32:
                state_dtype = np.int64
                colors = colors.astype(np.int64)
                cur = np.empty((rows_n, b_live), dtype=np.int64)
                sent = np.empty_like(cur)
                prev_kt = np.empty_like(cur)
                recv = np.empty_like(cur)
                k_last = np.empty_like(cur)

            np.copyto(cur, colors)
            for grp, initial_g, _counts, _groups in group_plans:
                if initial_g is not None:
                    cur[np.ix_(grp.byz_rows, grp.sel)] = initial_g

            prev_kt.fill(0)
            for t in range(1, phase + 1):
                # --- adversary injections (per-block Lemma 16 gate) ------
                for grp, _initial, counts_g, groups_g in group_plans:
                    cnts = counts_g.get(t)
                    if cnts is None:
                        continue
                    if not (config.verification and t > grp.k - 1):
                        phase_inj_acc[grp.g, grp.sel] += cnts
                        for nodes, inj_cols, vals in groups_g[t]:
                            ix = np.ix_(nodes + grp.lo, grp.sel[inj_cols])
                            cur[ix] = np.maximum(cur[ix], vals[None, :])
                    else:
                        phase_inj_rej[grp.g, grp.sel] += cnts

                # --- transmit --------------------------------------------
                np.copyto(sent, cur)
                if any_crash:
                    sent[crashed_nc] = 0
                for rows_b, cols_b in suppress_pairs:
                    sent[np.ix_(rows_b, cols_b)] = 0
                for grp, col, by_round in suppressed_resend:
                    if config.verification and t > grp.k - 1:
                        continue
                    for inj in by_round.get(t, ()):
                        sent[inj.nodes + grp.lo, col] = inj.value

                # --- receive ---------------------------------------------
                ukernel.neighbor_max_stacked(sent, out=recv, channel=chan)
                if any_crash:
                    recv[crashed_nc] = 0
                if traffic_nb is not None:
                    traffic_nb += sent != 0

                # --- accounting (before the running-max update eats the
                # new-record evidence) ------------------------------------
                if config.count_messages:
                    msg_senders += ukernel.segment_count_nonzero(sent, out=seg_nz)
                    if config.verification:
                        msg_records += ukernel.segment_count_nonzero(
                            recv > cur, out=seg_rec
                        )

                if t == phase:
                    np.copyto(k_last, recv)
                else:
                    np.maximum(prev_kt, recv, out=prev_kt)
                np.maximum(cur, recv, out=cur)
                if any_crash:
                    cur[crashed_nc] = 0

            np.logical_or(
                flag_continue,
                (k_last > prev_kt) & (k_last > threshold),
                out=flag_continue,
            )

            # --- between-subphase adaptation (mobility, re-planning) -----
            if traffic_nb is not None:
                relocated = False
                for grp in adaptive_groups:
                    if grp.sel.shape[0] == 0:
                        continue
                    mask = grp.adversary.batch_adapt(
                        BatchAdaptationState(
                            phase=phase,
                            subphase=sub,
                            network=grp.network,
                            byz_nodes=grp.byz_nodes,
                            trials=grp.alive_local,
                            traffic=_col_block(
                                traffic_nb[grp.lo : grp.hi], grp.sel, grp.n
                            ),
                            rngs=grp.rng_cols,
                        )
                    )
                    if mask is not None:
                        new_byz = _adapted_mask(mask, grp.n)
                        grp.byz = new_byz
                        grp.byz_nodes = np.flatnonzero(new_byz)
                        grp.byz_rows = grp.byz_nodes + grp.lo
                        grp.honest_nodes = np.flatnonzero(~new_byz)
                        for j in grp.cols:
                            byz_cn[int(j), grp.lo : grp.hi] = new_byz
                        relocated = True
                if relocated:
                    honest_uncrashed = ~byz_cn & ~crashed_cn
                traffic_nb.fill(0)

        if config.count_messages:
            meters.add_messages(live_ids, (msg_senders * d)[alive_live])
            if config.verification:
                meters.add_messages(
                    live_ids,
                    (2 * msg_records * witness_cap[:, None])[alive_live],
                    ids_each=1,
                )
        meters.add_rounds(live_ids, n_sub * phase * round_cost)
        inj_acc[:, live] += phase_inj_acc
        inj_rej[:, live] += phase_inj_rej

        newly = und & ~flag_continue.T
        dec_rows = decided[live]
        dec_rows[newly] = phase
        decided[live] = dec_rows
        if config.record_phase_trace:
            for g in range(blocks):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                newly_counts = np.count_nonzero(newly[:, lo:hi], axis=1)
                for row, col in enumerate(live):
                    if not alive_live[g, row]:
                        continue
                    traces[g * cols + int(col)].append(
                        PhaseRecord(
                            phase=phase,
                            subphases=n_sub,
                            flooding_rounds=n_sub * phase,
                            newly_decided=int(newly_counts[row]),
                            active_before=int(counts[g, row]),
                            injections_accepted=int(phase_inj_acc[g, row]),
                            injections_rejected=int(phase_inj_rej[g, row]),
                        )
                    )
        if config.stop_when_all_decided and not (
            honest_uncrashed & (decided == UNDECIDED)
        ).any():
            break

    out: list[CountingResult] = []
    for g, net in enumerate(nets):
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        n_net = hi - lo
        for j in range(cols):
            out.append(
                CountingResult(
                    n=n_net,
                    d=d,
                    k=net.k,
                    decided_phase=decided[j, lo:hi].copy(),
                    crashed=crashed_cn[j, lo:hi].copy(),
                    byz=byz_cn[j, lo:hi].copy(),
                    meter=meters.meter(g * cols + j),
                    trace=traces[g * cols + j],
                    injections_accepted=int(inj_acc[g, j]),
                    injections_rejected=int(inj_rej[g, j]),
                )
            )
    return out

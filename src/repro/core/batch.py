"""Trial-batched execution engine for the counting protocol.

Experiment sweeps repeat :func:`repro.core.runner.run_counting` over many
independent trials (seeds x configs) of the *same* network.  Each trial's
per-round work is a handful of numpy calls on arrays of length ``n`` — small
enough that interpreter and dispatch overhead dominate the arithmetic.
Since trials are fully independent, the whole phase/subphase/round schedule
vectorizes across them: :func:`run_counting_batch` keeps the protocol state
as ``(n, B)`` trials-as-columns matrices and executes every flooding round
for all ``B`` trials with one batched kernel call
(:meth:`repro.sim.flood.FloodKernel.neighbor_max_stacked`; the ``(B, n)``
``neighbor_max_batch`` reduceat kernel is its fallback for non-regular
graphs).

Equivalence contract
--------------------
``run_counting_batch(network, seeds, config=cfg)`` is **bit-for-bit** equal
to ``[run_counting(network, cfg, seed=s) for s in seeds]``: per-trial
``decided_phase``, ``crashed``, phase traces, and meter totals all match.
This holds because

* each trial consumes its own named random stream, derived exactly as the
  sequential engine derives it (``make_rng`` -> ``spawn``), with color
  draws issued per-trial in the same order and sizes;
* integer max-flooding is exact, so batching changes no arithmetic;
* a trial leaves the batch precisely when the sequential run would break
  out of the phase loop, so round/message accounting stops at the same
  point.

The equivalence is enforced by the property test in
``tests/core/test_runner_batch.py``.

Adversarial runs use the scalar :class:`~repro.adversary.base.Adversary`
hooks (``subphase_plan`` receives one trial's full state), so those trials
fall back to per-trial sequential execution — still behind the same API, so
callers need not special-case.  Heterogeneous configs are grouped: trials
sharing a config batch together.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..adversary.base import Adversary
from ..sim.flood import FloodKernel
from ..sim.metrics import MeterBatch, PhaseRecord, PhaseTrace
from ..sim.rng import make_rng, spawn
from .colors import sample_colors
from .config import CountingConfig
from .phases import color_threshold, subphase_count
from .results import UNDECIDED, BatchCountingResult, CountingResult
from .runner import run_counting

__all__ = ["run_counting_batch"]


def run_counting_batch(
    network,
    seeds: Sequence[int | np.random.Generator | None],
    config: CountingConfig | Sequence[CountingConfig] | None = None,
    adversary_factory: Callable[[], Adversary] | None = None,
    byz_mask: np.ndarray | None = None,
) -> BatchCountingResult:
    """Run ``len(seeds)`` independent counting trials, batched.

    Parameters
    ----------
    network:
        The shared :class:`~repro.graphs.smallworld.SmallWorldNetwork`.
    seeds:
        One entry per trial; each is anything :func:`repro.sim.rng.make_rng`
        accepts (int, ``Generator``, or ``None``).
    config:
        A single :class:`CountingConfig` applied to every trial, or a
        sequence of per-trial configs (trials with equal configs are
        batched together).
    adversary_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.adversary.base.Adversary` per trial (adversary hooks
        are scalar, so adversarial trials run sequentially).  A plain
        :class:`Adversary` instance is also accepted and re-bound per trial.
    byz_mask:
        Shared Byzantine placement; requires ``adversary_factory``.

    Returns
    -------
    BatchCountingResult
        Per-trial :class:`~repro.core.results.CountingResult` objects, in
        ``seeds`` order, bit-for-bit equal to sequential ``run_counting``.
    """
    seeds = list(seeds)
    batch = len(seeds)
    configs = _normalize_configs(config, batch)

    if adversary_factory is not None:
        return BatchCountingResult(
            [
                run_counting(
                    network,
                    config=cfg,
                    seed=seed,
                    adversary=_make_adversary(adversary_factory),
                    byz_mask=byz_mask,
                )
                for seed, cfg in zip(seeds, configs)
            ]
        )
    if byz_mask is not None and np.asarray(byz_mask, dtype=bool).any():
        raise ValueError("byz_mask given without an adversary_factory")

    results: list[CountingResult | None] = [None] * batch
    for cfg, trial_ids in _group_by_config(configs).items():
        group = _run_batched_group(network, [seeds[i] for i in trial_ids], cfg)
        for i, res in zip(trial_ids, group):
            results[i] = res
    return BatchCountingResult(results)  # type: ignore[arg-type]


def _make_adversary(factory) -> Adversary:
    if isinstance(factory, Adversary):
        return factory  # re-bound by run_counting at trial start
    return factory()


def _normalize_configs(config, batch: int) -> list[CountingConfig]:
    if config is None:
        config = CountingConfig()
    if isinstance(config, CountingConfig):
        return [config] * batch
    configs = list(config)
    if len(configs) != batch:
        raise ValueError(
            f"got {len(configs)} configs for {batch} seeds; provide one "
            "config per trial or a single shared config"
        )
    return configs


def _group_by_config(
    configs: list[CountingConfig],
) -> dict[CountingConfig, list[int]]:
    groups: dict[CountingConfig, list[int]] = {}
    for i, cfg in enumerate(configs):
        groups.setdefault(cfg, []).append(i)
    return groups


def _run_batched_group(
    network, seeds: list, config: CountingConfig
) -> list[CountingResult]:
    """The batched engine proper: one config, ``B`` seeds, no adversary.

    Mirrors the adversary-free path of :func:`run_counting` statement for
    statement, with node vectors widened to ``(B, n)`` matrices.  The only
    per-trial Python work left in the hot loop is the color draw (each
    trial owns a private RNG stream whose draw order must match the
    sequential engine's).
    """
    n, d = network.n, network.d
    batch = len(seeds)
    if batch == 0:
        return []

    color_rngs = []
    for seed in seeds:
        root = make_rng(seed)
        color_rng, _adv_rng = spawn(root, 2)  # same split as run_counting
        color_rngs.append(color_rng)

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    decided = np.full((batch, n), UNDECIDED, dtype=np.int64)
    meters = MeterBatch(batch)
    traces = [PhaseTrace() for _ in range(batch)]
    alive = np.ones(batch, dtype=bool)

    for phase in range(1, config.max_phase + 1):
        undecided_all = decided == UNDECIDED
        active_before = undecided_all.sum(axis=1)
        if config.stop_when_all_decided:
            alive &= active_before > 0
        if not alive.any():
            break
        live = np.flatnonzero(alive)
        b_live = live.shape[0]
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        und = undecided_all[live]
        counts = active_before[live]
        all_undecided = counts == n
        # ``k > threshold`` for integer ``k`` equals ``k > floor(threshold)``,
        # so the comparison stays in int32 (no float64 promotion).
        thr_floor = int(np.floor(threshold))

        # One stream read per trial per phase: a single geometric draw of
        # ``n_sub * count`` values equals ``n_sub`` successive draws of
        # ``count`` (distribution sampling consumes the bit stream per
        # variate, independent of call boundaries), so per-trial streams
        # still match the sequential engine draw for draw.
        phase_draws = []
        for row, trial in enumerate(live):
            count = int(counts[row])
            if count:
                draws = sample_colors(color_rngs[trial], n_sub * count)
                phase_draws.append(draws.reshape(n_sub, count))
            else:
                phase_draws.append(None)

        # Trials-as-columns int32 state: each node's live-trial values sit
        # in one cache line, which is what makes the stacked kernel fast.
        # Colors are O(log n) whp and the engine never injects, so int32
        # cannot overflow; results are widened back to int64 at the end.
        colors_bn = np.zeros((b_live, n), dtype=np.int32)
        cur_t = np.empty((n, b_live), dtype=np.int32)
        # ``recv`` is pointwise monotone across a subphase's rounds (cur
        # only grows, so each neighbor-max dominates the previous one);
        # hence max_{t < phase} recv_t == recv at round phase-1 and no
        # running "previous k_t" accumulation is needed — round phase-1's
        # receive buffer *is* prev_kt.  phase == 1 has no earlier rounds,
        # so prev stays at its zero initialization.
        prev_t = np.zeros((n, b_live), dtype=np.int32)
        recv_t = np.empty((n, b_live), dtype=np.int32)
        k_last_t = np.empty((n, b_live), dtype=np.int32)
        flag_continue = np.zeros((n, b_live), dtype=bool)
        senders = np.zeros(b_live, dtype=np.int64)

        for sub in range(n_sub):
            # Rows whose mask is partial keep untouched entries at their
            # initial 0 (the mask is fixed for the whole phase), so only
            # masked positions ever need writing.
            for row, trial in enumerate(live):
                draws = phase_draws[row]
                if draws is None:
                    continue
                if all_undecided[row]:
                    colors_bn[row] = draws[sub]
                else:
                    colors_bn[row, und[row]] = draws[sub]
            np.copyto(cur_t, colors_bn.T)

            senders.fill(0)
            saturated = False
            for t in range(1, phase + 1):
                # No crashes and no Byzantine suppression on this path, so
                # every node transmits its running max: sent == cur, and
                # the copy the sequential engine makes is unnecessary.
                if config.count_messages:
                    if saturated:
                        senders += n
                    else:
                        nonzero = np.count_nonzero(cur_t, axis=0)
                        senders += nonzero
                        # The nonzero set only grows within a subphase
                        # (running max), so once every node transmits in
                        # every trial the count stays pinned at n.
                        saturated = bool(nonzero.min() == n)
                if t == phase:
                    # Last round: only k_t is still needed — recv, prev,
                    # and the running max are dead after this point.
                    kernel.neighbor_max_stacked(cur_t, out=k_last_t)
                elif t == phase - 1:
                    # By monotonicity this receive equals prev_kt.
                    kernel.neighbor_max_stacked(cur_t, out=prev_t)
                    np.maximum(cur_t, prev_t, out=cur_t)
                else:
                    kernel.neighbor_max_stacked(cur_t, out=recv_t)
                    np.maximum(cur_t, recv_t, out=cur_t)
            if config.count_messages:
                meters.add_messages(live, senders * d)
            np.logical_or(
                flag_continue,
                (k_last_t > prev_t) & (k_last_t > thr_floor),
                out=flag_continue,
            )
        # Without an adversary the per-round cost is exactly 1, so the
        # phase's round total factors out of the subphase loop.
        meters.add_rounds(live, n_sub * phase)

        newly = und & ~flag_continue.T
        rows = decided[live]
        rows[newly] = phase
        decided[live] = rows
        if config.record_phase_trace:
            newly_counts = newly.sum(axis=1)
            for row, trial in enumerate(live):
                traces[trial].append(
                    PhaseRecord(
                        phase=phase,
                        subphases=n_sub,
                        flooding_rounds=n_sub * phase,
                        newly_decided=int(newly_counts[row]),
                        active_before=int(counts[row]),
                        injections_accepted=0,
                        injections_rejected=0,
                    )
                )
        if config.stop_when_all_decided and not (decided == UNDECIDED).any():
            break

    k = network.k
    return [
        CountingResult(
            n=n,
            d=d,
            k=k,
            decided_phase=decided[b].copy(),
            crashed=np.zeros(n, dtype=bool),
            byz=np.zeros(n, dtype=bool),
            meter=meters.meter(b),
            trace=traces[b],
            injections_accepted=0,
            injections_rejected=0,
        )
        for b in range(batch)
    ]

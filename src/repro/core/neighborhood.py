"""k-neighborhood reconstruction and the crash rule (Lemma 3, Alg. 2 lines 1-2).

Nodes know their ``G``-ports but not which incident edges belong to ``H``.
At startup every node broadcasts its (claimed) ``H``-adjacency list; from
its ``G``-neighbors' claims an honest node ``v``:

* recovers its own ``H``-neighbors (``u`` is one iff ``u`` claims ``v``),
* reconstructs the BFS structure of its ``k``-ball in ``H`` (Lemma 3), and
* **crashes** if two or more neighbors provide contradictory information
  (Algorithm 2 line 2).

Contradictions detectable by ``v`` (all used in Lemma 15 / Figure 1):

1. *Asymmetry*: ``u`` claims ``w`` as H-neighbor but ``w`` (also heard by
   ``v``) does not claim ``u`` — e.g. a liar suppressing a real child whose
   direct ``L`` edge to ``v`` lets it testify.
2. *Phantom*: a node placed at claim-distance ``<= k - 1`` from ``v``
   claims a neighbor that is not among ``v``'s physical ports.  Any node
   within ``k`` of ``v`` in ``H`` *must* be a ``G``-neighbor, so a dummy ID
   (Figure 1's ``b2``) is impossible to hide inside the ball.
3. *Degree violation*: a claimed H-adjacency list that does not have
   exactly ``d`` entries.

The simulator-side :func:`crash_phase` computes which honest nodes crash
for a given set of Byzantine claims, and :func:`reconstruct_h_ball` is the
honest-node reconstruction used by the agent engine and the E12 tests.
"""

from __future__ import annotations

import numpy as np

from .._types import BoolArray, IntArray
from ..graphs.smallworld import SmallWorldNetwork

__all__ = [
    "ConflictError",
    "AdjacencyClaims",
    "ByzantineClaims",
    "truthful_claims",
    "reconstruct_h_ball",
    "find_conflicts",
    "crash_phase",
    "infer_child_relation",
]


class ConflictError(Exception):
    """Raised by reconstruction when claims are contradictory."""

    def __init__(self, message: str, witnesses: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.witnesses = witnesses


#: Mapping node id -> claimed H-neighbor tuple (sorted).
AdjacencyClaims = dict[int, tuple[int, ...]]

#: Byzantine claim map: ``None`` models a silent node (no claim broadcast).
ByzantineClaims = dict[int, tuple[int, ...] | None]


def truthful_claims(net: SmallWorldNetwork, nodes: IntArray | None = None) -> AdjacencyClaims:
    """The honest claims: each node's true H-adjacency *with multiplicity*.

    ``H`` is a multigraph, so an honest claim always has exactly ``d``
    entries; a node incident to a parallel edge lists that neighbor twice.
    """
    ids = range(net.n) if nodes is None else [int(v) for v in nodes]
    return {
        v: tuple(sorted(int(u) for u in net.h.neighbors(v))) for v in ids
    }


def _claim_set(claims: AdjacencyClaims, u: int) -> set[int] | None:
    got = claims.get(u)
    return None if got is None else set(got)


def reconstruct_h_ball(
    v: int,
    ports: IntArray,
    claims: AdjacencyClaims,
    k: int,
    d: int,
) -> dict[int, int]:
    """Reconstruct ``dist_H(v, .)`` over ``B_H(v, k)`` from neighbor claims.

    Parameters
    ----------
    v:
        The reconstructing node.
    ports:
        ``v``'s physical ``G``-neighbors (trusted; they are hardware).
    claims:
        Claimed H-adjacency per node (at least for every port that spoke).
        Silent nodes are simply absent; silence is not a contradiction.
    k, d:
        The lattice radius and uniform degree.

    Returns the mapping node -> inferred ``dist_H(v, node)`` for the ball.
    Raises :class:`ConflictError` on any contradiction (the node crashes).
    """
    port_set = {int(u) for u in ports}
    known = port_set | {v}

    # Degree sanity for every speaking port (claims carry multiplicity, so
    # an honest claim has exactly d entries even with parallel edges).
    for u in port_set:
        raw = claims.get(u)
        if raw is not None and len(raw) != d:
            raise ConflictError(f"node {u} claims degree {len(raw)} != {d}", (u,))

    # Pairwise symmetry among heard nodes.
    for u in port_set:
        cu = _claim_set(claims, u)
        if cu is None:
            continue
        for w in cu:
            if w in port_set:
                cw = _claim_set(claims, w)
                if cw is not None and u not in cw:
                    raise ConflictError(
                        f"asymmetric claim: {u} names {w} but not vice versa",
                        (u, w),
                    )

    # Level-by-level BFS through the claim graph.
    dist = {v: 0}
    frontier = sorted(
        u for u in port_set if (cs := _claim_set(claims, u)) is not None and v in cs
    )
    for u in frontier:
        dist[u] = 1
    level = 1
    while level < k and frontier:
        nxt: list[int] = []
        for u in frontier:
            cu = _claim_set(claims, u)
            if cu is None:
                continue
            for w in sorted(cu):
                if w in dist:
                    continue
                if w not in known:
                    # A claimed node at distance level+1 <= k must be a
                    # physical G-neighbor of v: phantom detected.
                    raise ConflictError(
                        f"node {u} at distance {level} claims {w}, which is "
                        f"not a G-neighbor of {v}",
                        (u,),
                    )
                dist[w] = level + 1
                nxt.append(w)
        frontier = nxt
        level += 1
    return dist


def find_conflicts(
    v: int, ports: IntArray, claims: AdjacencyClaims, k: int, d: int
) -> tuple[int, ...]:
    """Witness tuple if ``v`` would crash, else empty tuple."""
    try:
        reconstruct_h_ball(v, ports, claims, k, d)
    except ConflictError as err:
        return err.witnesses if err.witnesses else (v,)
    return ()


def crash_phase(
    net: SmallWorldNetwork,
    byz_mask: BoolArray,
    byz_claims: ByzantineClaims,
) -> BoolArray:
    """Simulate Algorithm 2 lines 1-2: which honest nodes crash.

    ``byz_claims`` maps each Byzantine node to its claimed H-adjacency
    (omit a node for silence).  Honest nodes claim truthfully.  Returns the
    boolean crash mask over all nodes (Byzantine nodes never "crash").

    Only honest nodes with at least one lying Byzantine ``G``-neighbor can
    possibly crash, so the simulation only reconstructs around those.
    """
    byz_mask = np.asarray(byz_mask, dtype=bool)
    crashed = np.zeros(net.n, dtype=bool)
    liars = [
        b
        for b, claim in byz_claims.items()
        if claim is not None
        and tuple(sorted(claim)) != tuple(sorted(int(u) for u in net.h.neighbors(b)))
    ]
    if not liars:
        return crashed
    suspects: set[int] = set()
    for b in liars:
        for u in net.g_neighbors(b):
            if not byz_mask[u]:
                suspects.add(int(u))
    truth_cache: AdjacencyClaims = {}

    def claim_of(u: int) -> tuple[int, ...] | None:
        if byz_mask[u]:
            return byz_claims.get(u)
        got = truth_cache.get(u)
        if got is None:
            got = tuple(sorted(int(x) for x in net.h.neighbors(u)))
            truth_cache[u] = got
        return got

    for v in sorted(suspects):
        ports = net.g_neighbors(v)
        local_claims: AdjacencyClaims = {}
        for u in ports:
            c = claim_of(int(u))
            if c is not None:
                local_claims[int(u)] = c
        if find_conflicts(v, ports, local_claims, net.k, net.d):
            crashed[v] = True
    return crashed


def infer_child_relation(
    ng_v: set[int], ng_u: set[int], ng_w: set[int]
) -> str:
    """Lemma 3's set-algebra rule for two G-neighbors ``u, w`` of ``v``.

    Returns ``"w_child_of_u"``, ``"u_child_of_w"``, ``"siblings"`` or
    ``"unrelated"`` based on strict inclusion of ``N_G(.) ∩ N_G(v)``.
    """
    iu = ng_u & ng_v
    iw = ng_w & ng_v
    if iw < iu:
        return "w_child_of_u"
    if iu < iw:
        return "u_child_of_w"
    if iu == iw:
        return "siblings"
    return "unrelated"

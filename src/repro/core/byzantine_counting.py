"""Algorithm 2 — the Byzantine counting protocol (Section 3.3).

Algorithm 1 plus the two defenses:

1. the pre-phase adjacency exchange with crash-on-contradiction
   (lines 1-2; Lemma 15 / Figure 1), and
2. per-color legitimacy verification against the ``(k-1)``-ball witnesses
   over the ``L`` edges (line 15; Lemma 16), which confines Byzantine color
   injections to the first ``k - 1`` rounds of every subphase.

Theorem 1: with ``B(n) = O(n^{1-delta})`` randomly placed Byzantine nodes,
all but an ``eps``-fraction of honest nodes obtain a constant-factor
estimate of ``log n`` within ``Theta(log^3 n)`` rounds.
"""

from __future__ import annotations

from .._types import BoolArray, SeedLike
from ..adversary.base import Adversary
from ..graphs.smallworld import SmallWorldNetwork
from .config import CountingConfig
from .results import CountingResult
from .runner import run_counting

__all__ = ["run_byzantine_counting"]


def run_byzantine_counting(
    network: SmallWorldNetwork,
    adversary: Adversary,
    byz_mask: BoolArray,
    config: CountingConfig | None = None,
    seed: SeedLike = 0,
) -> CountingResult:
    """Run Algorithm 2 against ``adversary`` controlling ``byz_mask`` nodes."""
    if adversary is None:
        raise ValueError("Algorithm 2 requires an adversary (use run_basic_counting)")
    config = config or CountingConfig()
    return run_counting(
        network, config=config, seed=seed, adversary=adversary, byz_mask=byz_mask
    )

"""Fused sweep engine over (network, seed, config, placement, strategy) grids.

The paper's headline experiments sweep over *placements and strategies*,
not just seeds: Theorem 1 accuracy (E07) contrasts adversary strategies at
several Byzantine budgets, the Core-resilience study (E11) varies liar
placements, and the ablation grids (E14) vary budget, placement shape, and
the error parameter.  Each cell of such a grid is one independent
:func:`repro.core.runner.run_counting` trial, so the whole grid flattens
into trials-as-columns batches for the batched engine
(:func:`repro.core.batch.run_counting_batch`) — which batches across
seeds, configs (grouped), and per-trial Byzantine placements.  The only
axis that cannot share a batch is the *strategy* (one adversary factory
drives one batch), so :func:`run_sweep` fuses each strategy's
``placements x configs x seeds`` block into a single engine call.

Network axis
------------
The paper's claims are *scaling* statements, so the sweeps that matter
most iterate over network sizes.  :func:`run_multi_sweep` (equivalently,
passing a list of networks to :func:`run_sweep`) extends the fusion across
the network axis through one of two layouts, chosen by the ``layout``
selector:

* ``"union"`` — the zero-padding **union stack**
  (:func:`repro.core.batch.run_counting_unionstack`): networks stack
  block-diagonally on the *row* axis (one column = one (placement,
  config, seed) cell, replicated across every network), so each flooding
  round is a single row-gather over the concatenated CSR with no padding
  rows, no scratch copies, and no masked zeroing — the layout that beats
  the per-size batched loop outright (``union_stack`` workload in
  ``benchmarks/bench_batch.py``).  Requires a *rectangular* grid: one
  shared seed axis of int/None seeds.
* ``"padded"`` — the padded trials-as-columns batch
  (:func:`repro.core.batch.run_counting_multinet`): state padded to the
  largest ``n`` with per-trial active-length masking and the masked
  :class:`~repro.sim.flood.MultiFloodKernel`.  Handles *ragged* grids —
  per-network seed axes of different lengths (pass ``seeds`` as one axis
  per network) and ``Generator`` seed objects.
* ``"auto"`` (default) — union for rectangular grids, padded otherwise.

All networks in one multi-sweep must share the degree ``d`` — the phase
schedule is ``d``-dependent.  Union-incompatible inputs under an explicit
``layout="union"`` fail eagerly with typed errors (ragged seed axes:
``ValueError``; Generator seeds: ``TypeError``).

Equivalence contract
--------------------
Every cell is **bit-for-bit** equal to the scalar run it replaces::

    run_byzantine_counting(network, make_adversary(strategy), placement,
                           config=config, seed=seed)

(or plain Algorithm 1 ``run_counting(network, config, seed=seed)`` for
``strategies=None`` honest grids) — enforced per cell by
``tests/core/test_sweep.py``, cross-engine (message-level agents vs
vectorized runner vs batch vs padded multi-network) by
``tests/integration/test_engine_equivalence.py``, and on random ragged
size mixes by the hypothesis properties in
``tests/property/test_padding_properties.py``.  Results come back in grid
order (network-major, then strategy, placement, config, seed) wrapped in a
:class:`SweepResult` / :class:`MultiSweepResult` for shaped access.

Sharding
--------
``jobs=N`` fans the grid out over worker processes through
:func:`repro.experiments.common.parallel_map` with every network placed in
one shared-memory segment (workers attach zero-copy; multi-network sweeps
pin all graphs in a single segment, and union-layout sweeps additionally
ship the pre-stacked union CSR through it so workers skip re-stacking).
Shard boundaries are **cost weighted**: each cell's expected cost is
modeled as ``n x round_complexity_bound(n, eps, d) x strategy factor``
(early-stop attacks end runs after a few phases, inflation floods every
phase — see :data:`STRATEGY_COST_FACTORS`), and boundaries are placed so
shards carry roughly equal *cost* rather than equal cell counts, which
balances the pool when sizes or strategies are skewed.  Union-layout
shards cut on *column* boundaries of the union stack (a column spans every
network, so its cost is the per-column sum over the network axis); padded
shards cut on cell boundaries as before.  Chunks never drop below
:data:`MIN_SHARD_CELLS` cells/columns, never straddle a strategy boundary,
and can be forced back to fixed-size slicing with ``shard_cells``.  For
``jobs > 1`` every strategy spec must be picklable — a name from
:data:`~repro.core.estimator.ADVERSARIES`, a module-level factory, or a
plain adversary instance.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .._types import BoolArray, SeedLike
from ..adversary.base import Adversary
from ..sim.channel import ChannelModel, _normalize_channel
from .batch import run_counting_batch, run_counting_multinet, run_counting_unionstack
from .config import CountingConfig
from .results import BatchCountingResult, CountingResult

if TYPE_CHECKING:  # pragma: no cover
    import os

    from ..exec import ExecutionReport, RetryPolicy
    from ..graphs.smallworld import SmallWorldNetwork

#: A strategy-axis entry: ``None`` (honest Algorithm 1), a registered
#: adversary name, an :class:`Adversary` instance, or a factory.
StrategySpec = "str | Adversary | Callable[[], Adversary] | None"

__all__ = [
    "run_sweep",
    "run_multi_sweep",
    "SweepResult",
    "MultiSweepResult",
    "SweepCell",
    "LAYOUTS",
    "MIN_SHARD_CELLS",
    "STRATEGY_COST_FACTORS",
]

#: Valid ``layout`` selector values for the network axis (see the module
#: docstring): ``auto`` picks ``union`` for rectangular grids and falls
#: back to ``padded`` for ragged seed axes or Generator seeds.
LAYOUTS = ("auto", "union", "padded")

#: Smallest shard the auto-splitter will produce: below this the batched
#: engine's per-call fixed costs dominate and sharding stops paying.
MIN_SHARD_CELLS = 4

#: Relative expected-cost factors per adversary strategy, used by the
#: cost-weighted shard splitter.  Normalized to inflation = 1.0 (it floods
#: every phase and batches best); early-stop ends runs after a few phases,
#: so its cells finish in roughly a third of the time.  Unknown strategies
#: default to 1.0 — the factors only steer load balancing, never results.
STRATEGY_COST_FACTORS: dict[str, float] = {
    "early-stop": 0.35,
    "silent": 0.45,
    "suppression": 0.55,
    "topology-liar": 0.7,
    "combo": 0.85,
    "adaptive-record": 0.9,
    "mobile": 0.85,
    "traffic-adaptive": 0.9,
    "inflation": 1.0,
    "honest": 0.8,
    "honest-behavior": 0.8,
}

#: Cost factor for ``strategies=None`` honest Algorithm 1 cells (no
#: verification rounds, no witness traffic).
_HONEST_COST_FACTOR = 0.5


def _strategy_factory(spec: StrategySpec) -> Adversary | Callable[[], Adversary] | None:
    """Resolve a strategy spec to what ``run_counting_batch`` expects.

    A spec is ``None`` (honest Algorithm 1), a registered adversary name,
    an :class:`Adversary` instance, or a zero-argument factory.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        from .estimator import make_adversary

        return lambda name=spec: make_adversary(name)
    return spec  # Adversary instance or zero-argument factory


def _strategy_cost_factor(spec: StrategySpec) -> float:
    """Relative expected cost of one cell under ``spec`` (load balancing)."""
    if spec is None:
        return _HONEST_COST_FACTOR
    name = spec if isinstance(spec, str) else getattr(spec, "name", None)
    if not isinstance(name, str):
        return 1.0
    return STRATEGY_COST_FACTORS.get(name, 1.0)


def _cell_cost(
    n: int, d: int, config: CountingConfig, cache: dict[tuple[int, CountingConfig], float]
) -> float:
    """Expected cost of one (network, config) cell: ``n x rounds bound``.

    The strategy factor multiplies on top (it is constant per strategy
    block).  Cached per (n, config): the paper-exact schedule bound loops
    over phases.
    """
    key = (n, config)
    cost = cache.get(key)
    if cost is None:
        from ..analysis.bounds import round_complexity_bound

        vc = config.verification_round_cost if config.verification else 0
        cost = float(n) * round_complexity_bound(
            n, config.eps, d, verification_cost=vc
        )
        cache[key] = cost
    return cost


def _shard_bounds(
    costs: list[float], target_cost: float | None, shard_cells: int | None
) -> list[tuple[int, int]]:
    """Shard boundaries over one strategy block's cells, in grid order.

    ``shard_cells`` forces fixed-size slicing; otherwise boundaries are
    placed greedily so each shard accumulates ~``target_cost`` of modeled
    cell cost (``None`` = serial: one maximal shard).  Shards never drop
    below :data:`MIN_SHARD_CELLS` cells, including the tail.
    """
    m = len(costs)
    if shard_cells is not None:
        if shard_cells < 1:
            raise ValueError(f"shard_cells must be >= 1, got {shard_cells}")
        return [(lo, min(lo + shard_cells, m)) for lo in range(0, m, shard_cells)]
    if target_cost is None or m <= MIN_SHARD_CELLS:
        return [(0, m)]
    bounds: list[tuple[int, int]] = []
    lo = 0
    acc = 0.0
    for i in range(m):
        acc += costs[i]
        if (
            acc >= target_cost
            and i + 1 - lo >= MIN_SHARD_CELLS
            and m - (i + 1) >= MIN_SHARD_CELLS
        ):
            bounds.append((lo, i + 1))
            lo = i + 1
            acc = 0.0
    bounds.append((lo, m))
    return bounds


def _validate_seeds(seeds: Any) -> list[SeedLike]:
    """Materialize and validate the sweep's seed axis, eagerly and typed.

    Catches the grid-assembly traps before any batch is built: a bare
    ``numpy.random.Generator`` where a *sequence* of per-trial seeds is
    required, a one-shot iterator/generator (the seed axis is replayed
    once per strategy block, so it must be re-iterable), an empty axis,
    and duplicate entries (a duplicated seed silently duplicates every
    grid cell that uses it — and a duplicated ``Generator`` object would
    share one stream across trials, breaking per-trial reproducibility).
    """
    if isinstance(seeds, np.random.Generator):
        raise TypeError(
            "seeds must be a sequence of per-trial seeds, got a single "
            "numpy Generator; wrap it in a list ([rng]) for a one-trial sweep"
        )
    if isinstance(seeds, (str, bytes)):
        raise TypeError(f"seeds must be a sequence of seeds, got {type(seeds).__name__}")
    if iter(seeds) is seeds:
        raise TypeError(
            "seeds must be a materialized sequence (list/tuple/array); a "
            "one-shot generator or iterator cannot be replayed across the "
            "sweep's strategy blocks"
        )
    seeds = list(seeds)
    if not seeds:
        raise ValueError("run_sweep needs at least one seed")
    seen: set[tuple[str, object]] = set()
    for s in seeds:
        if s is None:
            # ``None`` means a fresh-entropy rng per trial (make_rng), so
            # repeated Nones are distinct trials, never duplicates.
            continue
        try:
            key = ("v", s)
            hash(s)
        except TypeError:
            key = ("id", id(s))
        if key in seen:
            raise ValueError(
                f"duplicate seed {s!r} in the sweep's seed axis; every grid "
                "cell must be a distinct trial (repeat seeds by running the "
                "sweep again, not by duplicating the axis)"
            )
        seen.add(key)
    return seeds


def _split_seed_axes(
    seeds: Any, networks: Sequence[SmallWorldNetwork]
) -> tuple[list[SeedLike] | None, list[list[SeedLike]] | None]:
    """Split ``seeds`` into a shared axis or per-network (ragged) axes.

    A list/tuple whose every element is itself a sequence is read as
    per-network seed axes (one per network, lengths may differ — the
    ragged form only the padded layout can run); anything else is the
    shared rectangular axis.  Exactly one element of the returned pair is
    non-None, each validated by :func:`_validate_seeds`.
    """
    if (
        isinstance(seeds, (list, tuple))
        and seeds
        and all(isinstance(ax, (list, tuple, np.ndarray)) for ax in seeds)
    ):
        axes = [_validate_seeds(ax) for ax in seeds]
        if len(axes) != len(networks):
            raise ValueError(
                f"per-network seed axes must give one axis per network "
                f"({len(networks)}), got {len(axes)}"
            )
        return None, axes
    return _validate_seeds(seeds), None


def _run_shard(network: SmallWorldNetwork, task: tuple[Any, ...]) -> list[CountingResult]:
    """Module-level worker: one fused (strategy, cells-chunk) batch.

    ``task`` is ``(spec, seeds, configs, masks, backend, channel)`` with
    ``masks`` a ``(B, n)`` stack or None; runs on the (possibly
    shared-memory attached) network inside a worker process.  The kernel
    backend and the channel model ride in the task tuple because a bare
    ``SmallWorldNetwork`` has no container to carry them (multi-network
    shards ship them on the
    :class:`~repro.graphs.shared.NetworkTuple` instead).
    """
    spec, seeds, configs, masks, backend, channel = task
    factory = _strategy_factory(spec)
    if factory is None:
        return list(
            run_counting_batch(
                network, seeds, config=configs, backend=backend, channel=channel
            )
        )
    return list(
        run_counting_batch(
            network,
            seeds,
            config=configs,
            adversary_factory=factory,
            byz_mask=masks,
            backend=backend,
            channel=channel,
        )
    )


def _run_multi_shard(
    networks: Sequence[SmallWorldNetwork], task: tuple[Any, ...]
) -> list[CountingResult]:
    """Module-level worker: one fused multi-network (strategy, chunk) batch.

    ``networks`` is the shared tuple of sweep networks (attached from one
    shared-memory segment inside workers); ``task`` carries per-trial
    indices into it plus per-trial masks over each trial's own network.
    """
    spec, seeds, configs, net_ids, masks, channel = task
    factory = _strategy_factory(spec)
    # Indexing into the shared tuple yields a plain list, which would drop
    # the container-level backend/channel attributes — forward explicitly.
    backend = getattr(networks, "kernel_backend", None)
    if channel is None:
        channel = getattr(networks, "channel", None)
    trial_nets = [networks[i] for i in net_ids]
    if factory is None:
        return list(
            run_counting_multinet(
                trial_nets, seeds, config=configs, backend=backend, channel=channel
            )
        )
    return list(
        run_counting_multinet(
            trial_nets,
            seeds,
            config=configs,
            adversary_factory=factory,
            byz_mask=masks,
            backend=backend,
            channel=channel,
        )
    )


def _run_union_shard(
    networks: Sequence[SmallWorldNetwork], task: tuple[Any, ...]
) -> list[CountingResult]:
    """Module-level worker: one fused union-stack (strategy, columns) batch.

    ``networks`` is the shared :class:`~repro.graphs.shared.NetworkTuple`
    (attached from one shared-memory segment inside workers, pre-stacked
    union CSR included, so the engine adopts it without re-stacking);
    ``task`` carries the shard's seed columns, per-column configs, and
    per-network per-column masks.
    """
    spec, col_seeds, col_configs, masks, channel = task
    factory = _strategy_factory(spec)
    if factory is None:
        return list(
            run_counting_unionstack(
                networks, col_seeds, config=col_configs, channel=channel
            )
        )
    return list(
        run_counting_unionstack(
            networks,
            col_seeds,
            config=col_configs,
            adversary_factory=factory,
            byz_mask=masks,
            channel=channel,
        )
    )


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: its axis coordinates, axis values, and result."""

    strategy_index: int
    placement_index: int
    config_index: int
    seed_index: int
    strategy: StrategySpec
    placement: BoolArray | None
    config: CountingConfig
    seed: SeedLike
    result: CountingResult


@dataclass
class SweepResult:
    """Grid-shaped view over one :func:`run_sweep` call's results.

    ``results`` is flat in strategy-major grid order (strategy, placement,
    config, seed); :meth:`cell` and :meth:`seed_batch` index it by axis
    coordinates, :meth:`cells` iterates it with coordinates attached.
    """

    seeds: list[SeedLike]
    configs: list[CountingConfig]
    placements: list[BoolArray | None]
    strategies: list[StrategySpec]
    results: list[CountingResult]

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """``(strategies, placements, configs, seeds)`` axis lengths."""
        return (
            len(self.strategies),
            len(self.placements),
            len(self.configs),
            len(self.seeds),
        )

    def _flat(self, strategy: int, placement: int, config: int, seed: int) -> int:
        n_s, n_p, n_c, n_b = self.shape
        # range(...)[i] applies python index semantics (negatives, bounds).
        s = range(n_s)[strategy]
        p = range(n_p)[placement]
        c = range(n_c)[config]
        b = range(n_b)[seed]
        return ((s * n_p + p) * n_c + c) * n_b + b

    def cell(
        self, *, strategy: int = 0, placement: int = 0, config: int = 0, seed: int = 0
    ) -> CountingResult:
        """The single result at the given axis coordinates."""
        return self.results[self._flat(strategy, placement, config, seed)]

    def seed_batch(
        self, *, strategy: int = 0, placement: int = 0, config: int = 0
    ) -> BatchCountingResult:
        """All seeds of one (strategy, placement, config) cell as a batch.

        The returned :class:`BatchCountingResult` carries the seeds in
        axis order, so its cross-trial aggregates (``rounds()``,
        ``median_phases()``, ...) summarize the repeated-seed dimension.
        """
        base = self._flat(strategy, placement, config, 0)
        return BatchCountingResult(self.results[base : base + len(self.seeds)])

    def cells(self) -> Iterator[SweepCell]:
        """Iterate every cell in flat grid order, coordinates attached."""
        i = 0
        for s, strat in enumerate(self.strategies):
            for p, mask in enumerate(self.placements):
                for c, cfg in enumerate(self.configs):
                    for b, seed in enumerate(self.seeds):
                        yield SweepCell(
                            strategy_index=s,
                            placement_index=p,
                            config_index=c,
                            seed_index=b,
                            strategy=strat,
                            placement=mask,
                            config=cfg,
                            seed=seed,
                            result=self.results[i],
                        )
                        i += 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SweepCell]:
        return self.cells()


@dataclass
class MultiSweepResult:
    """Grid-shaped view over one :func:`run_multi_sweep` call's results.

    ``results`` is flat in network-major grid order (network, strategy,
    placement, config, seed); :meth:`sweep` slices one network's block as
    a plain :class:`SweepResult` (its cells are contiguous).  ``layout``
    records which engine layout actually ran (``"union"`` or
    ``"padded"`` — ``"auto"`` is resolved before running).  For ragged
    per-network seed axes ``seeds`` is ``None`` and ``seed_axes`` holds
    one axis per network (blocks then differ in size; :attr:`shape` is
    undefined, use ``sweep(g).shape``).
    """

    networks: list[SmallWorldNetwork]
    seeds: list[SeedLike] | None
    configs: list[CountingConfig]
    placements: list[list[BoolArray | None]]
    strategies: list[StrategySpec]
    results: list[CountingResult]
    layout: str = "padded"
    seed_axes: list[list[SeedLike]] | None = None

    def seed_axis(self, network: int = 0) -> list[SeedLike]:
        """Network ``network``'s seed axis (the shared one if rectangular)."""
        if self.seed_axes is None:
            assert self.seeds is not None
            return self.seeds
        return self.seed_axes[range(len(self.networks))[network]]

    @property
    def shape(self) -> tuple[int, int, int, int, int]:
        """``(networks, strategies, placements, configs, seeds)`` lengths."""
        if self.seeds is None:
            raise ValueError(
                "this multi-sweep ran ragged per-network seed axes, so the "
                "grid has no single shape; use sweep(g).shape per network"
            )
        return (
            len(self.networks),
            len(self.strategies),
            len(self.placements[0]) if self.placements else 0,
            len(self.configs),
            len(self.seeds),
        )

    def _block(self, network: int) -> tuple[int, int]:
        g = range(len(self.networks))[network]
        n_s = len(self.strategies)
        n_p = len(self.placements[0]) if self.placements else 0
        n_c = len(self.configs)
        lo = 0
        for h in range(g):
            lo += n_s * n_p * n_c * len(self.seed_axis(h))
        return lo, lo + n_s * n_p * n_c * len(self.seed_axis(g))

    def sweep(self, network: int = 0) -> SweepResult:
        """One network's (strategy, placement, config, seed) block."""
        lo, hi = self._block(network)
        g = range(len(self.networks))[network]
        return SweepResult(
            seeds=self.seed_axis(g),
            configs=self.configs,
            placements=self.placements[g],
            strategies=self.strategies,
            results=self.results[lo:hi],
        )

    def cell(
        self,
        *,
        network: int = 0,
        strategy: int = 0,
        placement: int = 0,
        config: int = 0,
        seed: int = 0,
    ) -> CountingResult:
        """The single result at the given axis coordinates."""
        return self.sweep(network).cell(
            strategy=strategy, placement=placement, config=config, seed=seed
        )

    def seed_batch(
        self,
        *,
        network: int = 0,
        strategy: int = 0,
        placement: int = 0,
        config: int = 0,
    ) -> BatchCountingResult:
        """All seeds of one (network, strategy, placement, config) cell."""
        return self.sweep(network).seed_batch(
            strategy=strategy, placement=placement, config=config
        )

    def __len__(self) -> int:
        return len(self.results)


def _normalize_axis(
    value: Any, default: CountingConfig, single_types: type[CountingConfig]
) -> list[CountingConfig]:
    if value is None:
        return [default]
    if isinstance(value, single_types):
        return [value]
    return list(value)


def _normalize_strategy_axis(strategies: Any) -> list[StrategySpec]:
    if strategies is None:
        return [None]
    if isinstance(strategies, (str, Adversary)) or callable(strategies):
        return [strategies]
    return list(strategies)


def _normalize_placement_axis(placements: Any, n: int) -> list[BoolArray | None]:
    """One network's placement axis as a list of ``(n,)`` masks / Nones."""
    if placements is None:
        axis = [None]
    elif isinstance(placements, np.ndarray) and placements.ndim == 1:
        axis = [placements]
    else:
        axis = list(placements)
    norm: list[BoolArray | None] = []
    for mask in axis:
        if mask is None:
            norm.append(None)
            continue
        arr = np.asarray(mask, dtype=bool)
        if arr.shape != (n,):
            raise ValueError(
                f"placements must be ({n},) masks, got shape {arr.shape}"
            )
        norm.append(arr)
    return norm


def run_sweep(
    network: Any,
    *,
    seeds: Sequence[SeedLike],
    configs: CountingConfig | Sequence[CountingConfig] | None = None,
    placements: Any = None,
    strategies: Any = None,
    jobs: int | None = None,
    shard_cells: int | None = None,
    layout: str = "auto",
    backend: str | None = None,
    channel: ChannelModel | None = None,
    policy: RetryPolicy | None = None,
    report: ExecutionReport | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
) -> SweepResult:
    """Run the full (strategy x placement x config x seed) grid, fused.

    Parameters
    ----------
    network:
        The shared :class:`~repro.graphs.smallworld.SmallWorldNetwork`
        every cell runs on.  A *list or tuple of networks* adds the
        network axis and delegates to :func:`run_multi_sweep` (placements
        then follow that function's per-network conventions, and a
        :class:`MultiSweepResult` is returned).
    seeds:
        Seed axis; a materialized sequence whose entries are anything
        :func:`repro.sim.rng.make_rng` accepts.  Empty axes, duplicate
        entries, one-shot iterators, and a bare ``numpy`` ``Generator``
        are rejected eagerly with typed errors.
    configs:
        Config axis; a single :class:`CountingConfig` (the default config
        when None) or a sequence.
    placements:
        Placement axis; a single ``(n,)`` Byzantine mask, a sequence of
        masks, or None (no Byzantine nodes).  ``None`` entries inside a
        sequence mean an empty placement.
    strategies:
        Strategy axis; a single spec or a sequence of specs, each one
        ``None`` (honest Algorithm 1 — only valid with empty placements),
        a name from :data:`~repro.core.estimator.ADVERSARIES`, an
        :class:`~repro.adversary.base.Adversary` instance (single
        placement only), or a zero-argument factory.
    jobs:
        Worker processes; ``None``/``<= 1`` runs fused in-process, else
        the grid is sharded through
        :func:`repro.experiments.common.parallel_map` with the network in
        shared memory.
    shard_cells:
        Override the cost-weighted shard splitter with fixed-size chunks.
        The unit is one shard *item*: a grid cell on single-network and
        padded multi-network sweeps, but a union-stack **column** — i.e.
        ``len(networks)`` cells — when the union layout runs (union
        shards can only cut on column boundaries).
    layout:
        Network-axis layout selector (``"auto"``/``"union"``/``"padded"``,
        see :func:`run_multi_sweep`); only meaningful when ``network`` is
        a list — a single-network sweep has no layout choice and rejects
        explicit non-auto values.
    backend:
        Flood-kernel compute backend (``"numpy"``, ``"numba"``,
        ``"auto"``) or ``None`` for the default resolution — the
        ``REPRO_KERNEL_BACKEND`` env override, then auto.  Applied to
        every cell and shipped to sharded workers (on the task for
        single-network sweeps, on the shared network container for
        multi-network ones); bit-for-bit neutral (see
        :mod:`repro.sim.backends`).
    channel:
        Optional :class:`~repro.sim.channel.ChannelModel` applied to every
        cell — the lossy/noisy message channel sweep axis.  Rides the
        shard task tuples like ``backend`` does (plain frozen data, so it
        pickles to workers); a null channel is normalized to ``None`` and
        the sweep is then bit-for-bit identical to a channel-free run.
    policy:
        :class:`repro.exec.RetryPolicy` for the sharded dispatch —
        per-shard timeout, retry budget, backoff, degradation threshold.
        ``None`` uses the defaults (bounded retries, no timeout).
    report:
        :class:`repro.exec.ExecutionReport` to accumulate per-shard
        fault accounting (attempts, retries, timeouts, crashes,
        degradations) for this sweep's map.
    checkpoint:
        Path to an on-disk journal: every completed shard's results are
        spilled durably, and a re-run of the *identical* sweep (same
        grid, same ``jobs``/``shard_cells`` — the shard plan is keyed)
        resumes from the journal instead of recomputing finished shards.

    Returns
    -------
    SweepResult
        Grid-shaped results, each cell bit-for-bit equal to its scalar
        sequential run (see the module docstring).
    """
    if isinstance(network, (list, tuple)):
        return run_multi_sweep(
            network,
            seeds=seeds,
            configs=configs,
            placements=placements,
            strategies=strategies,
            jobs=jobs,
            shard_cells=shard_cells,
            layout=layout,
            backend=backend,
            channel=channel,
            policy=policy,
            report=report,
            checkpoint=checkpoint,
        )
    if layout != "auto":
        raise ValueError(
            "layout selects the network-axis engine; a single-network sweep "
            "has no layout choice (pass a list of networks to use "
            f"layout={layout!r})"
        )
    n = network.n
    channel = _normalize_channel(channel)
    seeds = _validate_seeds(seeds)
    config_axis = _normalize_axis(configs, CountingConfig(), CountingConfig)
    strategy_axis = _normalize_strategy_axis(strategies)
    norm_placements = _normalize_placement_axis(placements, n)

    any_byz = any(m is not None and m.any() for m in norm_placements)
    if any_byz and any(spec is None for spec in strategy_axis):
        raise ValueError(
            "a None strategy (honest Algorithm 1) cannot run non-empty "
            "placements; give those cells an adversary strategy"
        )

    empty_mask = np.zeros(n, dtype=bool)
    cells_per_strategy = len(norm_placements) * len(config_axis) * len(seeds)

    # One strategy block's (placement, config, seed) axes in grid order;
    # identical for every strategy, so built once and shard-sliced below.
    trial_seeds: list[SeedLike] = []
    trial_configs: list[CountingConfig] = []
    trial_masks: list[BoolArray] = []
    for mask in norm_placements:
        for cfg in config_axis:
            for seed in seeds:
                trial_seeds.append(seed)
                trial_configs.append(cfg)
                trial_masks.append(mask if mask is not None else empty_mask)

    cost_cache: dict[tuple[int, CountingConfig], float] = {}
    base_costs = [_cell_cost(n, network.d, cfg, cost_cache) for cfg in trial_configs]
    target_cost: float | None = None
    if jobs and jobs > 1:
        total_cost = sum(
            sum(base_costs) * _strategy_cost_factor(spec) for spec in strategy_axis
        )
        target_cost = total_cost / jobs

    tasks: list[tuple[Any, ...]] = []
    for spec in strategy_axis:
        factor = _strategy_cost_factor(spec)
        block_target = None if target_cost is None else target_cost / factor
        for lo, hi in _shard_bounds(base_costs, block_target, shard_cells):
            masks: BoolArray | None = None
            if spec is not None:
                masks = np.array(trial_masks[lo:hi], dtype=bool).reshape(hi - lo, n)
            tasks.append(
                (spec, trial_seeds[lo:hi], trial_configs[lo:hi], masks, backend, channel)
            )

    from ..experiments.common import parallel_map

    shard_results = parallel_map(
        _run_shard,
        tasks,
        jobs=jobs,
        network=network,
        policy=policy,
        report=report,
        checkpoint=checkpoint,
    )
    results = [res for shard in shard_results for res in shard]
    assert len(results) == cells_per_strategy * len(strategy_axis)
    return SweepResult(
        seeds=seeds,
        configs=config_axis,
        placements=norm_placements,
        strategies=strategy_axis,
        results=results,
    )


def run_multi_sweep(
    networks: Sequence[SmallWorldNetwork],
    *,
    seeds: Any,
    configs: CountingConfig | Sequence[CountingConfig] | None = None,
    placements: Any = None,
    strategies: Any = None,
    jobs: int | None = None,
    shard_cells: int | None = None,
    layout: str = "auto",
    backend: str | None = None,
    channel: ChannelModel | None = None,
    policy: RetryPolicy | None = None,
    report: ExecutionReport | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
) -> MultiSweepResult:
    """Run a (network x strategy x placement x config x seed) grid, fused
    across the network axis.

    Cells on *different networks* — including different sizes — fuse into
    one batch through the layout selected by ``layout``: the zero-padding
    union stack (:func:`repro.core.batch.run_counting_unionstack`) for
    rectangular grids, or the padded trials-as-columns batch
    (:func:`repro.core.batch.run_counting_multinet`) for ragged ones; all
    networks must share the degree ``d``.  Every cell is bit-for-bit equal
    to the per-network :func:`run_sweep` call it replaces (same network,
    config, strategy, placement, seed) under either layout.

    Parameters
    ----------
    networks:
        The network axis (a non-empty sequence; repeats of one sampled
        graph are allowed and share kernels).
    seeds:
        Either one shared seed axis (the rectangular grid: every network
        runs every seed), or per-network axes — a sequence of sequences,
        one per network, lengths free to differ (the ragged grid; padded
        layout only).
    configs, strategies, jobs, shard_cells:
        As in :func:`run_sweep` (configs/strategies are shared grid
        axes).  Note ``shard_cells`` counts union-stack *columns* — each
        ``len(networks)`` cells — when the union layout runs; padded
        sweeps keep the per-cell unit.
    placements:
        Per-network placement axes, because a ``(n,)`` mask only fits one
        network: ``None`` (no Byzantine nodes anywhere), a *callable*
        ``net -> placement axis`` evaluated per network (e.g. ``lambda
        net: placement_for_delta(net, 0.5, rng=7)``), or a sequence with
        one placement-axis spec per network.  The resulting axis length
        must agree across networks (it is a grid axis).
    layout:
        ``"auto"`` (default) picks ``"union"`` for rectangular grids of
        int/None seeds and falls back to ``"padded"`` otherwise.
        Explicit ``"union"``/``"padded"`` force the engine; union-
        incompatible inputs under ``layout="union"`` raise eagerly
        (ragged seed axes: :class:`ValueError`; Generator seeds:
        :class:`TypeError`).
    backend:
        As in :func:`run_sweep`; rides on the shared network container
        (``NetworkTuple.kernel_backend``), so it survives shared-memory
        reconstruction inside sharded workers.
    channel:
        As in :func:`run_sweep`; the channel model rides the shard task
        tuples (and, when the caller hands in a ready
        :class:`~repro.graphs.shared.NetworkTuple` with a ``channel``
        attribute, the engines adopt that container default too).
    policy, report, checkpoint:
        Resilient-dispatch knobs, as in :func:`run_sweep` — retry/timeout
        policy, per-shard fault accounting, and the checkpoint/resume
        journal path.

    Returns
    -------
    MultiSweepResult
        Results in network-major grid order; ``.sweep(g)`` gives network
        ``g``'s block as a plain :class:`SweepResult`, and ``.layout``
        records which engine ran.
    """
    if layout not in LAYOUTS:
        raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
    # Keep the caller's container: a ready NetworkTuple (the resident
    # engine's cached payload, pre-stacked union CSR attached) is handed
    # to parallel_map as-is so serial maps skip re-stacking.
    networks_payload = networks if isinstance(networks, tuple) else None
    networks = list(networks)
    if not networks:
        raise ValueError("run_multi_sweep needs at least one network")
    degrees = {int(net.d) for net in networks}
    if len(degrees) > 1:
        raise ValueError(
            "all networks in one multi-sweep must share the degree d (the "
            f"phase schedule is d-dependent); got d in {sorted(degrees)}"
        )
    d = networks[0].d
    channel = _normalize_channel(channel)
    shared_seeds, seed_axes = _split_seed_axes(seeds, networks)
    if layout == "union":
        if seed_axes is not None:
            raise ValueError(
                "layout='union' needs one shared seed axis (a union column "
                "is one seed replicated across every network); per-network "
                "(ragged) seed axes only run on layout='padded'"
            )
        if any(isinstance(s, np.random.Generator) for s in shared_seeds):
            raise TypeError(
                "layout='union' cannot replicate numpy Generator seeds "
                "across the network axis; pass int seeds, or use "
                "layout='padded'"
            )
        use_union = True
    elif layout == "padded":
        use_union = False
    else:
        use_union = shared_seeds is not None and not any(
            isinstance(s, np.random.Generator) for s in shared_seeds
        )
    config_axis = _normalize_axis(configs, CountingConfig(), CountingConfig)
    strategy_axis = _normalize_strategy_axis(strategies)

    if placements is None:
        per_net_placements: list[list[BoolArray | None]] = [[None] for _ in networks]
    elif callable(placements) and not isinstance(placements, np.ndarray):
        per_net_placements = [
            _normalize_placement_axis(placements(net), net.n) for net in networks
        ]
    else:
        specs = list(placements)
        if len(specs) != len(networks):
            raise ValueError(
                f"placements must give one placement axis per network "
                f"({len(networks)}), got {len(specs)} entries; use a callable "
                "net -> axis to derive them"
            )
        per_net_placements = [
            _normalize_placement_axis(spec, net.n)
            for spec, net in zip(specs, networks)
        ]
    lengths = {len(axis) for axis in per_net_placements}
    if len(lengths) > 1:
        raise ValueError(
            "the placement axis must have the same length for every network "
            f"(it is a grid axis); got lengths {sorted(lengths)}"
        )
    n_p = lengths.pop()

    any_byz = any(
        m is not None and m.any() for axis in per_net_placements for m in axis
    )
    if any_byz and any(spec is None for spec in strategy_axis):
        raise ValueError(
            "a None strategy (honest Algorithm 1) cannot run non-empty "
            "placements; give those cells an adversary strategy"
        )

    from ..experiments.common import parallel_map

    n_g, n_s, n_c = len(networks), len(strategy_axis), len(config_axis)
    cost_cache: dict[tuple[int, CountingConfig], float] = {}

    if use_union:
        # ---- union-stack layout (rectangular grids only) ---------------
        # Columns of the union stack are the (placement, config, seed)
        # triples in intra-network flat order; every column spans the
        # whole network axis, so shard boundaries cut on column
        # boundaries and a column's modeled cost sums over the networks.
        assert shared_seeds is not None
        n_b = len(shared_seeds)
        block = n_s * n_p * n_c * n_b  # cells per network (network-major)
        col_specs: list[tuple[int, int, int]] = []
        col_costs: list[float] = []
        for p in range(n_p):
            for c, cfg in enumerate(config_axis):
                col_cost = sum(
                    _cell_cost(int(net.n), d, cfg, cost_cache) for net in networks
                )
                for b in range(n_b):
                    col_specs.append((p, c, b))
                    col_costs.append(col_cost)

        target_cost: float | None = None
        if jobs and jobs > 1:
            total_cost = sum(col_costs) * sum(
                _strategy_cost_factor(spec) for spec in strategy_axis
            )
            target_cost = total_cost / jobs

        tasks: list[tuple[Any, ...]] = []
        task_cols: list[list[int]] = []
        for s, spec in enumerate(strategy_axis):
            factor = _strategy_cost_factor(spec)
            block_target = None if target_cost is None else target_cost / factor
            for lo, hi in _shard_bounds(col_costs, block_target, shard_cells):
                chunk = col_specs[lo:hi]
                masks: list[list[BoolArray | None]] | None = None
                if spec is not None:
                    masks = [
                        [per_net_placements[g][p] for p, _c, _b in chunk]
                        for g in range(n_g)
                    ]
                tasks.append(
                    (
                        spec,
                        [shared_seeds[b] for _p, _c, b in chunk],
                        [config_axis[c] for _p, c, _b in chunk],
                        masks,
                        channel,
                    )
                )
                task_cols.append(
                    [((s * n_p + p) * n_c + c) * n_b + b for p, c, b in chunk]
                )

        shard_results = parallel_map(
            _run_union_shard,
            tasks,
            jobs=jobs,
            network=networks_payload if networks_payload is not None else networks,
            union_csr=True,
            kernel_backend=backend,
            policy=policy,
            report=report,
            checkpoint=checkpoint,
        )
        results: list[CountingResult | None] = [None] * (n_g * block)
        for offs, shard in zip(task_cols, shard_results, strict=True):
            n_cols = len(offs)
            for g in range(n_g):
                for j, off in enumerate(offs):
                    results[g * block + off] = shard[g * n_cols + j]
        assert all(res is not None for res in results)
        return MultiSweepResult(
            networks=networks,
            seeds=shared_seeds,
            configs=config_axis,
            placements=per_net_placements,
            strategies=strategy_axis,
            results=results,  # type: ignore[arg-type]
            layout="union",
        )

    # ---- padded layout (handles ragged per-network seed axes) ----------
    if seed_axes is not None:
        axes = seed_axes
    else:
        assert shared_seeds is not None
        axes = [shared_seeds] * n_g
    net_off = [0]
    for ax in axes:
        net_off.append(net_off[-1] + n_s * n_p * n_c * len(ax))
    total_cells = net_off[-1]

    # Per-strategy cell lists spanning all networks, in network-major
    # (network, placement, config, seed) order — the batch the engine fuses.
    per_strategy: list[list[tuple[int, SeedLike, CountingConfig, int, BoolArray | None]]] = [
        [] for _ in strategy_axis
    ]
    per_strategy_costs: list[list[float]] = [[] for _ in strategy_axis]
    for s, _spec in enumerate(strategy_axis):
        for g, net in enumerate(networks):
            axis_g = axes[g]
            nb_g = len(axis_g)
            for p in range(n_p):
                mask = per_net_placements[g][p]
                for c, cfg in enumerate(config_axis):
                    cost = _cell_cost(int(net.n), d, cfg, cost_cache)
                    for b, seed in enumerate(axis_g):
                        flat = net_off[g] + (((s * n_p) + p) * n_c + c) * nb_g + b
                        per_strategy[s].append((flat, seed, cfg, g, mask))
                        per_strategy_costs[s].append(cost)

    target_cost = None
    if jobs and jobs > 1:
        total_cost = sum(
            sum(per_strategy_costs[s]) * _strategy_cost_factor(spec)
            for s, spec in enumerate(strategy_axis)
        )
        target_cost = total_cost / jobs

    padded_tasks: list[tuple[Any, ...]] = []
    task_flats: list[list[int]] = []
    for s, spec in enumerate(strategy_axis):
        factor = _strategy_cost_factor(spec)
        block_target = None if target_cost is None else target_cost / factor
        for lo, hi in _shard_bounds(per_strategy_costs[s], block_target, shard_cells):
            cells = per_strategy[s][lo:hi]
            task_flats.append([cell[0] for cell in cells])
            cell_masks: list[BoolArray] | None = None
            if spec is not None:
                cell_masks = [
                    cell[4]
                    if cell[4] is not None
                    else np.zeros(int(networks[cell[3]].n), dtype=bool)
                    for cell in cells
                ]
            padded_tasks.append(
                (
                    spec,
                    [cell[1] for cell in cells],
                    [cell[2] for cell in cells],
                    [cell[3] for cell in cells],
                    cell_masks,
                    channel,
                )
            )

    shard_results = parallel_map(
        _run_multi_shard,
        padded_tasks,
        jobs=jobs,
        network=networks_payload if networks_payload is not None else networks,
        kernel_backend=backend,
        policy=policy,
        report=report,
        checkpoint=checkpoint,
    )
    results = [None] * total_cells
    for flats, shard in zip(task_flats, shard_results, strict=True):
        for flat, res in zip(flats, shard, strict=True):
            results[flat] = res
    assert all(res is not None for res in results)
    return MultiSweepResult(
        networks=networks,
        seeds=shared_seeds,
        configs=config_axis,
        placements=per_net_placements,
        strategies=strategy_axis,
        results=results,  # type: ignore[arg-type]
        layout="padded",
        seed_axes=seed_axes,
    )

"""Fused sweep engine over (seed, config, placement, strategy) grids.

The paper's headline experiments sweep over *placements and strategies*,
not just seeds: Theorem 1 accuracy (E07) contrasts adversary strategies at
several Byzantine budgets, the Core-resilience study (E11) varies liar
placements, and the ablation grids (E14) vary budget, placement shape, and
the error parameter.  Each cell of such a grid is one independent
:func:`repro.core.runner.run_counting` trial, so the whole grid flattens
into trials-as-columns batches for the batched engine
(:func:`repro.core.batch.run_counting_batch`) — which batches across
seeds, configs (grouped), and per-trial Byzantine placements.  The only
axis that cannot share a batch is the *strategy* (one adversary factory
drives one batch), so :func:`run_sweep` fuses each strategy's
``placements x configs x seeds`` block into a single engine call.

Equivalence contract
--------------------
Every cell is **bit-for-bit** equal to the scalar run it replaces::

    run_byzantine_counting(network, make_adversary(strategy), placement,
                           config=config, seed=seed)

(or plain Algorithm 1 ``run_counting(network, config, seed=seed)`` for
``strategies=None`` honest grids) — enforced by
``tests/core/test_sweep.py``.  Results come back in grid order
(strategy-major: strategy, placement, config, seed) wrapped in a
:class:`SweepResult` for shaped access.

Sharding
--------
``jobs=N`` fans the grid out over worker processes through
:func:`repro.experiments.common.parallel_map` with the network placed in
one shared-memory segment (workers attach zero-copy).  Shard boundaries
are picked automatically from the grid size and ``jobs``: chunks are large
enough to keep the batched engine efficient (``MIN_SHARD_CELLS`` trials)
but small enough to fill the pool, and never straddle a strategy boundary
(override with ``shard_cells``).  For ``jobs > 1`` every strategy spec
must be picklable — a name from :data:`~repro.core.estimator.ADVERSARIES`,
a module-level factory, or a plain adversary instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..adversary.base import Adversary
from .batch import run_counting_batch
from .config import CountingConfig
from .results import BatchCountingResult, CountingResult

__all__ = ["run_sweep", "SweepResult", "SweepCell", "MIN_SHARD_CELLS"]

#: Smallest shard the auto-splitter will produce: below this the batched
#: engine's per-call fixed costs dominate and sharding stops paying.
MIN_SHARD_CELLS = 4


def _strategy_factory(spec):
    """Resolve a strategy spec to what ``run_counting_batch`` expects.

    A spec is ``None`` (honest Algorithm 1), a registered adversary name,
    an :class:`Adversary` instance, or a zero-argument factory.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        from .estimator import make_adversary

        return lambda name=spec: make_adversary(name)
    return spec  # Adversary instance or zero-argument factory


def _run_shard(network, task):
    """Module-level worker: one fused (strategy, cells-chunk) batch.

    ``task`` is ``(spec, seeds, configs, masks)`` with ``masks`` a
    ``(B, n)`` stack or None; runs on the (possibly shared-memory
    attached) network inside a worker process.
    """
    spec, seeds, configs, masks = task
    factory = _strategy_factory(spec)
    if factory is None:
        return list(run_counting_batch(network, seeds, config=configs))
    return list(
        run_counting_batch(
            network,
            seeds,
            config=configs,
            adversary_factory=factory,
            byz_mask=masks,
        )
    )


def _auto_shard_cells(total_cells: int, jobs: int | None) -> int:
    """Cells per shard: fill ``jobs`` workers without starving the batch.

    Serial sweeps get one shard per strategy (maximal batching).  Sharded
    sweeps aim for ``jobs`` roughly equal chunks over the whole grid, but
    never below :data:`MIN_SHARD_CELLS` — tiny batches spend more on
    per-call fixed costs than they save in parallelism.
    """
    if not jobs or jobs <= 1:
        return total_cells
    return max(MIN_SHARD_CELLS, math.ceil(total_cells / jobs))


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: its axis coordinates, axis values, and result."""

    strategy_index: int
    placement_index: int
    config_index: int
    seed_index: int
    strategy: object
    placement: np.ndarray | None
    config: CountingConfig
    seed: object
    result: CountingResult


@dataclass
class SweepResult:
    """Grid-shaped view over one :func:`run_sweep` call's results.

    ``results`` is flat in strategy-major grid order (strategy, placement,
    config, seed); :meth:`cell` and :meth:`seed_batch` index it by axis
    coordinates, :meth:`cells` iterates it with coordinates attached.
    """

    seeds: list
    configs: list[CountingConfig]
    placements: list
    strategies: list
    results: list[CountingResult]

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """``(strategies, placements, configs, seeds)`` axis lengths."""
        return (
            len(self.strategies),
            len(self.placements),
            len(self.configs),
            len(self.seeds),
        )

    def _flat(self, strategy: int, placement: int, config: int, seed: int) -> int:
        n_s, n_p, n_c, n_b = self.shape
        # range(...)[i] applies python index semantics (negatives, bounds).
        s = range(n_s)[strategy]
        p = range(n_p)[placement]
        c = range(n_c)[config]
        b = range(n_b)[seed]
        return ((s * n_p + p) * n_c + c) * n_b + b

    def cell(
        self, *, strategy: int = 0, placement: int = 0, config: int = 0, seed: int = 0
    ) -> CountingResult:
        """The single result at the given axis coordinates."""
        return self.results[self._flat(strategy, placement, config, seed)]

    def seed_batch(
        self, *, strategy: int = 0, placement: int = 0, config: int = 0
    ) -> BatchCountingResult:
        """All seeds of one (strategy, placement, config) cell as a batch.

        The returned :class:`BatchCountingResult` carries the seeds in
        axis order, so its cross-trial aggregates (``rounds()``,
        ``median_phases()``, ...) summarize the repeated-seed dimension.
        """
        base = self._flat(strategy, placement, config, 0)
        return BatchCountingResult(self.results[base : base + len(self.seeds)])

    def cells(self) -> Iterator[SweepCell]:
        """Iterate every cell in flat grid order, coordinates attached."""
        i = 0
        for s, strat in enumerate(self.strategies):
            for p, mask in enumerate(self.placements):
                for c, cfg in enumerate(self.configs):
                    for b, seed in enumerate(self.seeds):
                        yield SweepCell(
                            strategy_index=s,
                            placement_index=p,
                            config_index=c,
                            seed_index=b,
                            strategy=strat,
                            placement=mask,
                            config=cfg,
                            seed=seed,
                            result=self.results[i],
                        )
                        i += 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SweepCell]:
        return self.cells()


def _normalize_axis(value, default, single_types) -> list:
    if value is None:
        return [default]
    if isinstance(value, single_types):
        return [value]
    return list(value)


def run_sweep(
    network,
    *,
    seeds: Sequence,
    configs: CountingConfig | Sequence[CountingConfig] | None = None,
    placements=None,
    strategies=None,
    jobs: int | None = None,
    shard_cells: int | None = None,
) -> SweepResult:
    """Run the full (strategy x placement x config x seed) grid, fused.

    Parameters
    ----------
    network:
        The shared :class:`~repro.graphs.smallworld.SmallWorldNetwork`
        every cell runs on (grids over several networks are separate
        sweeps — the batched kernels are per-adjacency).
    seeds:
        Seed axis; anything :func:`repro.sim.rng.make_rng` accepts.
    configs:
        Config axis; a single :class:`CountingConfig` (the default config
        when None) or a sequence.
    placements:
        Placement axis; a single ``(n,)`` Byzantine mask, a sequence of
        masks, or None (no Byzantine nodes).  ``None`` entries inside a
        sequence mean an empty placement.
    strategies:
        Strategy axis; a single spec or a sequence of specs, each one
        ``None`` (honest Algorithm 1 — only valid with empty placements),
        a name from :data:`~repro.core.estimator.ADVERSARIES`, an
        :class:`~repro.adversary.base.Adversary` instance (single
        placement only), or a zero-argument factory.
    jobs:
        Worker processes; ``None``/``<= 1`` runs fused in-process, else
        the grid is sharded through
        :func:`repro.experiments.common.parallel_map` with the network in
        shared memory.
    shard_cells:
        Override the automatic shard size (cells per engine call when
        sharding; see :func:`_auto_shard_cells`).

    Returns
    -------
    SweepResult
        Grid-shaped results, each cell bit-for-bit equal to its scalar
        sequential run (see the module docstring).
    """
    n = network.n
    seeds = list(seeds)
    if not seeds:
        raise ValueError("run_sweep needs at least one seed")
    config_axis = _normalize_axis(configs, CountingConfig(), CountingConfig)
    if strategies is None:
        strategy_axis: list = [None]
    elif isinstance(strategies, (str, Adversary)) or callable(strategies):
        strategy_axis = [strategies]
    else:
        strategy_axis = list(strategies)

    if placements is None:
        placement_axis = [None]
    elif isinstance(placements, np.ndarray) and placements.ndim == 1:
        placement_axis = [placements]
    else:
        placement_axis = list(placements)
    norm_placements: list[np.ndarray | None] = []
    for mask in placement_axis:
        if mask is None:
            norm_placements.append(None)
            continue
        arr = np.asarray(mask, dtype=bool)
        if arr.shape != (n,):
            raise ValueError(
                f"placements must be ({n},) masks, got shape {arr.shape}"
            )
        norm_placements.append(arr)

    any_byz = any(m is not None and m.any() for m in norm_placements)
    if any_byz and any(spec is None for spec in strategy_axis):
        raise ValueError(
            "a None strategy (honest Algorithm 1) cannot run non-empty "
            "placements; give those cells an adversary strategy"
        )

    empty_mask = np.zeros(n, dtype=bool)
    cells_per_strategy = len(norm_placements) * len(config_axis) * len(seeds)
    total_cells = cells_per_strategy * len(strategy_axis)
    per_shard = shard_cells if shard_cells is not None else _auto_shard_cells(
        total_cells, jobs
    )
    if per_shard < 1:
        raise ValueError(f"shard_cells must be >= 1, got {per_shard}")

    # One strategy block's (placement, config, seed) axes in grid order;
    # identical for every strategy, so built once and shard-sliced below.
    trial_seeds: list = []
    trial_configs: list[CountingConfig] = []
    trial_masks: list[np.ndarray] = []
    for mask in norm_placements:
        for cfg in config_axis:
            for seed in seeds:
                trial_seeds.append(seed)
                trial_configs.append(cfg)
                trial_masks.append(mask if mask is not None else empty_mask)

    tasks = []
    for spec in strategy_axis:
        for lo in range(0, cells_per_strategy, per_shard):
            hi = min(lo + per_shard, cells_per_strategy)
            masks = None
            if spec is not None:
                masks = np.array(trial_masks[lo:hi], dtype=bool).reshape(hi - lo, n)
            tasks.append((spec, trial_seeds[lo:hi], trial_configs[lo:hi], masks))

    from ..experiments.common import parallel_map

    shard_results = parallel_map(_run_shard, tasks, jobs=jobs, network=network)
    results = [res for shard in shard_results for res in shard]
    assert len(results) == total_cells
    return SweepResult(
        seeds=seeds,
        configs=config_axis,
        placements=norm_placements,
        strategies=strategy_axis,
        results=results,
    )

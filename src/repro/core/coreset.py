"""The Core: largest uncrashed-honest component of ``H`` (Section 3.4.1).

``Crashed`` is the set of honest nodes that shut down during the pre-phase;
``Core`` is the largest connected component of ``H`` induced on
``Honest \\ Crashed``.  Lemma 14 (via [5]) guarantees ``|Core| >= n - o(n)``
and that Core remains an expander with constant edge expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import BoolArray, SeedLike
from ..graphs.balls import largest_component_mask
from ..graphs.hgraph import HGraph
from ..sim.rng import make_rng

__all__ = ["CoreReport", "compute_core"]


@dataclass(frozen=True)
class CoreReport:
    """The Core mask plus the Lemma 14 quantities."""

    core: BoolArray
    crashed: BoolArray
    byz: BoolArray
    size: int
    n: int
    expansion_lower_estimate: float

    @property
    def fraction(self) -> float:
        return self.size / self.n


def compute_core(
    h: HGraph,
    byz_mask: BoolArray,
    crashed: BoolArray,
    *,
    rng: SeedLike = 0,
    expansion_trials: int = 32,
) -> CoreReport:
    """Compute Core and estimate its edge expansion by sampled cuts."""
    byz_mask = np.asarray(byz_mask, dtype=bool)
    crashed = np.asarray(crashed, dtype=bool)
    blocked = byz_mask | crashed
    core = largest_component_mask(h.indptr, h.indices, blocked=blocked)
    size = int(core.sum())
    expansion = 0.0
    if size >= 4:
        expansion = _core_expansion_estimate(
            h, core, make_rng(rng), expansion_trials
        )
    return CoreReport(
        core=core,
        crashed=crashed,
        byz=byz_mask,
        size=size,
        n=h.n,
        expansion_lower_estimate=expansion,
    )


def _core_expansion_estimate(
    h: HGraph, core: BoolArray, rng: np.random.Generator, trials: int
) -> float:
    """Minimum sampled cut expansion of the subgraph induced on Core.

    Boundary edges are counted only inside Core (edges to non-core nodes
    are ignored), matching Lemma 14's claim about Core as a graph.
    """
    core_nodes = np.flatnonzero(core)
    m = core_nodes.shape[0]
    best = float(h.d)
    for _ in range(trials):
        size = int(rng.integers(1, m // 2 + 1))
        subset = rng.choice(core_nodes, size=size, replace=False)
        in_subset = np.zeros(h.n, dtype=bool)
        in_subset[subset] = True
        boundary = 0
        for v in subset:
            nbrs = h.neighbors(int(v))
            boundary += int(np.count_nonzero(core[nbrs] & ~in_subset[nbrs]))
        best = min(best, boundary / size)
    return best

"""The paper's primary contribution: Byzantine counting (Algorithms 1 & 2)."""

from .basic_counting import run_basic_counting
from .batch import run_counting_batch, run_counting_multinet, run_counting_unionstack
from .byzantine_counting import run_byzantine_counting
from .colors import (
    color_pmf,
    color_sf,
    expected_max_color,
    max_color_cdf,
    sample_colors,
)
from .config import CountingConfig
from .coreset import CoreReport, compute_core
from .estimator import (
    ADVERSARIES,
    EstimateReport,
    estimate_network_size,
    make_adversary,
    practical_band,
)
from .neighborhood import (
    AdjacencyClaims,
    ConflictError,
    crash_phase,
    find_conflicts,
    infer_child_relation,
    reconstruct_h_ball,
    truthful_claims,
)
from .phases import (
    alpha,
    alpha_appendix,
    alpha_pseudocode,
    color_threshold,
    continue_criterion,
    ell,
    subphase_count,
)
from .results import UNDECIDED, BatchCountingResult, CountingResult
from .runner import run_counting
from .sweep import (
    MultiSweepResult,
    SweepCell,
    SweepResult,
    run_multi_sweep,
    run_sweep,
)

__all__ = [
    "run_basic_counting",
    "run_byzantine_counting",
    "run_counting",
    "run_counting_batch",
    "run_counting_multinet",
    "run_counting_unionstack",
    "run_sweep",
    "run_multi_sweep",
    "SweepResult",
    "MultiSweepResult",
    "SweepCell",
    "CountingConfig",
    "CountingResult",
    "BatchCountingResult",
    "UNDECIDED",
    "sample_colors",
    "color_pmf",
    "color_sf",
    "max_color_cdf",
    "expected_max_color",
    "alpha",
    "alpha_appendix",
    "alpha_pseudocode",
    "subphase_count",
    "color_threshold",
    "continue_criterion",
    "ell",
    "ConflictError",
    "AdjacencyClaims",
    "truthful_claims",
    "reconstruct_h_ball",
    "find_conflicts",
    "crash_phase",
    "infer_child_relation",
    "CoreReport",
    "compute_core",
    "EstimateReport",
    "estimate_network_size",
    "make_adversary",
    "practical_band",
    "ADVERSARIES",
]

"""Agent-based (message-level) implementation of Algorithms 1 and 2.

Every node is a :class:`~repro.sim.node.NodeProgram` exchanging real
message objects through the :class:`~repro.sim.engine.SynchronousEngine`:

* the **pre-phase** broadcasts :class:`AdjacencyClaimMessage`s and each
  honest node runs the actual Lemma 3 reconstruction
  (:func:`repro.core.neighborhood.reconstruct_h_ball`), crashing on
  contradiction — this is the genuinely message-level path used by the
  Figure-1 tests;
* **flooding** sends :class:`ColorMessage`s along the reconstructed ``H``
  ports, one engine round per protocol round;
* **verification** consults a provenance ledger the driver maintains: a
  color is *legitimate* iff it was generated at a subphase start or
  injected within the first ``k - 1`` rounds — precisely the predicate the
  witness-query protocol decides (Lemmas 15/16), with the query/reply
  message cost metered.

The driver mirrors :func:`repro.core.runner.run_counting` phase-for-phase
and consumes randomness in the same order, so for identical seeds the two
engines produce **identical per-node decisions** — the cross-validation
test in ``tests/integration/test_engine_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import BoolArray, Int64Array, SeedLike
from ..adversary.base import Adversary, SubphasePlan, SubphaseState
from ..graphs.smallworld import SmallWorldNetwork
from ..sim.engine import SynchronousEngine
from ..sim.messages import AdjacencyClaimMessage, ColorMessage
from ..sim.node import NodeProgram, RoundContext
from ..sim.rng import make_rng, spawn
from .colors import sample_colors
from .config import CountingConfig
from .neighborhood import find_conflicts, truthful_claims
from .phases import color_threshold, subphase_count
from .results import UNDECIDED, CountingResult

__all__ = ["run_counting_agents", "CountingAgent", "ByzantineCountingAgent"]


@dataclass
class _Ledger:
    """Provenance of color values: which are legitimate this subphase."""

    legitimate: set[int] = field(default_factory=set)

    def reset(self, values: Int64Array) -> None:
        self.legitimate = set(int(v) for v in values if v > 0)

    def admit(self, value: int) -> None:
        self.legitimate.add(int(value))

    def is_legit(self, value: int) -> bool:
        return int(value) in self.legitimate


class CountingAgent(NodeProgram):
    """Honest node: floods the running max, records per-round maxima."""

    def __init__(self, node: int, ledger: _Ledger, verification: bool) -> None:
        self.node = node
        self.ledger = ledger
        self.verification = verification
        self.crashed = False
        self.h_ports: list[int] = []
        self.claim: tuple[int, ...] = ()
        self.mode = "idle"  # idle | claim | listen | flood
        self.cur = 0
        self.k_last = 0
        self.k_prev_max = 0
        self.phase = 0
        self.subphase = 0
        self.received_claims: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def begin_subphase(self, color: int, phase: int, subphase: int) -> None:
        self.cur = int(color)
        self.k_last = 0
        self.k_prev_max = 0
        self.phase = phase
        self.subphase = subphase

    def on_round(self, ctx: RoundContext) -> None:
        if self.mode == "claim":
            for u in ctx.neighbors:
                ctx.send(int(u), AdjacencyClaimMessage(self.claim))
            return
        if self.mode == "listen":
            for sender, msg in ctx.inbox:
                if isinstance(msg, AdjacencyClaimMessage):
                    self.received_claims[sender] = msg.claimed_h_neighbors
            return
        if self.mode == "flood":
            best = 0
            for _sender, msg in ctx.inbox:
                if not isinstance(msg, ColorMessage):
                    continue
                value = msg.color
                if self.verification and not self.ledger.is_legit(value):
                    continue  # the (k-1)-ball witnesses refuted it
                best = max(best, value)
            # k_last holds only this round's receipt; the driver harvests it
            # after every engine step and tracks the running maxima itself.
            self.k_last = best
            self.cur = max(self.cur, best)
            if self.cur:
                for u in self.h_ports:
                    ctx.send(u, ColorMessage(self.cur, self.phase, self.subphase))
            return
        # idle: do nothing


class ByzantineCountingAgent(NodeProgram):
    """Byzantine node driven by the adversary's :class:`SubphasePlan`."""

    def __init__(self, node: int) -> None:
        self.node = node
        self.crashed = False  # Byzantine nodes never crash
        self.h_ports: list[int] = []
        self.claim: tuple[int, ...] | None = ()
        self.mode = "idle"
        self.cur = 0
        self.phase = 0
        self.subphase = 0
        self.relay = True
        #: protocol round -> injected value (already filtered for legality).
        self.sends_at: dict[int, int] = {}
        self.current_t = 0

    def on_round(self, ctx: RoundContext) -> None:
        if self.mode == "claim":
            if self.claim is not None:
                for u in ctx.neighbors:
                    ctx.send(int(u), AdjacencyClaimMessage(tuple(self.claim)))
            return
        if self.mode == "listen":
            return
        if self.mode == "flood":
            for _sender, msg in ctx.inbox:
                if isinstance(msg, ColorMessage):
                    self.cur = max(self.cur, msg.color)
            t = self.current_t
            inject = self.sends_at.get(t)
            if inject is not None:
                self.cur = max(self.cur, inject)
            value = self.cur if self.relay else (inject or 0)
            if value:
                for u in self.h_ports:
                    ctx.send(u, ColorMessage(value, self.phase, self.subphase))
            return


def run_counting_agents(
    network: SmallWorldNetwork,
    config: CountingConfig | None = None,
    seed: SeedLike = 0,
    adversary: Adversary | None = None,
    byz_mask: BoolArray | None = None,
) -> CountingResult:
    """Message-level run; mirrors :func:`repro.core.runner.run_counting`."""
    config = config or CountingConfig()
    n, d, k = network.n, network.d, network.k
    root = make_rng(seed)
    color_rng, adv_rng = spawn(root, 2)
    byz = (
        np.zeros(n, dtype=bool)
        if byz_mask is None
        else np.asarray(byz_mask, dtype=bool).copy()
    )
    byz_nodes = np.flatnonzero(byz)
    ledger = _Ledger()

    honest_agents: dict[int, CountingAgent] = {}
    byz_agents: dict[int, ByzantineCountingAgent] = {}
    programs: dict[int, CountingAgent | ByzantineCountingAgent] = {}
    for v in range(n):
        if byz[v]:
            byz_agents[v] = programs[v] = ByzantineCountingAgent(v)
        else:
            honest_agents[v] = programs[v] = CountingAgent(
                v, ledger, config.verification and adversary is not None
            )
    engine = SynchronousEngine(network, programs, seed=root)

    # ------------------------------------------------------------------
    # Pre-phase: adjacency claims + Lemma 3 reconstruction + crash rule.
    truthful = truthful_claims(network)
    byz_claims: dict[int, tuple[int, ...] | None] = {}
    if adversary is not None:
        adversary.bind(network, byz, adv_rng, config)
        byz_claims = dict(adversary.topology_claims()) if config.verification else {}
    for v in range(n):
        prog = programs[v]
        if isinstance(prog, ByzantineCountingAgent):
            prog.claim = byz_claims.get(v) if config.verification else truthful[v]
        else:
            prog.claim = truthful[v]

    if adversary is not None and config.verification:
        for prog in programs.values():
            prog.mode = "claim"
        engine.step()
        for prog in programs.values():
            prog.mode = "listen"
        engine.step()
        for v, honest_agent in honest_agents.items():
            ports = network.g_neighbors(v)
            if find_conflicts(v, ports, dict(honest_agent.received_claims), k, d):
                honest_agent.crash()
    crashed = engine.crashed_mask() & ~byz

    # All surviving nodes learn their true H-ports (Lemma 3 guarantees the
    # reconstruction is faithful for uncrashed nodes).
    for v in range(n):
        programs[v].h_ports = [int(u) for u in network.h_neighbors(v)]

    # ------------------------------------------------------------------
    decided = np.full(n, UNDECIDED, dtype=np.int64)
    honest_uncrashed = ~byz & ~crashed

    for phase in range(1, config.max_phase + 1):
        undecided = honest_uncrashed & (decided == UNDECIDED)
        if not undecided.any():
            break
        n_sub = subphase_count(
            phase, config.eps, d, config.alpha_variant, config.subphase_multiplier
        )
        threshold = color_threshold(phase, d)
        flag_continue = np.zeros(n, dtype=bool)

        for sub in range(1, n_sub + 1):
            colors = np.zeros(n, dtype=np.int64)
            count = int(undecided.sum())
            if count:
                colors[undecided] = sample_colors(color_rng, count)

            plan: SubphasePlan | None = None
            if adversary is not None and byz_nodes.size:
                state = SubphaseState(
                    phase=phase,
                    subphase=sub,
                    rounds=phase,
                    k=k,
                    network=network,
                    byz_nodes=byz_nodes,
                    honest_colors=colors[~byz],
                    decided_phase=decided,
                    crashed=crashed,
                    rng=adv_rng,
                )
                plan = adversary.subphase_plan(state)

            # Configure agents for the subphase.
            initial = np.zeros(byz_nodes.shape[0], dtype=np.int64)
            if plan is not None and plan.initial_colors is not None:
                initial = np.asarray(plan.initial_colors, dtype=np.int64)
            for idx, b in enumerate(byz_nodes):
                byz_agent = byz_agents[int(b)]
                byz_agent.mode = "flood"
                byz_agent.phase, byz_agent.subphase = phase, sub
                byz_agent.cur = int(initial[idx])
                byz_agent.relay = plan.relay if plan is not None else True
                byz_agent.sends_at = {}
            ledger.reset(np.concatenate([colors, initial]))
            if plan is not None:
                for inj in plan.injections:
                    legal = not (config.verification and inj.t > k - 1)
                    if legal:
                        ledger.admit(inj.value)
                    for b in inj.nodes:
                        byz_agent = byz_agents[int(b)]
                        if legal:
                            byz_agent.sends_at[inj.t] = max(
                                byz_agent.sends_at.get(inj.t, 0), inj.value
                            )

            per_round_k: list[Int64Array] = []
            engine.flush_pending()  # subphase boundary: experiments are independent
            for v, honest_agent in honest_agents.items():
                honest_agent.mode = "flood"
                honest_agent.begin_subphase(int(colors[v]), phase, sub)

            # Protocol round t: all nodes transmit, receipts land next
            # engine step.  We run i+1 engine steps so that i receive
            # rounds complete, and harvest k_t after each receive.
            for t in range(0, phase + 1):
                for b in byz_nodes:
                    byz_agents[int(b)].current_t = t + 1
                engine.step()
                if t >= 1:
                    kt = np.zeros(n, dtype=np.int64)
                    for v, honest_agent in honest_agents.items():
                        if not honest_agent.crashed:
                            kt[v] = honest_agent.k_last
                    per_round_k.append(kt)

            k_stack = np.stack(per_round_k)  # (phase, n)
            k_last = k_stack[-1]
            k_prev = (
                k_stack[:-1].max(axis=0)
                if k_stack.shape[0] > 1
                else np.zeros(n, dtype=np.int64)
            )
            np.logical_or(
                flag_continue,
                (k_last > k_prev) & (k_last > threshold),
                out=flag_continue,
            )

        newly = undecided & ~flag_continue
        decided[newly] = phase
        if config.stop_when_all_decided and not (
            honest_uncrashed & (decided == UNDECIDED)
        ).any():
            break

    return CountingResult(
        n=n,
        d=d,
        k=k,
        decided_phase=decided,
        crashed=crashed,
        byz=byz,
        meter=engine.meter,
    )

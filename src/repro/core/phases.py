"""Phase/subphase schedule and the termination criterion (Algorithm 1/2).

Phase ``i`` repeats a random experiment (a *subphase*: draw colors, flood
for exactly ``i`` rounds) several times.  A node continues past phase ``i``
iff in **some** subphase the highest color it received arrived strictly in
the last round *and* exceeded the threshold ``l - log2 l`` with
``l = log2 d + (i-1) log2(d-1)`` (the log-size of the distance-``i``
sphere).

The paper states the repetition count two ways (see DESIGN.md §2.3):

* ``alpha_variant="appendix"`` (default) — Appendix B / Lemma 26:
  ``alpha_i = ceil((log2(1/eps) + i + 1 - log2 d) / ((i-2) log2(d-1)))``;
* ``alpha_variant="pseudocode"`` — Algorithm 1 lines 4-8.

Both are clamped to ``>= 1``, and for ``i <= 2`` (where the appendix formula
degenerates) we use ``ceil(log2(1/eps))`` repetitions.  The number of
subphases in phase ``i`` is ``i * alpha_i`` (pseudocode line 9 and
Lemma 12) unless ``subphase_multiplier="one"`` selects the §3.1 prose
variant of exactly ``alpha_i``.
"""

from __future__ import annotations

import numpy as np

from .._types import BoolArray, IntArray
from ..analysis.bounds import color_threshold, ell

__all__ = [
    "alpha",
    "alpha_appendix",
    "alpha_pseudocode",
    "subphase_count",
    "continue_criterion",
    "ell",
    "color_threshold",
]


def _validate(i: int, eps: float, d: int) -> None:
    if i < 1:
        raise ValueError(f"phase index must be >= 1, got {i}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"error parameter eps must be in (0, 1), got {eps}")
    if d < 3:
        raise ValueError(f"need degree d >= 3, got {d}")


def alpha_appendix(i: int, eps: float, d: int) -> int:
    """Appendix-B repetition count, clamped to >= 1 (degenerate i use eps)."""
    _validate(i, eps, d)
    if i <= 2:
        return max(1, int(np.ceil(np.log2(1.0 / eps))))
    value = (np.log2(1.0 / eps) + i + 1 - np.log2(d)) / ((i - 2) * np.log2(d - 1))
    return max(1, int(np.ceil(value)))


def alpha_pseudocode(i: int, eps: float, d: int) -> int:
    """Algorithm 1 lines 4-8, clamped to >= 1.

    Line 4 branches on ``d (d-1)^{i-2} <= 2/eps`` (whether the sphere at
    distance ``i`` is still small relative to the error budget).
    """
    _validate(i, eps, d)
    if d * (d - 1.0) ** (i - 2) <= 2.0 / eps:
        denom = np.log2(d) + (i - 2) * np.log2(d - 1)
        if denom <= 0.25:  # i = 1 makes the denominator tiny/negative
            return max(1, int(np.ceil(np.log2(1.0 / eps))))
        value = (np.log2(1.0 / eps) + i + 1) / denom - 1.0
        return max(1, int(np.ceil(value)))
    return max(1, int(np.ceil(1.0 + (i + 1) / np.log2(1.0 / eps))))


def alpha(i: int, eps: float, d: int, variant: str = "appendix") -> int:
    """Dispatch on the ``alpha_variant`` config knob."""
    if variant == "appendix":
        return alpha_appendix(i, eps, d)
    if variant == "pseudocode":
        return alpha_pseudocode(i, eps, d)
    raise ValueError(f"unknown alpha variant: {variant!r}")


def subphase_count(
    i: int,
    eps: float,
    d: int,
    variant: str = "appendix",
    multiplier: str = "i",
) -> int:
    """Number of subphases in phase ``i``: ``i * alpha_i`` or ``alpha_i``."""
    base = alpha(i, eps, d, variant)
    if multiplier == "i":
        return i * base
    if multiplier == "one":
        return base
    raise ValueError(f"unknown subphase multiplier: {multiplier!r}")


def continue_criterion(
    k_last: IntArray, k_prev_max: IntArray, i: int, d: int
) -> BoolArray:
    """Algorithm 2 line 18, vectorized over nodes.

    ``k_last`` is the highest color received in round ``i`` of a subphase,
    ``k_prev_max`` the max over rounds ``t < i``.  Returns the mask of nodes
    for which this subphase clears ``FlagTerminate`` (i.e. votes to
    continue to phase ``i + 1``).
    """
    return (k_last > k_prev_max) & (k_last > color_threshold(i, d))

"""Algorithm 1 — the basic counting protocol (Section 3.1).

All nodes follow the protocol honestly (the paper first analyzes this
setting, Section 3.2): draw geometric colors each subphase, flood the
running maximum along ``H`` edges for exactly ``i`` rounds in phase ``i``,
and decide ``i`` when no subphase produces a last-round record above the
sphere-size threshold.
"""

from __future__ import annotations

from .._types import SeedLike
from ..graphs.smallworld import SmallWorldNetwork
from .config import CountingConfig
from .results import CountingResult
from .runner import run_counting

__all__ = ["run_basic_counting"]


def run_basic_counting(
    network: SmallWorldNetwork,
    config: CountingConfig | None = None,
    seed: SeedLike = 0,
) -> CountingResult:
    """Run Algorithm 1 (no Byzantine nodes, no verification machinery)."""
    config = (config or CountingConfig()).with_(verification=False)
    return run_counting(network, config=config, seed=seed, adversary=None)

"""High-level public API: one-call Byzantine-tolerant size estimation.

This is the entry point a downstream user of the library sees::

    from repro import estimate_network_size

    report = estimate_network_size(n=2048, d=8, delta=0.5,
                                   adversary="early-stop", seed=7)
    print(report.median_log2_estimate, report.fraction_in_band)

It samples a network, places the paper's Byzantine budget, runs Algorithm 2
and condenses the per-node results.  Power users construct the pieces
directly (see ``examples/``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import BoolArray
from ..adversary import adaptive as adversary_adaptive
from ..adversary import base as adversary_base
from ..adversary import strategies
from ..adversary.placement import placement_for_delta
from ..analysis.bounds import delta_min
from ..graphs.smallworld import SmallWorldNetwork, build_small_world
from ..sim.rng import derive_seed
from .basic_counting import run_basic_counting
from .byzantine_counting import run_byzantine_counting
from .config import CountingConfig
from .results import CountingResult

__all__ = ["EstimateReport", "estimate_network_size", "make_adversary", "ADVERSARIES"]

#: Registry of named adversary strategies for the string API.
ADVERSARIES: dict[str, type[adversary_base.Adversary]] = {
    "honest": adversary_base.HonestAdversary,
    "early-stop": strategies.EarlyStopAdversary,
    "inflation": strategies.InflationAdversary,
    "suppression": strategies.SuppressionAdversary,
    "silent": strategies.SilentAdversary,
    "topology-liar": strategies.TopologyLiarAdversary,
    "combo": strategies.ComboAdversary,
    "adaptive-record": strategies.AdaptiveRecordAdversary,
    "mobile": adversary_adaptive.MobileAdversary,
    "traffic-adaptive": adversary_adaptive.TrafficAdaptiveAdversary,
}


def make_adversary(name: str) -> adversary_base.Adversary:
    """Instantiate a registered adversary strategy by name."""
    try:
        cls = ADVERSARIES[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        ) from None
    return cls()


@dataclass(frozen=True)
class EstimateReport:
    """Condensed outcome of one estimation run."""

    result: CountingResult
    network: SmallWorldNetwork
    adversary_name: str
    byz_count: int
    median_phase: float
    median_log2_estimate: float
    fraction_decided: float
    fraction_in_band: float
    band: tuple[float, float]
    rounds: int

    def summary(self) -> dict[str, float | str]:
        return {
            "n": self.network.n,
            "d": self.network.d,
            "adversary": self.adversary_name,
            "byz": self.byz_count,
            "median_phase": self.median_phase,
            "median_log2_estimate": self.median_log2_estimate,
            "fraction_decided": self.fraction_decided,
            "fraction_in_band": self.fraction_in_band,
            "rounds": self.rounds,
        }


def practical_band(d: int) -> tuple[float, float]:
    """The laptop-scale constant-factor band for decided phases.

    A phase-``i`` decision is a ``log n`` estimate up to the metric factor
    ``log2(d-1)``: honest termination lands near ``ecc_H ≈ log n /
    log2(d-1)``.  We accept a factor-4 window around that anchor:
    ``[1/(4 log2(d-1)), 4/log2(d-1)] * log2 n``, the lab-scale stand-in
    for the paper's ``[a log n, b log n]`` guarantee band.
    """
    anchor = 1.0 / np.log2(d - 1)
    return (anchor / 4.0, anchor * 4.0)


def estimate_network_size(
    n: int,
    d: int = 8,
    *,
    delta: float | None = None,
    adversary: str | adversary_base.Adversary = "honest",
    byz_mask: BoolArray | None = None,
    config: CountingConfig | None = None,
    seed: int = 0,
    network: SmallWorldNetwork | None = None,
    band: tuple[float, float] | None = None,
) -> EstimateReport:
    """Sample a network, place Byzantine nodes, run the protocol, summarize.

    Parameters
    ----------
    n, d:
        Network size and degree (the caller knows ``n``; the nodes do not).
    delta:
        Byzantine budget exponent (``B(n) = n^{1-delta}``); defaults to
        ``1.5 * 3/d`` (comfortably inside the paper's ``delta > 3/d``).
        Ignored when ``byz_mask`` is given.
    adversary:
        Strategy name from :data:`ADVERSARIES` or an instance.
    network:
        Reuse an existing sampled network (skips generation).
    band:
        Override the accounting band ``(c1, c2)``; defaults to
        :func:`practical_band`.
    """
    if network is None:
        network = build_small_world(n, d, seed=derive_seed(seed, "graph"))
    if network.n != n or network.d != d:
        raise ValueError("provided network does not match n/d")
    adv = make_adversary(adversary) if isinstance(adversary, str) else adversary
    if byz_mask is None:
        if isinstance(adversary, str) and adversary == "honest":
            byz_mask = np.zeros(n, dtype=bool)
        else:
            if delta is None:
                delta = min(1.0, 1.5 * delta_min(d))
            byz_mask = placement_for_delta(
                network, delta, rng=derive_seed(seed, "placement")
            )
    byz_mask = np.asarray(byz_mask, dtype=bool)
    config = config or CountingConfig()

    if byz_mask.any():
        result = run_byzantine_counting(
            network, adv, byz_mask, config=config, seed=derive_seed(seed, "run")
        )
    else:
        result = run_basic_counting(
            network, config=config, seed=derive_seed(seed, "run")
        )

    band = band or practical_band(d)
    _, median, _ = result.decision_quantiles()
    return EstimateReport(
        result=result,
        network=network,
        adversary_name=getattr(adv, "name", str(adversary)),
        byz_count=int(byz_mask.sum()),
        median_phase=median,
        median_log2_estimate=(
            median * float(np.log2(d - 1)) if np.isfinite(median) else float("nan")
        ),
        fraction_decided=result.fraction_decided(),
        fraction_in_band=result.fraction_in_band(*band),
        band=band,
        rounds=result.meter.rounds,
    )

"""Geometric token colors (Section 3.1 and Observations 4-5).

Every node flips a fair coin until heads; the number of flips is its
*color* for the subphase.  Colors are therefore geometric(1/2) random
variables, whose maxima concentrate at ``log2 m`` over ``m`` nodes — the
mechanism by which the sphere ``Bd(v, i)`` announces its size.
"""

from __future__ import annotations

import numpy as np

from .._types import AnyArray, FloatArray, Int64Array

__all__ = [
    "sample_colors",
    "color_pmf",
    "color_sf",
    "max_color_cdf",
    "expected_max_color",
]


def sample_colors(rng: np.random.Generator, size: int) -> Int64Array:
    """Draw ``size`` geometric(1/2) colors (support {1, 2, ...})."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if size == 0:
        return np.empty(0, dtype=np.int64)
    return rng.geometric(0.5, size=size).astype(np.int64, copy=False)


def color_pmf(r: int | AnyArray) -> float | FloatArray:
    """Observation 4.1: ``Pr[c = r] = 2^{-r}``."""
    r = np.asarray(r, dtype=np.float64)
    out = np.where(r >= 1, 0.5**r, 0.0)
    return float(out) if out.ndim == 0 else out


def color_sf(r: int | AnyArray) -> float | FloatArray:
    """Observation 4.5: ``Pr[c > r] = 2^{-r}`` (survival function)."""
    r = np.asarray(r, dtype=np.float64)
    out = np.where(r >= 0, 0.5**r, 1.0)
    return float(out) if out.ndim == 0 else out


def max_color_cdf(r: int | AnyArray, m: int) -> float | FloatArray:
    """Observation 5.3: ``Pr[max over m nodes <= r] = (1 - 2^{-r})^m``."""
    if m < 1:
        raise ValueError("need at least one node")
    r = np.asarray(r, dtype=np.float64)
    out = np.where(r >= 1, (1.0 - 0.5**r) ** m, np.where(r >= 0, 0.0, 0.0))
    return float(out) if out.ndim == 0 else out


def expected_max_color(m: int, tail_terms: int = 128) -> float:
    """``E[max]`` over ``m`` i.i.d. geometric(1/2) colors (≈ log2 m + 0.5...).

    Computed from ``E[X] = sum_{r>=0} Pr[X > r] = sum (1 - (1-2^{-r})^m)``.
    """
    if m < 1:
        raise ValueError("need at least one node")
    r = np.arange(tail_terms, dtype=np.float64)
    return float(np.sum(1.0 - (1.0 - 0.5**r) ** m))

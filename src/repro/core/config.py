"""Protocol configuration (:class:`CountingConfig`)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["CountingConfig"]


@dataclass(frozen=True)
class CountingConfig:
    """Knobs for Algorithm 1 / Algorithm 2 runs.

    Attributes
    ----------
    eps:
        The error parameter (fraction of honest nodes allowed to decide
        wrongly; drives the ``alpha_i`` repetition counts).
    alpha_variant, subphase_multiplier:
        Which of the paper's two ``alpha_i`` formulations and subphase
        counts to use; see :mod:`repro.core.phases` and DESIGN.md §2.3.
    max_phase:
        Safety cap on the number of phases.  Nodes that have not decided
        by then are reported as undecided (estimate ``-1``) — this is how
        the no-verification ablation exhibits "the network looks
        arbitrarily large".
    verification:
        Algorithm 2's small-world legitimacy checking.  When on, Byzantine
        color injections are only accepted during the first ``k - 1``
        rounds of a subphase (Lemma 16) and topology lies crash their
        ``G``-neighborhood (Lemma 15); when off, Algorithm 2 degenerates
        to Algorithm 1 run among Byzantine nodes.
    verification_round_cost:
        Extra communication rounds charged per flooding round for the
        witness queries/replies (they are one query + one reply over
        direct ``L`` edges, hence 2).
    stop_when_all_decided:
        End the run as soon as every honest uncrashed node has decided.
    count_messages:
        Maintain the :class:`~repro.sim.metrics.MessageMeter` (small cost;
        disable for pure-speed benchmarks).
    record_phase_trace:
        Keep per-phase records for experiment tables.
    """

    eps: float = 0.1
    alpha_variant: str = "appendix"
    subphase_multiplier: str = "i"
    max_phase: int = 48
    verification: bool = True
    verification_round_cost: int = 2
    stop_when_all_decided: bool = True
    count_messages: bool = True
    record_phase_trace: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {self.eps}")
        if self.max_phase < 1:
            raise ValueError("max_phase must be >= 1")
        if self.alpha_variant not in ("appendix", "pseudocode"):
            raise ValueError(f"unknown alpha_variant {self.alpha_variant!r}")
        if self.subphase_multiplier not in ("i", "one"):
            raise ValueError(
                f"unknown subphase_multiplier {self.subphase_multiplier!r}"
            )
        if self.verification_round_cost < 0:
            raise ValueError("verification_round_cost must be >= 0")

    def with_(self, **kwargs: Any) -> "CountingConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

"""The paper's constants and probability bounds, as executable formulas.

Everything here is a direct transcription of a definition, observation or
lemma; the experiment suite prints these next to measured values.  All
logarithms are base 2 (colors are fair-coin geometric variables).

Key quantities:

* ``k = ceil(d/3)`` (Section 2.1), ``delta > 3/d`` (Byzantine budget
  exponent constraint), ``B(n) = n^{1-delta}``.
* ``a = delta / (10 k log(d-1))`` — below phase ``a log n``, Byzantine-safe
  nodes see no Byzantine colors (Definition 9, Section 3.2/3.4.3).
* ``b = 4 / log(1 + gamma/d)`` — by phase ``b log n`` every active core node
  terminates (Section 3.4, with ``gamma`` the Core's edge expansion).
* Geometric max tail bounds (Lemmas 4, 5, 7, 8) and the wrong-decision
  bounds (Lemmas 9, 10).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "k_of_d",
    "delta_min",
    "byzantine_budget",
    "a_constant",
    "a_log_n",
    "b_constant",
    "b_log_n",
    "approximation_factor",
    "ell",
    "color_threshold",
    "max_color_upper_tail",
    "max_color_lower_tail",
    "chain_probability_bound",
    "ball_size_bound",
    "wrong_decision_bound",
    "azuma_phase_bound",
    "round_complexity_bound",
]


def k_of_d(d: int) -> int:
    """``k = ceil(d / 3)``."""
    return -(-d // 3)


def delta_min(d: int) -> float:
    """The Byzantine exponent must satisfy ``delta > 3/d`` (Section 2.1)."""
    return 3.0 / d


def byzantine_budget(n: int, delta: float) -> int:
    """``B(n) = floor(n^{1 - delta})`` Byzantine nodes."""
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return int(np.floor(n ** (1.0 - delta)))


def a_constant(delta: float, k: int, d: int) -> float:
    """``a = delta / (10 k log2(d - 1))`` (Definition 9)."""
    if d <= 2:
        raise ValueError("need d > 2")
    return delta / (10.0 * k * np.log2(d - 1))


def a_log_n(n: int, delta: float, k: int, d: int) -> float:
    """The lower phase boundary ``a log2 n``."""
    return a_constant(delta, k, d) * np.log2(n)


def b_constant(gamma: float, d: int) -> float:
    """``b = 4 / log2(1 + gamma/d)`` with ``gamma`` the Core edge expansion."""
    if gamma <= 0:
        raise ValueError("edge expansion gamma must be positive")
    return 4.0 / np.log2(1.0 + gamma / d)


def b_log_n(n: int, gamma: float, d: int) -> float:
    """The upper phase boundary ``b log2 n``."""
    return b_constant(gamma, d) * np.log2(n)


def approximation_factor(delta: float, k: int, d: int, gamma: float) -> float:
    """``b / a = 40 k log2(d-1) / (delta log2(1 + gamma/d))`` (Section 3.4.2)."""
    return b_constant(gamma, d) / a_constant(delta, k, d)


def ell(i: int, d: int) -> float:
    """``l_i = log2 d + (i - 1) log2(d - 1)`` — log of ``|Bd(v, i)| = d(d-1)^{i-1}``.

    (Lemma 6 works with ``l_r = log d + r log(d-1)``; the decision rule in
    Algorithm 1 line 16 / Algorithm 2 line 18 uses the sphere at distance
    ``i`` whose size has logarithm ``log d + (i-1) log(d-1)``.)
    """
    if i < 1:
        raise ValueError(f"phase index must be >= 1, got {i}")
    return np.log2(d) + (i - 1) * np.log2(d - 1)


def color_threshold(i: int, d: int) -> float:
    """Decision threshold ``l - log2 l`` with ``l = ell(i, d)``.

    A node continues past phase ``i`` only if some subphase's last-round
    record color strictly exceeds this (Algorithm 2 line 18).
    """
    level = ell(i, d)
    if level <= 1.0:
        return 0.0
    return level - np.log2(level)


def max_color_upper_tail(m: int) -> float:
    """Lemma 4: ``Pr[max color over m nodes > 2 log2 m] <= 1/m``."""
    if m < 1:
        raise ValueError("need m >= 1")
    return 1.0 / m


def max_color_lower_tail(m: int) -> float:
    """Lemma 5: ``Pr[max color over m nodes <= log2 m - log2 log2 m] < 1/m``."""
    if m < 2:
        raise ValueError("need m >= 2")
    return 1.0 / m


def chain_probability_bound(n: int, d: int, k: int, delta: float) -> float:
    """Observation 6: ``Pr[some k-chain is all-Byzantine] <= n d^{k-1} n^{-k delta}``.

    Equal to ``d^{k-1} / n^{delta'}`` with ``k delta = 1 + delta'``.
    """
    return float(n * d ** (k - 1) * n ** (-k * delta))


def ball_size_bound(d: int, k: int, tau: int) -> int:
    """Observation 2: ``|B_G(v, tau)| < (d-1)^{k tau + 1}``."""
    return int((d - 1) ** (k * tau + 1))


def wrong_decision_bound(i: int, eps: float) -> float:
    """Lemma 9 / 26: a safe node wrongly decides phase ``i`` w.p. ``< eps/2^{i+1}``."""
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must be in (0, 1)")
    return eps / 2.0 ** (i + 1)


def azuma_phase_bound(n: int, i: int, eps: float, d: int) -> float:
    """Lemma 10: ``Pr[Y_i > n eps / 2^i] < exp(-n eps^2 / 2^kappa)`` with
    ``kappa = 2i + 3 + (4i + 2) log2(d - 1)`` (capped at 1)."""
    kappa = 2 * i + 3 + (4 * i + 2) * np.log2(d - 1)
    return float(min(1.0, np.exp(-n * eps * eps / 2.0**kappa)))


def round_complexity_bound(
    n: int, eps: float, d: int, *, gamma: float = 1.0, verification_cost: int = 2
) -> int:
    """Exact round count of the paper's schedule up to phase ``b log2 n``.

    Sums ``i * alpha_i`` subphases of ``i`` flooding rounds each (plus the
    per-round verification constant), which is the Theta(log^3 n) accounting
    behind Theorem 1.
    """
    from ..core.phases import subphase_count

    b_phase = max(1, int(np.ceil(b_log_n(n, gamma, d))))
    total = 0
    for i in range(1, b_phase + 1):
        total += subphase_count(i, eps, d) * i * (1 + verification_cost)
    return total

"""Closed-form paper predictions, bundled for experiment tables.

:func:`paper_predictions` evaluates every quantity the paper predicts for a
given ``(n, d, delta, eps)`` instance — Lemma 2 set-size bounds, phase
boundaries, approximation factor, Byzantine budget, round complexity — so
experiment tables can print the "paper" column next to measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import bounds

__all__ = ["PaperPredictions", "paper_predictions", "lemma2_bounds"]


@dataclass(frozen=True)
class PaperPredictions:
    """All paper-side numbers for one problem instance."""

    n: int
    d: int
    k: int
    delta: float
    eps: float
    gamma: float
    byz_budget: int
    a: float
    b: float
    a_log_n: float
    b_log_n: float
    approximation_factor: float
    rounds_bound: int
    log2_n: float

    def in_band(self, estimate: float) -> bool:
        """Whether a log-size estimate lies in the paper's guarantee band.

        The protocol's output ``L`` (a phase index) satisfies
        ``a log n <= L <= b log n`` for the accounted nodes; at laptop scale
        both boundaries are dominated by constants so experiments usually
        use the practical band instead (see ``CountingResult.in_band``).
        """
        return self.a_log_n <= estimate <= self.b_log_n


def paper_predictions(
    n: int,
    d: int,
    delta: float,
    eps: float = 0.1,
    *,
    gamma: float = 1.0,
) -> PaperPredictions:
    """Evaluate all paper formulas for the instance (gamma = Core expansion)."""
    k = bounds.k_of_d(d)
    if delta <= bounds.delta_min(d):
        raise ValueError(
            f"delta={delta} violates the paper requirement delta > 3/d = "
            f"{bounds.delta_min(d):.3f} for d={d}"
        )
    a = bounds.a_constant(delta, k, d)
    b = bounds.b_constant(gamma, d)
    return PaperPredictions(
        n=n,
        d=d,
        k=k,
        delta=delta,
        eps=eps,
        gamma=gamma,
        byz_budget=bounds.byzantine_budget(n, delta),
        a=a,
        b=b,
        a_log_n=a * np.log2(n),
        b_log_n=b * np.log2(n),
        approximation_factor=b / a,
        rounds_bound=bounds.round_complexity_bound(n, eps, d, gamma=gamma),
        log2_n=float(np.log2(n)),
    )


def lemma2_bounds(n: int, d: int, delta: float) -> dict[str, float]:
    """The nine set-size bounds of Lemma 2 as numbers.

    Items 5, 6, 8, 9 are asymptotic (``o(n)`` / ``n - o(n)``); we evaluate
    the explicit expressions the proof states.
    """
    if delta > 0.2:
        # Lemma 2.7 states |Bad| <= 2 n^{1-delta} "assuming delta <= 0.2";
        # for larger delta the bound only gets easier, so keep the formula.
        pass
    return {
        "Byz": n ** (1.0 - delta),
        "Honest": n - n ** (1.0 - delta),
        "LTL_min": n - _c_n08(n),
        "NLT_max": _c_n08(n),
        "Unsafe_max": _c_n08(n) * n ** (delta / 10.0) / n**0.0,
        "Safe_min": n - _c_n08(n) * n ** (delta / 10.0),
        "Bad_max": 2.0 * n ** (1.0 - delta),
        "BUS_max": 2.0 * (d - 1) * n ** (1.0 - 9.0 * delta / 10.0),
        "Byz_safe_min": n - 2.0 * (d - 1) * n ** (1.0 - 9.0 * delta / 10.0),
    }


def _c_n08(n: int) -> float:
    """The ``O(n^0.8)`` envelope from Lemma 21, with unit constant."""
    return float(n**0.8)

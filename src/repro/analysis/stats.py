"""Statistics helpers for the experiment suite.

Small, dependency-light estimators: Wilson score intervals for the
whp-fraction claims, log-log slope fits for asymptotic-exponent checks,
and distribution summaries for tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "wilson_interval",
    "loglog_slope",
    "polylog_fit",
    "DistributionSummary",
    "summarize",
    "empirical_cdf",
    "proportion",
]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def proportion(mask: np.ndarray) -> float:
    """Fraction of True entries in a boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        raise ValueError("empty mask has no proportion")
    return float(np.count_nonzero(mask)) / mask.size


def loglog_slope(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares slope and intercept of ``log y`` against ``log x``.

    Used to check asymptotic exponents, e.g. "|NLT| grows like n^0.8".
    Zero y-values are clipped to the smallest positive value present
    (or 0.5 if all are zero) so a clean claim does not crash the fit.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need at least two matching points")
    positive = y[y > 0]
    floor = positive.min() if positive.size else 0.5
    y = np.maximum(y, floor * 0.5)
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    return float(slope), float(intercept)


def polylog_fit(n_values: np.ndarray, rounds: np.ndarray) -> float:
    """Exponent ``p`` such that ``rounds ≈ c (log2 n)^p`` (least squares).

    This is the check for the Theta(log^3 n) round-complexity claim:
    regress ``log rounds`` on ``log log n``.
    """
    n_values = np.asarray(n_values, dtype=np.float64)
    rounds = np.asarray(rounds, dtype=np.float64)
    slope, _ = loglog_slope(np.log2(n_values), rounds)
    return slope


@dataclass(frozen=True)
class DistributionSummary:
    count: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def row(self) -> list[float]:
        return [
            self.count,
            self.mean,
            self.std,
            self.minimum,
            self.median,
            self.maximum,
        ]


def summarize(values: np.ndarray) -> DistributionSummary:
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q25, med, q75 = np.percentile(values, [25, 50, 75])
    return DistributionSummary(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        q25=float(q25),
        median=float(med),
        q75=float(q75),
        maximum=float(values.max()),
    )


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted support and empirical CDF values."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValueError("empty sample")
    return values, np.arange(1, values.size + 1) / values.size

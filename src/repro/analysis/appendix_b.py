"""Appendix B (proof of Lemma 9) as executable probability formulas.

The paper's core probabilistic argument bounds, for a *safe* node ``v`` in
phase ``i``:

* ``E_{i,j,1}`` — some early round's received maximum is already huge:
  ``Pr[k_t > 2(l_{i-1} - log2(d-2)) for some t < i] <= (d-2)/(d (d-1)^{i-1})``
  (Lemma 22, via the Lemma 4 upper tail over the punctured ball
  ``B*(v, i-1)``);
* ``E_{i,j,2}`` — the last round's maximum is too small:
  ``Pr[k_i <= l_i - log2(d-1) - log2(l_i - log2(d-1))] < eps/2 + 1/(d (d-1)^{i-1})``
  (Lemma 23, combining the inductive inactivity bound with the Lemma 5
  lower tail over the sphere ``Bd(v, i)``);
* ``Failure(i, j) = not Success(i, j)`` with
  ``Pr[Failure(i,j)] < 1/(d (d-1)^{i-2}) + eps/2`` (Lemmas 24-25);
* ``Failure(i)`` — all ``alpha_i`` independent subphases fail:
  ``Pr[Failure(i)] <= (Pr[Failure(i,j)])^{alpha_i} <= eps/2^{i+1}``
  (Lemma 26, which fixes ``alpha_i`` precisely to make this hold).

Every bound is a function here, and ``tests/analysis/test_appendix_b.py``
validates the distributional steps by Monte Carlo against exact geometric
tail computations — i.e. the proof's *arithmetic* is reproduced, not just
its conclusion.

**Reproduction findings** (recorded in EXPERIMENTS.md):

1. *Discretization slack.* Colors are integers, so the Lemma 4/5 events
   use floored thresholds; the exact tail can exceed the paper's clean
   ``1/m`` by up to a factor of 2.  Direction and rate are unaffected.
2. *Lemma 24/25 constant.* The containment ``E1^c ∩ E2^c ⊆ Success``
   needs the last-round threshold to exceed the early-record cap, but
   ``2 l_{i-1} > l_i - log2 l_i`` for all relevant ``i`` at ``d = 8``, and
   more fundamentally the punctured inner ball is a constant fraction
   ``~1/(d-2)`` of the distance-``i`` sphere, so the true per-subphase
   failure probability converges to ``~1/(d-2) + o(1)`` — a *constant*,
   not the geometrically-decaying Lemma 25 expression.  The phase-level
   conclusion (Lemma 9: ``Pr[Failure(i)] <= eps/2^{i+1}``) survives
   because failure must repeat across all ``i * alpha_i`` independent
   subphases: ``(1/(d-2))^{i alpha_i}`` still decays geometrically in
   ``i``.  :func:`empirical_failure_probability` and
   :func:`phase_failure_from_subphase` quantify this, and the test suite
   asserts the *conclusion* with the measured constant.
"""

from __future__ import annotations

import numpy as np

from .bounds import ell

__all__ = [
    "punctured_ball_size",
    "sphere_size",
    "early_record_threshold",
    "last_round_threshold",
    "lemma22_bound",
    "lemma23_bound",
    "lemma25_failure_bound",
    "lemma26_phase_failure_bound",
    "alpha_needed_for_lemma26",
    "exact_early_record_probability",
    "exact_low_last_round_probability",
    "exact_subphase_failure_probability",
    "phase_failure_from_subphase",
]


def punctured_ball_size(d: int, r: int) -> int:
    """``|B*(v, r)| = d ((d-1)^r - 1)/(d - 2)`` for a locally tree-like node."""
    if d <= 2:
        raise ValueError("need d > 2")
    if r < 0:
        raise ValueError("radius must be non-negative")
    return int(d * ((d - 1) ** r - 1) // (d - 2))


def sphere_size(d: int, r: int) -> int:
    """``|Bd(v, r)| = d (d-1)^{r-1}`` for a locally tree-like node."""
    if r < 1:
        raise ValueError("sphere radius must be >= 1")
    return int(d * (d - 1) ** (r - 1))


def early_record_threshold(i: int, d: int) -> float:
    """Lemma 22's event threshold: ``2 (l_{i-1} - log2(d-2))``.

    ``l_{i-1} - log2(d-2) = log2 |B*(v, i-1)|`` (Lemma 6), so this is the
    Lemma 4 "twice the log-size" record level for the punctured ball.
    """
    if i < 2:
        raise ValueError("the early-record event needs i >= 2")
    return 2.0 * (ell(i - 1, d) + np.log2(d - 1) - np.log2(d - 2))


def last_round_threshold(i: int, d: int) -> float:
    """Lemma 23's event threshold: ``l_i - log2(d-1) - log2(l_i - log2(d-1))``.

    ``l_i - log2(d-1) = log2 |Bd(v, i)|`` with our ``ell(i) =
    log2 d + (i-1) log2(d-1)`` convention, so this is the Lemma 5
    "log-size minus log-log" lower record level for the sphere.
    """
    m = np.log2(sphere_size(d, i))
    return float(m - np.log2(m))


def lemma22_bound(i: int, d: int) -> float:
    """``Pr[E_{i,j,1}] <= (d-2) / (d (d-1)^{i-1})``."""
    if i < 2:
        raise ValueError("need i >= 2")
    return float((d - 2) / (d * (d - 1.0) ** (i - 1)))


def lemma23_bound(i: int, d: int, eps: float) -> float:
    """``Pr[E_{i,j,2}] < eps/2 + 1 / (d (d-1)^{i-1})``."""
    if not 0 < eps < 1:
        raise ValueError("eps in (0,1)")
    return float(eps / 2.0 + 1.0 / (d * (d - 1.0) ** (i - 1)))


def lemma25_failure_bound(i: int, d: int, eps: float) -> float:
    """``Pr[Failure(i, j)] < 1/(d (d-1)^{i-2}) + eps/2`` (Lemma 25)."""
    if i < 2:
        raise ValueError("need i >= 2")
    return float(1.0 / (d * (d - 1.0) ** (i - 2)) + eps / 2.0)


def lemma26_phase_failure_bound(i: int, d: int, eps: float, alpha_i: int) -> float:
    """``Pr[Failure(i)] <= Pr[Failure(i,j)]^{alpha_i}`` (independent subphases).

    The paper then upper-bounds the base by ``1/(d (d-1)^{i-2})`` alone
    (its Lemma 26 display), which we follow.
    """
    if alpha_i < 1:
        raise ValueError("alpha_i >= 1")
    base = 1.0 / (d * (d - 1.0) ** (i - 2))
    return float(min(1.0, base**alpha_i))


def alpha_needed_for_lemma26(i: int, d: int, eps: float) -> int:
    """Smallest ``alpha`` with ``(1/(d (d-1)^{i-2}))^alpha <= eps/2^{i+1}``.

    This is the constraint the paper's ``alpha_i`` definition solves; the
    test suite checks our :func:`repro.core.phases.alpha_appendix` always
    meets it for ``i >= 3``.
    """
    target = eps / 2.0 ** (i + 1)
    base = 1.0 / (d * (d - 1.0) ** (i - 2))
    if base >= 1.0:
        raise ValueError("bound degenerate for this i, d")
    alpha = int(np.ceil(np.log(target) / np.log(base)))
    return max(1, alpha)


# ----------------------------------------------------------------------
# Exact distributional computations (the Monte-Carlo cross-checks' oracle)
# ----------------------------------------------------------------------

def exact_early_record_probability(i: int, d: int) -> float:
    """Exact ``Pr[max over |B*(v, i-1)| colors > early_record_threshold]``.

    The Lemma 22 event, computed from the geometric maximum CDF rather
    than the union bound — necessarily at most the lemma's bound.
    """
    m = punctured_ball_size(d, i - 1)
    r = int(np.floor(early_record_threshold(i, d)))
    # Pr[max > r] = 1 - (1 - 2^-r)^m.
    return float(1.0 - (1.0 - 0.5**r) ** m)


def exact_low_last_round_probability(i: int, d: int) -> float:
    """Exact ``Pr[max over |Bd(v, i)| colors <= last_round_threshold]``
    assuming every sphere node is active (the Lemma 8 term of Lemma 23)."""
    m = sphere_size(d, i)
    r = int(np.floor(last_round_threshold(i, d)))
    return float((1.0 - 0.5**r) ** m)


def exact_subphase_failure_probability(i: int, d: int) -> float:
    """Exact ``Pr[Failure(i, j)]`` for an ideal locally-tree-like node.

    Failure is "the sphere-``i`` maximum does not strictly beat the inner
    punctured ball's maximum, or does not clear the threshold":

    ``Pr[Failure] = 1 - Pr[M_out > max(M_in, floor(thr))]``

    computed exactly from the independence of the two geometric maxima by
    summing over the inner maximum's value.  As ``i`` grows this tends to
    ``|B*(i-1)| / |B(i)| ~ 1/(d-1)`` plus threshold effects — the constant
    the Lemma 24/25 reproduction finding refers to.
    """
    m_in = punctured_ball_size(d, i - 1)
    m_out = sphere_size(d, i)
    floor_thr = int(np.floor(last_round_threshold(i, d)))

    # Pr[M <= r] = (1 - 2^-r)^m for integer r >= 0.
    def cdf(r: int, m: int) -> float:
        if r < 0:
            return 0.0
        return (1.0 - 0.5 ** max(r, 0)) ** m

    success = 0.0
    # Success: M_out = v for some v > max(floor_thr, M_in).
    for v in range(1, 256):
        p_out_eq = cdf(v, m_out) - cdf(v - 1, m_out)
        if p_out_eq <= 0 and v > floor_thr + 8:
            break
        if v <= floor_thr:
            continue
        p_in_below = cdf(v - 1, m_in)
        success += p_out_eq * p_in_below
    return float(1.0 - success)


def phase_failure_from_subphase(p_subphase: float, i: int, alpha_i: int) -> float:
    """``Pr[Failure(i)] = p^(i * alpha_i)`` over the pseudocode's subphases."""
    if not 0.0 <= p_subphase <= 1.0:
        raise ValueError("probability out of range")
    return float(p_subphase ** (i * alpha_i))

"""The resident estimation engine: overlays, kernels, and stacks kept warm.

The batch engines (:mod:`repro.core.batch`) amortize numpy dispatch across
trials *within* one call; this module amortizes the per-call setup across
**epochs** of a long-lived deployment.  A :class:`ResidentEngine` keeps,
per registered overlay:

* the mutable graph (:class:`repro.graphs.delta.ResidentGraph`) — a churn
  delta patches the CSR incrementally instead of re-sampling and
  re-validating from scratch;
* one warm :class:`~repro.sim.flood.FloodKernel` — rebound in place via
  :meth:`~repro.sim.flood.FloodKernel.update_csr` after each delta, which
  invalidates exactly the stale gather plans (cache rule: a delta on
  overlay ``X`` invalidates ``X``'s kernel plans and every multi-network /
  union structure containing ``X``, and nothing else);
* versioned multi-network kernels and union-stack payloads
  (:class:`repro.graphs.shared.NetworkTuple` with a pre-stacked union
  CSR), keyed by the member overlays' ``(name, version)`` pairs so churn
  invalidates precisely the structures that contain the mutated overlay.

Caching is a *speed* layer only: every estimation path delegates to the
stock batch entry points with the cached objects passed through their
``kernel=`` / container hooks, so results are bit-for-bit equal to cold
per-epoch runs (pinned by ``tests/service/test_engine.py``).

Sharded execution (``jobs > 1``) threads the engine's
:class:`repro.exec.RetryPolicy` / :class:`repro.exec.ExecutionReport`
through :func:`repro.experiments.common.parallel_map`, so a resident
deployment inherits the fault-tolerant dispatch (retries, pool rebuilds,
checkpoint journals) of the sweep layer.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.batch import BatchCountingResult, run_counting_batch, run_counting_multinet
from ..core.config import CountingConfig
from ..graphs.delta import AppliedDelta, ResidentGraph
from ..graphs.shared import NetworkTuple
from ..graphs.smallworld import SmallWorldNetwork, build_small_world
from ..sim.flood import FloodKernel, MultiFloodKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..adversary.base import Adversary
    from ..core.results import CountingResult
    from ..core.sweep import MultiSweepResult
    from ..exec import ExecutionReport, RetryPolicy
    from .delta import ChurnDelta

__all__ = ["ResidentEngine", "SizeQuery"]

#: FIFO caps for the versioned caches; multi-overlay structures are
#: rebuilt cheaply, so a shallow cache only needs to cover the handful of
#: overlay groupings a service round-robins between.
_MULTI_CACHE_CAP = 8
_TUPLE_CACHE_CAP = 4


@dataclass(frozen=True)
class SizeQuery:
    """One size-estimation request against a registered overlay.

    ``strategy`` is an adversary factory/instance (as accepted by the
    batch engines' ``adversary_factory``) with ``byz_mask`` naming the
    controlled nodes; both ``None`` runs the honest protocol.  ``config``
    defaults to the engine's default config.
    """

    overlay: str
    seed: int | None
    config: CountingConfig | None = None
    strategy: "Callable[[], Adversary] | Adversary | None" = None
    byz_mask: Any = None


class _Overlay:
    """Per-overlay resident state: graph + warm kernel + version."""

    __slots__ = ("graph", "kernel")

    def __init__(self, graph: ResidentGraph, kernel: FloodKernel) -> None:
        self.graph = graph
        self.kernel = kernel


class ResidentEngine:
    """A long-lived estimation engine serving many churning overlays."""

    def __init__(
        self,
        *,
        backend: str | None = None,
        policy: "RetryPolicy | None" = None,
        report: "ExecutionReport | None" = None,
        config: CountingConfig | None = None,
    ) -> None:
        self._backend = backend
        self.policy = policy
        self.report = report
        self.default_config = config or CountingConfig()
        self._overlays: dict[str, _Overlay] = {}
        self._multi_cache: dict[tuple[tuple[str, int], ...], MultiFloodKernel] = {}
        self._tuple_cache: dict[tuple[tuple[str, int], ...], NetworkTuple] = {}

    # ------------------------------------------------------------------
    # Overlay lifecycle
    # ------------------------------------------------------------------
    def add_overlay(
        self,
        name: str,
        network: SmallWorldNetwork | None = None,
        *,
        n: int | None = None,
        d: int | None = None,
        seed: int = 0,
        k: int | None = None,
    ) -> SmallWorldNetwork:
        """Register an overlay: adopt ``network`` or sample ``(n, d, seed)``.

        Returns the overlay's current network.  Adoption takes the
        instance as-is (zero copy of the CSR into the kernel); sampling
        is the one cold :func:`~repro.graphs.smallworld.build_small_world`
        call of the overlay's lifetime.
        """
        if name in self._overlays:
            raise ValueError(f"overlay {name!r} already registered")
        if network is None:
            if n is None or d is None:
                raise ValueError("provide a network, or n and d to sample one")
            network = build_small_world(n, d, seed=seed, k=k)
        graph = ResidentGraph.from_network(network)
        kernel = FloodKernel(
            network.h.indptr, network.h.indices, backend=self._backend
        )
        self._overlays[name] = _Overlay(graph, kernel)
        return network

    def remove_overlay(self, name: str) -> None:
        """Drop an overlay and every cached structure that contains it."""
        self._overlay(name)
        del self._overlays[name]
        self._evict(name)

    def overlay_names(self) -> tuple[str, ...]:
        return tuple(self._overlays)

    def network(self, name: str) -> SmallWorldNetwork:
        """The overlay's current network (snapshot, cached per version)."""
        return self._overlay(name).graph.snapshot()

    def version(self, name: str) -> int:
        """Number of churn deltas applied to the overlay so far."""
        return self._overlay(name).graph.version

    def _overlay(self, name: str) -> _Overlay:
        overlay = self._overlays.get(name)
        if overlay is None:
            raise KeyError(
                f"unknown overlay {name!r}; registered: {sorted(self._overlays)}"
            )
        return overlay

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def apply_churn(
        self, name: str, delta: "ChurnDelta", rng: np.random.Generator
    ) -> AppliedDelta:
        """Apply one join/leave delta and rebind the overlay's kernel.

        The incremental patch (:meth:`repro.graphs.delta.ResidentGraph
        .apply_delta`) recomputes only the adjacency chunks the delta
        touched; :meth:`~repro.sim.flood.FloodKernel.update_csr` then
        re-points the warm kernel and drops its stale gather plans.
        Multi-overlay kernels and union stacks are keyed by overlay
        versions, so the bumped version retires exactly the cached
        structures that contained this overlay.
        """
        overlay = self._overlay(name)
        applied = overlay.graph.apply_delta(delta.leaves, delta.joins, rng)
        net = overlay.graph.snapshot()
        overlay.kernel.update_csr(net.h.indptr, net.h.indices)
        return applied

    def _evict(self, name: str) -> None:
        for cache in (self._multi_cache, self._tuple_cache):
            stale = [
                key for key in cache if any(member == name for member, _v in key)
            ]
            for key in stale:
                del cache[key]  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def run_epoch(
        self,
        name: str,
        seeds: Sequence[int | None],
        config: CountingConfig | None = None,
        adversary_factory: "Callable[[], Adversary] | Adversary | None" = None,
        byz_mask: Any = None,
    ) -> BatchCountingResult:
        """Run one overlay's estimation round through its warm kernel.

        Exactly :func:`repro.core.batch.run_counting_batch` on the current
        snapshot with the resident kernel passed through ``kernel=`` —
        bit-for-bit equal to a cold call, minus the kernel construction.
        """
        overlay = self._overlay(name)
        return run_counting_batch(
            overlay.graph.snapshot(),
            seeds,
            config=config or self.default_config,
            adversary_factory=adversary_factory,
            byz_mask=byz_mask,
            kernel=overlay.kernel,
        )

    def serve(self, queries: Sequence[SizeQuery]) -> "list[CountingResult]":
        """Serve a batch of size queries, one result per query, in order.

        Queries sharing a strategy fuse into one padded multi-network
        batch (:func:`repro.core.batch.run_counting_multinet`): each
        overlay's queries become a contiguous column group of the
        trials-as-columns state, flooding through the cached
        multi-network kernel for that overlay set.  Distinct configs
        sub-batch inside the engine; everything stays bit-for-bit equal
        to per-query sequential runs.
        """
        results: list[CountingResult | None] = [None] * len(queries)
        # Group by strategy identity: one adversary spec drives one
        # batched call (None = honest).  Python preserves insertion
        # order, so groups form in first-appearance order.
        groups: dict[int, list[int]] = {}
        specs: dict[int, Any] = {}
        for i, q in enumerate(queries):
            self._overlay(q.overlay)  # eager unknown-overlay error
            key = id(q.strategy) if q.strategy is not None else 0
            groups.setdefault(key, []).append(i)
            specs[key] = q.strategy
        for key, ids in groups.items():
            # Overlay-major order keeps each overlay's queries in one
            # contiguous column group (batch engines sort network-major
            # internally; pre-sorting keeps query -> column mapping
            # simple and stable).
            ids = sorted(ids, key=lambda i: queries[i].overlay)
            nets = [self.network(queries[i].overlay) for i in ids]
            kernel = self._multi_kernel(
                tuple(dict.fromkeys(queries[i].overlay for i in ids))
            )
            masks = [queries[i].byz_mask for i in ids]
            batch = run_counting_multinet(
                nets,
                [queries[i].seed for i in ids],
                config=[
                    queries[i].config or self.default_config for i in ids
                ],
                adversary_factory=specs[key],
                byz_mask=masks if any(m is not None for m in masks) else None,
                kernel=kernel,
            )
            for i, res in zip(ids, batch, strict=True):
                results[i] = res
        assert all(res is not None for res in results)
        return results  # type: ignore[return-value]

    def sweep(
        self,
        names: Sequence[str] | None = None,
        *,
        seeds: Any,
        configs: Any = None,
        placements: Any = None,
        strategies: Any = None,
        jobs: int | None = None,
        shard_cells: int | None = None,
        layout: str = "auto",
        checkpoint: str | os.PathLike[str] | None = None,
    ) -> "MultiSweepResult":
        """Run a multi-overlay sweep over the resident networks.

        Delegates to :func:`repro.core.sweep.run_multi_sweep` with the
        cached union-stack payload (a
        :class:`~repro.graphs.shared.NetworkTuple` carrying the
        pre-stacked block-diagonal CSR) and the engine's retry policy /
        execution report, so sharded rounds inherit the fault-tolerant
        dispatch.  The payload is keyed by overlay versions: sweeps
        between churn events reuse one stack.
        """
        from ..core.sweep import run_multi_sweep

        if names is None:
            names = self.overlay_names()
        payload = self._network_tuple(tuple(names))
        return run_multi_sweep(
            payload,
            seeds=seeds,
            configs=configs,
            placements=placements,
            strategies=strategies,
            jobs=jobs,
            shard_cells=shard_cells,
            layout=layout,
            backend=self._backend,
            policy=self.policy,
            report=self.report,
            checkpoint=checkpoint,
        )

    # ------------------------------------------------------------------
    # Versioned caches
    # ------------------------------------------------------------------
    def _cache_key(self, names: tuple[str, ...]) -> tuple[tuple[str, int], ...]:
        return tuple((name, self._overlay(name).graph.version) for name in names)

    def _multi_kernel(self, names: tuple[str, ...]) -> MultiFloodKernel:
        key = self._cache_key(names)
        kernel = self._multi_cache.get(key)
        if kernel is None:
            kernel = MultiFloodKernel(
                [self.network(name) for name in names],
                kernels=[self._overlay(name).kernel for name in names],
            )
            if len(self._multi_cache) >= _MULTI_CACHE_CAP:
                self._multi_cache.pop(next(iter(self._multi_cache)))
            self._multi_cache[key] = kernel
        return kernel

    def _network_tuple(self, names: tuple[str, ...]) -> NetworkTuple:
        key = self._cache_key(names)
        payload = self._tuple_cache.get(key)
        if payload is None:
            payload = NetworkTuple.build(
                [self.network(name) for name in names],
                union=True,
                backend=self._backend,
            )
            if len(self._tuple_cache) >= _TUPLE_CACHE_CAP:
                self._tuple_cache.pop(next(iter(self._tuple_cache)))
            self._tuple_cache[key] = payload
        return payload

"""Churn-delta descriptions consumed by the resident estimation engine.

A :class:`ChurnDelta` is the *membership* half of a churn event — which
node ids leave and how many fresh nodes join.  The *randomness* half (the
per-cycle insertion anchors for each joiner) comes from the RNG stream the
caller passes to :meth:`repro.service.ResidentEngine.apply_churn`, so a
delta object is pure data: picklable, hashable, and replayable against
any seed discipline (:mod:`repro.sim.rng`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ChurnDelta"]


@dataclass(frozen=True)
class ChurnDelta:
    """One epoch's membership change: ``leaves`` depart, ``joins`` arrive.

    Attributes
    ----------
    leaves:
        Node ids (in the overlay's *current* numbering) to remove.  Must
        be distinct; validated when applied.
    joins:
        Number of fresh nodes to insert.  New nodes receive the ids
        ``[n_live, n_live + joins)`` after compaction.
    """

    leaves: tuple[int, ...] = ()
    joins: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "leaves", tuple(int(v) for v in self.leaves))
        if self.joins < 0:
            raise ValueError(f"joins must be >= 0, got {self.joins}")
        if len(set(self.leaves)) != len(self.leaves):
            raise ValueError("leave ids must be distinct")

    @property
    def size_change(self) -> int:
        """Net change in overlay size (``joins - len(leaves)``)."""
        return self.joins - len(self.leaves)

    @classmethod
    def replace(cls, ids: Sequence[int]) -> "ChurnDelta":
        """A pure-replacement delta: the given nodes leave, as many join."""
        ids = tuple(int(v) for v in ids)
        return cls(leaves=ids, joins=len(ids))

    def __bool__(self) -> bool:
        return bool(self.leaves) or self.joins > 0

"""Continuous estimation service: resident engine + asyncio query front.

The batch layer (:mod:`repro.core.batch`) answers "run B trials now";
this package answers "keep answering size queries forever while the
overlays churn".  Three pieces:

* :class:`ChurnDelta` — pure-data description of one membership change
  (which ids leave, how many join);
* :class:`ResidentEngine` — keeps graphs
  (:class:`repro.graphs.delta.ResidentGraph`), flood kernels, and
  union-stack payloads cached across epochs; a delta patches the CSR
  incrementally and invalidates only the caches that contained the
  mutated overlay.  Every estimation path delegates to the stock batch
  entry points, so results stay bit-for-bit equal to cold per-epoch
  runs;
* :class:`EstimationService` — bounded-queue asyncio front fusing
  concurrent size queries into batched engine rounds, with churn
  commands as ordering barriers and a draining ``aclose()``.

See CONTRIBUTING.md ("Continuous estimation service") for the cache
invalidation rules and delta semantics.
"""

from .delta import ChurnDelta
from .engine import ResidentEngine, SizeQuery
from .front import EstimationService

__all__ = [
    "ChurnDelta",
    "EstimationService",
    "ResidentEngine",
    "SizeQuery",
]

"""Asyncio query front for the resident estimation engine.

:class:`EstimationService` turns a :class:`~repro.service.engine
.ResidentEngine` into a concurrent size-estimation endpoint:

* **queries** (`await service.query(...)`) enqueue onto a bounded
  :class:`asyncio.Queue` — a full queue applies backpressure by making
  ``query`` await a slot instead of growing an unbounded backlog;
* a single **worker task** drains the queue, *fusing consecutive
  queries* into one :meth:`~repro.service.engine.ResidentEngine.serve`
  batch (concurrent callers pay one batched flood, not N sequential
  ones) and running the blocking engine call in the default executor so
  the event loop stays responsive;
* **churn commands** (`await service.churn(...)`) travel through the
  same queue and act as *ordering barriers*: queries enqueued before a
  churn see the pre-delta overlay, queries after it see the patched one
  — exactly the sequential semantics, made explicit;
* **shutdown** (`await service.aclose()`) closes the intake, drains
  every already-accepted item, and joins the worker — no request is
  dropped, and nothing engine-side leaks (the engine owns no shared
  memory; pinned segments only exist inside sharded sweeps, which unlink
  on exit).

Single-worker by design: the engine's caches are not thread-safe, and
one worker already saturates the numpy core because queries fuse into
batches.  Results are bit-for-bit equal to calling the engine directly.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any

import numpy as np

from ..sim.rng import make_rng
from .delta import ChurnDelta
from .engine import ResidentEngine, SizeQuery

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Callable

    from ..adversary.base import Adversary
    from ..core.config import CountingConfig
    from ..core.results import CountingResult
    from ..graphs.delta import AppliedDelta

__all__ = ["EstimationService"]

_CLOSE = object()  # intake-closed sentinel; always the queue's last item


class _Job:
    """One queued request: a query or a churn barrier, plus its future."""

    __slots__ = ("kind", "payload", "future")

    def __init__(self, kind: str, payload: Any, future: "asyncio.Future[Any]") -> None:
        self.kind = kind
        self.payload = payload
        self.future = future


class EstimationService:
    """Bounded-queue asyncio front over a :class:`ResidentEngine`.

    Parameters
    ----------
    engine:
        The resident engine to serve from.  The service takes ownership
        of its execution: do not call the engine concurrently from
        outside while the service is running.
    max_pending:
        Queue bound.  ``query``/``churn`` calls beyond this many
        in-flight requests await a free slot (backpressure) instead of
        queueing without limit.
    """

    def __init__(self, engine: ResidentEngine, *, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.engine = engine
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=max_pending)
        self._closed = False
        self._worker: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    async def query(
        self,
        overlay: str,
        seed: int | None,
        *,
        config: "CountingConfig | None" = None,
        strategy: "Callable[[], Adversary] | Adversary | None" = None,
        byz_mask: Any = None,
    ) -> "CountingResult":
        """Estimate ``overlay``'s size: one counting trial, awaited.

        Concurrent callers are fused into one batched engine round; the
        returned :class:`~repro.core.results.CountingResult` is
        bit-for-bit the trial a direct engine call would produce.
        """
        q = SizeQuery(
            overlay=overlay,
            seed=seed,
            config=config,
            strategy=strategy,
            byz_mask=byz_mask,
        )
        return await self._submit("query", q)

    async def churn(
        self,
        overlay: str,
        delta: ChurnDelta,
        rng: "np.random.Generator | int | None" = None,
    ) -> "AppliedDelta":
        """Apply a membership delta to ``overlay``, as an ordering barrier.

        Queries enqueued before this call resolve against the pre-delta
        overlay; queries after it see the patched one.  ``rng`` seeds the
        joiners' insertion anchors (anything
        :func:`repro.sim.rng.make_rng` accepts).
        """
        gen = rng if isinstance(rng, np.random.Generator) else make_rng(rng)
        return await self._submit("churn", (overlay, delta, gen))

    async def aclose(self) -> None:
        """Close the intake, drain accepted requests, join the worker.

        Idempotent.  After this returns every previously-accepted future
        has resolved and the worker task has exited; further ``query`` /
        ``churn`` calls raise :class:`RuntimeError`.
        """
        if self._closed:
            if self._worker is not None:
                await self._worker
            return
        self._closed = True
        if self._worker is None:
            return
        await self._queue.put(_CLOSE)
        await self._worker

    async def __aenter__(self) -> "EstimationService":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.aclose()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _submit(self, kind: str, payload: Any) -> Any:
        if self._closed:
            raise RuntimeError("EstimationService is closed")
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(self._run())
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        await self._queue.put(_Job(kind, payload, future))  # backpressure point
        return await future

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        held: "_Job | None" = None  # churn pulled while batching queries
        while True:
            if held is not None:
                item, held = held, None
            else:
                item = await self._queue.get()
            if item is _CLOSE:
                return
            job: _Job = item
            if job.kind == "churn":
                await self._run_churn(loop, job)
                continue
            # Fuse every immediately-available query into one batch.  A
            # churn (or the close sentinel) is a barrier: hold it, flush
            # the batch, then handle it on the next pass — preserving
            # enqueue order exactly.
            batch = [job]
            while held is None:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _CLOSE or nxt.kind == "churn":
                    held = nxt
                else:
                    batch.append(nxt)
            await self._run_queries(loop, batch)
            if held is _CLOSE:
                return

    async def _run_churn(self, loop: asyncio.AbstractEventLoop, job: _Job) -> None:
        overlay, delta, gen = job.payload
        try:
            applied = await loop.run_in_executor(
                None, self.engine.apply_churn, overlay, delta, gen
            )
        except BaseException as exc:  # propagate to the awaiting caller
            if not job.future.cancelled():
                job.future.set_exception(exc)
        else:
            if not job.future.cancelled():
                job.future.set_result(applied)

    async def _run_queries(
        self, loop: asyncio.AbstractEventLoop, batch: "list[_Job]"
    ) -> None:
        queries = [job.payload for job in batch]
        try:
            results = await loop.run_in_executor(None, self.engine.serve, queries)
        except BaseException as exc:
            for job in batch:
                if not job.future.cancelled():
                    job.future.set_exception(exc)
        else:
            for job, res in zip(batch, results, strict=True):
                if not job.future.cancelled():
                    job.future.set_result(res)

"""Shared numpy-typing aliases for the strict-typed engine core.

``mypy --strict`` forbids bare ``np.ndarray`` annotations (unparameterized
generics), so the engine packages annotate arrays with the aliases below.
Dtype precision follows what the engines guarantee:

* ``IntArray`` — engine color/plan state, which is int32 until the lazy
  widening guard promotes it to int64 (any signed integer width);
* ``Int64Array`` / ``Int32Array`` — bookkeeping with a pinned width
  (CSR offsets, decided phases, meters);
* ``BoolArray`` — node masks (byzantine / crashed / decided);
* ``FloatArray`` — calibrated estimates and statistics;
* ``AnyArray`` — interfaces that accept caller-provided dtypes.

``SeedLike`` is the seed vocabulary of :func:`repro.sim.rng.make_rng`.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = [
    "AnyArray",
    "BoolArray",
    "FloatArray",
    "Int8Array",
    "Int32Array",
    "Int64Array",
    "IntArray",
    "SeedLike",
]

AnyArray = npt.NDArray[Any]
BoolArray = npt.NDArray[np.bool_]
IntArray = npt.NDArray[np.signedinteger[Any]]
Int8Array = npt.NDArray[np.int8]
Int32Array = npt.NDArray[np.int32]
Int64Array = npt.NDArray[np.int64]
FloatArray = npt.NDArray[np.float64]

SeedLike = int | np.random.Generator | None

"""The Section 1.2 geometric-max baseline (support estimation).

Every node flips a fair coin until heads (color ``X_u``), then the network
floods the running maximum; after ``D`` rounds every node knows
``X̄ = max_u X_u``, which is a constant-factor estimate of ``log2 n`` whp
(``Pr[X̄ >= 2 log n] <= 1/n`` and ``Pr[X̄ < (log n)/2] <= e^{-sqrt n}``).
Each node forwards at most ``O(log n)`` distinct values.

The paper's point: **this fails with even one Byzantine node** — a fake
maximum inflates every estimate arbitrarily, and (in principle) value
suppression could starve it, though the expander's alternate paths defeat
suppression.  Both attacks are implemented so experiment E06 can show which
one actually works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.colors import sample_colors
from ..sim.flood import FloodKernel, MultiFloodKernel
from ..sim.metrics import MessageMeter
from ..sim.rng import make_rng
from ._common import byz_array, check_attack

__all__ = [
    "GeometricMaxResult",
    "run_geometric_max",
    "run_geometric_max_batch",
    "run_geometric_max_multinet",
]

ATTACKS = (None, "fake-max", "suppress")


@dataclass
class GeometricMaxResult:
    """Per-node estimates of ``log2 n`` plus protocol accounting."""

    estimates: np.ndarray
    true_log2_n: float
    rounds: int
    max_distinct_forwards: int
    byz: np.ndarray
    meter: MessageMeter = field(default_factory=MessageMeter)

    @property
    def honest(self) -> np.ndarray:
        return ~self.byz

    def honest_estimates(self) -> np.ndarray:
        return self.estimates[self.honest]

    def fraction_in_band(self, c1: float = 0.5, c2: float = 2.0) -> float:
        """Fraction of honest nodes with ``c1 log n <= X̄ <= c2 log n``."""
        est = self.honest_estimates()
        lo, hi = c1 * self.true_log2_n, c2 * self.true_log2_n
        return float(np.mean((est >= lo) & (est <= hi)))

    def median_estimate(self) -> float:
        return float(np.median(self.honest_estimates()))


def run_geometric_max(
    network,
    seed: int | np.random.Generator | None = 0,
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    fake_value: int | None = None,
    rounds: int | None = None,
) -> GeometricMaxResult:
    """Run the baseline on the ``H`` edges of ``network``.

    Parameters
    ----------
    attack:
        ``None`` (honest), ``"fake-max"`` (Byzantine nodes announce
        ``fake_value``, default ``10 log2 n``), or ``"suppress"``
        (Byzantine nodes never relay anything).
    rounds:
        Flooding rounds; defaults to saturation (tracked exactly).
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    rng = make_rng(seed)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")

    colors = sample_colors(rng, n)
    true_log2_n = float(np.log2(n))
    if attack == "fake-max":
        value = fake_value if fake_value is not None else int(10 * true_log2_n)
        colors[byz] = value
    elif attack == "suppress":
        colors[byz] = 0

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    cur = colors.astype(np.int64)
    changes = np.zeros(n, dtype=np.int64)
    meter = MessageMeter()
    limit = rounds if rounds is not None else 4 * n  # saturation guard
    executed = 0
    for _ in range(limit):
        sent = cur.copy()
        if attack == "suppress":
            sent[byz] = 0
        recv = kernel.neighbor_max(sent)
        nxt = np.maximum(cur, recv)
        executed += 1
        meter.add_round()
        meter.add_messages(int(np.count_nonzero(sent)) * d)
        changed = nxt > cur
        changes += changed
        if rounds is None and not changed.any():
            break
        cur = nxt
    return GeometricMaxResult(
        estimates=cur.astype(np.float64),
        true_log2_n=true_log2_n,
        rounds=executed,
        max_distinct_forwards=int(changes.max()) + 1,
        byz=byz,
        meter=meter,
    )


def run_geometric_max_batch(
    network,
    seeds: Sequence[int | np.random.Generator | None],
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    fake_value: int | None = None,
    rounds: int | None = None,
) -> list[GeometricMaxResult]:
    """Trials-as-columns batched :func:`run_geometric_max` over ``seeds``.

    Bit-for-bit equal to ``[run_geometric_max(network, seed=s, ...) for s
    in seeds]``: integer max-flooding is exact, each trial consumes its own
    rng stream in the same order, and per-trial round/message accounting
    freezes at each trial's own saturation round while the remaining
    columns keep flooding.
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    batch = len(seeds)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")
    if batch == 0:
        return []

    true_log2_n = float(np.log2(n))
    colors = np.empty((n, batch), dtype=np.int64)
    for j, seed in enumerate(seeds):
        colors[:, j] = sample_colors(make_rng(seed), n)
    if attack == "fake-max":
        value = fake_value if fake_value is not None else int(10 * true_log2_n)
        colors[byz, :] = value
    elif attack == "suppress":
        colors[byz, :] = 0

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    cur = colors
    changes = np.zeros((n, batch), dtype=np.int64)
    executed = np.zeros(batch, dtype=np.int64)
    messages = np.zeros(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    limit = rounds if rounds is not None else 4 * n  # saturation guard
    for _ in range(limit):
        sent = cur.copy()
        if attack == "suppress":
            sent[byz, :] = 0
        recv = kernel.neighbor_max_stacked(sent)
        nxt = np.maximum(cur, recv)
        # A saturated column's state is a fixed point, so only accounting
        # needs the active mask (``changed`` is all-False there anyway).
        executed[active] += 1
        senders = np.count_nonzero(sent, axis=0)
        messages[active] += senders[active] * d
        changed = nxt > cur
        changes += changed
        if rounds is None:
            active &= changed.any(axis=0)
            if not active.any():
                cur = nxt
                break
        cur = nxt
    return [
        GeometricMaxResult(
            estimates=cur[:, j].astype(np.float64),
            true_log2_n=true_log2_n,
            rounds=int(executed[j]),
            max_distinct_forwards=int(changes[:, j].max()) + 1,
            byz=byz,
            meter=MessageMeter(
                rounds=int(executed[j]), messages=int(messages[j])
            ),
        )
        for j in range(batch)
    ]


def run_geometric_max_multinet(
    networks,
    seeds: Sequence[int | np.random.Generator | None],
    *,
    byz_masks: Sequence[np.ndarray | None] | None = None,
    attack: str | None = None,
    fake_value: int | None = None,
    rounds: int | None = None,
) -> list[list[GeometricMaxResult]]:
    """The (network x seed) grid of the baseline as one padded batch.

    The network-axis extension of :func:`run_geometric_max_batch`: every
    (network, seed) cell becomes one column of a single padded
    ``(n_pad, B)`` trials-as-columns matrix — networks of different sizes
    included — and floods through the masked
    :class:`~repro.sim.flood.MultiFloodKernel` (padding rows stay zero and
    never win a max).  Per-column round/message accounting freezes at each
    column's own saturation round (or its own ``4 n`` guard / shared
    ``rounds`` override), so ``result[g][j]`` is bit-for-bit equal to
    ``run_geometric_max(networks[g], seed=seeds[j], ...)``.

    ``byz_masks`` gives one ``(n_g,)`` placement per network (or None);
    required (somewhere non-empty) when ``attack`` is set.
    """
    check_attack(attack, ATTACKS)
    networks = list(networks)
    seeds = list(seeds)
    n_nets, reps = len(networks), len(seeds)
    batch = n_nets * reps
    if byz_masks is None:
        byz_masks = [None] * n_nets
    byz_list = [byz_array(net.n, m) for net, m in zip(networks, byz_masks)]
    if attack is not None and not any(m.any() for m in byz_list):
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")
    if batch == 0:
        return [[] for _ in networks]

    mkernel = MultiFloodKernel(networks)
    n_pad = mkernel.n_pad
    d = networks[0].d
    col_net = np.repeat(np.arange(n_nets, dtype=np.int64), reps)
    plan = mkernel.column_plan(col_net)
    n_act = np.asarray([networks[g].n for g in col_net], dtype=np.int64)
    true_log2 = np.asarray([np.log2(net.n) for net in networks])

    colors = np.zeros((n_pad, batch), dtype=np.int64)
    for g, net in enumerate(networks):
        for j, seed in enumerate(seeds):
            colors[: net.n, g * reps + j] = sample_colors(make_rng(seed), net.n)
    suppress_rows = None
    if attack == "fake-max":
        for g, net in enumerate(networks):
            value = fake_value if fake_value is not None else int(10 * true_log2[g])
            colors[: net.n][byz_list[g], g * reps : (g + 1) * reps] = value
    elif attack == "suppress":
        suppress_rows = np.zeros((n_pad, batch), dtype=bool)
        for g, net in enumerate(networks):
            cols = slice(g * reps, (g + 1) * reps)
            colors[: net.n][byz_list[g], cols] = 0
            suppress_rows[: net.n, cols] = byz_list[g][:, None]

    cur = colors
    changes = np.zeros((n_pad, batch), dtype=np.int64)
    executed = np.zeros(batch, dtype=np.int64)
    messages = np.zeros(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    # Per-column saturation guard: each column honors its *own* network's
    # ``4 n`` limit (flooding saturates within the diameter, far earlier).
    if rounds is not None:
        limit_vec = np.full(batch, int(rounds), dtype=np.int64)
    else:
        limit_vec = 4 * n_act
    for r in range(1, int(limit_vec.max()) + 1):
        active &= r <= limit_vec
        if not active.any():
            break
        sent = cur.copy()
        if suppress_rows is not None:
            sent[suppress_rows] = 0
        recv = mkernel.neighbor_max_stacked(sent, plan)
        nxt = np.maximum(cur, recv)
        executed[active] += 1
        # Padding rows are identically 0, so full-column counts equal
        # live-prefix counts.
        senders = np.count_nonzero(sent, axis=0)
        messages[active] += senders[active] * d
        changed = (nxt > cur) & active[None, :]
        changes += changed
        if rounds is None:
            active &= changed.any(axis=0)
        # Frozen columns keep their state (their loop already ended).
        cur = np.where(active[None, :], nxt, cur)
    return [
        [
            GeometricMaxResult(
                estimates=cur[: networks[g].n, g * reps + j].astype(np.float64),
                true_log2_n=float(true_log2[g]),
                rounds=int(executed[g * reps + j]),
                max_distinct_forwards=int(changes[: networks[g].n, g * reps + j].max())
                + 1,
                byz=byz_list[g],
                meter=MessageMeter(
                    rounds=int(executed[g * reps + j]),
                    messages=int(messages[g * reps + j]),
                ),
            )
            for j in range(reps)
        ]
        for g in range(n_nets)
    ]

"""Spanning-tree convergecast counting (the Section 1.2 "simple" solution).

Without Byzantine nodes the counting problem is easy: build a BFS spanning
tree, converge-cast subtree counts to the root, which learns ``n`` exactly
in ``2D`` rounds.  A single Byzantine node anywhere in the tree can report
an arbitrary subtree count, corrupting the root's total without bound —
hence the need for the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graphs.balls import bfs_distances
from ._common import byz_array, check_attack

__all__ = ["ConvergecastResult", "run_convergecast", "run_convergecast_batch"]

ATTACKS = (None, "inflate", "zero")


@dataclass
class ConvergecastResult:
    root: int
    count_at_root: int
    true_n: int
    rounds: int
    depth: int
    byz: np.ndarray

    @property
    def exact(self) -> bool:
        return self.count_at_root == self.true_n

    def relative_error(self) -> float:
        return abs(self.count_at_root - self.true_n) / self.true_n


def run_convergecast(
    network,
    root: int = 0,
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    inflate_by: int = 1_000_000,
    seed: int | np.random.Generator | None = 0,
) -> ConvergecastResult:
    """BFS-tree convergecast count over the ``H`` edges.

    ``attack="inflate"`` makes each Byzantine node add ``inflate_by`` to its
    true subtree count; ``attack="zero"`` makes it report 0 (erasing its
    subtree).  The honest run returns exactly ``n``.
    """
    check_attack(attack, ATTACKS)
    n = network.n
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")
    if byz[root]:
        raise ValueError("the root must be honest for a meaningful experiment")

    dist, parent, depth = _spanning_tree(network, root)
    count = _convergecast_count(
        root, dist, parent, depth, byz, attack, inflate_by
    )
    return ConvergecastResult(
        root=root,
        count_at_root=count,
        true_n=n,
        rounds=2 * depth + 1,
        depth=depth,
        byz=byz,
    )


def _spanning_tree(network, root: int) -> tuple[np.ndarray, np.ndarray, int]:
    """BFS distances and deterministic parents (smallest-id up-neighbor).

    Fully vectorized: per CSR slot, a neighbor one level closer to the
    root is a parent candidate (sentinel ``n`` otherwise) and a segmented
    minimum picks the smallest — the same choice as minimizing over each
    node's distinct up-neighbors.
    """
    n = network.n
    indptr, indices = network.h.indptr, network.h.indices
    dist = bfs_distances(indptr, indices, root)
    if np.any(dist == -1):
        raise ValueError("H is disconnected; convergecast undefined")
    depth = int(dist.max())
    src_dist = np.repeat(dist, np.diff(indptr))
    candidates = np.where(dist[indices] == src_dist - 1, indices, n)
    parent = np.minimum.reduceat(candidates, indptr[:-1])
    parent[root] = -1
    return dist, parent, depth


def _convergecast_count(
    root: int,
    dist: np.ndarray,
    parent: np.ndarray,
    depth: int,
    byz: np.ndarray,
    attack: str | None,
    inflate_by: int,
) -> int:
    """Converge-cast leaves inward, one level per round (vectorized).

    Parents sit strictly one level up, so each level's subtotals are final
    before that level reports; within a level the additions commute
    (``np.add.at`` accumulates duplicates), matching the sequential
    deepest-first walk exactly.
    """
    subtotal = np.ones(dist.shape[0], dtype=np.int64)
    for level in range(depth, 0, -1):
        nodes = np.flatnonzero(dist == level)
        reported = subtotal[nodes]
        if attack == "inflate":
            reported = np.where(byz[nodes], reported + inflate_by, reported)
        elif attack == "zero":
            reported = np.where(byz[nodes], 0, reported)
        np.add.at(subtotal, parent[nodes], reported)
    return int(subtotal[root])


def run_convergecast_batch(
    network,
    roots: Sequence[int],
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    inflate_by: int = 1_000_000,
    seed: int | np.random.Generator | None = 0,
) -> list[ConvergecastResult]:
    """Batched :func:`run_convergecast` over a set of roots.

    The protocol is deterministic given the tree, so the batch axis is the
    root choice (one tree per root); results are bit-for-bit equal to
    per-root scalar calls.
    """
    return [
        run_convergecast(
            network,
            int(root),
            byz_mask=byz_mask,
            attack=attack,
            inflate_by=inflate_by,
            seed=seed,
        )
        for root in roots
    ]

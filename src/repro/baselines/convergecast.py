"""Spanning-tree convergecast counting (the Section 1.2 "simple" solution).

Without Byzantine nodes the counting problem is easy: build a BFS spanning
tree, converge-cast subtree counts to the root, which learns ``n`` exactly
in ``2D`` rounds.  A single Byzantine node anywhere in the tree can report
an arbitrary subtree count, corrupting the root's total without bound —
hence the need for the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.balls import bfs_distances

__all__ = ["ConvergecastResult", "run_convergecast"]

ATTACKS = (None, "inflate", "zero")


@dataclass
class ConvergecastResult:
    root: int
    count_at_root: int
    true_n: int
    rounds: int
    depth: int
    byz: np.ndarray

    @property
    def exact(self) -> bool:
        return self.count_at_root == self.true_n

    def relative_error(self) -> float:
        return abs(self.count_at_root - self.true_n) / self.true_n


def run_convergecast(
    network,
    root: int = 0,
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    inflate_by: int = 1_000_000,
    seed: int | np.random.Generator | None = 0,
) -> ConvergecastResult:
    """BFS-tree convergecast count over the ``H`` edges.

    ``attack="inflate"`` makes each Byzantine node add ``inflate_by`` to its
    true subtree count; ``attack="zero"`` makes it report 0 (erasing its
    subtree).  The honest run returns exactly ``n``.
    """
    if attack not in ATTACKS:
        raise ValueError(f"unknown attack {attack!r}; choose from {ATTACKS}")
    n = network.n
    byz = (
        np.zeros(n, dtype=bool)
        if byz_mask is None
        else np.asarray(byz_mask, dtype=bool)
    )
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")
    if byz[root]:
        raise ValueError("the root must be honest for a meaningful experiment")

    indptr, indices = network.h.indptr, network.h.indices
    dist = bfs_distances(indptr, indices, root)
    if np.any(dist == -1):
        raise ValueError("H is disconnected; convergecast undefined")
    depth = int(dist.max())

    # Deterministic parent choice: the smallest-id neighbor one level up.
    parent = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        if v == root:
            continue
        nbrs = np.unique(network.h.neighbors(v))
        ups = nbrs[dist[nbrs] == dist[v] - 1]
        parent[v] = int(ups.min())

    # Converge-cast: leaves inward, one level per round.
    subtotal = np.ones(n, dtype=np.int64)
    order = np.argsort(dist, kind="stable")[::-1]  # deepest first
    for v in order:
        if v == root:
            continue
        reported = subtotal[v]
        if byz[v]:
            if attack == "inflate":
                reported = subtotal[v] + inflate_by
            elif attack == "zero":
                reported = 0
        subtotal[parent[v]] += reported
    return ConvergecastResult(
        root=root,
        count_at_root=int(subtotal[root]),
        true_n=n,
        rounds=2 * depth + 1,
        depth=depth,
        byz=byz,
    )

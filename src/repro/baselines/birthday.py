"""Birthday-paradox size estimation via random walks ([14]; Section 1.2).

A coordinator launches ``W`` tokens on independent random walks of length
``T`` (>= mixing time, so endpoints are ~uniform on a regular graph),
collects the endpoint IDs and counts pairwise collisions ``C``; by the
birthday paradox ``E[C] ≈ W(W-1)/(2n)``, giving ``n̂ = W(W-1)/(2C)``.

The paper notes such approaches "also fail in the Byzantine case": a walk
that touches a Byzantine node is hijacked.  Two hijack modes:

* ``"unique"`` — the endpoint is replaced by a fresh fake ID, evading
  collisions and inflating ``n̂`` (possibly to infinity);
* ``"absorb"`` — the endpoint is replaced by one fixed ID, manufacturing
  collisions and deflating ``n̂``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.rng import make_rng
from ._common import byz_array, check_attack

__all__ = ["BirthdayResult", "run_birthday", "run_birthday_batch"]

ATTACKS = (None, "unique", "absorb")


@dataclass
class BirthdayResult:
    estimate: float
    true_n: int
    walks: int
    walk_length: int
    collisions: int
    hijacked: int

    def relative_error(self) -> float:
        if not np.isfinite(self.estimate):
            return np.inf
        return abs(self.estimate - self.true_n) / self.true_n


def run_birthday(
    network,
    seed: int | np.random.Generator | None = 0,
    *,
    walks: int | None = None,
    walk_length: int | None = None,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
) -> BirthdayResult:
    """Run the random-walk birthday estimator on ``H``.

    Defaults: ``W = ceil(4 sqrt(n))`` walks (expected ~8 collisions) of
    length ``T = 4 ceil(log2 n)`` (comfortably past mixing for a
    near-Ramanujan expander).
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    rng = make_rng(seed)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires Byzantine nodes")
    W, T = _walk_params(n, walks, walk_length)

    pos = rng.integers(0, n, size=W)
    touched_byz = byz[pos].copy()
    indices = network.h.indices
    for _ in range(T):
        port = rng.integers(0, d, size=W)
        pos = indices[pos * d + port]
        touched_byz |= byz[pos]

    return _finish_walk(pos.astype(np.int64), touched_byz, attack, n, W, T)


def _walk_params(n: int, walks: int | None, walk_length: int | None) -> tuple[int, int]:
    """Defaults: ``W = ceil(4 sqrt(n))``, ``T = 4 ceil(log2 n)``."""
    W = walks if walks is not None else int(np.ceil(4 * np.sqrt(n)))
    T = walk_length if walk_length is not None else 4 * int(np.ceil(np.log2(n)))
    return W, T


def _finish_walk(
    endpoints: np.ndarray,
    touched_byz: np.ndarray,
    attack: str | None,
    n: int,
    W: int,
    T: int,
) -> BirthdayResult:
    """Hijack the endpoints per ``attack``, count collisions, estimate."""
    hijacked = 0
    if attack == "unique":
        hijack = touched_byz
        hijacked = int(hijack.sum())
        endpoints = endpoints.copy()
        endpoints[hijack] = n + np.arange(hijacked)  # fresh fake IDs
    elif attack == "absorb":
        hijack = touched_byz
        hijacked = int(hijack.sum())
        endpoints = endpoints.copy()
        endpoints[hijack] = 0

    counts = np.bincount(endpoints)
    collisions = int(np.sum(counts * (counts - 1) // 2))
    estimate = W * (W - 1) / (2.0 * collisions) if collisions else np.inf
    return BirthdayResult(
        estimate=float(estimate),
        true_n=n,
        walks=W,
        walk_length=T,
        collisions=collisions,
        hijacked=hijacked,
    )


def run_birthday_batch(
    network,
    seeds: Sequence[int | np.random.Generator | None],
    *,
    walks: int | None = None,
    walk_length: int | None = None,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
) -> list[BirthdayResult]:
    """Trials-as-rows batched :func:`run_birthday` over ``seeds``.

    All trials' walkers step through the CSR adjacency in one ``(B, W)``
    gather per round; the per-trial port draws come from each trial's own
    rng in the scalar call order, so results are bit-for-bit equal to
    per-seed scalar runs.
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    batch = len(seeds)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires Byzantine nodes")
    if batch == 0:
        return []
    W, T = _walk_params(n, walks, walk_length)

    rngs = [make_rng(seed) for seed in seeds]
    pos = np.empty((batch, W), dtype=np.int64)
    for j, rng in enumerate(rngs):
        pos[j] = rng.integers(0, n, size=W)
    touched_byz = byz[pos].copy()
    indices = network.h.indices
    port = np.empty((batch, W), dtype=np.int64)
    for _ in range(T):
        for j, rng in enumerate(rngs):
            port[j] = rng.integers(0, d, size=W)
        pos = indices[pos * d + port]
        touched_byz |= byz[pos]

    return [
        _finish_walk(pos[j], touched_byz[j], attack, n, W, T) for j in range(batch)
    ]

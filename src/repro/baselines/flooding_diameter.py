"""Leader-flooding diameter estimation (Section 1.2 / footnote 5).

If an honest leader existed, it could flood a token and every node could
estimate ``log n`` from the token's first-arrival round (the ball around
the leader grows by a factor ``~(d-1)`` per hop).  The paper notes this
*presupposes* leader election — itself hard without knowing ``n`` — and
that Byzantine nodes can pre-flood fake tokens, deflating arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.balls import bfs_distances

__all__ = ["FloodingDiameterResult", "run_flooding_diameter"]

ATTACKS = (None, "pre-flood")


@dataclass
class FloodingDiameterResult:
    leader: int
    arrival: np.ndarray
    estimates: np.ndarray  # per-node log2-size estimates
    true_log2_n: float
    rounds: int
    byz: np.ndarray

    @property
    def honest(self) -> np.ndarray:
        return ~self.byz

    def median_estimate(self) -> float:
        return float(np.median(self.estimates[self.honest]))

    def fraction_in_band(self, c1: float = 0.25, c2: float = 4.0) -> float:
        est = self.estimates[self.honest]
        lo, hi = c1 * self.true_log2_n, c2 * self.true_log2_n
        return float(np.mean((est >= lo) & (est <= hi)))


def run_flooding_diameter(
    network,
    leader: int = 0,
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
) -> FloodingDiameterResult:
    """Estimate ``log2 n`` from token first-arrival times.

    ``attack="pre-flood"`` lets every Byzantine node source an
    indistinguishable token at round 0, so each node's arrival time becomes
    its distance to the *nearest* source — an underestimate.
    """
    if attack not in ATTACKS:
        raise ValueError(f"unknown attack {attack!r}; choose from {ATTACKS}")
    n, d = network.n, network.d
    byz = (
        np.zeros(n, dtype=bool)
        if byz_mask is None
        else np.asarray(byz_mask, dtype=bool)
    )
    if attack == "pre-flood" and not byz.any():
        raise ValueError("pre-flood attack requires Byzantine nodes")
    if byz[leader]:
        raise ValueError("the leader must be honest")

    sources = [leader]
    if attack == "pre-flood":
        sources = [leader] + [int(b) for b in np.flatnonzero(byz)]
    arrival = bfs_distances(network.h.indptr, network.h.indices, np.array(sources))
    if np.any(arrival == -1):
        raise ValueError("H is disconnected")
    estimates = arrival.astype(np.float64) * np.log2(d - 1)
    return FloodingDiameterResult(
        leader=leader,
        arrival=arrival,
        estimates=estimates,
        true_log2_n=float(np.log2(n)),
        rounds=int(arrival.max()),
        byz=byz,
    )

"""Leader-flooding diameter estimation (Section 1.2 / footnote 5).

If an honest leader existed, it could flood a token and every node could
estimate ``log n`` from the token's first-arrival round (the ball around
the leader grows by a factor ``~(d-1)`` per hop).  The paper notes this
*presupposes* leader election — itself hard without knowing ``n`` — and
that Byzantine nodes can pre-flood fake tokens, deflating arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graphs.balls import bfs_distances
from ..sim.flood import FloodKernel
from ._common import byz_array, check_attack

__all__ = [
    "FloodingDiameterResult",
    "run_flooding_diameter",
    "run_flooding_diameter_batch",
]

ATTACKS = (None, "pre-flood")


@dataclass
class FloodingDiameterResult:
    leader: int
    arrival: np.ndarray
    estimates: np.ndarray  # per-node log2-size estimates
    true_log2_n: float
    rounds: int
    byz: np.ndarray

    @property
    def honest(self) -> np.ndarray:
        return ~self.byz

    def median_estimate(self) -> float:
        return float(np.median(self.estimates[self.honest]))

    def fraction_in_band(self, c1: float = 0.25, c2: float = 4.0) -> float:
        est = self.estimates[self.honest]
        lo, hi = c1 * self.true_log2_n, c2 * self.true_log2_n
        return float(np.mean((est >= lo) & (est <= hi)))


def run_flooding_diameter(
    network,
    leader: int = 0,
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
) -> FloodingDiameterResult:
    """Estimate ``log2 n`` from token first-arrival times.

    ``attack="pre-flood"`` lets every Byzantine node source an
    indistinguishable token at round 0, so each node's arrival time becomes
    its distance to the *nearest* source — an underestimate.
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    byz = byz_array(n, byz_mask)
    if attack == "pre-flood" and not byz.any():
        raise ValueError("pre-flood attack requires Byzantine nodes")
    if byz[leader]:
        raise ValueError("the leader must be honest")

    sources = [leader]
    if attack == "pre-flood":
        sources = [leader] + [int(b) for b in np.flatnonzero(byz)]
    arrival = bfs_distances(network.h.indptr, network.h.indices, np.array(sources))
    if np.any(arrival == -1):
        raise ValueError("H is disconnected")
    estimates = arrival.astype(np.float64) * np.log2(d - 1)
    return FloodingDiameterResult(
        leader=leader,
        arrival=arrival,
        estimates=estimates,
        true_log2_n=float(np.log2(n)),
        rounds=int(arrival.max()),
        byz=byz,
    )


def run_flooding_diameter_batch(
    network,
    leaders: Sequence[int],
    *,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
) -> list[FloodingDiameterResult]:
    """Batched :func:`run_flooding_diameter` over a set of leaders.

    All leaders' token floods run simultaneously as one ``(n, B)``
    level-synchronous BFS through the stacked flood kernel (a token's
    first-arrival round *is* its BFS distance, so results are bit-for-bit
    equal to per-leader scalar calls).
    """
    check_attack(attack, ATTACKS)
    n, d = network.n, network.d
    batch = len(leaders)
    byz = byz_array(n, byz_mask)
    if attack == "pre-flood" and not byz.any():
        raise ValueError("pre-flood attack requires Byzantine nodes")
    if batch == 0:
        return []

    byz_sources = np.flatnonzero(byz)
    reached = np.zeros((n, batch), dtype=np.int8)
    arrival = np.full((n, batch), -1, dtype=np.int64)
    for j, leader in enumerate(leaders):
        if byz[leader]:
            raise ValueError("the leader must be honest")
        reached[leader, j] = 1
        if attack == "pre-flood":
            reached[byz_sources, j] = 1
    arrival[reached.astype(bool)] = 0

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    step = 0
    while (arrival == -1).any():
        recv = kernel.neighbor_max_stacked(reached)
        step += 1
        newly = (recv != 0) & (arrival == -1)
        if not newly.any():
            raise ValueError("H is disconnected")
        arrival[newly] = step
        np.maximum(reached, recv, out=reached)

    log_factor = np.log2(d - 1)
    true_log2_n = float(np.log2(n))
    return [
        FloodingDiameterResult(
            leader=int(leaders[j]),
            arrival=arrival[:, j].copy(),
            estimates=arrival[:, j].astype(np.float64) * log_factor,
            true_log2_n=true_log2_n,
            rounds=int(arrival[:, j].max()),
            byz=byz,
        )
        for j in range(batch)
    ]

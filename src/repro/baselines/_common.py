"""Shared argument plumbing for the baseline estimators.

Every estimator (scalar and batched) starts with the same prologue:
reject unknown attack names and normalize the Byzantine mask.  Keeping it
here means the scalar and batched variants of one estimator cannot drift
apart in their validation rules.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_attack", "byz_array"]


def check_attack(attack: str | None, attacks: tuple) -> None:
    """Reject attack names outside the estimator's ``ATTACKS`` tuple."""
    if attack not in attacks:
        raise ValueError(f"unknown attack {attack!r}; choose from {attacks}")


def byz_array(n: int, byz_mask: np.ndarray | None) -> np.ndarray:
    """The Byzantine placement as a boolean array (all-honest default)."""
    if byz_mask is None:
        return np.zeros(n, dtype=bool)
    return np.asarray(byz_mask, dtype=bool)

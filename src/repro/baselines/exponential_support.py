"""Exponential support estimation ([6], [4]; referenced in Section 1.2).

Each node draws ``Exp(1)`` variates in ``K`` independent repetitions; the
network floods the *minimum* per repetition.  The minimum of ``n``
exponentials is ``Exp(n)``, so the MLE from ``K`` observed minima
``M_1..M_K`` is ``n̂ = K / sum(M_j)`` — an unbiased-up-to-(K/(K-1))
estimator with relative error ``O(1/sqrt K)``.

Byzantine failure modes (E06):

* ``"tiny"`` — a Byzantine node reports an absurdly small variate, driving
  every minimum (and hence ``n̂``) toward infinity: one liar suffices.
* ``"suppress"`` — refuse to relay minima; defeated by the expander.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.flood import FloodKernel
from ..sim.rng import make_rng
from ._common import byz_array, check_attack

__all__ = [
    "ExponentialSupportResult",
    "run_exponential_support",
    "run_exponential_support_batch",
]

ATTACKS = (None, "tiny", "suppress")

#: Sentinel for "no value seen" in min-flooding (stored negated for max).
_SILENT = np.inf


@dataclass
class ExponentialSupportResult:
    estimates: np.ndarray  # per-node n̂
    true_n: int
    repetitions: int
    rounds: int
    byz: np.ndarray

    @property
    def honest(self) -> np.ndarray:
        return ~self.byz

    def median_estimate(self) -> float:
        return float(np.median(self.estimates[self.honest]))

    def fraction_within_factor(self, factor: float = 2.0) -> float:
        est = self.estimates[self.honest]
        return float(np.mean((est >= self.true_n / factor) & (est <= self.true_n * factor)))


def run_exponential_support(
    network,
    seed: int | np.random.Generator | None = 0,
    *,
    repetitions: int = 16,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    rounds: int | None = None,
) -> ExponentialSupportResult:
    """Run ``repetitions`` rounds of min-flooding support estimation."""
    check_attack(attack, ATTACKS)
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    n = network.n
    rng = make_rng(seed)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")

    kernel = FloodKernel(network.h.indptr, network.h.indices)
    depth = rounds if rounds is not None else _saturation_depth(network)
    totals = np.zeros(n, dtype=np.float64)
    for _ in range(repetitions):
        draws = rng.exponential(1.0, size=n)
        if attack == "tiny":
            draws[byz] = 1e-12
        # Min-flooding as max-flooding of negated values.
        cur = -draws
        if attack == "suppress":
            pass  # byz still hold their draw but never relay
        for _ in range(depth):
            sent = cur.copy()
            if attack == "suppress":
                sent[byz] = -_SILENT
            recv = kernel.neighbor_max(sent)
            cur = np.maximum(cur, recv)
        totals += -cur  # the per-node observed minimum
    estimates = repetitions / totals
    return ExponentialSupportResult(
        estimates=estimates,
        true_n=n,
        repetitions=repetitions,
        rounds=depth * repetitions,
        byz=byz,
    )


def run_exponential_support_batch(
    network,
    seeds: Sequence[int | np.random.Generator | None],
    *,
    repetitions: int = 16,
    byz_mask: np.ndarray | None = None,
    attack: str | None = None,
    rounds: int | None = None,
) -> list[ExponentialSupportResult]:
    """Trials-as-columns batched :func:`run_exponential_support`.

    Bit-for-bit equal to per-seed scalar runs: min-flooding is an exact
    elementwise/segmented maximum of negated draws (no accumulation), each
    trial's rng issues the same per-repetition draws, and the per-node
    minima are summed in the same repetition order.
    """
    check_attack(attack, ATTACKS)
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    n = network.n
    batch = len(seeds)
    byz = byz_array(n, byz_mask)
    if attack is not None and not byz.any():
        raise ValueError(f"attack {attack!r} requires at least one Byzantine node")
    if batch == 0:
        return []

    rngs = [make_rng(seed) for seed in seeds]
    kernel = FloodKernel(network.h.indptr, network.h.indices)
    depth = rounds if rounds is not None else _saturation_depth(network)
    totals = np.zeros((n, batch), dtype=np.float64)
    draws = np.empty((n, batch), dtype=np.float64)
    for _ in range(repetitions):
        for j, rng in enumerate(rngs):
            draws[:, j] = rng.exponential(1.0, size=n)
        if attack == "tiny":
            draws[byz, :] = 1e-12
        cur = -draws
        for _ in range(depth):
            sent = cur.copy()
            if attack == "suppress":
                sent[byz, :] = -_SILENT
            recv = kernel.neighbor_max_stacked(sent)
            cur = np.maximum(cur, recv)
        totals += -cur
    estimates = repetitions / totals
    return [
        ExponentialSupportResult(
            estimates=estimates[:, j].copy(),
            true_n=n,
            repetitions=repetitions,
            rounds=depth * repetitions,
            byz=byz,
        )
        for j in range(batch)
    ]


def _saturation_depth(network) -> int:
    """Enough rounds to saturate: measured H diameter (cheap double sweep)."""
    from ..graphs.properties import diameter

    return diameter(network.h.indptr, network.h.indices) + 1

"""Section 1.2 baseline protocols and their Byzantine failure modes."""

from .birthday import BirthdayResult, run_birthday
from .convergecast import ConvergecastResult, run_convergecast
from .exponential_support import ExponentialSupportResult, run_exponential_support
from .flooding_diameter import FloodingDiameterResult, run_flooding_diameter
from .geometric_max import GeometricMaxResult, run_geometric_max

__all__ = [
    "GeometricMaxResult",
    "run_geometric_max",
    "ExponentialSupportResult",
    "run_exponential_support",
    "ConvergecastResult",
    "run_convergecast",
    "FloodingDiameterResult",
    "run_flooding_diameter",
    "BirthdayResult",
    "run_birthday",
]

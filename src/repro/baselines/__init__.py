"""Section 1.2 baseline protocols and their Byzantine failure modes.

Every estimator has a trials-as-columns batched variant (``run_*_batch``)
that is bit-for-bit equal to per-seed (or per-root / per-leader) scalar
calls while amortizing kernel dispatch across the batch — the E05/E06
comparison sweeps route through these.
"""

from .birthday import BirthdayResult, run_birthday, run_birthday_batch
from .convergecast import (
    ConvergecastResult,
    run_convergecast,
    run_convergecast_batch,
)
from .exponential_support import (
    ExponentialSupportResult,
    run_exponential_support,
    run_exponential_support_batch,
)
from .flooding_diameter import (
    FloodingDiameterResult,
    run_flooding_diameter,
    run_flooding_diameter_batch,
)
from .geometric_max import (
    GeometricMaxResult,
    run_geometric_max,
    run_geometric_max_batch,
    run_geometric_max_multinet,
)

__all__ = [
    "GeometricMaxResult",
    "run_geometric_max",
    "run_geometric_max_batch",
    "run_geometric_max_multinet",
    "ExponentialSupportResult",
    "run_exponential_support",
    "run_exponential_support_batch",
    "ConvergecastResult",
    "run_convergecast",
    "run_convergecast_batch",
    "FloodingDiameterResult",
    "run_flooding_diameter",
    "run_flooding_diameter_batch",
    "BirthdayResult",
    "run_birthday",
    "run_birthday_batch",
]

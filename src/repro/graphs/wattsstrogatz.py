"""Watts-Strogatz small-world model (Section 2.1 comparison).

The paper's small-world construction is *inspired by but different from*
Watts-Strogatz: WS allows Theta(log n) degrees after rewiring, whereas
``G = H ∪ L`` has constant bounded degree.  This module implements WS from
scratch so the experiment suite can demonstrate the contrast (degree
distribution, clustering) that motivated the paper's choice of model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import Int64Array, SeedLike
from ..sim.rng import make_rng

__all__ = ["WattsStrogatzGraph", "generate_watts_strogatz"]


@dataclass(frozen=True)
class WattsStrogatzGraph:
    """A Watts-Strogatz sample stored as CSR adjacency (simple graph)."""

    n: int
    ring_degree: int
    rewire_p: float
    indptr: Int64Array = field(repr=False)
    indices: Int64Array = field(repr=False)

    def neighbors(self, v: int) -> Int64Array:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degrees(self) -> Int64Array:
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        return int(self.degrees().max())


def generate_watts_strogatz(
    n: int,
    ring_degree: int,
    rewire_p: float,
    seed: SeedLike = 0,
) -> WattsStrogatzGraph:
    """Ring lattice with ``ring_degree`` nearest neighbors, each edge rewired
    with probability ``rewire_p`` (one endpoint kept, as in the original
    1998 construction)."""
    if ring_degree % 2 != 0 or ring_degree < 2:
        raise ValueError("ring_degree must be even and >= 2")
    if not 0.0 <= rewire_p <= 1.0:
        raise ValueError("rewire_p must be in [0, 1]")
    if n <= ring_degree:
        raise ValueError("need n > ring_degree")
    rng = make_rng(seed)
    edges: set[tuple[int, int]] = set()
    for v in range(n):
        for off in range(1, ring_degree // 2 + 1):
            u = (v + off) % n
            edges.add((min(v, u), max(v, u)))
    edge_list = sorted(edges)
    rewired: set[tuple[int, int]] = set(edge_list)
    for u, v in edge_list:
        if rng.random() >= rewire_p:
            continue
        rewired.discard((u, v))
        # Keep endpoint u, pick a fresh target avoiding self-loops/duplicates.
        for _ in range(16):
            w = int(rng.integers(n))
            cand = (min(u, w), max(u, w))
            if w != u and cand not in rewired:
                rewired.add(cand)
                break
        else:
            rewired.add((u, v))
    # Build CSR.
    us = np.array([e[0] for e in rewired] + [e[1] for e in rewired], dtype=np.int64)
    vs = np.array([e[1] for e in rewired] + [e[0] for e in rewired], dtype=np.int64)
    order = np.argsort(us, kind="stable")
    sorted_us = us[order]
    indices = vs[order]
    counts = np.bincount(sorted_us, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return WattsStrogatzGraph(
        n=n,
        ring_degree=ring_degree,
        rewire_p=rewire_p,
        indptr=indptr,
        indices=indices,
    )

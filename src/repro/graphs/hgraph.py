"""The ``H(n, d)`` random regular multigraph model (Section 2.1, Appendix A).

``H(n, d)`` is constructed as the union of ``d/2`` Hamiltonian cycles chosen
independently and uniformly at random on the vertex set ``{0, ..., n-1}``
(Law & Siu's peer-to-peer construction).  The result is a ``d``-regular
multigraph that is an expander — in fact near-Ramanujan — with high
probability (Lemma 19, citing Friedman).

The adjacency is stored in CSR form (``indptr``, ``indices``) with
multiplicity preserved, because the protocol's flooding kernel and all BFS
utilities consume CSR directly.  ``indptr`` is the trivial ``arange * d``
since the graph is exactly regular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._types import Int64Array, IntArray, SeedLike
from ..sim.rng import make_rng
from .balls import bfs_distances

__all__ = [
    "HGraph",
    "generate_hgraph",
    "hamiltonian_cycle_edges",
    "hgraph_from_cycles",
]


def hamiltonian_cycle_edges(perm: IntArray) -> tuple[IntArray, IntArray]:
    """Edge endpoints ``(u, v)`` of the cycle visiting ``perm`` in order."""
    u = np.asarray(perm)
    v = np.roll(u, -1)
    return u, v


@dataclass(frozen=True)
class HGraph:
    """A concrete sample of the ``H(n, d)`` model.

    Attributes
    ----------
    n, d:
        Vertex count and (even) uniform degree.
    cycles:
        Array of shape ``(d // 2, n)``; row ``c`` is the vertex order of
        Hamiltonian cycle ``c``.
    indptr, indices:
        CSR adjacency with multiplicity; ``indices[indptr[v]:indptr[v+1]]``
        lists the ``d`` neighbors of ``v`` (a neighbor appears once per
        parallel edge).
    """

    n: int
    d: int
    cycles: Int64Array
    indptr: Int64Array = field(repr=False)
    indices: Int64Array = field(repr=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> Int64Array:
        """The ``d`` neighbors of ``v`` (with multiplicity), as a view."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def unique_neighbors(self, v: int) -> Int64Array:
        """Distinct neighbors of ``v`` (multi-edges collapsed)."""
        return np.unique(self.neighbors(v))

    def neighbor_sets(self) -> list[frozenset[int]]:
        """Distinct-neighbor sets for every node (for set-algebra checks)."""
        return [frozenset(self.unique_neighbors(v).tolist()) for v in range(self.n)]

    @property
    def num_edges(self) -> int:
        """Number of edges counted with multiplicity (= n * d / 2)."""
        return self.n * self.d // 2

    def edge_list(self) -> tuple[Int64Array, Int64Array]:
        """All edges (u, v) with multiplicity, one direction per edge."""
        us: list[Int64Array] = []
        vs: list[Int64Array] = []
        for c in range(self.cycles.shape[0]):
            u, v = hamiltonian_cycle_edges(self.cycles[c])
            us.append(u)
            vs.append(v)
        return np.concatenate(us), np.concatenate(vs)

    def multi_edge_count(self) -> int:
        """Number of parallel-edge duplicates (0 for a simple graph)."""
        u, v = self.edge_list()
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = lo.astype(np.int64) * self.n + hi
        return int(keys.size - np.unique(keys).size)

    def is_connected(self) -> bool:
        dist = bfs_distances(self.indptr, self.indices, 0)
        return bool(np.all(dist != -1))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self) -> Any:
        """Adjacency as a ``scipy.sparse.csr_array`` with multiplicity counts."""
        from scipy.sparse import csr_array

        data = np.ones(self.indices.shape[0], dtype=np.float64)
        mat = csr_array(
            (data, self.indices.copy(), self.indptr.copy()), shape=(self.n, self.n)
        )
        mat.sum_duplicates()
        return mat

    def to_networkx(self) -> Any:
        """Return the graph as a :class:`networkx.MultiGraph`."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        u, v = self.edge_list()
        g.add_edges_from(zip(u.tolist(), v.tolist()))
        return g

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if the CSR structure is inconsistent."""
        if self.d % 2 != 0 or self.d < 2:
            raise ValueError(f"degree must be even and >= 2, got {self.d}")
        if self.cycles.shape != (self.d // 2, self.n):
            raise ValueError("cycles array has wrong shape")
        expected_indptr = np.arange(self.n + 1, dtype=np.int64) * self.d
        if not np.array_equal(self.indptr, expected_indptr):
            raise ValueError("indptr is not d-regular")
        degs = np.bincount(self.indices, minlength=self.n)
        if not np.all(degs == self.d):
            raise ValueError("indices do not form a d-regular multigraph")
        for c in range(self.cycles.shape[0]):
            row = np.sort(self.cycles[c])
            if not np.array_equal(row, np.arange(self.n)):
                raise ValueError(f"cycle {c} is not a permutation of the vertices")


def generate_hgraph(n: int, d: int, seed: SeedLike = 0) -> HGraph:
    """Sample an ``H(n, d)`` graph: the union of ``d/2`` random Hamiltonian cycles.

    Parameters
    ----------
    n:
        Number of vertices (``n >= 3`` so cycles have no self-loops).
    d:
        Even uniform degree.  The paper assumes ``d >= 8``; smaller even
        values are permitted here for unit tests.
    seed:
        Integer seed, generator, or ``None``.
    """
    if n < 3:
        raise ValueError(f"H(n, d) requires n >= 3, got n={n}")
    if d % 2 != 0 or d < 2:
        raise ValueError(f"H(n, d) requires even d >= 2, got d={d}")
    rng = make_rng(seed)
    half = d // 2
    cycles = np.empty((half, n), dtype=np.int64)
    for c in range(half):
        cycles[c] = rng.permutation(n)
    return hgraph_from_cycles(cycles)


def hgraph_from_cycles(cycles: Int64Array) -> HGraph:
    """Assemble an :class:`HGraph` from an explicit ``(d/2, n)`` cycle array.

    This is the CSR-assembly half of :func:`generate_hgraph`, split out so
    callers that *derive* cycles some other way — the incremental churn
    layer (:mod:`repro.graphs.delta`) snapshots its patched cycles through
    here — produce adjacency bit-for-bit identical to a sampled graph with
    the same cycles.  The row ordering contract this establishes (and
    which :class:`~repro.graphs.delta.ResidentGraph` relies on): row ``v``
    is ``[succ_0(v), pred_0(v), succ_1(v), pred_1(v), ...]``, one
    successor/predecessor pair per cycle in cycle order — the stable
    argsort keeps the per-cycle append order within each row.
    """
    cycles = np.ascontiguousarray(cycles, dtype=np.int64)
    if cycles.ndim != 2:
        raise ValueError(f"cycles must be a (d/2, n) array, got shape {cycles.shape}")
    half, n = cycles.shape
    if n < 3:
        raise ValueError(f"H(n, d) requires n >= 3, got n={n}")
    if half < 1:
        raise ValueError("H(n, d) requires at least one cycle (even d >= 2)")
    d = 2 * half

    # Build CSR adjacency in one shot: every vertex gains two neighbors per
    # cycle (its predecessor and successor on the cycle).
    src = np.empty(n * d, dtype=np.int64)
    dst = np.empty(n * d, dtype=np.int64)
    pos = 0
    for c in range(half):
        u, v = hamiltonian_cycle_edges(cycles[c])
        m = u.shape[0]
        src[pos : pos + m] = u
        dst[pos : pos + m] = v
        src[pos + m : pos + 2 * m] = v
        dst[pos + m : pos + 2 * m] = u
        pos += 2 * m
    order = np.argsort(src, kind="stable")
    indices = dst[order]
    indptr = np.arange(n + 1, dtype=np.int64) * d
    graph = HGraph(n=n, d=d, cycles=cycles, indptr=indptr, indices=indices)
    graph.validate()
    return graph

"""Graph property estimators (Section 2.1, Lemma 19, Observations 1-3, 7).

The protocol's guarantees rest on three structural properties of the
network, each measurable here:

* **Expansion** — ``H(n, d)`` is near-Ramanujan whp (Lemma 19): the second
  adjacency eigenvalue satisfies ``lambda_2 <= 2 sqrt(d-1) + o(1)``.  We
  compute the spectrum with sparse Lanczos iteration and derive the Cheeger
  lower bound ``h >= (d - lambda_2) / 2`` on edge expansion, plus a sampled
  upper bound from explicit cuts.
* **Clustering** — adding the ``L`` edges makes ``G`` small-world: the mean
  local clustering coefficient of ``G`` is bounded away from 0 while ``H``'s
  vanishes like ``d / n``.
* **Diameter / eccentricity** — ``Theta(log n)`` for sparse expanders; used
  by Observations 3 and 7 (``b log n >= 2 D``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import Int64Array, IntArray, SeedLike
from ..sim.rng import make_rng
from .balls import bfs_distances, gather_neighbors
from .hgraph import HGraph
from .smallworld import SmallWorldNetwork

__all__ = [
    "SpectralReport",
    "spectral_report",
    "ramanujan_bound",
    "edge_expansion_sampled",
    "cut_expansion",
    "average_clustering",
    "eccentricity_sample",
    "diameter",
    "DegreeStats",
    "degree_stats",
]


def ramanujan_bound(d: int) -> float:
    """``2 sqrt(d - 1)``: the asymptotically optimal second eigenvalue."""
    return 2.0 * float(np.sqrt(d - 1))


@dataclass(frozen=True)
class SpectralReport:
    """Adjacency spectrum summary for a regular (multi)graph."""

    d: int
    lambda1: float
    lambda2: float
    ramanujan: float
    spectral_gap: float
    cheeger_lower: float

    @property
    def is_near_ramanujan(self) -> bool:
        """Whether ``lambda_2`` is within 10% of the Ramanujan bound."""
        return self.lambda2 <= 1.1 * self.ramanujan


def spectral_report(h: HGraph) -> SpectralReport:
    """Compute ``lambda_1, lambda_2`` of the adjacency of ``H`` via Lanczos."""
    from scipy.sparse.linalg import eigsh

    mat = h.to_scipy()
    k = min(3, h.n - 1)
    vals = eigsh(mat.astype(np.float64), k=k, which="LA", return_eigenvectors=False)
    vals = np.sort(vals)[::-1]
    lam1 = float(vals[0])
    lam2 = float(vals[1]) if vals.shape[0] > 1 else 0.0
    gap = lam1 - lam2
    return SpectralReport(
        d=h.d,
        lambda1=lam1,
        lambda2=lam2,
        ramanujan=ramanujan_bound(h.d),
        spectral_gap=gap,
        cheeger_lower=gap / 2.0,
    )


def cut_expansion(indptr: IntArray, indices: IntArray, subset: IntArray) -> float:
    """``|edges(S, V \\ S)| / |S|`` for a vertex subset ``S`` (with multiplicity)."""
    subset = np.asarray(subset)
    if subset.size == 0:
        raise ValueError("subset must be non-empty")
    n = indptr.shape[0] - 1
    mask = np.zeros(n, dtype=bool)
    mask[subset] = True
    nbrs = gather_neighbors(indptr, indices, subset)
    boundary = int(np.count_nonzero(~mask[nbrs]))
    return boundary / subset.size


def edge_expansion_sampled(
    h: HGraph,
    rng: SeedLike = 0,
    trials: int = 64,
) -> float:
    """Upper bound on the edge expansion ``h(H)`` from sampled cuts.

    Samples both uniformly random subsets and BFS balls (locally clustered
    sets are the natural candidates for bad cuts) of size up to ``n/2`` and
    returns the minimum observed ``|boundary| / |S|``.
    """
    rng = make_rng(rng)
    best = float(h.d)
    for trial in range(trials):
        if trial % 2 == 0:
            size = int(rng.integers(1, h.n // 2 + 1))
            subset = rng.choice(h.n, size=size, replace=False)
        else:
            center = int(rng.integers(h.n))
            radius = int(rng.integers(1, 4))
            dist = bfs_distances(h.indptr, h.indices, center, max_depth=radius)
            subset = np.flatnonzero(dist != -1)
            if subset.size > h.n // 2:
                subset = subset[: h.n // 2]
        if subset.size == 0:
            continue
        best = min(best, cut_expansion(h.indptr, h.indices, subset))
    return best


def average_clustering(
    indptr: IntArray,
    indices: IntArray,
    rng: SeedLike = 0,
    sample: int | None = 200,
) -> float:
    """Mean local clustering coefficient over a node sample.

    Multi-edges must already be collapsed (use the ``G`` CSR, or unique
    neighbor sets).  ``sample=None`` computes the exact mean over all nodes.
    """
    n = indptr.shape[0] - 1
    if sample is None or sample >= n:
        nodes = np.arange(n)
    else:
        nodes = make_rng(rng).choice(n, size=sample, replace=False)
    neighbor_sets: dict[int, set[int]] = {}

    def nset(v: int) -> set[int]:
        got = neighbor_sets.get(v)
        if got is None:
            got = set(np.unique(indices[indptr[v] : indptr[v + 1]]).tolist())
            got.discard(v)
            neighbor_sets[v] = got
        return got

    total = 0.0
    for v in nodes:
        nv = nset(int(v))
        deg = len(nv)
        if deg < 2:
            continue
        links = sum(len(nset(u) & nv) for u in nv) // 2
        total += 2.0 * links / (deg * (deg - 1))
    return total / nodes.shape[0]


def eccentricity_sample(
    indptr: IntArray,
    indices: IntArray,
    rng: SeedLike = 0,
    sample: int = 32,
) -> Int64Array:
    """Eccentricities of a random node sample (connected graphs only)."""
    n = indptr.shape[0] - 1
    nodes = make_rng(rng).choice(n, size=min(sample, n), replace=False)
    eccs = np.empty(nodes.shape[0], dtype=np.int64)
    for i, v in enumerate(nodes):
        dist = bfs_distances(indptr, indices, int(v))
        if np.any(dist == -1):
            raise ValueError("graph is disconnected; eccentricity undefined")
        eccs[i] = dist.max()
    return eccs


def diameter(
    indptr: IntArray,
    indices: IntArray,
    *,
    exact: bool = False,
    rng: SeedLike = 0,
    sample: int = 32,
) -> int:
    """Diameter (exact via all-pairs BFS, or a sampled lower bound).

    The sampled variant runs a double sweep (BFS from a random node, then
    from the farthest node found) plus eccentricities of a random sample;
    for expanders this is almost always exact.
    """
    n = indptr.shape[0] - 1
    if exact:
        best = 0
        for v in range(n):
            dist = bfs_distances(indptr, indices, v)
            if np.any(dist == -1):
                raise ValueError("graph is disconnected; diameter undefined")
            best = max(best, int(dist.max()))
        return best
    rng = make_rng(rng)
    start = int(rng.integers(n))
    dist = bfs_distances(indptr, indices, start)
    if np.any(dist == -1):
        raise ValueError("graph is disconnected; diameter undefined")
    far = int(np.argmax(dist))
    dist2 = bfs_distances(indptr, indices, far)
    best = int(dist2.max())
    eccs = eccentricity_sample(indptr, indices, rng, sample=sample)
    return max(best, int(eccs.max()))


@dataclass(frozen=True)
class DegreeStats:
    minimum: int
    maximum: int
    mean: float

    @property
    def is_regular(self) -> bool:
        return self.minimum == self.maximum


def degree_stats(indptr: IntArray) -> DegreeStats:
    degs = np.diff(indptr)
    return DegreeStats(
        minimum=int(degs.min()), maximum=int(degs.max()), mean=float(degs.mean())
    )


def network_summary(net: SmallWorldNetwork) -> dict[str, float]:
    """One-call structural summary used by examples and experiment tables."""
    spec = spectral_report(net.h)
    return {
        "n": float(net.n),
        "d": float(net.d),
        "k": float(net.k),
        "lambda2": spec.lambda2,
        "ramanujan": spec.ramanujan,
        "cheeger_lower": spec.cheeger_lower,
        "clustering_H": average_clustering(net.h.indptr, net.h.indices, sample=200),
        "clustering_G": average_clustering(net.g_indptr, net.g_indices, sample=200),
        "diameter_H": float(diameter(net.h.indptr, net.h.indices)),
        "max_g_degree": float(net.max_g_degree()),
    }

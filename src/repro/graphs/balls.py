"""BFS ball/sphere utilities over CSR adjacency (Definitions 5 and 6).

The paper's analysis constantly refers to ``B(v, r)`` (the ball of radius
``r`` around ``v``) and ``Bd(v, r)`` (the sphere at distance exactly ``r``).
Everything here operates on raw CSR arrays ``(indptr, indices)`` so the same
code serves the regular multigraph ``H`` and the small-world overlay ``G``.

The hot path is :func:`gather_neighbors`, a fully vectorized ragged gather
(per the HPC guide's "vectorize the inner loop" idiom); BFS layers are then
set operations on numpy arrays.
"""

from __future__ import annotations

import numpy as np

from .._types import BoolArray, Int64Array, IntArray

__all__ = [
    "gather_neighbors",
    "bfs_distances",
    "ball",
    "sphere",
    "ball_sizes",
    "eccentricity",
    "distances_to_set",
    "connected_components",
    "largest_component_mask",
]

UNREACHED = -1


def gather_neighbors(
    indptr: IntArray, indices: IntArray, nodes: IntArray
) -> IntArray:
    """Concatenate the adjacency lists of ``nodes`` (with multiplicity)."""
    nodes = np.asarray(nodes)
    if nodes.size == 0:
        return np.empty(0, dtype=indices.dtype)
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # position j of the output maps into `indices` at
    # starts[row(j)] + (j - first_output_index_of_row(j))
    row_offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(row_offsets, counts)
        + np.repeat(starts.astype(np.int64), counts)
    )
    return indices[pos]


def bfs_distances(
    indptr: IntArray,
    indices: IntArray,
    sources: int | IntArray,
    max_depth: int | None = None,
    *,
    blocked: BoolArray | None = None,
) -> IntArray:
    """Multi-source BFS distances; unreachable nodes get ``UNREACHED``.

    ``blocked`` is an optional boolean mask of nodes that neither relay nor
    get labelled (used e.g. to compute distances in the graph induced on
    uncrashed nodes).  Blocked sources are ignored.
    """
    n = indptr.shape[0] - 1
    dist = np.full(n, UNREACHED, dtype=np.int32)
    frontier = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if blocked is not None:
        frontier = frontier[~blocked[frontier]]
    frontier = np.unique(frontier)
    dist[frontier] = 0
    depth = 0
    while frontier.size and (max_depth is None or depth < max_depth):
        depth += 1
        nbrs = gather_neighbors(indptr, indices, frontier)
        nbrs = nbrs[dist[nbrs] == UNREACHED]
        if blocked is not None and nbrs.size:
            nbrs = nbrs[~blocked[nbrs]]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        dist[frontier] = depth
    return dist


def ball(indptr: IntArray, indices: IntArray, v: int, r: int) -> IntArray:
    """``B(v, r)``: sorted array of nodes within distance ``r`` of ``v``."""
    dist = bfs_distances(indptr, indices, v, max_depth=r)
    return np.flatnonzero(dist != UNREACHED)


def sphere(indptr: IntArray, indices: IntArray, v: int, r: int) -> IntArray:
    """``Bd(v, r)``: sorted array of nodes at distance exactly ``r``."""
    dist = bfs_distances(indptr, indices, v, max_depth=r)
    return np.flatnonzero(dist == r)


def ball_sizes(indptr: IntArray, indices: IntArray, v: int, r: int) -> IntArray:
    """Sizes ``|B(v, 0)|, |B(v, 1)|, ..., |B(v, r)|`` as an array."""
    dist = bfs_distances(indptr, indices, v, max_depth=r)
    reached = dist[dist != UNREACHED]
    counts = np.bincount(reached, minlength=r + 1)
    return np.cumsum(counts[: r + 1])


def eccentricity(indptr: IntArray, indices: IntArray, v: int) -> int:
    """Eccentricity of ``v``; raises if the graph is disconnected from v."""
    dist = bfs_distances(indptr, indices, v)
    if np.any(dist == UNREACHED):
        raise ValueError("graph is not connected from source")
    return int(dist.max())


def distances_to_set(
    indptr: IntArray, indices: IntArray, targets: IntArray
) -> IntArray:
    """``dist(v, V')`` for every v (Definition 3), via multi-source BFS."""
    targets = np.asarray(targets)
    n = indptr.shape[0] - 1
    if targets.size == 0:
        return np.full(n, UNREACHED, dtype=np.int32)
    return bfs_distances(indptr, indices, targets)


def connected_components(
    indptr: IntArray,
    indices: IntArray,
    *,
    blocked: BoolArray | None = None,
) -> Int64Array:
    """Component label per node (-1 for blocked nodes)."""
    n = indptr.shape[0] - 1
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for start in range(n):
        if labels[start] != -1 or (blocked is not None and blocked[start]):
            continue
        dist = bfs_distances(indptr, indices, start, blocked=blocked)
        labels[dist != UNREACHED] = next_label
        next_label += 1
    return labels


def largest_component_mask(
    indptr: IntArray,
    indices: IntArray,
    *,
    blocked: BoolArray | None = None,
) -> BoolArray:
    """Boolean mask of the largest connected component among unblocked nodes."""
    labels = connected_components(indptr, indices, blocked=blocked)
    if labels.max() < 0:
        return np.zeros(labels.shape[0], dtype=bool)
    counts = np.bincount(labels[labels >= 0])
    return labels == int(np.argmax(counts))

"""The small-world network ``G = H ∪ L`` (Section 2.1).

``E(L) = {(u, v) : dist_H(u, v) <= k}`` with ``k = ceil(d / 3)``.  Adding the
``L`` edges turns the expander ``H`` into a small-world network: neighbors of
``v`` within distance ``k/2`` in ``H`` are directly connected to each other,
so the clustering coefficient is large while the degree stays constant
(``|B_H(v, k)| < (d-1)^{k+1}``, Observation 2).

Nodes in ``G`` do **not** know a priori which of their incident edges belong
to ``H`` and which to ``L`` (they recover this via the Lemma 3 protocol, see
:mod:`repro.core.neighborhood`).  The simulator, of course, does know, and
this class exposes both views:

* ``h``: the underlying :class:`~repro.graphs.hgraph.HGraph`;
* ``g_indptr`` / ``g_indices``: CSR adjacency of the simple graph ``G``;
* ``g_dist``: for each CSR slot, ``dist_H(v, neighbor)`` (1..k), so tests and
  verification logic can reason about the hop structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._types import Int64Array, Int8Array, IntArray, SeedLike
from .balls import bfs_distances, gather_neighbors
from .hgraph import HGraph, generate_hgraph

__all__ = [
    "SmallWorldNetwork",
    "ball_chunk",
    "build_small_world",
    "lattice_parameter",
]


def lattice_parameter(d: int) -> int:
    """``k = ceil(d / 3)`` (Section 2.1)."""
    return -(-d // 3)


@dataclass(frozen=True)
class SmallWorldNetwork:
    """A sampled ``G = H ∪ L`` network instance."""

    h: HGraph
    k: int
    g_indptr: Int64Array = field(repr=False)
    g_indices: Int64Array = field(repr=False)
    g_dist: Int8Array = field(repr=False)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.h.n

    @property
    def d(self) -> int:
        return self.h.d

    def g_neighbors(self, v: int) -> Int64Array:
        """Distinct ``G``-neighbors of ``v`` (sorted)."""
        return self.g_indices[self.g_indptr[v] : self.g_indptr[v + 1]]

    def g_neighbor_dists(self, v: int) -> Int8Array:
        """``dist_H(v, u)`` for each entry of :meth:`g_neighbors`."""
        return self.g_dist[self.g_indptr[v] : self.g_indptr[v + 1]]

    def h_neighbors(self, v: int) -> Int64Array:
        """Distinct ``H``-neighbors of ``v``."""
        return self.h.unique_neighbors(v)

    def g_degree(self, v: int) -> int:
        return int(self.g_indptr[v + 1] - self.g_indptr[v])

    def is_g_edge(self, u: int, v: int) -> bool:
        nbrs = self.g_neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.shape[0] and nbrs[pos] == v)

    def is_h_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.h.neighbors(u) == v))

    def h_ball(self, v: int, r: int) -> IntArray:
        dist = bfs_distances(self.h.indptr, self.h.indices, v, max_depth=r)
        return np.flatnonzero(dist != -1)

    def g_ball(self, v: int, r: int) -> IntArray:
        dist = bfs_distances(self.g_indptr, self.g_indices, v, max_depth=r)
        return np.flatnonzero(dist != -1)

    def max_g_degree(self) -> int:
        return int(np.max(np.diff(self.g_indptr)))

    def to_networkx(self) -> Any:
        """The simple graph ``G`` as a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for v in range(self.n):
            for u in self.g_neighbors(v):
                if u > v:
                    g.add_edge(v, int(u))
        return g

    def validate(self) -> None:
        """Consistency checks between ``H``, ``L`` and the stored CSR."""
        if self.k < 1:
            # k defaults to ceil(d/3); overrides (the E14 ablation) are
            # allowed but must still be a positive radius.
            raise ValueError("lattice radius k must be >= 1")
        if self.g_indptr[-1] != self.g_indices.shape[0]:
            raise ValueError("G CSR indptr/indices mismatch")
        # Symmetry and distance-tagging spot checks on a node sample.
        sample = np.linspace(0, self.n - 1, num=min(self.n, 16), dtype=np.int64)
        for v in sample:
            nbrs = self.g_neighbors(int(v))
            dists = self.g_neighbor_dists(int(v))
            if np.any(nbrs == v):
                raise ValueError("self-loop in G adjacency")
            if np.any((dists < 1) | (dists > self.k)):
                raise ValueError("G neighbor distance outside [1, k]")
            for u in nbrs:
                if not self.is_g_edge(int(u), int(v)):
                    raise ValueError("G adjacency is not symmetric")


def build_small_world(
    n: int,
    d: int,
    seed: SeedLike = 0,
    *,
    h: HGraph | None = None,
    k: int | None = None,
) -> SmallWorldNetwork:
    """Sample ``H(n, d)`` (unless given) and add the ``L`` edges.

    ``k`` defaults to ``ceil(d/3)``; overriding it is used by the E14
    ablation (robustness as a function of the lattice radius).
    """
    if h is None:
        h = generate_hgraph(n, d, seed)
    if k is None:
        k = lattice_parameter(h.d)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    # BFS from every node to depth k collects B_H(v, k) \ {v}; those are
    # exactly v's G-neighbors.  Balls are tiny (< (d-1)^(k+1)), so we gather
    # per node but keep the per-node work vectorized.
    nbr_chunks: list[Int64Array] = []
    dist_chunks: list[Int8Array] = []
    counts = np.empty(h.n, dtype=np.int64)
    for v in range(h.n):
        nodes, dists = ball_chunk(h.indptr, h.indices, v, k)
        counts[v] = nodes.shape[0]
        nbr_chunks.append(nodes)
        dist_chunks.append(dists)
    g_indptr = np.zeros(h.n + 1, dtype=np.int64)
    np.cumsum(counts, out=g_indptr[1:])
    g_indices = np.concatenate(nbr_chunks) if nbr_chunks else np.empty(0, np.int64)
    g_dist = np.concatenate(dist_chunks) if dist_chunks else np.empty(0, np.int8)
    net = SmallWorldNetwork(
        h=h, k=k, g_indptr=g_indptr, g_indices=g_indices, g_dist=g_dist
    )
    net.validate()
    return net


def ball_chunk(
    indptr: IntArray, indices: IntArray, v: int, k: int
) -> tuple[Int64Array, Int8Array]:
    """One node's ``G``-adjacency chunk: ``B_H(v, k) \\ {v}`` with distances.

    Returns ``(neighbors, dists)`` — the sorted node ids within ``H``
    distance ``<= k`` of ``v`` (excluding ``v``) and their exact
    distances.  This is the per-node unit :func:`build_small_world`
    concatenates into the ``G`` CSR; the incremental churn layer
    (:class:`repro.graphs.delta.ResidentGraph`) recomputes exactly these
    chunks for nodes whose ``k``-ball a join/leave delta touched, which is
    why the two paths stay bit-for-bit identical.  The chunk depends only
    on the ball's membership and distances (ids come out sorted), never on
    BFS visit order.
    """
    dist = _local_ball_distances(indptr, indices, v, k)
    nodes = np.array(sorted(dist.keys()), dtype=np.int64)
    nodes = nodes[nodes != v]
    dists = np.array([dist[int(u)] for u in nodes], dtype=np.int8)
    return nodes, dists


def _local_ball_distances(
    indptr: IntArray, indices: IntArray, v: int, k: int
) -> dict[int, int]:
    """Exact ``dist_H`` for every node in ``B_H(v, k)`` via local BFS."""
    dist: dict[int, int] = {v: 0}
    frontier = np.array([v], dtype=np.int64)
    for depth in range(1, k + 1):
        nbrs = gather_neighbors(indptr, indices, frontier)
        fresh = [int(u) for u in np.unique(nbrs) if int(u) not in dist]
        if not fresh:
            break
        for u in fresh:
            dist[u] = depth
        frontier = np.array(fresh, dtype=np.int64)
    return dist

"""Incremental join/leave deltas on a resident small-world network.

The continuous estimation service (:mod:`repro.service`) keeps overlays
alive across epochs.  Re-sampling ``G = H ∪ L`` from scratch on every
membership change costs a full per-node BFS sweep
(:func:`repro.graphs.smallworld.build_small_world`); a churn delta only
touches a handful of nodes, so :class:`ResidentGraph` patches the resident
structures incrementally instead:

* ``H`` lives as per-cycle successor/predecessor pointer arrays.  A
  **leave** splices the node out of each Hamiltonian cycle (the cycle
  stays Hamiltonian on the survivors); a **join** inserts the new node
  after a uniformly drawn anchor in each cycle — exactly the Law & Siu
  peer-to-peer maintenance moves the ``H(n, d)`` model comes from.
* Node ids stay dense (``0..n-1``) via direct compaction: the survivors
  keep ids ``[0, n_live)``; each live node above that range moves into a
  vacated slot below it (sorted sources onto sorted destinations, so the
  moves are independent — no chained swaps), and a delta with ``l``
  leavers relabels at most ``l`` nodes.
* ``L`` lives as per-node adjacency chunks (``B_H(v, k) \\ {v}`` with
  distances, the unit :func:`repro.graphs.smallworld.ball_chunk`
  produces).  After patching ``H``, only the chunks the delta could have
  touched are recomputed.  ``B(v, k)`` changes only if some path of
  length ``<= k`` from ``v`` uses a changed edge; following that path
  from ``v``, the prefix up to the *first* changed edge uses only
  unchanged edges — so it is a valid path in both the old and the new
  graph — and ends at an endpoint of a changed edge, at distance
  ``<= k-1``.  Hence the recompute set is the radius-``(k-1)`` ball
  around changed-edge endpoints: leavers (old graph — every edge of a
  leaver is removed) plus splice points, join anchors, and joiners (new
  graph).  Chunks outside that set can still *mention* relabeled ids;
  relabeling is a pure rename, so those chunks get an in-place id
  substitution (and re-sort) instead of a BFS.  Untouched chunks are
  therefore provably byte-identical to what a cold rebuild would
  produce.

:meth:`ResidentGraph.snapshot` materializes the resident state back into
an immutable :class:`~repro.graphs.smallworld.SmallWorldNetwork` by
walking the patched cycles and assembling the ``H`` CSR through
:func:`repro.graphs.hgraph.hgraph_from_cycles` — the same constructor a
cold build uses — so a snapshot is bit-for-bit equal to
``build_small_world(h=hgraph_from_cycles(same_cycles), k=k)``.  That
equality (caching never changes results) is pinned by
``tests/graphs/test_delta.py`` and the service soak test.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._types import Int8Array, Int64Array, IntArray
from .hgraph import hgraph_from_cycles
from .smallworld import SmallWorldNetwork, ball_chunk, build_small_world

__all__ = ["AppliedDelta", "ResidentGraph"]

#: Minimum live size: Hamiltonian cycles need >= 3 nodes to stay free of
#: self-loops (the same floor :func:`repro.graphs.hgraph.generate_hgraph`
#: enforces at sampling time).
_MIN_NODES = 3


@dataclass(frozen=True)
class AppliedDelta:
    """Accounting for one applied join/leave delta.

    Attributes
    ----------
    left:
        The node ids removed (as they were numbered *before* the delta).
    joined:
        The node ids assigned to the new nodes (post-delta numbering).
    relabeled:
        Compaction map ``old id -> new id`` for nodes that changed ids
        (leavers excluded — they have no new id).
    recomputed:
        How many ``L`` adjacency chunks were recomputed; everything else
        was reused untouched.  Tests compare this against ``n`` to prove
        the patch stayed local.
    """

    left: tuple[int, ...]
    joined: tuple[int, ...]
    relabeled: dict[int, int]
    recomputed: int


class ResidentGraph:
    """A mutable ``G = H ∪ L`` instance supporting incremental churn.

    Build one with :meth:`from_network` (adopting a sampled network) or
    :meth:`sample`, mutate it with :meth:`apply_delta`, and read it with
    :meth:`snapshot` (cached until the next delta).  ``version`` counts
    applied deltas so kernel caches keyed on it invalidate precisely.
    """

    def __init__(
        self,
        d: int,
        k: int,
        nxt: Int64Array,
        prv: Int64Array,
        chunks: list[tuple[Int64Array, Int8Array]],
        snapshot: SmallWorldNetwork | None = None,
    ) -> None:
        self.d = d
        self.k = k
        self._half = d // 2
        self._next = nxt
        self._prev = prv
        self._chunks = chunks
        self._n = len(chunks)
        self.version = 0
        self._snapshot = snapshot

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, net: SmallWorldNetwork) -> "ResidentGraph":
        """Adopt a sampled network as the resident state (no recompute)."""
        n, half = net.n, net.d // 2
        nxt = np.empty((half, n), dtype=np.int64)
        prv = np.empty((half, n), dtype=np.int64)
        for c in range(half):
            perm = net.h.cycles[c]
            nxt[c, perm] = np.roll(perm, -1)
            prv[c, perm] = np.roll(perm, 1)
        chunks: list[tuple[Int64Array, Int8Array]] = [
            (
                net.g_indices[net.g_indptr[v] : net.g_indptr[v + 1]].copy(),
                net.g_dist[net.g_indptr[v] : net.g_indptr[v + 1]].copy(),
            )
            for v in range(n)
        ]
        return cls(net.d, net.k, nxt, prv, chunks, snapshot=net)

    @classmethod
    def sample(
        cls, n: int, d: int, seed: int = 0, *, k: int | None = None
    ) -> "ResidentGraph":
        """Sample a fresh network and adopt it (cold path, run once)."""
        return cls.from_network(build_small_world(n, d, seed=seed, k=k))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def snapshot(self) -> SmallWorldNetwork:
        """The current state as an immutable network (cached per version)."""
        if self._snapshot is not None:
            return self._snapshot
        n, half = self._n, self._half
        cycles = np.empty((half, n), dtype=np.int64)
        for c in range(half):
            v = 0
            for i in range(n):
                cycles[c, i] = v
                v = int(self._next[c, v])
            if v != 0:
                raise RuntimeError(
                    f"cycle {c} does not close after {n} steps; resident "
                    "pointer state is corrupt"
                )
        h = hgraph_from_cycles(cycles)
        counts = np.array([c[0].shape[0] for c in self._chunks], dtype=np.int64)
        g_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=g_indptr[1:])
        g_indices = (
            np.concatenate([c[0] for c in self._chunks])
            if self._chunks
            else np.empty(0, np.int64)
        )
        g_dist = (
            np.concatenate([c[1] for c in self._chunks])
            if self._chunks
            else np.empty(0, np.int8)
        )
        net = SmallWorldNetwork(
            h=h, k=self.k, g_indptr=g_indptr, g_indices=g_indices, g_dist=g_dist
        )
        net.validate()
        self._snapshot = net
        return net

    # ------------------------------------------------------------------
    # The incremental patch
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        leaves: Sequence[int] | IntArray,
        joins: int,
        rng: np.random.Generator,
    ) -> AppliedDelta:
        """Apply one churn delta: remove ``leaves``, add ``joins`` nodes.

        ``rng`` draws the per-cycle insertion anchors for each joining
        node (one uniform draw over the current node set per cycle per
        join, in join order) — pass a stream from :mod:`repro.sim.rng` so
        deltas replay deterministically.  Leavers are spliced in
        ascending id order; surviving ids are then compacted to
        ``[0, n_live)``; joins are appended last.  Raises
        :class:`ValueError` for out-of-range/duplicate leavers or a delta
        that would shrink the graph below 3 nodes.
        """
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                f"rng must be a numpy Generator (see repro.sim.rng), got "
                f"{type(rng).__name__}"
            )
        if joins < 0:
            raise ValueError(f"joins must be >= 0, got {joins}")
        leave_arr = np.atleast_1d(np.asarray(leaves, dtype=np.int64))
        if leave_arr.ndim != 1:
            raise ValueError("leaves must be a 1-D sequence of node ids")
        if leave_arr.size:
            if leave_arr.min() < 0 or leave_arr.max() >= self._n:
                raise ValueError(
                    f"leave ids must be in [0, {self._n}), got "
                    f"[{leave_arr.min()}, {leave_arr.max()}]"
                )
            if np.unique(leave_arr).size != leave_arr.size:
                raise ValueError("leave ids must be distinct")
        n_live = self._n - int(leave_arr.size)
        if n_live < _MIN_NODES:
            raise ValueError(
                f"delta leaves {n_live} nodes; Hamiltonian cycles need >= "
                f"{_MIN_NODES}"
            )
        half, k = self._half, self.k
        leave_set = {int(v) for v in leave_arr}

        # Compaction plan (pure function of the leave set): the surviving
        # ids are [0, n_live); every live node with an id above that range
        # moves directly into a vacated slot below it.  Matching sorted
        # sources to sorted destinations keeps each move independent (no
        # chained swaps), so ``relabel`` IS the old-id -> new-id map.
        move_srcs = sorted(v for v in range(n_live, self._n) if v not in leave_set)
        move_dsts = sorted(v for v in leave_set if v < n_live)
        relabel: dict[int, int] = dict(zip(move_srcs, move_dsts))

        # Old-graph (k-1)-ball around leavers — every incident edge of a
        # leaver disappears, and an affected node reaches some removed
        # edge's endpoint within k-1 unchanged hops (see module
        # docstring).  Taken while the pre-delta pointers are intact.
        old_ball = self._pointer_ball(set(leave_set), k - 1)

        # 1. Splice leavers out of every cycle; record the splice points.
        splice_nbrs: set[int] = set()
        for v in sorted(leave_set):
            for c in range(half):
                p = int(self._prev[c, v])
                nx = int(self._next[c, v])
                self._next[c, p] = nx
                self._prev[c, nx] = p
                splice_nbrs.add(p)
                splice_nbrs.add(nx)

        # 2. Compact ids (the plan above, now applied to the pointers and
        # the chunk list; sources are live, destinations are vacated, so
        # the moves commute).
        for src, dst in relabel.items():
            for c in range(half):
                p = int(self._prev[c, src])
                nx = int(self._next[c, src])
                self._next[c, dst] = nx
                self._prev[c, dst] = p
                self._next[c, p] = dst
                self._prev[c, nx] = dst
            self._chunks[dst] = self._chunks[src]
        del self._chunks[n_live:]
        self._n = n_live

        def _map(v: int) -> int | None:
            if v in leave_set:
                return None
            return relabel.get(v, v)

        # 3. Joins: insert after a uniformly drawn anchor per cycle.  Each
        # insertion removes edge (anchor, nx) and adds (anchor, j) and
        # (j, nx) — collect all three endpoints (final ids).
        joined: list[int] = []
        edge_ends: set[int] = {m for v in splice_nbrs if (m := _map(v)) is not None}
        for _ in range(joins):
            nid = self._n
            if nid >= self._next.shape[1]:
                self._grow(nid + 1)
            for c in range(half):
                anchor = int(rng.integers(nid))
                nx = int(self._next[c, anchor])
                self._next[c, anchor] = nid
                self._prev[c, nid] = anchor
                self._next[c, nid] = nx
                self._prev[c, nx] = nid
                edge_ends.add(anchor)
                edge_ends.add(nx)
            self._chunks.append(
                (np.empty(0, np.int64), np.empty(0, np.int8))
            )
            edge_ends.add(nid)
            joined.append(nid)
            self._n += 1

        # 4. New-graph (k-1)-ball around changed-edge endpoints among the
        # survivors (splice points, join anchors, joiners).
        new_ball = self._pointer_ball(edge_ends, k - 1)

        # 5. The recompute set; everything structural lives here.
        affected = {m for v in old_ball if (m := _map(v)) is not None}
        affected |= new_ball

        # 6. Chunks outside the recompute set may still mention relabeled
        # ids — a pure rename, so substitute in place and re-sort instead
        # of re-running BFS.  (Stale *leaver* ids cannot appear outside
        # ``affected``: a chunk containing leaver x has dist(v, x) <= k,
        # whose path ends in a removed edge at x, putting v within k-1 of
        # a splice point or leaver.)
        if relabel:
            srcs_arr = np.fromiter(relabel.keys(), dtype=np.int64, count=len(relabel))
            dsts_arr = np.fromiter(relabel.values(), dtype=np.int64, count=len(relabel))
            order = np.argsort(srcs_arr)
            srcs_arr, dsts_arr = srcs_arr[order], dsts_arr[order]
            lo = int(srcs_arr[0])
            for v in range(self._n):
                if v in affected:
                    continue
                nodes, dists = self._chunks[v]
                if not nodes.size or nodes[-1] < lo:
                    continue
                pos = np.searchsorted(srcs_arr, nodes)
                pos[pos == srcs_arr.size] = 0
                hit = srcs_arr[pos] == nodes
                if not hit.any():
                    continue
                nodes = nodes.copy()
                nodes[hit] = dsts_arr[pos[hit]]
                reorder = np.argsort(nodes)
                self._chunks[v] = (nodes[reorder], dists[reorder])

        # 7. Recompute exactly the touched chunks against the patched H.
        indptr, indices = self._h_csr()
        for v in sorted(affected):
            self._chunks[v] = ball_chunk(indptr, indices, v, k)

        self.version += 1
        self._snapshot = None
        return AppliedDelta(
            left=tuple(int(v) for v in sorted(leave_set)),
            joined=tuple(joined),
            relabeled=relabel,
            recomputed=len(affected),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = max(need, 2 * self._next.shape[1])
        nxt = np.empty((self._half, cap), dtype=np.int64)
        prv = np.empty((self._half, cap), dtype=np.int64)
        nxt[:, : self._next.shape[1]] = self._next
        prv[:, : self._prev.shape[1]] = self._prev
        self._next = nxt
        self._prev = prv

    def _pointer_ball(self, seeds: set[int], depth: int) -> set[int]:
        """BFS ball of radius ``depth`` over the pointer adjacency."""
        seen = set(seeds)
        frontier = list(seeds)
        for _ in range(depth):
            nxt_frontier: list[int] = []
            for v in frontier:
                for c in range(self._half):
                    for u in (int(self._next[c, v]), int(self._prev[c, v])):
                        if u not in seen:
                            seen.add(u)
                            nxt_frontier.append(u)
            frontier = nxt_frontier
            if not frontier:
                break
        return seen

    def _h_csr(self) -> tuple[Int64Array, Int64Array]:
        """The patched ``H`` adjacency as CSR, assembled from the pointers.

        Row ``v`` interleaves ``[succ_0(v), pred_0(v), succ_1(v), ...]``
        — the row ordering :func:`~repro.graphs.hgraph.hgraph_from_cycles`
        produces (its stable argsort preserves per-cycle append order).
        Chunk recomputation only consumes ball membership, which is
        row-order independent, so either assembly is equivalent there;
        matching the canonical order keeps debugging comparisons exact.
        """
        n, half, d = self._n, self._half, self.d
        indices = np.empty(n * d, dtype=np.int64)
        view = indices.reshape(n, d)
        for c in range(half):
            view[:, 2 * c] = self._next[c, :n]
            view[:, 2 * c + 1] = self._prev[c, :n]
        indptr = np.arange(n + 1, dtype=np.int64) * d
        return indptr, indices

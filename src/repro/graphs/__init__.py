"""Graph substrates: H(n, d), the small-world overlay G = H ∪ L, and tools.

Public surface:

* :func:`generate_hgraph` / :class:`HGraph` — the random regular multigraph
  (union of ``d/2`` Hamiltonian cycles, Section 2.1 / Appendix A).
* :func:`build_small_world` / :class:`SmallWorldNetwork` — ``G = H ∪ L``.
* :mod:`repro.graphs.balls` — ``B(v, r)`` / ``Bd(v, r)`` BFS utilities.
* :mod:`repro.graphs.properties` — expansion, clustering, diameter.
* :mod:`repro.graphs.classification` — Definition 9 node sets.
* :func:`generate_watts_strogatz` — the comparison model.
"""

from .balls import (
    ball,
    ball_sizes,
    bfs_distances,
    connected_components,
    distances_to_set,
    eccentricity,
    gather_neighbors,
    largest_component_mask,
    sphere,
)
from .classification import (
    NodeSets,
    classify_nodes,
    full_tree_ball_size,
    is_locally_tree_like,
    ltl_mask,
    tree_radius,
)
from .delta import AppliedDelta, ResidentGraph
from .hgraph import HGraph, generate_hgraph, hgraph_from_cycles
from .properties import (
    DegreeStats,
    SpectralReport,
    average_clustering,
    cut_expansion,
    degree_stats,
    diameter,
    eccentricity_sample,
    edge_expansion_sampled,
    network_summary,
    ramanujan_bound,
    spectral_report,
)
from .shared import SharedNetwork, SharedNetworkPack, cleanup_orphans
from .smallworld import (
    SmallWorldNetwork,
    ball_chunk,
    build_small_world,
    lattice_parameter,
)
from .wattsstrogatz import WattsStrogatzGraph, generate_watts_strogatz

__all__ = [
    "AppliedDelta",
    "HGraph",
    "ResidentGraph",
    "ball_chunk",
    "generate_hgraph",
    "hgraph_from_cycles",
    "SmallWorldNetwork",
    "SharedNetwork",
    "SharedNetworkPack",
    "cleanup_orphans",
    "build_small_world",
    "lattice_parameter",
    "NodeSets",
    "classify_nodes",
    "tree_radius",
    "full_tree_ball_size",
    "is_locally_tree_like",
    "ltl_mask",
    "ball",
    "ball_sizes",
    "bfs_distances",
    "sphere",
    "eccentricity",
    "gather_neighbors",
    "distances_to_set",
    "connected_components",
    "largest_component_mask",
    "SpectralReport",
    "spectral_report",
    "ramanujan_bound",
    "edge_expansion_sampled",
    "cut_expansion",
    "average_clustering",
    "eccentricity_sample",
    "diameter",
    "DegreeStats",
    "degree_stats",
    "network_summary",
    "WattsStrogatzGraph",
    "generate_watts_strogatz",
]

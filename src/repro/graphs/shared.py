"""Zero-copy cross-process sharing of sampled networks.

Sharded sweeps (``parallel_map(..., jobs=N)``) used to re-pickle the whole
:class:`~repro.graphs.smallworld.SmallWorldNetwork` into every worker task
— at ``n = 65536, d = 8`` that is tens of megabytes of CSR arrays per task.
:class:`SharedNetwork` instead places all six immutable adjacency arrays
(``H`` CSR + cycles, ``G`` CSR + distance tags) into one
``multiprocessing.shared_memory`` segment; the handle pickles as a few
hundred bytes of metadata, and each worker process attaches the segment
once and reconstructs the network around read-only array views — no copy,
no repeated deserialization.

Usage (the ``network=`` parameter of
:func:`repro.experiments.common.parallel_map` does this internally)::

    with SharedNetwork.create(net) as shared:
        results = pool.map(worker, [(shared, item) for item in items])
        # inside worker: shared.net  -> attached SmallWorldNetwork

Multi-network sweeps (:func:`repro.core.sweep.run_multi_sweep`) pin
*several* graphs at once: :class:`SharedNetworkPack` lays every network's
CSR arrays out in one segment, so a single ``parallel_map`` call ships the
whole network axis as one handle — workers attach the segment once and
reconstruct the full tuple of networks (``pack.nets``), instead of
unpickling one graph per (task, network) pair.

Union-stack sweeps additionally need the *block-diagonal concatenation*
of the networks' H adjacencies (:func:`repro.sim.flood.stack_union_csr`).
``SharedNetworkPack.create(nets, union=True)`` stacks it once in the
owner and lays the two concatenated arrays into the same segment;
``pack.nets`` then returns a :class:`NetworkTuple` whose ``union_csr``
attribute exposes zero-copy views, so every worker (and every task) of a
sharded union sweep skips re-stacking entirely —
:func:`repro.core.batch.run_counting_unionstack` adopts the attached CSR
directly.

The creating process owns the segment and unlinks it on ``close()`` /
context exit; attached workers hold it alive until they drop their
references (POSIX shm semantics).  On Python < 3.13 attaching registers
the segment with the worker's ``resource_tracker``, which would unlink it
when the *worker* exits — :func:`_untrack` undoes that registration so the
owner stays in charge of the lifetime.

Crash safety: segments are named ``repro-<owner pid>-<hex>`` so they are
recognizable in ``/dev/shm`` even after their owner dies.  The owning
process keeps a registry of its live segments and unlinks them from an
``atexit`` hook and a chained ``SIGTERM`` handler (both pid-checked, so
forked workers that inherit the registry never unlink the owner's
segments), and :func:`cleanup_orphans` sweeps segments whose owner pid no
longer exists — the backstop for ``SIGKILL``/power-loss, where no handler
can run.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .._types import AnyArray, Int64Array

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.channel import ChannelModel
from .hgraph import HGraph
from .smallworld import SmallWorldNetwork

__all__ = [
    "NetworkTuple",
    "SharedNetwork",
    "SharedNetworkPack",
    "UnionCSR",
    "cleanup_orphans",
]

#: ``(sizes, indptr, indices)`` of a block-diagonal union CSR
#: (:func:`repro.sim.flood.stack_union_csr`).
UnionCSR = tuple[tuple[int, ...], Int64Array, Int64Array]


class NetworkTuple(tuple[SmallWorldNetwork, ...]):
    """A tuple of networks with an optional pre-stacked union CSR attached.

    ``union_csr`` is ``(sizes, indptr, indices)`` — the block-diagonal
    concatenation of the member graphs' H adjacencies, as produced by
    :func:`repro.sim.flood.stack_union_csr` — or ``None`` when no union
    layout was requested.  :func:`repro.core.batch.run_counting_unionstack`
    adopts an attached CSR instead of re-stacking, which is how sharded
    union-stack sweeps amortize the concatenation across workers.

    ``kernel_backend`` optionally names the flood-kernel compute backend
    the engines should use for these networks (see
    :mod:`repro.sim.backends`); the multi-network entry points adopt it
    when no explicit ``backend=`` is given, which is how a sweep-level
    backend choice survives the trip into sharded workers.

    ``channel`` optionally carries a
    :class:`~repro.sim.channel.ChannelModel` the same way: the
    multi-network engines adopt it when no explicit ``channel=`` is
    given, so a lossy/noisy scenario choice rides the container through
    shared-memory reconstruction exactly like the backend does.
    """

    union_csr: UnionCSR | None = None
    kernel_backend: str | None = None
    channel: "ChannelModel | None" = None

    @classmethod
    def build(
        cls,
        networks: Iterable[SmallWorldNetwork],
        union: bool = False,
        backend: str | None = None,
        channel: "ChannelModel | None" = None,
    ) -> "NetworkTuple":
        """Wrap ``networks``; with ``union=True`` stack the union CSR once."""
        out = cls(networks)
        if union:
            from ..sim.flood import stack_union_csr

            out.union_csr = stack_union_csr(out)
        if backend is not None:
            out.kernel_backend = backend
        if channel is not None:
            out.channel = channel
        return out

#: The array attributes that define a network, in serialization order.
_FIELDS: tuple[tuple[str, Callable[[SmallWorldNetwork], AnyArray]], ...] = (
    ("h_indptr", lambda net: net.h.indptr),
    ("h_indices", lambda net: net.h.indices),
    ("h_cycles", lambda net: net.h.cycles),
    ("g_indptr", lambda net: net.g_indptr),
    ("g_indices", lambda net: net.g_indices),
    ("g_dist", lambda net: net.g_dist),
)

#: Per-process cache of attached segments: shm name -> (shm, network).
#: Workers receive one handle pickle per task; caching by segment name
#: makes the attach + reconstruct cost once-per-process, not per-task.
_ATTACHED: dict[str, tuple[Any, Any]] = {}

#: SharedMemory objects whose buffers back numpy views that may still be
#: referenced after ``close()``.  Unmapping those buffers (SharedMemory
#: .close(), including from __del__) would turn any later array access
#: into a segfault, so closed-but-viewed segments are kept mapped here
#: for the rest of the process (the *segment* is still unlinked; the OS
#: frees the memory when the last mapping dies with the process).
_KEEPALIVE: list[Any] = []

#: Recognizable prefix of every segment this library creates; the owner
#: pid embedded after it is what lets :func:`cleanup_orphans` tell a
#: leaked segment (owner dead) from a live one (owner running).
_SEGMENT_PREFIX = "repro-"

#: Segments created *by this process*: name -> owning SharedMemory.
#: Forked workers inherit a snapshot of this dict; the pid recorded at
#: guard-install time keeps their exit hooks from unlinking the owner's
#: live segments.
_OWNED: dict[str, Any] = {}

_GUARD_LOCK = threading.Lock()
_GUARD_PID: int | None = None
_PREV_SIGTERM: Any = None


def _segment_name() -> str:
    """A fresh ``repro-<pid>-<hex>`` segment name."""
    return f"{_SEGMENT_PREFIX}{os.getpid()}-{os.urandom(6).hex()}"


def _create_segment(size: int) -> Any:
    """Create a prefixed shared-memory segment and register ownership."""
    from multiprocessing import shared_memory

    while True:
        try:
            shm = shared_memory.SharedMemory(
                name=_segment_name(), create=True, size=max(size, 1)
            )
            break
        except FileExistsError:  # pragma: no cover - 48-bit token collision
            continue
    _install_owner_guard()
    _OWNED[shm.name] = shm
    return shm


def _cleanup_owned() -> None:
    """Unlink every segment this process still owns (pid-checked).

    Runs from ``atexit`` and the ``SIGTERM`` guard.  A forked child
    inherits ``_OWNED`` but not ownership: the pid check makes its hooks
    a no-op, so pool teardown (which SIGTERMs workers) can never unlink
    the owner's live segments.
    """
    if os.getpid() != _GUARD_PID:
        return
    for name in list(_OWNED):
        shm = _OWNED.pop(name)
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


def _sigterm_guard(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
    _cleanup_owned()
    prev = _PREV_SIGTERM
    if callable(prev):
        prev(signum, frame)
        return
    # Restore the previous disposition (default/ignore) and re-deliver so
    # the process still dies with the conventional SIGTERM status.
    signal.signal(signum, prev if prev is not None else signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_owner_guard() -> None:
    """Install the pid-checked atexit/SIGTERM cleanup hooks (idempotent).

    Re-installs after a fork: a child that goes on to *create its own*
    segments becomes an owner in its own right, so the guard pid must be
    re-anchored to it (its inherited ``_OWNED`` snapshot is cleared —
    those entries belong to the parent).
    """
    global _GUARD_PID, _PREV_SIGTERM
    with _GUARD_LOCK:
        pid = os.getpid()
        if _GUARD_PID == pid:
            return
        if _GUARD_PID is not None:
            _OWNED.clear()  # inherited from the parent across a fork
        _GUARD_PID = pid
        atexit.register(_cleanup_owned)
        try:
            handler = signal.getsignal(signal.SIGTERM)
            if handler is not _sigterm_guard:
                _PREV_SIGTERM = handler
                signal.signal(signal.SIGTERM, _sigterm_guard)
        except ValueError:  # pragma: no cover - non-main thread
            pass


def cleanup_orphans() -> list[str]:
    """Unlink ``repro-*`` segments whose owning process is dead.

    Scans ``/dev/shm`` for segments carrying this library's name prefix,
    parses the owner pid out of the name, and removes the segments whose
    owner no longer exists — the recovery path for owners that died
    where no ``atexit``/signal hook could run (``SIGKILL``, kernel OOM,
    power loss).  Segments with live owners are left alone.  Returns the
    names unlinked.  No-op (empty list) on hosts without ``/dev/shm``.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX-shm host
        return []
    removed: list[str] = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(_SEGMENT_PREFIX):
            continue
        rest = entry[len(_SEGMENT_PREFIX):]
        pid_part = rest.split("-", 1)[0]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        try:
            os.kill(pid, 0)
            continue  # owner alive: not an orphan
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - pid reused by other user
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            continue
        removed.append(entry)
    return removed


def _attach_untracked(name: str) -> Any:
    """Attach to segment ``name`` without resource-tracker registration.

    Python < 3.13 has no ``track=False``: a plain attach registers the
    segment with the resource tracker (shared with the owner under fork),
    and the resulting unregister/unlink at worker exit would tear the
    owner's segment down or double-remove the tracker entry.  Suppressing
    the registration during attach keeps the owner solely in charge of the
    segment's lifetime.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def register(rname: str, rtype: str) -> None:  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class _ArraySpec:
    """Layout of one array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


def _reconstruct_network(
    shm: Any, specs: tuple[_ArraySpec, ...], n: int, d: int, k: int
) -> SmallWorldNetwork:
    """Rebuild one network around read-only views into ``shm``."""
    views: dict[str, AnyArray] = {}
    for spec in specs:
        arr = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        arr.flags.writeable = False  # shared state must stay immutable
        views[spec.name] = arr
    h = HGraph(
        n=n,
        d=d,
        cycles=views["h_cycles"],
        indptr=views["h_indptr"],
        indices=views["h_indices"],
    )
    return SmallWorldNetwork(
        h=h,
        k=k,
        g_indptr=views["g_indptr"],
        g_indices=views["g_indices"],
        g_dist=views["g_dist"],
    )


def _release_segment(shm_name: str, owned_shm: Any) -> None:
    """Shared ``close()`` semantics for both handle classes.

    If the segment was ever attached/reconstructed in this process, the
    handed-out numpy views may outlive the handle; their backing buffer
    then stays mapped for the rest of the process (see ``_KEEPALIVE``) so
    stale reads raise nothing worse than stale data — never a segfault.
    The owner additionally unlinks the segment: no new process can attach,
    and the memory is freed once the last holder exits.
    """
    cached = _ATTACHED.pop(shm_name, None)
    if cached is not None:
        # Views were handed out: keep the mapping alive, never munmap.
        _KEEPALIVE.append(cached[0])
    if owned_shm is not None:
        _OWNED.pop(shm_name, None)
        if cached is None or cached[0] is not owned_shm:
            owned_shm.close()
        owned_shm.unlink()


class SharedNetwork:
    """Picklable handle to a :class:`SmallWorldNetwork` in shared memory.

    Create with :meth:`create` in the owning process; pass the handle to
    worker tasks and read :attr:`net` there.  The handle is also usable in
    the owner (``net`` returns a view-backed reconstruction, or use the
    original network directly).
    """

    def __init__(
        self, shm_name: str, specs: tuple[_ArraySpec, ...], n: int, d: int, k: int
    ) -> None:
        self._shm_name = shm_name
        self._specs = specs
        self._n = n
        self._d = d
        self._k = k
        self._owned_shm: Any = None  # set only in the creating process

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, net: SmallWorldNetwork) -> "SharedNetwork":
        """Copy ``net``'s arrays into a fresh shared-memory segment.

        The segment is named ``repro-<pid>-<hex>`` and registered with
        the owner-side cleanup guard; if populating it fails partway the
        segment is unlinked before the exception propagates — a failed
        ``create`` never leaks.
        """
        arrays = [(name, np.ascontiguousarray(get(net))) for name, get in _FIELDS]
        specs: list[_ArraySpec] = []
        offset = 0
        for name, arr in arrays:
            # 8-byte alignment keeps int64 views legal at every offset.
            offset = (offset + 7) & ~7
            specs.append(
                _ArraySpec(name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset)
            )
            offset += arr.nbytes
        shm = _create_segment(offset)
        try:
            for spec, (_, arr) in zip(specs, arrays):
                dst = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
                )
                dst[...] = arr
        except BaseException:
            _OWNED.pop(shm.name, None)
            shm.close()
            shm.unlink()
            raise
        handle = cls(shm.name, tuple(specs), net.n, net.d, net.k)
        handle._owned_shm = shm
        return handle

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self._shm_name

    @property
    def net(self) -> SmallWorldNetwork:
        """The network, backed by the shared segment (attached lazily)."""
        cached = _ATTACHED.get(self._shm_name)
        if cached is not None:
            return cached[1]
        if self._owned_shm is not None:
            shm = self._owned_shm
        else:
            shm = _attach_untracked(self._shm_name)
        net = _reconstruct_network(shm, self._specs, self._n, self._d, self._k)
        _ATTACHED[self._shm_name] = (shm, net)
        return net

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Owner: unlink the segment.  Worker handles: drop the attachment.

        See :func:`_release_segment` for the keepalive semantics.
        """
        shm = self._owned_shm
        self._owned_shm = None
        _release_segment(self._shm_name, shm)

    def __enter__(self) -> "SharedNetwork":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        # The owning SharedMemory object never crosses process boundaries;
        # workers re-attach by name.
        return {
            "shm_name": self._shm_name,
            "specs": self._specs,
            "n": self._n,
            "d": self._d,
            "k": self._k,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._shm_name = state["shm_name"]
        self._specs = state["specs"]
        self._n = state["n"]
        self._d = state["d"]
        self._k = state["k"]
        self._owned_shm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedNetwork(name={self._shm_name!r}, n={self._n}, d={self._d}, "
            f"k={self._k}, owner={self._owned_shm is not None})"
        )


class SharedNetworkPack:
    """Picklable handle to *several* networks in one shared-memory segment.

    The multi-network analogue of :class:`SharedNetwork`: every graph's
    six adjacency arrays are laid out back to back in a single segment, so
    a sharded multi-network sweep ships its entire network axis as one
    few-hundred-byte handle and each worker attaches / reconstructs the
    whole tuple exactly once per process.  Create with :meth:`create` in
    the owning process; read :attr:`nets` anywhere.
    """

    def __init__(
        self,
        shm_name: str,
        per_net: tuple[tuple[tuple[_ArraySpec, ...], int, int, int], ...],
        union_specs: tuple[_ArraySpec, ...] | None = None,
        kernel_backend: str | None = None,
        channel: "ChannelModel | None" = None,
    ) -> None:
        self._shm_name = shm_name
        # per_net: one (specs, n, d, k) tuple per network, in input order.
        self._per_net = per_net
        # union_specs: (indptr_spec, indices_spec) of the pre-concatenated
        # block-diagonal union CSR, or None when not shipped.
        self._union_specs = union_specs
        # kernel_backend: sweep-level flood-kernel backend choice, restored
        # onto the reconstructed NetworkTuple in every worker.
        self._kernel_backend = kernel_backend
        # channel: sweep-level lossy/noisy channel model, restored onto the
        # reconstructed NetworkTuple the same way (plain frozen data, so it
        # pickles inside the handle rather than living in the segment).
        self._channel = channel
        self._owned_shm: Any = None  # set only in the creating process

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        nets: Sequence[SmallWorldNetwork],
        union: bool = False,
        backend: str | None = None,
        channel: "ChannelModel | None" = None,
    ) -> "SharedNetworkPack":
        """Copy every network's arrays into one fresh shared segment.

        With ``union=True`` the block-diagonal union CSR
        (:func:`repro.sim.flood.stack_union_csr`) is stacked once here and
        laid into the same segment, so workers read it zero-copy instead
        of re-concatenating per process.

        The segment is named ``repro-<pid>-<hex>`` and registered with
        the owner-side cleanup guard; if populating it fails partway the
        segment is unlinked before the exception propagates.
        """
        per_net: list[tuple[tuple[_ArraySpec, ...], int, int, int]] = []
        writes: list[tuple[_ArraySpec, AnyArray]] = []
        offset = 0
        for net in nets:
            specs = []
            for name, get in _FIELDS:
                arr = np.ascontiguousarray(get(net))
                # 8-byte alignment keeps int64 views legal at every offset.
                offset = (offset + 7) & ~7
                spec = _ArraySpec(
                    name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset
                )
                specs.append(spec)
                writes.append((spec, arr))
                offset += arr.nbytes
            per_net.append((tuple(specs), net.n, net.d, net.k))
        union_specs: tuple[_ArraySpec, ...] | None = None
        if union:
            from ..sim.flood import stack_union_csr

            _sizes, u_indptr, u_indices = stack_union_csr(nets)
            pair: list[_ArraySpec] = []
            for name, arr in (("u_indptr", u_indptr), ("u_indices", u_indices)):
                arr = np.ascontiguousarray(arr)
                offset = (offset + 7) & ~7
                spec = _ArraySpec(
                    name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset
                )
                pair.append(spec)
                writes.append((spec, arr))
                offset += arr.nbytes
            union_specs = tuple(pair)
        shm = _create_segment(offset)
        try:
            for spec, arr in writes:
                dst = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
                )
                dst[...] = arr
        except BaseException:
            _OWNED.pop(shm.name, None)
            shm.close()
            shm.unlink()
            raise
        handle = cls(
            shm.name,
            tuple(per_net),
            union_specs,
            kernel_backend=backend,
            channel=channel,
        )
        handle._owned_shm = shm
        return handle

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self._shm_name

    @property
    def nets(self) -> "NetworkTuple":
        """The networks, backed by the shared segment (attached lazily).

        When the pack was created with ``union=True`` the returned
        :class:`NetworkTuple` carries ``union_csr`` views into the same
        segment, so the union kernel builds without re-stacking.
        """
        cached = _ATTACHED.get(self._shm_name)
        if cached is not None:
            return cached[1]
        if self._owned_shm is not None:
            shm = self._owned_shm
        else:
            shm = _attach_untracked(self._shm_name)
        nets = NetworkTuple(
            _reconstruct_network(shm, specs, n, d, k)
            for specs, n, d, k in self._per_net
        )
        if self._union_specs is not None:
            views: list[AnyArray] = []
            for spec in self._union_specs:
                arr = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=shm.buf,
                    offset=spec.offset,
                )
                arr.flags.writeable = False  # shared state must stay immutable
                views.append(arr)
            sizes = tuple(n for _, n, _, _ in self._per_net)
            nets.union_csr = (sizes, views[0], views[1])
        if self._kernel_backend is not None:
            nets.kernel_backend = self._kernel_backend
        if self._channel is not None:
            nets.channel = self._channel
        _ATTACHED[self._shm_name] = (shm, nets)
        return nets

    def __len__(self) -> int:
        return len(self._per_net)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Owner: unlink the segment.  Worker handles: drop the attachment."""
        shm = self._owned_shm
        self._owned_shm = None
        _release_segment(self._shm_name, shm)

    def __enter__(self) -> "SharedNetworkPack":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        # The owning SharedMemory object never crosses process boundaries;
        # workers re-attach by name.
        return {
            "shm_name": self._shm_name,
            "per_net": self._per_net,
            "union_specs": self._union_specs,
            "kernel_backend": self._kernel_backend,
            "channel": self._channel,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._shm_name = state["shm_name"]
        self._per_net = state["per_net"]
        self._union_specs = state.get("union_specs")
        self._kernel_backend = state.get("kernel_backend")
        self._channel = state.get("channel")
        self._owned_shm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [n for _, n, _, _ in self._per_net]
        return (
            f"SharedNetworkPack(name={self._shm_name!r}, sizes={sizes}, "
            f"owner={self._owned_shm is not None})"
        )

"""Zero-copy cross-process sharing of sampled networks.

Sharded sweeps (``parallel_map(..., jobs=N)``) used to re-pickle the whole
:class:`~repro.graphs.smallworld.SmallWorldNetwork` into every worker task
— at ``n = 65536, d = 8`` that is tens of megabytes of CSR arrays per task.
:class:`SharedNetwork` instead places all six immutable adjacency arrays
(``H`` CSR + cycles, ``G`` CSR + distance tags) into one
``multiprocessing.shared_memory`` segment; the handle pickles as a few
hundred bytes of metadata, and each worker process attaches the segment
once and reconstructs the network around read-only array views — no copy,
no repeated deserialization.

Usage (the ``network=`` parameter of
:func:`repro.experiments.common.parallel_map` does this internally)::

    with SharedNetwork.create(net) as shared:
        results = pool.map(worker, [(shared, item) for item in items])
        # inside worker: shared.net  -> attached SmallWorldNetwork

The creating process owns the segment and unlinks it on ``close()`` /
context exit; attached workers hold it alive until they drop their
references (POSIX shm semantics).  On Python < 3.13 attaching registers
the segment with the worker's ``resource_tracker``, which would unlink it
when the *worker* exits — :func:`_untrack` undoes that registration so the
owner stays in charge of the lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hgraph import HGraph
from .smallworld import SmallWorldNetwork

__all__ = ["SharedNetwork"]

#: The array attributes that define a network, in serialization order.
_FIELDS = (
    ("h_indptr", lambda net: net.h.indptr),
    ("h_indices", lambda net: net.h.indices),
    ("h_cycles", lambda net: net.h.cycles),
    ("g_indptr", lambda net: net.g_indptr),
    ("g_indices", lambda net: net.g_indices),
    ("g_dist", lambda net: net.g_dist),
)

#: Per-process cache of attached segments: shm name -> (shm, network).
#: Workers receive one handle pickle per task; caching by segment name
#: makes the attach + reconstruct cost once-per-process, not per-task.
_ATTACHED: dict[str, tuple] = {}

#: SharedMemory objects whose buffers back numpy views that may still be
#: referenced after ``close()``.  Unmapping those buffers (SharedMemory
#: .close(), including from __del__) would turn any later array access
#: into a segfault, so closed-but-viewed segments are kept mapped here
#: for the rest of the process (the *segment* is still unlinked; the OS
#: frees the memory when the last mapping dies with the process).
_KEEPALIVE: list = []


def _attach_untracked(name: str):
    """Attach to segment ``name`` without resource-tracker registration.

    Python < 3.13 has no ``track=False``: a plain attach registers the
    segment with the resource tracker (shared with the owner under fork),
    and the resulting unregister/unlink at worker exit would tear the
    owner's segment down or double-remove the tracker entry.  Suppressing
    the registration during attach keeps the owner solely in charge of the
    segment's lifetime.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def register(rname, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class _ArraySpec:
    """Layout of one array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


class SharedNetwork:
    """Picklable handle to a :class:`SmallWorldNetwork` in shared memory.

    Create with :meth:`create` in the owning process; pass the handle to
    worker tasks and read :attr:`net` there.  The handle is also usable in
    the owner (``net`` returns a view-backed reconstruction, or use the
    original network directly).
    """

    def __init__(self, shm_name: str, specs: tuple[_ArraySpec, ...], n: int, d: int, k: int):
        self._shm_name = shm_name
        self._specs = specs
        self._n = n
        self._d = d
        self._k = k
        self._owned_shm = None  # set only in the creating process

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, net: SmallWorldNetwork) -> "SharedNetwork":
        """Copy ``net``'s arrays into a fresh shared-memory segment."""
        from multiprocessing import shared_memory

        arrays = [(name, np.ascontiguousarray(get(net))) for name, get in _FIELDS]
        specs = []
        offset = 0
        for name, arr in arrays:
            # 8-byte alignment keeps int64 views legal at every offset.
            offset = (offset + 7) & ~7
            specs.append(
                _ArraySpec(name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset)
            )
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for spec, (_, arr) in zip(specs, arrays):
            dst = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
            )
            dst[...] = arr
        handle = cls(shm.name, tuple(specs), net.n, net.d, net.k)
        handle._owned_shm = shm
        return handle

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self._shm_name

    @property
    def net(self) -> SmallWorldNetwork:
        """The network, backed by the shared segment (attached lazily)."""
        cached = _ATTACHED.get(self._shm_name)
        if cached is not None:
            return cached[1]
        if self._owned_shm is not None:
            shm = self._owned_shm
        else:
            shm = _attach_untracked(self._shm_name)
        net = self._reconstruct(shm)
        _ATTACHED[self._shm_name] = (shm, net)
        return net

    def _reconstruct(self, shm) -> SmallWorldNetwork:
        views = {}
        for spec in self._specs:
            arr = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
            )
            arr.flags.writeable = False  # shared state must stay immutable
            views[spec.name] = arr
        h = HGraph(
            n=self._n,
            d=self._d,
            cycles=views["h_cycles"],
            indptr=views["h_indptr"],
            indices=views["h_indices"],
        )
        return SmallWorldNetwork(
            h=h,
            k=self._k,
            g_indptr=views["g_indptr"],
            g_indices=views["g_indices"],
            g_dist=views["g_dist"],
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Owner: unlink the segment.  Worker handles: drop the attachment.

        If :attr:`net` was ever read from this process, the reconstructed
        arrays may still be referenced by the caller; their backing buffer
        then stays mapped for the rest of the process (see ``_KEEPALIVE``)
        so stale reads raise nothing worse than stale data — never a
        segfault.  The segment itself is unlinked regardless: no new
        process can attach, and the memory is freed once the last holder
        exits.
        """
        cached = _ATTACHED.pop(self._shm_name, None)
        if cached is not None:
            # Views were handed out: keep the mapping alive, never munmap.
            _KEEPALIVE.append(cached[0])
        if self._owned_shm is not None:
            shm = self._owned_shm
            self._owned_shm = None
            if cached is None or cached[0] is not shm:
                shm.close()
            shm.unlink()
        elif cached is None:
            pass  # nothing attached in this process; nothing to release

    def __enter__(self) -> "SharedNetwork":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def __getstate__(self):
        # The owning SharedMemory object never crosses process boundaries;
        # workers re-attach by name.
        return {
            "shm_name": self._shm_name,
            "specs": self._specs,
            "n": self._n,
            "d": self._d,
            "k": self._k,
        }

    def __setstate__(self, state) -> None:
        self._shm_name = state["shm_name"]
        self._specs = state["specs"]
        self._n = state["n"]
        self._d = state["d"]
        self._k = state["k"]
        self._owned_shm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedNetwork(name={self._shm_name!r}, n={self._n}, d={self._d}, "
            f"k={self._k}, owner={self._owned_shm is not None})"
        )

"""Node classification (Definitions 7-9) and set-size accounting (Lemma 2).

The analysis partitions the vertex set several ways:

* **typical / atypical** (Definition 7): a node ``u`` at level ``j`` of the
  BFS exploration around ``w`` is *typical* if it has exactly one neighbor
  one level down and ``d - 1`` neighbors one level up.
* **locally tree-like (LTL)** (Definition 8): ``w`` is LTL if no node in
  ``B(w, r)`` is atypical, i.e. the induced subgraph on ``B(w, r)`` is the
  full ``(d-1)``-ary tree.  The paper uses ``r = log n / (10 log d)``.
* **Safe / Unsafe**: distance (in ``G``) to the nearest non-LTL node is
  greater / not greater than ``a log n``.
* **Bad = Byz ∪ NLT**, and **Byzantine-safe** nodes have no bad node within
  ``a log n`` in ``G``.

At laptop scale the paper's radii round down to zero (see DESIGN.md §2.5),
so every radius is an explicit parameter with the paper's value available
from :func:`tree_radius` and :func:`repro.analysis.bounds.a_constant`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import BoolArray
from .balls import bfs_distances, distances_to_set
from .hgraph import HGraph
from .smallworld import SmallWorldNetwork

__all__ = [
    "tree_radius",
    "full_tree_ball_size",
    "is_locally_tree_like",
    "ltl_mask",
    "NodeSets",
    "classify_nodes",
]


def tree_radius(n: int, d: int) -> int:
    """The paper's LTL radius ``r = log n / (10 log d)``, floored, >= 1."""
    r = np.log2(n) / (10.0 * np.log2(d))
    return max(1, int(r))


def full_tree_ball_size(d: int, r: int) -> int:
    """``|B(v, r)|`` when the ball is a full tree: ``1 + d * sum (d-1)^j``."""
    size = 1
    width = d
    for _ in range(r):
        size += width
        width *= d - 1
    return size


def is_locally_tree_like(h: HGraph, v: int, r: int) -> bool:
    """Whether ``B_H(v, r)`` induces a full ``(d-1)``-ary tree (Definition 8).

    Two equivalent conditions are both checked (cheap, and each guards the
    other against multigraph subtleties): the ball has the full tree size,
    and the number of induced edges (with multiplicity) is ``|B| - 1``.
    """
    dist = bfs_distances(h.indptr, h.indices, v, max_depth=r)
    in_ball = dist != -1
    ball_size = int(np.count_nonzero(in_ball))
    if ball_size != full_tree_ball_size(h.d, r):
        return False
    # Count induced edges with multiplicity: sum over ball nodes of
    # neighbors inside the ball, halved.
    nodes = np.flatnonzero(in_ball)
    half_edges = 0
    for u in nodes:
        nbrs = h.neighbors(int(u))
        half_edges += int(np.count_nonzero(in_ball[nbrs]))
    return half_edges // 2 == ball_size - 1


def ltl_mask(h: HGraph, r: int | None = None) -> BoolArray:
    """Boolean mask of locally-tree-like nodes at radius ``r``."""
    if r is None:
        r = tree_radius(h.n, h.d)
    return np.array([is_locally_tree_like(h, v, r) for v in range(h.n)], dtype=bool)


@dataclass(frozen=True)
class NodeSets:
    """The Definition 9 partition, as boolean masks over ``0..n-1``.

    All distances in this classification are distances **in G** (the paper
    is explicit that Definition 9 deviates from its usual ``H`` convention).
    """

    byz: BoolArray
    honest: BoolArray
    ltl: BoolArray
    nlt: BoolArray
    safe: BoolArray
    unsafe: BoolArray
    bad: BoolArray
    byz_safe: BoolArray
    bus: BoolArray
    radius: int
    safe_radius: int

    def sizes(self) -> dict[str, int]:
        return {
            "Byz": int(self.byz.sum()),
            "Honest": int(self.honest.sum()),
            "LTL": int(self.ltl.sum()),
            "NLT": int(self.nlt.sum()),
            "Safe": int(self.safe.sum()),
            "Unsafe": int(self.unsafe.sum()),
            "Bad": int(self.bad.sum()),
            "BUS": int(self.bus.sum()),
            "Byz-safe": int(self.byz_safe.sum()),
        }

    def validate(self) -> None:
        """Check the defining identities of Definition 9."""
        n = self.byz.shape[0]
        checks = [
            np.array_equal(self.honest, ~self.byz),
            np.array_equal(self.nlt, ~self.ltl),
            np.array_equal(self.unsafe, ~self.safe),
            np.array_equal(self.bad, self.byz | self.nlt),
            np.array_equal(self.bus, ~self.byz_safe),
        ]
        if not all(checks):
            raise AssertionError("NodeSets masks violate Definition 9 identities")
        for mask in (self.byz, self.ltl, self.safe, self.bad, self.byz_safe):
            if mask.shape != (n,):
                raise AssertionError("NodeSets masks have inconsistent shapes")


def classify_nodes(
    net: SmallWorldNetwork,
    byz_mask: BoolArray,
    *,
    radius: int | None = None,
    safe_radius: int | None = None,
) -> NodeSets:
    """Compute the full Definition 9 partition for a network + placement.

    Parameters
    ----------
    net:
        The sampled small-world network.
    byz_mask:
        Boolean mask of Byzantine nodes.
    radius:
        LTL radius ``r`` (default: the paper's ``log n / (10 log d)``).
    safe_radius:
        The ``a log n`` radius for Safe/BUS classification (default: the
        paper's value via :func:`repro.analysis.bounds.a_log_n`, floored,
        minimum 1).
    """
    byz_mask = np.asarray(byz_mask, dtype=bool)
    if byz_mask.shape != (net.n,):
        raise ValueError("byz_mask must have shape (n,)")
    if radius is None:
        radius = tree_radius(net.n, net.d)
    if safe_radius is None:
        from ..analysis.bounds import a_log_n, delta_min

        delta = min(1.0, delta_min(net.d) * 1.5)
        safe_radius = max(1, int(a_log_n(net.n, delta, net.k, net.d)))

    ltl = ltl_mask(net.h, radius)
    nlt = ~ltl
    nlt_nodes = np.flatnonzero(nlt)
    dist_nlt = distances_to_set(net.g_indptr, net.g_indices, nlt_nodes)
    # Unreached (-1) means "no NLT node anywhere", i.e. infinitely safe.
    if nlt_nodes.size == 0:
        unsafe = np.zeros(net.n, dtype=bool)
    else:
        unsafe = (dist_nlt != -1) & (dist_nlt <= safe_radius)
    bad = byz_mask | nlt
    bad_nodes = np.flatnonzero(bad)
    if bad_nodes.size == 0:
        bus = np.zeros(net.n, dtype=bool)
    else:
        dist_bad = distances_to_set(net.g_indptr, net.g_indices, bad_nodes)
        bus = (dist_bad != -1) & (dist_bad <= safe_radius)
    sets = NodeSets(
        byz=byz_mask,
        honest=~byz_mask,
        ltl=ltl,
        nlt=nlt,
        safe=~unsafe,
        unsafe=unsafe,
        bad=bad,
        byz_safe=~bus,
        bus=bus,
        radius=radius,
        safe_radius=safe_radius,
    )
    sets.validate()
    return sets

"""Byzantine node placement (Section 2.1: "randomly distributed").

The paper assumes the ``B(n) = n^{1-delta}`` Byzantine nodes are placed
uniformly at random; removing that assumption is an explicitly stated open
problem, so :func:`clustered_placement` (a BFS blob around a random center)
is provided for the E14 adversarial-placement ablation.
"""

from __future__ import annotations

import numpy as np

from .._types import BoolArray, SeedLike
from ..analysis.bounds import byzantine_budget
from ..graphs.balls import bfs_distances
from ..graphs.smallworld import SmallWorldNetwork
from ..sim.rng import make_rng

__all__ = ["random_placement", "clustered_placement", "placement_for_delta"]


def random_placement(n: int, count: int, rng: SeedLike = 0) -> BoolArray:
    """Uniformly random Byzantine mask with exactly ``count`` nodes."""
    if not 0 <= count <= n:
        raise ValueError(f"count must be in [0, n], got {count}")
    mask = np.zeros(n, dtype=bool)
    if count:
        chosen = make_rng(rng).choice(n, size=count, replace=False)
        mask[chosen] = True
    return mask


def clustered_placement(
    net: SmallWorldNetwork,
    count: int,
    rng: SeedLike = 0,
) -> BoolArray:
    """Byzantine nodes form a BFS blob in ``H`` around a random center.

    This is (close to) the worst case for the random-distribution
    assumption: it maximizes the chance of long Byzantine-only chains
    (Observation 6 fails) and concentrates the early-stop attack.
    """
    if not 0 <= count <= net.n:
        raise ValueError(f"count must be in [0, n], got {count}")
    mask = np.zeros(net.n, dtype=bool)
    if count == 0:
        return mask
    center = int(make_rng(rng).integers(net.n))
    dist = bfs_distances(net.h.indptr, net.h.indices, center)
    order = np.argsort(dist, kind="stable")
    # Unreachable nodes (dist -1) sort first; rotate them to the end.
    reachable = order[dist[order] >= 0]
    mask[reachable[:count]] = True
    return mask


def placement_for_delta(
    net: SmallWorldNetwork,
    delta: float,
    rng: SeedLike = 0,
    *,
    clustered: bool = False,
) -> BoolArray:
    """Place the paper's budget ``B(n) = n^{1-delta}`` Byzantine nodes."""
    count = byzantine_budget(net.n, delta)
    if clustered:
        return clustered_placement(net, count, rng)
    return random_placement(net.n, count, rng)

"""Full-information Byzantine adversaries (Section 2.1 model, §3.4 attacks)."""

from .adaptive import MobileAdversary, TrafficAdaptiveAdversary
from .base import (
    Adversary,
    BatchAdaptationState,
    BatchSubphasePlan,
    BatchSubphaseState,
    HonestAdversary,
    Injection,
    PerTrialAdversaryBatch,
    SubphasePlan,
    SubphaseState,
    has_native_batch,
    stack_subphase_plans,
)
from .placement import clustered_placement, placement_for_delta, random_placement
from .strategies import (
    HUGE_COLOR,
    AdaptiveRecordAdversary,
    ComboAdversary,
    EarlyStopAdversary,
    InflationAdversary,
    SilentAdversary,
    SuppressionAdversary,
    TopologyLiarAdversary,
)

__all__ = [
    "Adversary",
    "HonestAdversary",
    "Injection",
    "SubphasePlan",
    "SubphaseState",
    "BatchSubphasePlan",
    "BatchSubphaseState",
    "BatchAdaptationState",
    "PerTrialAdversaryBatch",
    "stack_subphase_plans",
    "has_native_batch",
    "random_placement",
    "clustered_placement",
    "placement_for_delta",
    "EarlyStopAdversary",
    "InflationAdversary",
    "SuppressionAdversary",
    "SilentAdversary",
    "TopologyLiarAdversary",
    "ComboAdversary",
    "AdaptiveRecordAdversary",
    "MobileAdversary",
    "TrafficAdaptiveAdversary",
    "HUGE_COLOR",
]

"""Concrete Byzantine strategies — the worst cases Section 3.4 identifies.

Each strategy is one bullet of the attack-surface analysis (DESIGN.md §2.4):

* :class:`EarlyStopAdversary` — downward pressure: announce an enormous
  "generated" color at subphase start.  Honest nodes within distance
  ``< i`` then see the record early, never observe a last-round record,
  and decide prematurely.  Bounded by distance (Lemma 11 / |BUS| = o(n)).
* :class:`InflationAdversary` — upward pressure: inject a record color as
  *late* as verification allows (round ``k - 1``) so that nodes at distance
  ``i - (k - 1)`` see it arrive exactly in their last round and keep going.
  Bounded by Lemma 16 + Lemma 17 (expander saturation).
* :class:`SuppressionAdversary` — never relay the running maximum
  (defeated by expansion: alternate paths carry it).
* :class:`SilentAdversary` — full crash-like silence (a sanity control).
* :class:`TopologyLiarAdversary` — lie in the pre-phase to crash honest
  neighborhoods (Lemma 15's subject; measures Lemma 14's Core resilience).
* :class:`ComboAdversary` — splits the Byzantine budget between early-stop
  and inflation roles, the strongest composite we know against Alg. 2.
* :class:`AdaptiveRecordAdversary` — full-information stealth variant: the
  injected value is exactly ``(global honest max this subphase) + 1``,
  the minimal value that still wins every comparison.

Every strategy is ported to the batched adversary protocol
(``batch_subphase_plan`` over :class:`~repro.adversary.base.BatchSubphaseState`,
see the :mod:`repro.adversary.base` docstring): batch plans are built
natively as ``(byz, B)`` matrices / per-trial schedules, with column ``j``
bit-for-bit equal to the scalar plan trial ``j`` would receive, so
Algorithm 2 sweeps run on the trial-batched engine without a per-trial
Python fallback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .._types import BoolArray
from ..core.colors import sample_colors
from .base import (
    Adversary,
    BatchSubphasePlan,
    BatchSubphaseState,
    Injection,
    SubphasePlan,
    SubphaseState,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import CountingConfig
    from ..core.neighborhood import ByzantineClaims
    from ..graphs.smallworld import SmallWorldNetwork

__all__ = [
    "EarlyStopAdversary",
    "InflationAdversary",
    "SuppressionAdversary",
    "SilentAdversary",
    "TopologyLiarAdversary",
    "ComboAdversary",
    "AdaptiveRecordAdversary",
]

#: A color far above any honest draw at laptop scale (honest maxima are
#: ~log2 n + O(1) whp; Lemma 12 bounds them by 4 log2 n - 1).
HUGE_COLOR = 1 << 20


class EarlyStopAdversary(Adversary):
    """Push every reachable node into deciding as early as possible."""

    name = "early-stop"

    def __init__(self, value: int = HUGE_COLOR) -> None:
        super().__init__()
        self.value = value

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        colors = np.full(state.byz_nodes.shape[0], self.value, dtype=np.int64)
        return SubphasePlan(initial_colors=colors, injections=[], relay=True)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        colors = np.full(
            (state.byz_nodes.shape[0], state.batch), self.value, dtype=np.int64
        )
        return BatchSubphasePlan(initial_colors=colors)


class InflationAdversary(Adversary):
    """Keep nodes alive past their natural decision phase.

    Injects a strictly escalating record at *every* round of every
    subphase: a node at distance ``j`` from a Byzantine node then receives
    a fresh record in its final round whenever some injection round
    satisfies ``t + j = i``.  The engine enforces Lemma 16, so with
    verification on only the rounds ``t <= k - 1`` survive (rejections are
    counted) and estimates cap near ``ecc + k - 1``; with verification off
    every node keeps seeing last-round records and **never terminates** —
    the network looks arbitrarily large, exactly the failure mode the
    paper's introduction warns about.
    """

    name = "inflation"

    def __init__(self, base_value: int = HUGE_COLOR) -> None:
        super().__init__()
        self.base_value = base_value

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        # Values strictly increase across rounds, subphases and phases so
        # each arrival is a fresh record.
        stamp = (state.phase * 4096 + state.subphase) * 64
        injections = [
            Injection(
                t=t,
                nodes=state.byz_nodes,
                value=self.base_value + stamp + t,
            )
            for t in range(1, state.rounds + 1)
        ]
        return SubphasePlan(initial_colors=None, injections=injections, relay=True)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        # The schedule depends only on (phase, subphase), so every trial
        # shares one injection list (the engine never mutates plans).
        stamp = (state.phase * 4096 + state.subphase) * 64
        injections = [
            Injection(
                t=t,
                nodes=state.byz_nodes,
                value=self.base_value + stamp + t,
            )
            for t in range(1, state.rounds + 1)
        ]
        return BatchSubphasePlan(injections=[injections] * state.batch)


class SuppressionAdversary(Adversary):
    """Byzantine nodes generate nothing and never relay."""

    name = "suppression"

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        return SubphasePlan(initial_colors=None, injections=[], relay=False)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        return BatchSubphasePlan(relay=False)


class SilentAdversary(Adversary):
    """Indistinguishable from crashed nodes (control strategy)."""

    name = "silent"

    def topology_claims(self) -> ByzantineClaims:
        return {}  # silence in the pre-phase is not a contradiction

    def batch_topology_claims(self) -> list[ByzantineClaims]:
        return [{} for _ in self.batch_rngs]

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        return SubphasePlan(initial_colors=None, injections=[], relay=False)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        return BatchSubphasePlan(relay=False)


class TopologyLiarAdversary(Adversary):
    """Pre-phase lies: swap one real H-neighbor for a phantom ID.

    This is Figure 1's move in its simplest form: the liar suppresses a
    real child and invents a dummy one.  Lemma 15 predicts every honest
    G-neighbor that can cross-examine detects it and crashes.  During the
    counting phases the liar behaves like ``inner`` (default: honest).
    """

    name = "topology-liar"

    def __init__(
        self, inner: Adversary | None = None, phantom_base: int | None = None
    ) -> None:
        super().__init__()
        self.inner = inner or Adversary()
        self.phantom_base = phantom_base

    def bind(
        self,
        network: SmallWorldNetwork,
        byz_mask: BoolArray,
        rng: np.random.Generator | None,
        config: CountingConfig,
    ) -> None:
        super().bind(network, byz_mask, rng, config)
        self.inner.bind(network, byz_mask, rng, config)

    def topology_claims(self) -> ByzantineClaims:
        assert self.network is not None and self.byz_mask is not None
        base = self.phantom_base if self.phantom_base is not None else self.network.n
        claims: ByzantineClaims = {}
        for idx, b in enumerate(np.flatnonzero(self.byz_mask)):
            # Claims carry multiplicity (d entries); swap the first real
            # entry for a phantom ID, keeping the degree at exactly d.
            real = sorted(int(u) for u in self.network.h.neighbors(int(b)))
            fake = real[1:] + [base + idx]
            claims[int(b)] = tuple(fake)
        return claims

    def batch_topology_claims(self) -> list[ByzantineClaims]:
        # Claims depend only on the bound network, so compute them once;
        # the engine deduplicates identical claim sets anyway.
        claims = self.topology_claims()
        return [claims for _ in self.batch_rngs]

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        return self.inner.subphase_plan(state)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        return self.inner.batch_subphase_plan(state)


class ComboAdversary(Adversary):
    """Split the budget: half early-stop, half inflation."""

    name = "combo"

    def __init__(self, early_fraction: float = 0.5, value: int = HUGE_COLOR) -> None:
        super().__init__()
        if not 0.0 <= early_fraction <= 1.0:
            raise ValueError("early_fraction must be in [0, 1]")
        self.early_fraction = early_fraction
        self.value = value

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        m = state.byz_nodes.shape[0]
        split = int(round(m * self.early_fraction))
        early, late = state.byz_nodes[:split], state.byz_nodes[split:]
        colors = np.zeros(m, dtype=np.int64)
        colors[:split] = self.value
        injections: list[Injection] = []
        if late.size:
            t = max(1, min(state.k - 1, state.rounds))
            injections.append(
                Injection(t=t, nodes=late, value=self.value + state.phase)
            )
        initial = colors if split else None
        return SubphasePlan(initial_colors=initial, injections=injections, relay=True)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        m, batch = state.byz_nodes.shape[0], state.batch
        split = int(round(m * self.early_fraction))
        late = state.byz_nodes[split:]
        colors = np.zeros((m, batch), dtype=np.int64)
        colors[:split, :] = self.value
        injections: list[list[Injection]] | None = None
        if late.size:
            t = max(1, min(state.k - 1, state.rounds))
            inj = Injection(t=t, nodes=late, value=self.value + state.phase)
            injections = [[inj]] * batch
        initial = colors if split else None
        return BatchSubphasePlan(initial_colors=initial, injections=injections)


class AdaptiveRecordAdversary(Adversary):
    """Full-information minimal-overshoot inflation.

    Reads the honest colors drawn this subphase (the adversary is
    omniscient) and injects exactly one more than the global maximum at the
    last legal round — the least conspicuous winning value.
    """

    name = "adaptive-record"

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        base = state.global_max_color()
        injections = [
            Injection(t=t, nodes=state.byz_nodes, value=base + t)
            for t in range(1, state.rounds + 1)
        ]
        # Also draw plausible base colors so the byz nodes are not silent.
        colors = sample_colors(state.rng, state.byz_nodes.shape[0])
        return SubphasePlan(initial_colors=colors, injections=injections, relay=True)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        m = state.byz_nodes.shape[0]
        bases = state.global_max_colors()
        # Honest maxima concentrate near log2 n, so many trials share a
        # base; those trials share one schedule object (plans are
        # read-only, and the engine groups shared node arrays anyway).
        schedules: dict[int, list[Injection]] = {}
        injections: list[list[Injection]] = []
        colors = np.empty((m, state.batch), dtype=np.int64)
        for j in range(state.batch):
            base = int(bases[j])
            schedule = schedules.get(base)
            if schedule is None:
                schedule = [
                    Injection(t=t, nodes=state.byz_nodes, value=base + t)
                    for t in range(1, state.rounds + 1)
                ]
                schedules[base] = schedule
            injections.append(schedule)
            colors[:, j] = sample_colors(state.rngs[j], m)
        return BatchSubphasePlan(initial_colors=colors, injections=injections)

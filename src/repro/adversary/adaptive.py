"""Adaptive and mobile Byzantine adversaries (the scenario-pack attackers).

The base protocol's :meth:`~repro.adversary.base.Adversary.batch_adapt`
hook lets an adversary relocate its placement *between subphases* from the
traffic it observed.  Two concrete attackers live here:

* :class:`MobileAdversary` — the Byzantine set *walks the graph*: at each
  adaptation point every Byzantine node steps to a uniformly chosen free
  ``G``-neighbor (count-preserving, collision-free).  The walk randomness
  comes from a dedicated stream spawned off the adversary's first trial
  stream at bind time, so the inner strategy's own draws are bit-for-bit
  unchanged (spawning advances the child counter, not the bitstream).
* :class:`TrafficAdaptiveAdversary` — re-places the whole Byzantine set
  onto the nodes that transmitted in the most (``mode="hot"``) or fewest
  (``mode="cold"``) rounds since the last adaptation point, summed across
  the live trials.  Hot placement parks the attackers on the flooding
  backbone; cold placement hides them where the protocol looks least.

Both are *wrappers* in the :class:`TopologyLiarAdversary` idiom: the
during-subphase behavior delegates to an ``inner`` adversary (default:
honest behavior), so mobility/adaptivity composes with every built-in
strategy — ``MobileAdversary(EarlyStopAdversary())`` is a roaming
early-stopper.  The inner plans read placement from ``state.byz_nodes``
(all built-ins do), so they follow relocations automatically.

The engines apply one placement per adversary *group* (all trials bound to
one instance share a mask), so adaptation here is group-level: one walk /
one traffic ranking per adaptation point, deterministic given the bound
seed universe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .._types import BoolArray
from ..sim.rng import spawn
from .base import (
    Adversary,
    BatchAdaptationState,
    BatchSubphasePlan,
    BatchSubphaseState,
    SubphasePlan,
    SubphaseState,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import CountingConfig
    from ..core.neighborhood import ByzantineClaims
    from ..graphs.smallworld import SmallWorldNetwork

__all__ = ["MobileAdversary", "TrafficAdaptiveAdversary"]


class _DelegatingAdversary(Adversary):
    """Shared wrapper plumbing: bind and plan hooks delegate to ``inner``."""

    def __init__(self, inner: Adversary | None = None) -> None:
        super().__init__()
        self.inner = inner if inner is not None else Adversary()

    def bind(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rng: np.random.Generator | None,
        config: "CountingConfig",
    ) -> None:
        super().bind(network, byz_mask, rng, config)
        self.inner.bind(network, byz_mask, rng, config)

    def bind_batch(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rngs: Sequence[np.random.Generator],
        config: "CountingConfig",
    ) -> None:
        super().bind_batch(network, byz_mask, rngs, config)
        self.inner.bind_batch(network, byz_mask, rngs, config)

    def topology_claims(self) -> "ByzantineClaims":
        return self.inner.topology_claims()

    def batch_topology_claims(self) -> "list[ByzantineClaims]":
        return self.inner.batch_topology_claims()

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        return self.inner.subphase_plan(state)

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        return self.inner.batch_subphase_plan(state)


class MobileAdversary(_DelegatingAdversary):
    """Byzantine set walks the graph between subphases.

    At every adaptation point each Byzantine node (in ascending node
    order) steps to a uniformly chosen ``G``-neighbor not already claimed
    by an earlier walker this step; if every neighbor is claimed it stays
    put (and, in the degenerate case where even its own position was
    claimed, takes the lowest free node).  The rule is count-preserving
    and collision-free by construction, and deterministic given the walk
    stream — a child spawned off the first trial's adversary stream at
    :meth:`bind_batch`, which leaves the inner strategy's bitstreams
    untouched.
    """

    name = "mobile"

    def __init__(self, inner: Adversary | None = None) -> None:
        super().__init__(inner)
        self._walk_rng: np.random.Generator | None = None

    def bind_batch(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rngs: Sequence[np.random.Generator],
        config: "CountingConfig",
    ) -> None:
        super().bind_batch(network, byz_mask, rngs, config)
        self._walk_rng = spawn(self.batch_rngs[0], 1)[0] if self.batch_rngs else None

    def batch_adapt(self, state: BatchAdaptationState) -> BoolArray | None:
        rng = self._walk_rng
        if rng is None or state.byz_nodes.shape[0] == 0:
            return None
        n = state.n
        taken = np.zeros(n, dtype=bool)
        dests: list[int] = []
        for b in (int(v) for v in state.byz_nodes):
            nbrs = state.network.g_neighbors(b)
            dest = -1
            if nbrs.shape[0]:
                for idx in rng.permutation(nbrs.shape[0]):
                    cand = int(nbrs[idx])
                    if not taken[cand]:
                        dest = cand
                        break
            if dest < 0:
                dest = b if not taken[b] else int(np.flatnonzero(~taken)[0])
            taken[dest] = True
            dests.append(dest)
        mask = np.zeros(n, dtype=bool)
        mask[dests] = True
        return mask


class TrafficAdaptiveAdversary(_DelegatingAdversary):
    """Re-place the Byzantine set by observed transmission traffic.

    Ranks nodes by total attempted transmissions since the last adaptation
    point (summed over live trials, ties broken toward lower node IDs) and
    claims the top (``mode="hot"``) or bottom (``mode="cold"``) ``|byz|``
    nodes.  Purely deterministic — no randomness is consumed.
    """

    name = "traffic-adaptive"

    def __init__(self, inner: Adversary | None = None, mode: str = "hot") -> None:
        super().__init__(inner)
        if mode not in ("hot", "cold"):
            raise ValueError(f"mode must be 'hot' or 'cold', got {mode!r}")
        self.mode = mode

    def batch_adapt(self, state: BatchAdaptationState) -> BoolArray | None:
        m = state.byz_nodes.shape[0]
        if m == 0:
            return None
        totals = state.traffic.sum(axis=1)
        key = -totals if self.mode == "hot" else totals
        order = np.argsort(key, kind="stable")
        mask = np.zeros(state.n, dtype=bool)
        mask[order[:m]] = True
        return mask

"""Full-information adversary interface (Section 2.1's adversarial model).

The paper's adversary is *omniscient*: at every round it knows the entire
state of every node, including all random choices already made (and, in the
paper's model, even future ones).  We grant exactly that: the engine hands
the adversary a :class:`SubphaseState` exposing the honest nodes' freshly
drawn colors, the full running-max state, decision status, and the network
itself.  The adversary responds with a :class:`SubphasePlan` describing what
its nodes transmit.

What the adversary **cannot** do (also per the model):

* communicate except along ``G`` edges (the engine only lets Byzantine
  values propagate through the adjacency),
* lie about its ID,
* push a fresh color past the first ``k - 1`` rounds of a subphase when
  verification is on (Lemma 16 — the engine rejects such injections, which
  is exactly what the witness-query machinery achieves), or
* avoid the crash rule: topology lies take effect only through
  :func:`repro.core.neighborhood.crash_phase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import CountingConfig
    from ..graphs.smallworld import SmallWorldNetwork

__all__ = ["Injection", "SubphasePlan", "SubphaseState", "Adversary", "HonestAdversary"]


@dataclass(frozen=True)
class Injection:
    """Inject ``value`` at Byzantine nodes ``nodes`` at flooding round ``t``.

    ``t`` counts from 1 (the round in which the injected value is first
    transmitted to neighbors).  ``t = 1`` is indistinguishable from honest
    color generation — coin flips are private — and is always accepted;
    with verification on, rounds ``t > k - 1`` are rejected.
    """

    t: int
    nodes: np.ndarray
    value: int

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ValueError("injection round must be >= 1")
        if self.value < 1:
            raise ValueError("injected colors must be positive")


@dataclass
class SubphasePlan:
    """What the Byzantine nodes do during one subphase."""

    #: Colors the Byzantine nodes "generate" at subphase start (length =
    #: number of Byzantine nodes, aligned with ``state.byz_nodes``).  None
    #: means generate nothing (send 0 until an injection or relayed max).
    initial_colors: np.ndarray | None = None
    #: Mid-subphase injections (each checked against Lemma 16).
    injections: list[Injection] = field(default_factory=list)
    #: Whether Byzantine nodes relay the running maximum like honest nodes.
    #: ``False`` models suppression (they stay silent apart from injections).
    relay: bool = True


@dataclass
class SubphaseState:
    """Full-information snapshot handed to the adversary each subphase."""

    phase: int
    subphase: int
    rounds: int
    k: int
    network: "SmallWorldNetwork"
    byz_nodes: np.ndarray
    honest_colors: np.ndarray
    decided_phase: np.ndarray
    crashed: np.ndarray
    rng: np.random.Generator

    @property
    def n(self) -> int:
        return self.network.n

    def global_max_color(self) -> int:
        """The largest honest color drawn this subphase (omniscient view)."""
        return int(self.honest_colors.max()) if self.honest_colors.size else 0


class Adversary:
    """Base adversary: behaves exactly like honest nodes (no attack)."""

    name = "honest-behavior"

    def __init__(self) -> None:
        self.network: "SmallWorldNetwork | None" = None
        self.byz_mask: np.ndarray | None = None
        self.rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def bind(
        self,
        network: "SmallWorldNetwork",
        byz_mask: np.ndarray,
        rng: np.random.Generator,
        config: "CountingConfig",
    ) -> None:
        """Called once before the run; override for precomputation."""
        self.network = network
        self.byz_mask = np.asarray(byz_mask, dtype=bool)
        self.rng = rng
        self.config = config

    def topology_claims(self) -> dict[int, tuple[int, ...]]:
        """Claimed H-adjacency per Byzantine node for the pre-phase.

        Defaults to truthful claims (topology lies only trigger crashes,
        Lemma 15, so most strategies avoid them).
        """
        assert self.network is not None and self.byz_mask is not None
        from ..core.neighborhood import truthful_claims

        return truthful_claims(self.network, np.flatnonzero(self.byz_mask))

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        """Default: draw honest-looking colors and relay faithfully."""
        from ..core.colors import sample_colors

        return SubphasePlan(
            initial_colors=sample_colors(state.rng, state.byz_nodes.shape[0]),
            injections=[],
            relay=True,
        )


class HonestAdversary(Adversary):
    """Alias emphasizing a no-attack control run."""

    name = "honest"

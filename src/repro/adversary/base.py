"""Full-information adversary interface (Section 2.1's adversarial model).

The paper's adversary is *omniscient*: at every round it knows the entire
state of every node, including all random choices already made (and, in the
paper's model, even future ones).  We grant exactly that: the engine hands
the adversary a :class:`SubphaseState` exposing the honest nodes' freshly
drawn colors, the full running-max state, decision status, and the network
itself.  The adversary responds with a :class:`SubphasePlan` describing what
its nodes transmit.

What the adversary **cannot** do (also per the model):

* communicate except along ``G`` edges (the engine only lets Byzantine
  values propagate through the adjacency),
* lie about its ID,
* push a fresh color past the first ``k - 1`` rounds of a subphase when
  verification is on (Lemma 16 — the engine rejects such injections, which
  is exactly what the witness-query machinery achieves), or
* avoid the crash rule: topology lies take effect only through
  :func:`repro.core.neighborhood.crash_phase`.

Batched adversary protocol
--------------------------
The trial-batched engine (:func:`repro.core.batch.run_counting_batch`) runs
``B`` independent trials on ``(n, B)`` trials-as-columns state matrices.  To
keep Byzantine sweeps on that fast path, adversaries speak a *batched*
variant of the same protocol:

* :meth:`Adversary.bind_batch` is called once per batched run with one
  private random stream per trial (the same per-trial ``adv_rng`` streams a
  sequence of scalar :func:`~repro.core.runner.run_counting` calls would
  receive, derived ``make_rng(seed) -> spawn``);
* :meth:`Adversary.batch_topology_claims` returns one
  :data:`~repro.core.neighborhood.AdjacencyClaims` mapping per trial for
  the pre-phase (the engine deduplicates identical claim sets before
  simulating crashes);
* each subphase, :meth:`Adversary.batch_subphase_plan` receives a
  :class:`BatchSubphaseState` — the ``B``-column analogue of
  :class:`SubphaseState`, carrying a ``(n_honest, B)`` honest-color matrix,
  ``(n, B)`` decision/crash state, and the per-trial rng tuple — and
  returns a :class:`BatchSubphasePlan` with a ``(byz, B)`` initial-color
  matrix, per-trial injection schedules, and per-trial relay flags.

The equivalence contract is *bit-for-bit*: column ``j`` of a batch plan
must be exactly the plan the same adversary would produce for trial ``j``'s
scalar state (the built-in strategies are all ported natively; see
``tests/core/test_runner_batch.py``).  Scalar third-party adversaries keep
working unchanged: the base-class :meth:`Adversary.batch_subphase_plan`
is a generic per-column fallback that slices the batch state into scalar
:class:`SubphaseState` views (:meth:`BatchSubphaseState.column`) and calls
``subphase_plan`` once per trial — still several times faster end-to-end,
because the flooding rounds stay batched.  Adversaries that keep *mutable
per-run state* should be passed to the batch engine as a zero-argument
factory; the engine then wraps them in :class:`PerTrialAdversaryBatch`,
which maintains one scalar instance per trial exactly as the old
sequential fallback did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .._types import BoolArray, Int64Array, IntArray

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import CountingConfig
    from ..core.neighborhood import ByzantineClaims
    from ..graphs.smallworld import SmallWorldNetwork

__all__ = [
    "Injection",
    "SubphasePlan",
    "SubphaseState",
    "BatchSubphasePlan",
    "BatchSubphaseState",
    "BatchAdaptationState",
    "Adversary",
    "HonestAdversary",
    "PerTrialAdversaryBatch",
    "stack_subphase_plans",
    "has_native_batch",
]


#: Node arrays already validated by :class:`Injection`, keyed by object
#: identity (the values keep the arrays alive, so ids cannot be recycled).
#: Strategies reuse one ``byz_nodes`` array across thousands of Injection
#: objects per run; the memo turns repeat validation into a dict hit.
#: Arrays used in an Injection are treated as immutable from then on.
_VALIDATED_NODE_ARRAYS: dict[int, Int64Array] = {}


@dataclass(frozen=True)
class Injection:
    """Inject ``value`` at Byzantine nodes ``nodes`` at flooding round ``t``.

    ``t`` counts from 1 (the round in which the injected value is first
    transmitted to neighbors).  ``t = 1`` is indistinguishable from honest
    color generation — coin flips are private — and is always accepted;
    with verification on, rounds ``t > k - 1`` are rejected.

    ``nodes`` is validated eagerly (non-empty 1-D integer array, no
    duplicates) so a malformed schedule fails here, with a clear message,
    rather than deep inside the flood kernel's fancy indexing.  Membership
    in the Byzantine set needs run context and is checked by the engines
    via :meth:`require_byzantine`.
    """

    t: int
    nodes: Int64Array
    value: int

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ValueError("injection round must be >= 1")
        if self.value < 1:
            raise ValueError("injected colors must be positive")
        nodes = self.nodes
        if _VALIDATED_NODE_ARRAYS.get(id(nodes)) is not nodes:
            nodes = self._validate_nodes(nodes)
        object.__setattr__(self, "nodes", nodes)

    @staticmethod
    def _validate_nodes(nodes_in: Any) -> Int64Array:
        nodes = np.asarray(nodes_in)
        if nodes.ndim != 1 or nodes.size == 0:
            raise ValueError(
                f"injection nodes must be a non-empty 1-D array, got shape {nodes.shape}"
            )
        if not np.issubdtype(nodes.dtype, np.integer):
            raise ValueError(
                f"injection nodes must be integers, got dtype {nodes.dtype}"
            )
        if nodes.size > 1:
            # Strategies pass sorted node arrays (np.flatnonzero output);
            # for those a monotonicity scan replaces the np.unique sort.
            diffs = np.diff(nodes)
            if not ((diffs > 0).all() or (diffs < 0).all()):
                if np.unique(nodes).size != nodes.size:
                    raise ValueError("injection nodes contain duplicates")
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        if len(_VALIDATED_NODE_ARRAYS) >= 256:
            _VALIDATED_NODE_ARRAYS.clear()
        _VALIDATED_NODE_ARRAYS[id(nodes)] = nodes
        return nodes

    def require_byzantine(self, byz_mask: BoolArray) -> None:
        """Raise unless every injection target is Byzantine.

        ``byz_mask`` is the boolean placement mask over all nodes (a mask
        lookup, not a set intersection — this runs once per scheduled
        injection on the engines' hot path).
        """
        nodes = self.nodes
        out = (nodes < 0) | (nodes >= byz_mask.shape[0])
        if out.any():
            raise ValueError(
                f"injection at round {self.t} targets out-of-range nodes "
                f"{nodes[out].tolist()}"
            )
        ok = byz_mask[nodes]
        if not ok.all():
            raise ValueError(
                f"injection at round {self.t} targets non-Byzantine nodes "
                f"{nodes[~ok].tolist()}"
            )


@dataclass
class SubphasePlan:
    """What the Byzantine nodes do during one subphase."""

    #: Colors the Byzantine nodes "generate" at subphase start (length =
    #: number of Byzantine nodes, aligned with ``state.byz_nodes``).  None
    #: means generate nothing (send 0 until an injection or relayed max).
    initial_colors: IntArray | None = None
    #: Mid-subphase injections (each checked against Lemma 16).
    injections: list[Injection] = field(default_factory=list)
    #: Whether Byzantine nodes relay the running maximum like honest nodes.
    #: ``False`` models suppression (they stay silent apart from injections).
    relay: bool = True


@dataclass
class SubphaseState:
    """Full-information snapshot handed to the adversary each subphase."""

    phase: int
    subphase: int
    rounds: int
    k: int
    network: "SmallWorldNetwork"
    byz_nodes: IntArray
    honest_colors: IntArray
    decided_phase: IntArray
    crashed: BoolArray
    rng: np.random.Generator

    @property
    def n(self) -> int:
        return self.network.n

    def global_max_color(self) -> int:
        """The largest honest color drawn this subphase (omniscient view)."""
        return int(self.honest_colors.max()) if self.honest_colors.size else 0


@dataclass
class BatchSubphasePlan:
    """Per-trial Byzantine behavior for one subphase of a batched run.

    Column ``j`` of every field must equal the :class:`SubphasePlan` the
    adversary would emit for trial ``j`` run sequentially.
    """

    #: ``(byz, B)`` initial-color matrix, or None when no trial generates.
    #: A scalar plan's ``initial_colors=None`` is represented as an
    #: all-zero column (identical engine behavior: Byzantine state starts
    #: at the 0 sentinel either way).
    initial_colors: IntArray | None = None
    #: Per-trial injection schedules (``injections[j]`` drives trial ``j``);
    #: None means no trial injects.
    injections: list[list[Injection]] | None = None
    #: Per-trial relay flags (``(B,)`` bool array) or one shared bool.
    relay: BoolArray | bool = True


@dataclass
class BatchSubphaseState:
    """The ``B``-trial analogue of :class:`SubphaseState`.

    All per-node state is trials-as-columns: ``honest_colors`` is
    ``(n_honest, B)``, ``decided_phase`` and ``crashed`` are ``(n, B)``.
    ``trials`` holds the indices — into the trial list this adversary was
    bound with (one placement sub-group of the batch; see
    :mod:`repro.core.batch`) — of the trials still running (trials leave
    the batch as they finish), and ``rngs`` their private adversary
    streams in the same order.
    """

    phase: int
    subphase: int
    rounds: int
    k: int
    network: "SmallWorldNetwork"
    byz_nodes: IntArray
    trials: IntArray
    honest_colors: IntArray
    decided_phase: IntArray
    crashed: BoolArray
    rngs: tuple[np.random.Generator, ...]

    @property
    def n(self) -> int:
        return self.network.n

    @property
    def batch(self) -> int:
        return len(self.rngs)

    def global_max_colors(self) -> IntArray:
        """Per-trial largest honest color drawn this subphase (``(B,)``)."""
        if self.honest_colors.shape[0] == 0:
            return np.zeros(self.batch, dtype=np.int64)
        return self.honest_colors.max(axis=0)

    def column(self, j: int) -> SubphaseState:
        """Trial ``j``'s scalar view (used by the per-column fallback)."""
        return SubphaseState(
            phase=self.phase,
            subphase=self.subphase,
            rounds=self.rounds,
            k=self.k,
            network=self.network,
            byz_nodes=self.byz_nodes,
            honest_colors=self.honest_colors[:, j],
            decided_phase=self.decided_phase[:, j],
            crashed=self.crashed[:, j],
            rng=self.rngs[j],
        )


@dataclass
class BatchAdaptationState:
    """Observed-traffic snapshot handed to :meth:`Adversary.batch_adapt`.

    The batched Byzantine engines call the adaptation hook at the **end of
    every subphase** (so the run's first subphase always executes under
    the placement the adversary was bound with).  ``traffic`` is an
    ``(n, B_live)`` int64 matrix counting, per node and live trial, the
    rounds in which that node *attempted* a transmission (sent a nonzero
    value, before any channel loss) since the previous adaptation point.
    ``trials`` indexes the adversary's bound trial list exactly like
    :attr:`BatchSubphaseState.trials`, and ``rngs`` carries the same
    per-trial private streams in the same order.
    """

    phase: int
    subphase: int
    network: "SmallWorldNetwork"
    byz_nodes: IntArray
    trials: IntArray
    traffic: Int64Array
    rngs: tuple[np.random.Generator, ...]

    @property
    def n(self) -> int:
        return self.network.n


def stack_subphase_plans(
    plans: Sequence[SubphasePlan], byz_count: int
) -> BatchSubphasePlan:
    """Merge per-trial scalar plans (column ``j`` = ``plans[j]``) into one
    :class:`BatchSubphasePlan`.

    ``initial_colors=None`` columns become all-zero columns, which the
    engine treats identically (Byzantine nodes start each subphase at the
    0 sentinel).  Shapes are validated here so a misaligned scalar plan
    fails with the same message the sequential engine raises.
    """
    batch = len(plans)
    initial: Int64Array | None = None
    for j, plan in enumerate(plans):
        if plan.initial_colors is None:
            continue
        vals = np.asarray(plan.initial_colors, dtype=np.int64)
        if vals.shape != (byz_count,):
            raise ValueError("initial_colors must align with byz nodes")
        if initial is None:
            initial = np.zeros((byz_count, batch), dtype=np.int64)
        initial[:, j] = vals
    injections: list[list[Injection]] | None = [list(plan.injections) for plan in plans]
    if not any(injections):
        injections = None
    relay = np.array([bool(plan.relay) for plan in plans], dtype=bool)
    return BatchSubphasePlan(
        initial_colors=initial, injections=injections, relay=relay
    )


class Adversary:
    """Base adversary: behaves exactly like honest nodes (no attack)."""

    name = "honest-behavior"

    def __init__(self) -> None:
        self.network: "SmallWorldNetwork | None" = None
        self.byz_mask: BoolArray | None = None
        self.rng: np.random.Generator | None = None
        self.batch_rngs: tuple[np.random.Generator, ...] = ()

    # ------------------------------------------------------------------
    def bind(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rng: np.random.Generator | None,
        config: "CountingConfig",
    ) -> None:
        """Called once before the run; override for precomputation."""
        self.network = network
        self.byz_mask = np.asarray(byz_mask, dtype=bool)
        self.rng = rng
        self.config = config

    def topology_claims(self) -> "ByzantineClaims":
        """Claimed H-adjacency per Byzantine node for the pre-phase.

        Defaults to truthful claims (topology lies only trigger crashes,
        Lemma 15, so most strategies avoid them).
        """
        assert self.network is not None and self.byz_mask is not None
        from ..core.neighborhood import truthful_claims

        claims: "ByzantineClaims" = {}
        claims.update(truthful_claims(self.network, np.flatnonzero(self.byz_mask)))
        return claims

    def subphase_plan(self, state: SubphaseState) -> SubphasePlan:
        """Default: draw honest-looking colors and relay faithfully."""
        from ..core.colors import sample_colors

        return SubphasePlan(
            initial_colors=sample_colors(state.rng, state.byz_nodes.shape[0]),
            injections=[],
            relay=True,
        )

    # ------------------------------------------------------------------
    # Batched protocol (see module docstring)
    # ------------------------------------------------------------------
    def bind_batch(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rngs: Sequence[np.random.Generator],
        config: "CountingConfig",
    ) -> None:
        """Called once before a batched run, with one rng per trial."""
        self.batch_rngs = tuple(rngs)
        self.bind(
            network,
            byz_mask,
            self.batch_rngs[0] if self.batch_rngs else None,
            config,
        )

    def batch_topology_claims(self) -> "list[ByzantineClaims]":
        """Per-trial pre-phase claims (one mapping per bound trial).

        The default replays :meth:`topology_claims` under each trial's rng;
        deterministic strategies override this to compute the claims once.
        """
        batch = len(self.batch_rngs)
        if type(self).topology_claims is Adversary.topology_claims:
            # The base implementation (truthful claims) is deterministic
            # and rng-free: compute once and share across trials.
            return [self.topology_claims()] * batch
        claims: "list[ByzantineClaims]" = []
        for rng in self.batch_rngs:
            self.rng = rng
            claims.append(self.topology_claims())
        return claims

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        """Generic per-column fallback: one ``subphase_plan`` call per trial.

        Exact for any adversary whose scalar hook is a pure function of its
        state (all built-ins): each column sees its own trial's rng both
        via ``state.rng`` and via ``self.rng``, which is re-bound per
        column exactly as sequential runs re-bind it per trial.  Strategies
        override this with natively vectorized plans; adversaries with
        *other* mutable per-run state should go through
        :class:`PerTrialAdversaryBatch` instead.
        """
        plans: list[SubphasePlan] = []
        for j in range(state.batch):
            self.rng = state.rngs[j]
            plans.append(self.subphase_plan(state.column(j)))
        return stack_subphase_plans(plans, state.byz_nodes.shape[0])

    def batch_adapt(self, state: BatchAdaptationState) -> BoolArray | None:
        """Optional between-subphase adaptation hook (default: static).

        The batched Byzantine engines call this at the end of every
        subphase with a :class:`BatchAdaptationState` carrying the traffic
        observed since the last adaptation point.  Return a replacement
        ``(n,)`` boolean placement mask to relocate the Byzantine set for
        the *remaining* subphases, or ``None`` to keep the current
        placement.  The engines detect overrides by method identity
        (``type(adv).batch_adapt is not Adversary.batch_adapt``), so the
        base no-op costs nothing on static runs and all built-in
        strategies are unchanged.  A returned mask must preserve the
        placement *size* guarantees the run was configured with — engines
        validate only shape and dtype.  Per-phase crash simulation is not
        re-run: crashes from topology lies precede any adaptation.
        """
        return None


class HonestAdversary(Adversary):
    """Alias emphasizing a no-attack control run."""

    name = "honest"


class PerTrialAdversaryBatch(Adversary):
    """Generic per-column wrapper: one scalar adversary instance per trial.

    This is the batch-engine equivalent of the old sequential fallback —
    each trial gets its own instance from ``factory``, bound with that
    trial's private rng, and every batch hook fans out to the per-trial
    instances.  It is exact for *any* scalar adversary, including stateful
    ones, at the cost of one Python-level hook call per trial per subphase
    (the flooding rounds themselves stay batched).
    """

    name = "per-trial-batch"

    def __init__(self, factory: Callable[[], Adversary], batch: int) -> None:
        super().__init__()
        self.instances = [factory() for _ in range(batch)]

    def bind_batch(
        self,
        network: "SmallWorldNetwork",
        byz_mask: BoolArray,
        rngs: Sequence[np.random.Generator],
        config: "CountingConfig",
    ) -> None:
        if len(rngs) != len(self.instances):
            raise ValueError(
                f"bound {len(rngs)} trials for {len(self.instances)} instances"
            )
        self.batch_rngs = tuple(rngs)
        self.network = network
        self.byz_mask = np.asarray(byz_mask, dtype=bool)
        self.config = config
        for inst, rng in zip(self.instances, rngs):
            inst.bind(network, byz_mask, rng, config)

    def batch_topology_claims(self) -> "list[ByzantineClaims]":
        return [inst.topology_claims() for inst in self.instances]

    def batch_subphase_plan(self, state: BatchSubphaseState) -> BatchSubphasePlan:
        plans = [
            self.instances[int(trial)].subphase_plan(state.column(j))
            for j, trial in enumerate(state.trials)
        ]
        return stack_subphase_plans(plans, state.byz_nodes.shape[0])


def has_native_batch(adversary: Adversary) -> bool:
    """Whether ``adversary`` can drive a whole batch as a single instance.

    True when the class ports :meth:`Adversary.batch_subphase_plan`
    natively, or when it overrides *neither* scalar hook (the stateless
    base behavior, for which the generic per-column fallback is exact).
    Scalar-only subclasses return False and get wrapped in
    :class:`PerTrialAdversaryBatch` by the batch engine, preserving the
    one-instance-per-trial semantics of sequential runs.
    """
    cls = type(adversary)
    if cls.batch_subphase_plan is not Adversary.batch_subphase_plan:
        return True
    return (
        cls.subphase_plan is Adversary.subphase_plan
        and cls.topology_claims is Adversary.topology_claims
    )

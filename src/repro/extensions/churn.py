"""Dynamic networks: size drift + churn with repeated estimation.

The paper's open-problem framing ([4, 3]): the network size "may even
change over time", and protocols should keep working with strictly local
knowledge.  This module models an epoch-based dynamic network:

* between epochs the size drifts (nodes join/leave en masse — the overlay
  is re-sampled at the new size, as in rebuild-based P2P maintenance);
* within an epoch, a ``churn_rate`` fraction of nodes are replaced by
  fresh nodes (new IDs, no state) *before* the estimation runs — the
  protocol never sees a stable membership;
* each epoch runs Algorithm 2 under the configured adversary and records
  how the honest estimate tracks ``log n``.

The takeaway measurement: the per-epoch median estimate follows the true
``log n`` trajectory within the constant-factor band, epoch after epoch,
with no state carried over — counting is cheap enough to re-run.

Execution-wise the trajectory drives the resident estimation engine
(:class:`repro.service.ResidentEngine`): every epoch's overlay registers
with the engine and the per-epoch runs become *columns* of batched
multi-network rounds (honest epochs fuse into one batch, attacked epochs
into another), bit-for-bit equal to the scalar per-epoch calls this
module used to make (pinned by ``tests/extensions/test_churn.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..adversary.placement import placement_for_delta
from ..core.config import CountingConfig
from ..core.estimator import make_adversary, practical_band
from ..graphs.smallworld import build_small_world
from ..service import ResidentEngine, SizeQuery
from ..sim.rng import derive_seed

__all__ = ["EpochRecord", "ChurnReport", "track_size_over_epochs"]


@dataclass(frozen=True)
class EpochRecord:
    """Measurements for one epoch of the dynamic network."""

    epoch: int
    n: int
    log2_n: float
    churned: int
    byz_count: int
    median_phase: float
    fraction_in_band: float
    fraction_decided: float
    rounds: int


@dataclass
class ChurnReport:
    """The full trajectory plus summary accessors."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def median_phases(self) -> np.ndarray:
        return np.array([r.median_phase for r in self.records])

    def log_sizes(self) -> np.ndarray:
        return np.array([r.log2_n for r in self.records])

    def always_in_band(self, threshold: float = 0.9) -> bool:
        return all(r.fraction_in_band >= threshold for r in self.records)

    def tracks_growth(self) -> bool:
        """Median estimates are non-decreasing wherever the size doubles."""
        ok = True
        for prev, cur in zip(self.records, self.records[1:]):
            if cur.n >= 2 * prev.n:
                ok &= cur.median_phase >= prev.median_phase
            elif prev.n >= 2 * cur.n:
                ok &= cur.median_phase <= prev.median_phase
        return ok


def track_size_over_epochs(
    sizes: list[int],
    d: int = 8,
    *,
    delta: float = 0.5,
    adversary: str = "early-stop",
    churn_rate: float = 0.1,
    config: CountingConfig | None = None,
    seed: int = 0,
) -> ChurnReport:
    """Run one estimation per epoch over a drifting-size network.

    ``churn_rate`` of the nodes are replaced ("fresh", no protocol state —
    modelled by re-seeding their randomness and Byzantine placement each
    epoch) before every run; the topology is re-sampled at each epoch's
    size, as rebuild-based overlays do.  The churned count per epoch is
    ``floor(churn_rate * n + 0.5)`` — half-up rounding, so an exact ``.5``
    always rounds up (never banker's rounding, which would make the count
    non-monotone in ``n`` at a fixed rate).

    The epochs execute through one :class:`repro.service.ResidentEngine`:
    each overlay registers once, and the per-epoch runs fuse into batched
    multi-network rounds (epochs as columns) grouped honest vs attacked.
    Every record is bit-for-bit what the scalar per-epoch
    ``run_basic_counting`` / ``run_byzantine_counting`` calls produce.

    ``adversary="honest"`` runs the pure protocol: no Byzantine placement
    is drawn at all and every record reports ``byz_count=0`` (placed
    nodes that never act would misreport the attack surface).  A
    non-honest adversary whose placement comes up empty likewise runs the
    honest path with ``byz_count=0``.
    """
    if not sizes:
        raise ValueError("need at least one epoch size")
    if not 0.0 <= churn_rate <= 1.0:
        raise ValueError("churn_rate must be in [0, 1]")
    config = config or CountingConfig(max_phase=32)
    honest_config = config.with_(verification=False)
    engine = ResidentEngine()
    factory = None if adversary == "honest" else (lambda: make_adversary(adversary))

    queries: list[SizeQuery] = []
    epochs: list[tuple[int, int, int, int]] = []  # (epoch, n, churned, byz_count)
    for epoch, n in enumerate(sizes):
        net = build_small_world(n, d, seed=derive_seed(seed, "epoch-net", epoch))
        engine.add_overlay(f"epoch-{epoch:06d}", network=net)
        # Half-up rounding, explicitly: round() is round-half-to-even, so
        # churn_rate=0.5 on n=5 would report 2 churned nodes while n=7
        # reports 4 — the churned count would not be monotone in n for a
        # fixed rate.  floor(x + 0.5) gives the deterministic rule the
        # docstring promises (exact .5 rounds up at every size).
        churned = int(math.floor(churn_rate * n + 0.5))
        # Honest mode draws no placement: the run ignores the Byzantine
        # set, so recording placed nodes would misreport byz_count.
        byz = None
        if adversary != "honest":
            placed = placement_for_delta(
                net, delta, rng=derive_seed(seed, "epoch-byz", epoch)
            )
            if placed.any():
                byz = placed
        run_seed = derive_seed(seed, "epoch-run", epoch, churned)
        queries.append(
            SizeQuery(
                f"epoch-{epoch:06d}",
                run_seed,
                config=config if byz is not None else honest_config,
                strategy=factory if byz is not None else None,
                byz_mask=byz,
            )
        )
        epochs.append((epoch, n, churned, 0 if byz is None else int(byz.sum())))

    results = engine.serve(queries)
    band = practical_band(d)
    report = ChurnReport()
    for (epoch, n, churned, byz_count), result in zip(epochs, results, strict=True):
        _, med, _ = result.decision_quantiles()
        report.append(
            EpochRecord(
                epoch=epoch,
                n=n,
                log2_n=float(np.log2(n)),
                churned=churned,
                byz_count=byz_count,
                median_phase=med,
                fraction_in_band=result.fraction_in_band(*band),
                fraction_decided=result.fraction_decided(),
                rounds=result.meter.rounds,
            )
        )
    return report

"""Extensions beyond the paper's core result.

The paper positions Byzantine counting as "a building block for
implementing other non-trivial distributed computation tasks … such as
agreement and leader election where the network size is not known a
priori" (Section 1.1), and its open problems include dynamic networks
whose size "may even change over time" (Section 1 / [4, 3]).  This package
delivers both directions:

* :mod:`repro.extensions.agreement` — almost-everywhere binary agreement
  whose round budget is derived from the counting protocol's per-node
  estimates (the advertised preprocessing pipeline, end to end);
* :mod:`repro.extensions.churn` — epoch-based dynamic networks (node churn
  and size drift) with repeated estimation, measuring how the estimate
  tracks the true size.
"""

from .agreement import AgreementResult, run_ae_agreement
from .churn import ChurnReport, EpochRecord, track_size_over_epochs

__all__ = [
    "AgreementResult",
    "run_ae_agreement",
    "ChurnReport",
    "EpochRecord",
    "track_size_over_epochs",
]

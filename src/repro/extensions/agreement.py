"""Almost-everywhere agreement seeded by the size estimate (Section 1.1).

The classical expander recipe (Dwork-Peleg-Pippenger-Upfal lineage):
iterate local-majority updates for ``Theta(log n)`` rounds; expansion
drives all but ``o(n)`` honest nodes to the majority input despite
``o(n / log n)``-scale Byzantine interference.  The catch the paper keeps
pointing at: the round budget needs ``log n``, which nobody knows.

Here each node derives its *own* round budget from its *own* counting
estimate — the full pipeline the paper advertises: Byzantine counting as
preprocessing for Byzantine agreement.  A node participates in majority
exchange while its local clock is within its budget and freezes its bit
afterwards; because the counting estimates are constant-factor correct for
(1-eps) of honest nodes, almost everyone runs long enough to converge.

Byzantine nodes transmit whatever bits the strategy dictates each round
(the full-information worst case here is "always feed every neighbor the
current global minority").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import make_rng

__all__ = ["AgreementResult", "run_ae_agreement"]

STRATEGIES = ("minority", "split", "silent")


@dataclass
class AgreementResult:
    """Outcome of an almost-everywhere agreement run."""

    final_bits: np.ndarray
    byz: np.ndarray
    rounds_run: int
    majority_input: int
    agreement_fraction: float
    agreed_value: int

    @property
    def almost_everywhere(self) -> bool:
        """Whether >= 90% of honest nodes agree on one value."""
        return self.agreement_fraction >= 0.9

    @property
    def validity(self) -> bool:
        """Whether the agreed value is the honest majority input."""
        return self.agreed_value == self.majority_input


def run_ae_agreement(
    network,
    inputs: np.ndarray,
    round_budgets: np.ndarray,
    byz_mask: np.ndarray | None = None,
    *,
    strategy: str = "minority",
    seed: int | np.random.Generator | None = 0,
) -> AgreementResult:
    """Run local-majority agreement with per-node round budgets.

    Parameters
    ----------
    inputs:
        Initial bit per node (honest nodes only; Byzantine entries ignored).
    round_budgets:
        Per-node number of rounds the node keeps updating (derive from the
        counting protocol: ``budget = c * decided_phase``).  Nodes freeze
        after their budget expires but keep transmitting their frozen bit.
    strategy:
        Byzantine transmission: ``"minority"`` (push the current honest
        minority), ``"split"`` (random bits), ``"silent"``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    n, d = network.n, network.d
    rng = make_rng(seed)
    byz = (
        np.zeros(n, dtype=bool)
        if byz_mask is None
        else np.asarray(byz_mask, dtype=bool)
    )
    inputs = np.asarray(inputs, dtype=np.int8)
    budgets = np.asarray(round_budgets, dtype=np.int64)
    if inputs.shape != (n,) or budgets.shape != (n,):
        raise ValueError("inputs and round_budgets must have shape (n,)")

    honest = ~byz
    majority_input = int(np.round(inputs[honest].mean()))
    bits = inputs.copy()
    max_rounds = int(budgets[honest].max()) if honest.any() else 0

    indptr, indices = network.h.indptr, network.h.indices
    for t in range(1, max_rounds + 1):
        sent = bits.astype(np.int64)
        silent = np.zeros(n, dtype=bool)
        if byz.any():
            if strategy == "minority":
                current_majority = int(np.round(bits[honest].mean()))
                sent[byz] = 1 - current_majority
            elif strategy == "split":
                sent[byz] = rng.integers(0, 2, size=int(byz.sum()))
            else:  # silent
                silent = byz.copy()
        # Per-node neighbor majority over H (multiplicity counts as weight).
        gathered = sent[indices]
        if silent.any():
            weight = (~silent[indices]).astype(np.int64)
        else:
            weight = np.ones_like(gathered)
        ones = np.add.reduceat(gathered * weight, indptr[:-1])
        votes = np.add.reduceat(weight, indptr[:-1])
        new_bits = bits.copy()
        active = honest & (budgets >= t)
        with np.errstate(invalid="ignore"):
            lean_one = ones * 2 > votes
            lean_zero = ones * 2 < votes
        new_bits[active & lean_one] = 1
        new_bits[active & lean_zero] = 0
        bits = new_bits

    honest_bits = bits[honest]
    ones_frac = float(honest_bits.mean()) if honest_bits.size else 0.0
    agreed = int(ones_frac >= 0.5)
    fraction = ones_frac if agreed else 1.0 - ones_frac
    return AgreementResult(
        final_bits=bits,
        byz=byz,
        rounds_run=max_rounds,
        majority_input=majority_input,
        agreement_fraction=fraction,
        agreed_value=agreed,
    )

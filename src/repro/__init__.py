"""repro — Byzantine network size estimation in small-world expanders.

A production-grade reproduction of Chatterjee, Pandurangan & Robinson,
"Network Size Estimation in Small-World Networks under Byzantine Faults"
(arXiv:2102.09197).  See README.md for a tour and DESIGN.md for the system
inventory.

Quick start::

    from repro import estimate_network_size
    report = estimate_network_size(n=1024, d=8, adversary="early-stop", seed=3)
    print(report.summary())
"""

from .core import (
    ADVERSARIES,
    CountingConfig,
    CountingResult,
    EstimateReport,
    MultiSweepResult,
    SweepResult,
    estimate_network_size,
    make_adversary,
    practical_band,
    run_basic_counting,
    run_byzantine_counting,
    run_multi_sweep,
    run_sweep,
)
from .graphs import SmallWorldNetwork, build_small_world, generate_hgraph

__version__ = "1.0.0"

__all__ = [
    "estimate_network_size",
    "EstimateReport",
    "make_adversary",
    "practical_band",
    "ADVERSARIES",
    "CountingConfig",
    "CountingResult",
    "run_basic_counting",
    "run_byzantine_counting",
    "run_sweep",
    "run_multi_sweep",
    "SweepResult",
    "MultiSweepResult",
    "build_small_world",
    "generate_hgraph",
    "SmallWorldNetwork",
    "__version__",
]

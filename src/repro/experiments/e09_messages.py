"""E09 — "small-sized messages" (Section 1.1 footnote 4, Section 2.1).

A message carries a constant number of IDs and ``O(log n)`` bits.  We
measure, per run: messages per node per round (should be ~d plus a
constant verification overhead), the largest ID payload of any message
(constant), and the bit-length of the largest color in flight
(``<= log2(4 log2 n)`` bits whp, by Lemma 12).

Both protocols run their whole (n, seed) grids as **fused multi-network
sweeps** (:func:`repro.core.sweep.run_multi_sweep`): the grids are
rectangular, so the layout selector picks the zero-padding union stack —
every size a row block of one block-diagonal state, with per-network
Byzantine placements gating per block on the Algorithm 2 runs —
bit-for-bit equal to the per-``n`` batched loops this experiment used to
run, and exercising the batched adversary fast path across sizes.
"""

from __future__ import annotations

import numpy as np

from ..adversary.placement import placement_for_delta
from ..core.colors import sample_colors
from ..core.config import CountingConfig
from ..core.sweep import run_multi_sweep
from ..sim.metrics import color_bits
from ..sim.rng import make_rng
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E09",
    "Message size accounting",
    "messages carry O(1) IDs + O(log n) bits; per-node per-round load is constant",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(512, 1024), full=(512, 1024, 2048, 4096))
    reps = 3
    d = DEFAULT_D
    cfg = CountingConfig(max_phase=32)
    result = ExperimentResult(
        exp_id="E09", title="Message sizes", claim="small-sized messages only"
    )
    table = Table(
        title=f"Communication accounting over {reps} trials (Alg. 1 and Alg. 2)",
        columns=[
            "n",
            "protocol",
            "msgs/round/node",
            "max ids/msg",
            "max color bits (4log2n bound)",
        ],
    )
    loads = []
    max_ids = []
    seeds = [seed * 10 + r for r in range(reps)]
    nets = [network(n, d, seed) for n in ns]
    # Algorithm 1 across every size as one union-stack honest batch;
    # Algorithm 2 likewise, with each network's own delta-budget placement.
    sweep1 = run_multi_sweep(nets, seeds=seeds, configs=cfg.with_(verification=False))
    sweep2 = run_multi_sweep(
        nets,
        seeds=seeds,
        configs=cfg,
        placements=lambda net: placement_for_delta(net, 0.5, rng=seed),
        strategies="early-stop",
    )
    for g, n in enumerate(ns):
        batch1 = sweep1.seed_batch(network=g)
        load1 = float(
            np.mean([r.meter.messages / r.meter.rounds / n for r in batch1])
        )
        ids1 = max(r.meter.max_message_ids for r in batch1)
        max_color = int(sample_colors(make_rng(seed), 4 * n).max())
        bound_bits = int(np.ceil(np.log2(max(2, 4 * np.log2(n)))))
        table.add(n, "Alg1", load1, ids1, f"{color_bits(max_color)} ({bound_bits}+)")
        batch2 = sweep2.seed_batch(network=g)
        load2 = float(
            np.mean([r.meter.messages / r.meter.rounds / n for r in batch2])
        )
        ids2 = max(r.meter.max_message_ids for r in batch2)
        table.add(n, "Alg2", load2, ids2, "-")
        loads.append((load1, load2))
        max_ids.extend([ids1, ids2])
    result.tables.append(table)
    result.checks["per_node_load_constant"] = all(
        l1 <= 2 * d and l2 <= 8 * d for l1, l2 in loads
    )
    result.checks["ids_per_message_constant"] = all(ids <= d for ids in max_ids)
    return result

"""E10 — Lemma 11: premature decisions are bounded by eps.

Lemma 11: while ``i < a log n``, at most an eps-fraction of nodes decide.
At lab scale ``a log n < 1``; the measurable mechanism is that the
``alpha_i`` repetition schedule (which grows like ``log(1/eps)``) keeps
early-phase wrong decisions below eps, and that tightening eps tightens
the premature fraction.  We count decisions at phases
``i <= premature_cutoff`` (half the honest median, the lab stand-in for
``a log n``) across eps values.
"""

from __future__ import annotations

import numpy as np

from ..core.basic_counting import run_basic_counting
from ..core.config import CountingConfig
from .common import DEFAULT_D, basic_counting_trials, network
from .harness import ExperimentResult, Table, register


@register(
    "E10",
    "Premature decisions (Lemma 11)",
    "fraction of nodes deciding before a log n is at most eps",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 1024 if scale == "small" else 4096
    reps = 3 if scale == "small" else 6
    d = DEFAULT_D
    net = network(n, d, seed)
    eps_values = (0.05, 0.1, 0.2) if scale == "small" else (0.02, 0.05, 0.1, 0.2, 0.4)
    result = ExperimentResult(
        exp_id="E10",
        title="Premature decisions",
        claim="premature fraction <= eps, monotone in eps",
    )
    # Establish the honest median phase once.
    base = run_basic_counting(net, config=CountingConfig(eps=0.1), seed=seed)
    _, med, _ = base.decision_quantiles()
    cutoff = max(1, int(med) // 2)
    table = Table(
        title=f"n={n}, premature cutoff = phase <= {cutoff} (median/2); {reps} reps",
        columns=["eps", "alpha_1", "premature frac", "<= eps", "mean phase"],
    )
    fracs = []
    from ..core.phases import alpha

    for eps in eps_values:
        cfg = CountingConfig(eps=eps)
        vals = []
        means = []
        # Repeated-seed sweep through the trial-batched engine (identical
        # per-trial results to sequential runs at the seeds seed*50+r).
        trials = basic_counting_trials(
            net, [seed * 50 + r for r in range(reps)], config=cfg
        )
        for res in trials:
            decided = res.decided_phase[res.honest_uncrashed]
            vals.append(float(np.mean((decided != -1) & (decided <= cutoff))))
            means.append(float(decided[decided != -1].mean()))
        frac = float(np.mean(vals))
        fracs.append(frac)
        table.add(eps, alpha(1, eps, d), frac, frac <= eps + 0.02, float(np.mean(means)))
    result.tables.append(table)
    result.checks["premature_below_eps"] = all(
        f <= e + 0.02 for f, e in zip(fracs, eps_values)
    )
    result.checks["monotone_in_eps"] = fracs[0] <= fracs[-1] + 0.02
    return result

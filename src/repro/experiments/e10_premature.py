"""E10 — Lemma 11: premature decisions are bounded by eps.

Lemma 11: while ``i < a log n``, at most an eps-fraction of nodes decide.
At lab scale ``a log n < 1``; the measurable mechanism is that the
``alpha_i`` repetition schedule (which grows like ``log(1/eps)``) keeps
early-phase wrong decisions below eps, and that tightening eps tightens
the premature fraction.  We count decisions at phases
``i <= premature_cutoff`` (half the honest median, the lab stand-in for
``a log n``) across eps values — and, new with the network-axis batching,
across sizes: the whole (n x eps x seed) grid runs as **one fused
multi-network sweep** (:func:`repro.core.sweep.run_multi_sweep`, eps as
the config axis; the rectangular grid auto-selects the union-stack
layout), bit-for-bit equal to the per-``(n, eps)`` batched loops.
The Lemma 11 shape checks gate on the primary (largest) size, as before;
the smaller sizes chart how the bound tightens with ``n``.
"""

from __future__ import annotations

import numpy as np

from ..core.basic_counting import run_basic_counting
from ..core.config import CountingConfig
from ..core.sweep import run_multi_sweep
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


@register(
    "E10",
    "Premature decisions (Lemma 11)",
    "fraction of nodes deciding before a log n is at most eps",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = (512, 1024) if scale == "small" else (2048, 4096)
    primary = ns[-1]  # shape checks gate on the largest size (as before)
    reps = 3 if scale == "small" else 6
    d = DEFAULT_D
    eps_values = (0.05, 0.1, 0.2) if scale == "small" else (0.02, 0.05, 0.1, 0.2, 0.4)
    result = ExperimentResult(
        exp_id="E10",
        title="Premature decisions",
        claim="premature fraction <= eps, monotone in eps",
    )
    nets = [network(n, d, seed) for n in ns]
    # Establish each size's honest median phase once (cutoff is per n).
    cutoffs = []
    for net in nets:
        base = run_basic_counting(net, config=CountingConfig(eps=0.1), seed=seed)
        _, med, _ = base.decision_quantiles()
        cutoffs.append(max(1, int(med) // 2))
    table = Table(
        title=(
            f"premature cutoff = phase <= median/2 per n "
            f"(checks gate on n={primary}); {reps} reps"
        ),
        columns=["n", "eps", "alpha_1", "premature frac", "<= eps", "mean phase"],
    )
    from ..core.phases import alpha

    # The full (n, eps, seed) grid as one fused padded batch: networks are
    # the outer axis, eps values the config axis, seeds shared.
    configs = [CountingConfig(eps=eps, verification=False) for eps in eps_values]
    sweep = run_multi_sweep(
        nets, seeds=[seed * 50 + r for r in range(reps)], configs=configs
    )
    primary_fracs = []
    for g, n in enumerate(ns):
        cutoff = cutoffs[g]
        for c, eps in enumerate(eps_values):
            vals = []
            means = []
            for res in sweep.seed_batch(network=g, config=c):
                decided = res.decided_phase[res.honest_uncrashed]
                vals.append(float(np.mean((decided != -1) & (decided <= cutoff))))
                means.append(float(decided[decided != -1].mean()))
            frac = float(np.mean(vals))
            if n == primary:
                primary_fracs.append(frac)
            table.add(
                n, eps, alpha(1, eps, d), frac, frac <= eps + 0.02, float(np.mean(means))
            )
    result.tables.append(table)
    result.checks["premature_below_eps"] = all(
        f <= e + 0.02 for f, e in zip(primary_fracs, eps_values)
    )
    result.checks["monotone_in_eps"] = primary_fracs[0] <= primary_fracs[-1] + 0.02
    return result

"""E08 — Theorem 1: round complexity Theta(log^3 n); estimates scale with log n.

Two measurements:

* the decided phase grows linearly in ``log2 n`` (the protocol's output is
  a constant-factor ``log n`` estimate) — slope of median phase vs
  ``log2 n`` is within a constant of ``1/log2(d-1)``;
* the executed round count grows polylogarithmically, below the paper's
  exact schedule accounting (:func:`repro.analysis.bounds.round_complexity_bound`),
  with a fitted exponent ``p`` in ``rounds ~ (log n)^p`` of at most ~3.

The whole size axis runs as **one fused multi-network batch**
(:func:`repro.core.sweep.run_multi_sweep`): the (n, seed) grid is
rectangular, so the layout selector picks the zero-padding union stack —
every size is a row block of one block-diagonal state, every seed one
shared column — bit-for-bit equal to the per-``n``
``basic_counting_trials`` loop this experiment used to run.
"""

from __future__ import annotations

import numpy as np

from ..analysis.bounds import round_complexity_bound
from ..analysis.stats import loglog_slope
from ..core.config import CountingConfig
from ..core.sweep import run_multi_sweep
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E08",
    "Round complexity (Theorem 1)",
    "O(log^3 n) rounds; decided phase = Theta(log n)",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(256, 512, 1024, 2048), full=(256, 512, 1024, 2048, 4096, 8192))
    reps = 3 if scale == "small" else 5
    d = DEFAULT_D
    cfg = CountingConfig(max_phase=40)
    result = ExperimentResult(
        exp_id="E08",
        title="Round complexity",
        claim="rounds = O(log^3 n); phase ~ log n / log(d-1)",
    )
    table = Table(
        title=f"Algorithm 1 schedule measurements ({reps} batched trials per n)",
        columns=["n", "log2 n", "phase med", "phase*log2(d-1)", "rounds max", "paper bound"],
    )
    log_ns, phases, rounds = [], [], []
    # One fused sweep over the whole (n, seed) grid: the rectangular grid
    # auto-selects the union-stack layout (sizes as row blocks, seeds as
    # shared columns; same per-trial seeds as before).
    nets = [network(n, d, seed) for n in ns]
    sweep = run_multi_sweep(
        nets,
        seeds=[seed + 3 + 101 * r for r in range(reps)],
        configs=cfg.with_(verification=False),
    )
    for g, n in enumerate(ns):
        trials = sweep.seed_batch(network=g)
        med = float(np.median(trials.median_phases()))
        worst_rounds = int(trials.rounds().max())
        table.add(
            n,
            float(np.log2(n)),
            med,
            med * float(np.log2(d - 1)),
            worst_rounds,
            round_complexity_bound(n, cfg.eps, d, verification_cost=0),
        )
        log_ns.append(np.log2(n))
        phases.append(med)
        rounds.append(worst_rounds)
    result.tables.append(table)

    phase_slope, _ = np.polyfit(log_ns, phases, 1)
    round_exp, _ = loglog_slope(np.array(log_ns), np.array(rounds))
    anchor = 1.0 / np.log2(d - 1)
    result.checks["phase_grows_with_log_n"] = phase_slope > 0.05
    result.checks["phase_slope_constant_factor"] = (
        0.25 * anchor <= phase_slope <= 6 * anchor
    )
    result.checks["rounds_polylog"] = round_exp <= 3.6
    result.checks["rounds_below_paper_bound"] = all(
        r <= round_complexity_bound(n, cfg.eps, d, verification_cost=0)
        for r, n in zip(rounds, ns)
    )
    result.notes = (
        f"phase slope vs log2 n = {phase_slope:.3f} (anchor 1/log2(d-1) = {anchor:.3f}); "
        f"rounds ~ (log n)^{round_exp:.2f} (paper: <= 3)"
    )
    return result

"""E02 — Lemma 2: sizes of the Definition 9 node sets.

Measures every set (Byz, Honest, LTL, NLT, Safe, Unsafe, Bad, BUS,
Byz-safe) against the lemma's bounds.  The paper's radii are asymptotic
(``a log n < 1`` at lab scale — see DESIGN.md §2.5), so the Safe/BUS
columns use radius 1 and the honest check is the *identity* structure
(complements, unions) plus the scalable bounds (Byz, Honest, Bad, LTL).
"""

from __future__ import annotations

import numpy as np

from ..adversary.placement import placement_for_delta
from ..analysis.theory import lemma2_bounds
from ..graphs.classification import classify_nodes
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E02",
    "Node-set sizes (Lemma 2)",
    "|Byz|=n^{1-delta}, |NLT|=O(n^0.8), |Bad|<=2n^{1-delta}, |BUS|=o(n), etc.",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(1024,), full=(1024, 2048, 4096))
    deltas = (0.45,) if scale == "small" else (0.45, 0.6)
    d = DEFAULT_D
    result = ExperimentResult(
        exp_id="E02", title="Node-set sizes", claim="Lemma 2 size bounds"
    )
    for n in ns:
        for delta in deltas:
            net = network(n, d, seed)
            byz = placement_for_delta(net, delta, rng=seed + 1)
            sets = classify_nodes(net, byz, radius=1, safe_radius=1)
            sizes = sets.sizes()
            bounds = lemma2_bounds(n, d, delta)
            table = Table(
                title=f"n={n}, delta={delta} (radius=1 stand-in for a log n)",
                columns=["set", "measured", "paper bound", "bound kind"],
            )
            table.add("Byz", sizes["Byz"], bounds["Byz"], "= n^(1-delta)")
            table.add("Honest", sizes["Honest"], bounds["Honest"], "= n - Byz")
            table.add("LTL", sizes["LTL"], bounds["LTL_min"], ">= (unit const)")
            table.add("NLT", sizes["NLT"], bounds["NLT_max"], "<= O(n^0.8)")
            table.add("Safe", sizes["Safe"], bounds["Safe_min"], ">= n - o(n)")
            table.add("Unsafe", sizes["Unsafe"], bounds["Unsafe_max"], "<= o(n)")
            table.add("Bad", sizes["Bad"], bounds["Bad_max"], "<= 2 n^(1-delta)")
            table.add("BUS", sizes["BUS"], bounds["BUS_max"], "<= o(n)")
            table.add("Byz-safe", sizes["Byz-safe"], bounds["Byz_safe_min"], ">= n - o(n)")
            result.tables.append(table)
            if n == ns[0] and delta == deltas[0]:
                result.checks["byz_exact_budget"] = sizes["Byz"] == int(
                    np.floor(bounds["Byz"])
                )
                result.checks["bad_within_bound"] = (
                    sizes["Bad"] <= 2 * bounds["Byz"] + 4 * n**0.8
                )
                result.checks["identities_hold"] = (
                    sizes["Byz"] + sizes["Honest"] == n
                    and sizes["LTL"] + sizes["NLT"] == n
                    and sizes["BUS"] + sizes["Byz-safe"] == n
                )
    return result

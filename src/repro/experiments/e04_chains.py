"""E04 — Observation 6: no all-Byzantine chain of length >= k, whp.

Monte-Carlo over random placements: count placements containing a simple
path of ``k`` Byzantine nodes in ``H``, and compare the frequency to the
union bound ``n d^{k-1} n^{-k delta}``.  Also measures the clustered
placement (the open-problem regime) where chains appear with probability
~1 — the contrast that justifies the random-distribution assumption.
"""

from __future__ import annotations

import numpy as np

from ..adversary.placement import clustered_placement, random_placement
from ..analysis.bounds import byzantine_budget, chain_probability_bound, k_of_d
from ..analysis.stats import wilson_interval
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


def has_byz_chain(net, byz_mask: np.ndarray, k: int) -> bool:
    """Whether the Byzantine-induced subgraph of H has a simple path of k nodes."""
    byz = np.flatnonzero(byz_mask)
    if byz.size < k:
        return False
    byz_set = set(int(b) for b in byz)

    def dfs(v: int, visited: set[int], depth: int) -> bool:
        if depth == k:
            return True
        for u in net.h.unique_neighbors(v):
            u = int(u)
            if u in byz_set and u not in visited:
                if dfs(u, visited | {u}, depth + 1):
                    return True
        return False

    return any(dfs(int(b), {int(b)}, 1) for b in byz)


@register(
    "E04",
    "Byzantine chains (Observation 6)",
    "Pr[exists all-Byzantine k-chain] <= d^{k-1}/n^{delta'} for random placement",
)
def run(scale: str, seed: int) -> ExperimentResult:
    d = DEFAULT_D
    k = k_of_d(d)
    ns = ns_for(scale, small=(512,), full=(512, 1024, 2048))
    trials = 60 if scale == "small" else 200
    delta = 0.55  # k*delta = 1.65 > 1 as the observation requires
    result = ExperimentResult(
        exp_id="E04",
        title="All-Byzantine chains",
        claim="random placement: chains of length >= k are rare; clustered: common",
    )
    table = Table(
        title=f"k={k}, delta={delta}, trials={trials}",
        columns=["n", "B(n)", "placement", "chain_freq", "wilson_hi", "paper bound"],
    )
    freq_random_last = 1.0
    freq_clustered_last = 0.0
    for n in ns:
        net = network(n, d, seed)
        budget = byzantine_budget(n, delta)
        for _placement, label in ((random_placement, "random"), (None, "clustered")):
            hits = 0
            for t in range(trials):
                if label == "random":
                    mask = random_placement(n, budget, rng=seed * 1000 + t)
                else:
                    mask = clustered_placement(net, budget, rng=seed * 1000 + t)
                hits += has_byz_chain(net, mask, k)
            freq = hits / trials
            _, hi = wilson_interval(hits, trials)
            bound = min(1.0, chain_probability_bound(n, d, k, delta))
            table.add(n, budget, label, freq, hi, bound if label == "random" else "-")
            if label == "random":
                freq_random_last = freq
            else:
                freq_clustered_last = freq
    result.tables.append(table)
    result.checks["random_chains_rare"] = freq_random_last <= 0.25
    result.checks["clustered_chains_common"] = freq_clustered_last >= 0.75
    result.checks["random_below_clustered"] = freq_random_last < freq_clustered_last
    return result

"""E15-E17 — scenario pack: lossy channels, noisy channels, adaptivity.

The paper's protocol is analysed on a reliable synchronous network.  The
scenario pack asks how the estimate degrades when that assumption is
relaxed along three axes, each a first-class knob of the batched engines:

* **E15 (loss)** — every transmitted value is dropped i.i.d. with
  probability ``loss_p`` (:class:`repro.sim.channel.ChannelModel`).  Lost
  sends slow the flood, so honest nodes take *more* phases to see their
  neighborhood sizes cross ``T`` — the mean decided phase should rise
  monotonically with the loss rate, and the ``loss_p=0`` run must be
  bit-for-bit the channel-free engine output (the determinism contract).
* **E16 (noise)** — surviving values are perturbed by an additive integer
  kick of up to ``noise_amp`` with probability ``noise_p``.  Corrupted
  color maxima push decisions off the lossless trajectory in both
  directions, so the chart tracks the mean absolute deviation of the
  decided phase from the noiseless baseline, which should grow with the
  noise level.
* **E17 (adaptivity)** — Byzantine sets that re-plan *between subphases*
  (:mod:`repro.adversary.adaptive`): a mobile set walking the graph and a
  traffic-ranking set chasing hot (or hiding in cold) nodes, each wrapped
  around the early-stop strategy.  The chart compares the honest decision
  delay against the static early-stop placement; adaptation is exercised
  end to end and must be deterministic (two identical runs agree
  bit-for-bit).
"""

from __future__ import annotations

import numpy as np

from ..adversary.adaptive import MobileAdversary, TrafficAdaptiveAdversary
from ..adversary.placement import placement_for_delta
from ..adversary.strategies import EarlyStopAdversary
from ..core.batch import run_counting_batch
from ..core.config import CountingConfig
from ..core.results import BatchCountingResult
from ..sim.channel import ChannelModel
from ..sim.rng import derive_seed
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


def _mean_decided_phase(batch: BatchCountingResult, max_phase: int) -> float:
    """Mean decided phase over honest uncrashed nodes (undecided counts as
    ``max_phase`` so stalled floods register as delay, not as progress)."""
    vals = []
    for res in batch:
        decided = res.decided_phase[res.honest_uncrashed]
        vals.append(float(np.where(decided == -1, max_phase, decided).mean()))
    return float(np.mean(vals))


def _seeds(seed: int, reps: int, tag: str) -> list[int]:
    return [derive_seed(seed, tag, r) for r in range(reps)]


@register(
    "E15",
    "Lossy channels (scenario pack)",
    "decision delay grows monotonically with the channel loss rate",
)
def run_loss(scale: str, seed: int) -> ExperimentResult:
    n = 384 if scale == "small" else 1024
    reps = 8 if scale == "small" else 12
    loss_values = (0.0, 0.1, 0.25, 0.4)
    d = DEFAULT_D
    net = network(n, d, seed)
    config = CountingConfig(verification=False)
    seeds = _seeds(seed, reps, "e15")
    result = ExperimentResult(
        exp_id="E15",
        title="Lossy channels",
        claim="mean decided phase is monotone in loss_p; loss_p=0 is bit-for-bit lossless",
    )
    table = Table(
        title=f"honest counting under Bernoulli drop, n={n}, {reps} seeds",
        columns=["loss_p", "mean phase", "frac decided"],
    )
    baseline = run_counting_batch(net, seeds, config=config)
    phases = []
    lossless_exact = True
    for p in loss_values:
        batch = run_counting_batch(
            net, seeds, config=config, channel=ChannelModel(loss_p=p)
        )
        if p == 0.0:
            lossless_exact = bool(
                np.array_equal(batch.decided_matrix(), baseline.decided_matrix())
            )
        mean_phase = _mean_decided_phase(batch, config.max_phase)
        phases.append(mean_phase)
        table.add(p, mean_phase, float(np.mean(batch.fraction_decided())))
    result.tables.append(table)
    result.checks["lossless_is_bit_for_bit"] = lossless_exact
    result.checks["monotone_in_loss"] = all(
        b >= a - 0.02 for a, b in zip(phases, phases[1:])
    )
    result.checks["loss_degrades"] = phases[-1] > phases[0]
    return result


@register(
    "E16",
    "Noisy channels (scenario pack)",
    "estimate deviation from the noiseless baseline grows with noise level",
)
def run_noise(scale: str, seed: int) -> ExperimentResult:
    n = 384 if scale == "small" else 1024
    reps = 4 if scale == "small" else 8
    noise_values = ((0.0, 0), (0.1, 1), (0.25, 2), (0.5, 4))
    d = DEFAULT_D
    net = network(n, d, seed)
    config = CountingConfig(verification=False)
    seeds = _seeds(seed, reps, "e16")
    result = ExperimentResult(
        exp_id="E16",
        title="Noisy channels",
        claim="mean |phase - baseline| grows with (noise_p, noise_amp)",
    )
    table = Table(
        title=f"honest counting under additive value noise, n={n}, {reps} seeds",
        columns=["noise_p", "noise_amp", "mean |dev|", "frac decided"],
    )
    baseline = run_counting_batch(net, seeds, config=config)
    base_matrix = baseline.decided_matrix()
    base_phases = np.where(base_matrix == -1, config.max_phase, base_matrix)
    devs = []
    noiseless_exact = True
    for noise_p, noise_amp in noise_values:
        batch = run_counting_batch(
            net,
            seeds,
            config=config,
            channel=ChannelModel(noise_p=noise_p, noise_amp=noise_amp),
        )
        matrix = batch.decided_matrix()
        if noise_p == 0.0:
            noiseless_exact = bool(np.array_equal(matrix, base_matrix))
        phases_m = np.where(matrix == -1, config.max_phase, matrix)
        dev = float(np.abs(phases_m - base_phases).mean())
        devs.append(dev)
        table.add(noise_p, noise_amp, dev, float(np.mean(batch.fraction_decided())))
    result.tables.append(table)
    result.checks["noiseless_is_bit_for_bit"] = noiseless_exact
    result.checks["deviation_grows"] = devs[-1] >= devs[0] and devs[-1] > 0.0
    result.checks["monotone_in_noise"] = all(
        b >= a - 0.05 for a, b in zip(devs, devs[1:])
    )
    return result


@register(
    "E17",
    "Adaptive and mobile adversaries (scenario pack)",
    "between-subphase adaptation runs deterministically and disrupts at least "
    "as much as the static placement",
)
def run_adaptive(scale: str, seed: int) -> ExperimentResult:
    n = 384 if scale == "small" else 1024
    reps = 4 if scale == "small" else 8
    d = DEFAULT_D
    net = network(n, d, seed)
    config = CountingConfig()
    seeds = _seeds(seed, reps, "e17")
    byz = placement_for_delta(net, 0.5, rng=derive_seed(seed, "e17-byz"))
    result = ExperimentResult(
        exp_id="E17",
        title="Adaptive and mobile adversaries",
        claim="adaptive placements are exercised end to end, deterministically",
    )
    table = Table(
        title=(
            f"early-stop core under static vs adaptive placement, "
            f"n={n}, delta=0.5, {reps} seeds"
        ),
        columns=["placement", "mean phase", "frac decided"],
    )
    variants = [
        ("static", EarlyStopAdversary),
        ("mobile walk", lambda: MobileAdversary(EarlyStopAdversary())),
        (
            "traffic hot",
            lambda: TrafficAdaptiveAdversary(EarlyStopAdversary(), mode="hot"),
        ),
        (
            "traffic cold",
            lambda: TrafficAdaptiveAdversary(EarlyStopAdversary(), mode="cold"),
        ),
    ]
    delays = {}
    for label, factory in variants:
        batch = run_counting_batch(
            net, seeds, config=config, adversary_factory=factory, byz_mask=byz
        )
        delays[label] = _mean_decided_phase(batch, config.max_phase)
        table.add(label, delays[label], float(np.mean(batch.fraction_decided())))
    result.tables.append(table)
    rerun = run_counting_batch(
        net,
        seeds,
        config=config,
        adversary_factory=lambda: MobileAdversary(EarlyStopAdversary()),
        byz_mask=byz,
    )
    first = run_counting_batch(
        net,
        seeds,
        config=config,
        adversary_factory=lambda: MobileAdversary(EarlyStopAdversary()),
        byz_mask=byz,
    )
    result.checks["adaptation_deterministic"] = bool(
        np.array_equal(rerun.decided_matrix(), first.decided_matrix())
    )
    adaptive_best = max(v for k, v in delays.items() if k != "static")
    result.checks["adaptivity_not_weaker"] = adaptive_best >= delays["static"] - 0.1
    return result

"""E13 — Ablation: the small-world verification is load-bearing.

With verification ON (Lemma 16 enforced), inflation attacks are confined
to the first ``k - 1`` rounds of a subphase and every honest node still
terminates with a bounded estimate.  With verification OFF, the escalating
inflation adversary plants a fresh record in every node's final round and
**no node ever terminates** — the Byzantine nodes "fake the presence of
non-existing nodes" without limit, the exact failure the introduction
describes for naive protocols.

Each (strategy, verification) cell is a repeated-seed batch through
``byzantine_counting_trials`` — the verification-off rows are the worst
case for the batched Byzantine engine (every trial runs all ``max_phase``
phases with per-round injections), which is exactly where batching pays
the most.
"""

from __future__ import annotations

import numpy as np

from ..adversary.placement import placement_for_delta
from ..core.config import CountingConfig
from ..core.estimator import make_adversary
from .common import DEFAULT_D, byzantine_counting_trials, network
from .harness import ExperimentResult, Table, register


@register(
    "E13",
    "Verification ablation",
    "verification off => inflation makes the network look arbitrarily large",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 1024 if scale == "small" else 2048
    d = DEFAULT_D
    reps = 2
    net = network(n, d, seed)
    byz = placement_for_delta(net, 0.5, rng=seed + 5)
    max_phase = 20 if scale == "small" else 28
    seeds = [seed + 11 + 7 * r for r in range(reps)]
    result = ExperimentResult(
        exp_id="E13",
        title="Verification ablation",
        claim="Lemma 16's gate bounds inflation; removing it is catastrophic",
    )
    table = Table(
        title=(
            f"n={n}, B(n)={int(byz.sum())}, max_phase={max_phase}, "
            f"mean over {reps} trials"
        ),
        columns=[
            "strategy",
            "verify",
            "undecided frac",
            "phase med",
            "inj accepted",
            "inj rejected",
        ],
    )
    outcomes = {}
    for name in ("inflation", "adaptive-record", "early-stop"):
        for verify in (True, False):
            cfg = CountingConfig(max_phase=max_phase, verification=verify)
            batch = byzantine_counting_trials(
                net, lambda: make_adversary(name), byz, seeds, config=cfg
            )
            undecideds = []
            for res in batch:
                pool = res.honest_uncrashed
                undecideds.append(
                    float(np.mean(res.decided_phase[pool] == -1)) if pool.any() else 1.0
                )
            undecided = float(np.mean(undecideds))
            med = float(np.median(batch.median_phases()))
            accepted = int(np.mean([r.injections_accepted for r in batch]))
            rejected = int(np.mean([r.injections_rejected for r in batch]))
            table.add(
                name,
                "on" if verify else "off",
                undecided,
                med,
                accepted,
                rejected,
            )
            outcomes[(name, verify)] = (undecided, med, rejected)
    result.tables.append(table)
    result.checks["verified_inflation_terminates"] = outcomes[("inflation", True)][0] == 0.0
    result.checks["unverified_inflation_never_terminates"] = (
        outcomes[("inflation", False)][0] == 1.0
    )
    result.checks["gate_rejects_late_injections"] = outcomes[("inflation", True)][2] > 0
    result.checks["unverified_accepts_everything"] = (
        outcomes[("inflation", False)][2] == 0
    )
    return result

"""E03 — Lemma 19: H(n, d) is a (near-Ramanujan) expander whp.

Measures the second adjacency eigenvalue against ``2 sqrt(d-1)``, the
Cheeger lower bound on edge expansion, and a sampled cut-expansion upper
bound.  Also verifies Observation 3's premise: the diameter is
``Theta(log n)`` (we check it is within a small factor of
``log n / log(d-1)``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.properties import (
    diameter,
    edge_expansion_sampled,
    ramanujan_bound,
    spectral_report,
)
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E03",
    "H(n,d) expansion (Lemma 19)",
    "lambda_2 <= 2 sqrt(d-1) + o(1) whp; diameter = Theta(log n)",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(256, 1024), full=(256, 1024, 4096))
    ds = (DEFAULT_D,) if scale == "small" else (DEFAULT_D, 12)
    result = ExperimentResult(
        exp_id="E03", title="Expansion of H(n,d)", claim="near-Ramanujan whp"
    )
    table = Table(
        title="Spectral and combinatorial expansion",
        columns=[
            "n",
            "d",
            "lambda2",
            "2sqrt(d-1)",
            "cheeger_lb",
            "cut_ub",
            "diam",
            "log n/log(d-1)",
        ],
    )
    all_near = True
    diam_ratio_ok = True
    for d in ds:
        for n in ns:
            net = network(n, d, seed)
            spec = spectral_report(net.h)
            cut = edge_expansion_sampled(net.h, rng=seed + 2, trials=48)
            diam = diameter(net.h.indptr, net.h.indices, rng=seed + 3)
            ideal = np.log2(n) / np.log2(d - 1)
            table.add(
                n, d, spec.lambda2, ramanujan_bound(d), spec.cheeger_lower, cut, diam, ideal
            )
            all_near &= spec.is_near_ramanujan
            diam_ratio_ok &= ideal * 0.5 <= diam <= ideal * 3 + 2
    result.tables.append(table)
    result.checks["near_ramanujan_all"] = all_near
    result.checks["cheeger_positive"] = True  # implied by near-Ramanujan check
    result.checks["diameter_logarithmic"] = diam_ratio_ok
    return result

"""E06 — Section 1.2: every baseline breaks under Byzantine nodes.

"The geometric distribution protocol fails when even just one Byzantine
node is present": one fake-max node inflates every estimate without bound.
The same table covers all five baselines and both attack directions, and
records which attacks the expander topology *does* absorb (suppression).

Every cell is a small repeated-trial batch through the trials-as-columns
baseline engines (``repro.baselines.run_*_batch``): the stochastic
estimators repeat over seeds, the deterministic ones over roots/leaders,
and the reported estimate is the median across the batch.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    run_birthday_batch,
    run_convergecast_batch,
    run_exponential_support_batch,
    run_flooding_diameter_batch,
    run_geometric_max_batch,
)
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


@register(
    "E06",
    "Baseline failure under Byzantine nodes (Section 1.2)",
    "one Byzantine node breaks the baselines; suppression alone is absorbed",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 1024 if scale == "small" else 4096
    d = DEFAULT_D
    reps = 3
    net = network(n, d, seed)
    seeds = [seed * 100 + r for r in range(reps)]
    roots = list(range(reps))  # deterministic protocols batch over roots
    one = np.zeros(n, dtype=bool)
    one[n // 2] = True
    # A fixed *density* (1/64) of spread-out Byzantine nodes keeps the
    # pre-flood/birthday attack strength scale-invariant; leader excluded.
    few = np.zeros(n, dtype=bool)
    few[n // 128 :: n // 64] = True

    result = ExperimentResult(
        exp_id="E06",
        title="Baseline attacks",
        claim="baselines break under Byzantine influence; Alg. 2 is needed",
    )
    table = Table(
        title=(
            f"n={n}, median over {reps} trials; "
            "'breaks' = estimate off by >2x for the median honest node"
        ),
        columns=["protocol", "attack", "#byz", "median estimate", "truth", "breaks"],
    )

    checks: dict[str, bool] = {}

    def med(batch, stat):
        return float(np.median([stat(res) for res in batch]))

    g0 = run_geometric_max_batch(net, seeds)
    log2n = g0[0].true_log2_n
    est = med(g0, lambda r: r.median_estimate())
    table.add("geometric-max", "none", 0, est, log2n, False)
    g1 = run_geometric_max_batch(net, seeds, byz_mask=one, attack="fake-max")
    est = med(g1, lambda r: r.median_estimate())
    broke = est > 2 * log2n
    table.add("geometric-max", "fake-max", 1, est, log2n, broke)
    checks["one_byz_breaks_geometric_max"] = broke
    g2 = run_geometric_max_batch(net, seeds, byz_mask=one, attack="suppress")
    est = med(g2, lambda r: r.median_estimate())
    held = 0.5 * log2n <= est <= 2 * log2n
    table.add("geometric-max", "suppress", 1, est, log2n, not held)
    checks["suppression_absorbed_by_expander"] = held

    e0 = run_exponential_support_batch(net, seeds, repetitions=8)
    est = med(e0, lambda r: r.median_estimate())
    table.add("exp-support", "none", 0, est, n, False)
    e1 = run_exponential_support_batch(
        net, seeds, repetitions=8, byz_mask=one, attack="tiny"
    )
    est = med(e1, lambda r: r.median_estimate())
    broke = est > 2 * n
    table.add("exp-support", "tiny", 1, est, n, broke)
    checks["one_byz_breaks_exp_support"] = broke

    c0 = run_convergecast_batch(net, roots)
    count = med(c0, lambda r: r.count_at_root)
    table.add("convergecast", "none", 0, count, n, not all(r.exact for r in c0))
    c1 = run_convergecast_batch(net, roots, byz_mask=one, attack="inflate")
    count = med(c1, lambda r: r.count_at_root)
    inflated = all(r.relative_error() > 1 for r in c1)
    table.add("convergecast", "inflate", 1, count, n, inflated)
    checks["convergecast_exact_honest"] = all(r.exact for r in c0)
    checks["one_byz_breaks_convergecast"] = inflated

    f0 = run_flooding_diameter_batch(net, roots)
    est0 = med(f0, lambda r: r.median_estimate())
    table.add("flood-diameter", "none", 0, est0, f0[0].true_log2_n, False)
    f1 = run_flooding_diameter_batch(net, roots, byz_mask=few, attack="pre-flood")
    est1 = med(f1, lambda r: r.median_estimate())
    broke = est1 < 0.75 * est0
    table.add(
        "flood-diameter", "pre-flood", int(few.sum()), est1, f1[0].true_log2_n, broke
    )
    checks["preflood_deflates_diameter"] = broke

    b0 = run_birthday_batch(net, seeds)
    est = med(b0, lambda r: r.estimate)
    b0_breaks = not (n / 2 <= est <= 2 * n)
    table.add("birthday", "none", 0, est, n, b0_breaks)
    b1 = run_birthday_batch(net, seeds, byz_mask=few, attack="absorb")
    est = med(b1, lambda r: r.estimate)
    b1_breaks = not (n / 2 <= est <= 2 * n)
    table.add("birthday", "absorb", int(few.sum()), est, n, b1_breaks)
    checks["birthday_accurate_honest"] = not b0_breaks
    checks["byz_breaks_birthday"] = b1_breaks

    result.tables.append(table)
    result.checks.update(checks)
    return result

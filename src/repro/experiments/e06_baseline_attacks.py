"""E06 — Section 1.2: every baseline breaks under Byzantine nodes.

"The geometric distribution protocol fails when even just one Byzantine
node is present": one fake-max node inflates every estimate without bound.
The same table covers all five baselines and both attack directions, and
records which attacks the expander topology *does* absorb (suppression).
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    run_birthday,
    run_convergecast,
    run_exponential_support,
    run_flooding_diameter,
    run_geometric_max,
)
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


@register(
    "E06",
    "Baseline failure under Byzantine nodes (Section 1.2)",
    "one Byzantine node breaks the baselines; suppression alone is absorbed",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 1024 if scale == "small" else 4096
    d = DEFAULT_D
    net = network(n, d, seed)
    one = np.zeros(n, dtype=bool)
    one[n // 2] = True
    # A fixed *density* (1/64) of spread-out Byzantine nodes keeps the
    # pre-flood/birthday attack strength scale-invariant; leader excluded.
    few = np.zeros(n, dtype=bool)
    few[n // 128 :: n // 64] = True

    result = ExperimentResult(
        exp_id="E06",
        title="Baseline attacks",
        claim="baselines break under Byzantine influence; Alg. 2 is needed",
    )
    table = Table(
        title=f"n={n}; 'breaks' = estimate off by >2x for the median honest node",
        columns=["protocol", "attack", "#byz", "median estimate", "truth", "breaks"],
    )

    checks: dict[str, bool] = {}

    g0 = run_geometric_max(net, seed=seed)
    table.add("geometric-max", "none", 0, g0.median_estimate(), g0.true_log2_n, False)
    g1 = run_geometric_max(net, seed=seed, byz_mask=one, attack="fake-max")
    broke = g1.median_estimate() > 2 * g1.true_log2_n
    table.add("geometric-max", "fake-max", 1, g1.median_estimate(), g1.true_log2_n, broke)
    checks["one_byz_breaks_geometric_max"] = broke
    g2 = run_geometric_max(net, seed=seed, byz_mask=one, attack="suppress")
    held = 0.5 * g2.true_log2_n <= g2.median_estimate() <= 2 * g2.true_log2_n
    table.add("geometric-max", "suppress", 1, g2.median_estimate(), g2.true_log2_n, not held)
    checks["suppression_absorbed_by_expander"] = held

    e0 = run_exponential_support(net, seed=seed, repetitions=8)
    table.add("exp-support", "none", 0, e0.median_estimate(), n, False)
    e1 = run_exponential_support(net, seed=seed, repetitions=8, byz_mask=one, attack="tiny")
    broke = e1.median_estimate() > 2 * n
    table.add("exp-support", "tiny", 1, e1.median_estimate(), n, broke)
    checks["one_byz_breaks_exp_support"] = broke

    c0 = run_convergecast(net)
    table.add("convergecast", "none", 0, c0.count_at_root, n, not c0.exact)
    c1 = run_convergecast(net, byz_mask=one, attack="inflate")
    table.add("convergecast", "inflate", 1, c1.count_at_root, n, c1.relative_error() > 1)
    checks["convergecast_exact_honest"] = c0.exact
    checks["one_byz_breaks_convergecast"] = c1.relative_error() > 1

    f0 = run_flooding_diameter(net)
    table.add("flood-diameter", "none", 0, f0.median_estimate(), f0.true_log2_n, False)
    f1 = run_flooding_diameter(net, byz_mask=few, attack="pre-flood")
    broke = f1.median_estimate() < 0.75 * f0.median_estimate()
    table.add("flood-diameter", "pre-flood", int(few.sum()), f1.median_estimate(), f1.true_log2_n, broke)
    checks["preflood_deflates_diameter"] = broke

    b0 = run_birthday(net, seed=seed)
    b0_breaks = not (n / 2 <= b0.estimate <= 2 * n)
    table.add("birthday", "none", 0, b0.estimate, n, b0_breaks)
    b1 = run_birthday(net, seed=seed, byz_mask=few, attack="absorb")
    b1_breaks = not (n / 2 <= b1.estimate <= 2 * n)
    table.add("birthday", "absorb", int(few.sum()), b1.estimate, n, b1_breaks)
    checks["birthday_accurate_honest"] = not b0_breaks
    checks["byz_breaks_birthday"] = b1_breaks

    result.tables.append(table)
    result.checks.update(checks)
    return result

"""E14 — Design-choice ablations the analysis calls out.

Three sweeps:

* **delta (Byzantine budget)**: more Byzantine nodes (smaller delta) push
  more honest nodes below the band under the early-stop attack; the paper's
  ``delta > 3/d`` regime keeps the failure fraction small.
* **placement (open problem)**: the paper assumes random placement and
  explicitly leaves adversarial placement open; clustered placement
  concentrates the damage (fewer victims, each hit harder) — we record
  both so the contrast is visible.
* **eps (error parameter)**: smaller eps buys more subphase repetitions
  (cost, rounds) for fewer premature decisions (accuracy) — the knob's
  advertised trade-off (footnote 3).

Each sweep runs fused (:func:`repro.core.sweep.run_sweep`): the delta and
placement ablations batch their placements as per-trial Byzantine mask
columns, the eps ablation batches its configs — all bit-for-bit equal to
the scalar per-cell runs this experiment used to loop over.
"""

from __future__ import annotations

from ..adversary.placement import clustered_placement, placement_for_delta
from ..analysis.bounds import byzantine_budget
from ..core.config import CountingConfig
from ..core.estimator import practical_band
from ..core.sweep import run_sweep
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


@register(
    "E14",
    "Ablations: delta, placement, eps",
    "robustness scales with delta; random placement assumption matters; eps trades rounds for accuracy",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 1024 if scale == "small" else 2048
    d = DEFAULT_D
    net = network(n, d, seed)
    band = practical_band(d)
    cfg = CountingConfig(max_phase=32)
    result = ExperimentResult(
        exp_id="E14",
        title="Design ablations",
        claim="see module docstring",
    )

    # --- delta sweep under early-stop (placements as batch columns) ----
    deltas = (0.4, 0.55, 0.7) if scale == "small" else (0.4, 0.5, 0.6, 0.8)
    t1 = Table(
        title=f"delta sweep (early-stop adversary, n={n})",
        columns=["delta", "B(n)", "in-band frac", "phase med"],
    )
    delta_placements = [
        placement_for_delta(net, delta, rng=seed + 2) for delta in deltas
    ]
    delta_sweep = run_sweep(
        net,
        seeds=[seed + 4],
        configs=cfg,
        placements=delta_placements,
        strategies="early-stop",
    )
    fracs = []
    for p_idx, delta in enumerate(deltas):
        res = delta_sweep.cell(placement=p_idx)
        frac = res.fraction_in_band(*band)
        _, med, _ = res.decision_quantiles()
        t1.add(delta, byzantine_budget(n, delta), frac, med)
        fracs.append(frac)
    result.tables.append(t1)
    result.checks["fewer_byz_more_accuracy"] = fracs[-1] >= fracs[0] - 0.02

    # --- placement ablation (random vs clustered, one fused batch) -----
    delta = 0.5
    budget = byzantine_budget(n, delta)
    t2 = Table(
        title=f"placement ablation (early-stop, delta={delta}, B(n)={budget})",
        columns=["placement", "in-band frac", "phase q10", "phase med"],
    )
    ablation_placements = {
        "random": placement_for_delta(net, delta, rng=seed + 6),
        "clustered": clustered_placement(net, budget, rng=seed + 6),
    }
    placement_sweep = run_sweep(
        net,
        seeds=[seed + 8],
        configs=cfg,
        placements=list(ablation_placements.values()),
        strategies="early-stop",
    )
    stats = {}
    for p_idx, label in enumerate(ablation_placements):
        res = placement_sweep.cell(placement=p_idx)
        q10, med, _ = res.decision_quantiles()
        frac = res.fraction_in_band(*band)
        t2.add(label, frac, q10, med)
        stats[label] = (frac, med)
    result.tables.append(t2)
    # Clustering concentrates the damage: the median honest node sits
    # farther from the Byzantine blob, so estimates recover toward honest.
    result.checks["clustered_median_not_lower"] = (
        stats["clustered"][1] >= stats["random"][1] - 0.01
    )

    # --- eps sweep (configs as the batch axis) -------------------------
    eps_values = (0.05, 0.2) if scale == "small" else (0.02, 0.05, 0.1, 0.2)
    t3 = Table(
        title=f"eps trade-off (Algorithm 1, n={n})",
        columns=["eps", "rounds", "phase med", "phase q10"],
    )
    # verification=False mirrors run_basic_counting's Algorithm 1 setup.
    eps_sweep = run_sweep(
        net,
        seeds=[seed + 10],
        configs=[cfg.with_(eps=eps, verification=False) for eps in eps_values],
    )
    rounds_by_eps = []
    for c_idx, eps in enumerate(eps_values):
        res = eps_sweep.cell(config=c_idx)
        q10, med, _ = res.decision_quantiles()
        t3.add(eps, res.meter.rounds, med, q10)
        rounds_by_eps.append(res.meter.rounds)
    result.tables.append(t3)
    result.checks["smaller_eps_costs_rounds"] = rounds_by_eps[0] >= rounds_by_eps[-1]
    return result

"""E05 — Section 1.2: the geometric-max baseline is accurate without faults.

Claims measured: (a) whp ``log n / 2 <= X̄ <= 2 log n``; (b) each node
forwards at most ``O(log n)`` distinct values; (c) the estimate stabilizes
within ``D`` rounds.
"""

from __future__ import annotations

import numpy as np

from ..baselines.geometric_max import run_geometric_max_multinet
from ..graphs.properties import diameter
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E05",
    "Geometric-max baseline, honest setting (Section 1.2)",
    "X̄ in [log n/2, 2 log n] whp; <= O(log n) distinct forwards; D rounds",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(256, 1024), full=(256, 1024, 4096, 8192))
    reps = 5 if scale == "small" else 10
    d = DEFAULT_D
    result = ExperimentResult(
        exp_id="E05",
        title="Geometric-max baseline (honest)",
        claim="constant-factor estimate of log n without Byzantine nodes",
    )
    table = Table(
        title=f"median over {reps} repetitions",
        columns=["n", "log2 n", "median X̄", "in-band frac", "max distinct fw", "rounds", "diam"],
    )
    all_in_band = True
    forwards_logarithmic = True
    nets = [network(n, d, seed) for n in ns]
    # The whole (n, repetition) grid floods as ONE padded trials-as-columns
    # batch across sizes (identical per-(n, seed) results to the former
    # per-size batches, bit for bit).
    multi = run_geometric_max_multinet(nets, [seed * 100 + r for r in range(reps)])
    for g, n in enumerate(ns):
        net = nets[g]
        batch = multi[g]
        medians, bands, fws, rounds = [], [], [], []
        for res in batch:
            medians.append(res.median_estimate())
            bands.append(res.fraction_in_band(0.5, 2.0))
            fws.append(res.max_distinct_forwards)
            rounds.append(res.rounds)
        diam = diameter(net.h.indptr, net.h.indices, rng=seed)
        table.add(
            n,
            float(np.log2(n)),
            float(np.median(medians)),
            float(np.mean(bands)),
            int(np.max(fws)),
            float(np.median(rounds)),
            diam,
        )
        all_in_band &= np.mean(bands) >= 0.8
        forwards_logarithmic &= np.max(fws) <= 4 * np.log2(n)
    result.tables.append(table)
    result.checks["estimates_in_band"] = bool(all_in_band)
    result.checks["forwards_O_log_n"] = bool(forwards_logarithmic)
    return result

"""E11 — Lemma 14: the Core survives crash-inducing topology lies.

A lying Byzantine node crashes (roughly) its honest ``G``-neighbors within
``H``-distance ``k - 1`` — a **constant-size** footprint ``~|B_H(b, k-1)|``.
Lemma 14 then gives ``|Core| >= n - o(n)`` and constant expansion.  We
measure the per-liar footprint (should not grow with ``n``), the Core
fraction, and the Core's sampled edge expansion.
"""

from __future__ import annotations


from ..adversary.placement import random_placement
from ..adversary.strategies import TopologyLiarAdversary
from ..core.config import CountingConfig
from ..core.coreset import compute_core
from ..core.neighborhood import crash_phase
from ..graphs.classification import full_tree_ball_size
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E11",
    "Core resilience (Lemma 14)",
    "Core >= n - o(n) with constant edge expansion after crash attacks",
)
def run(scale: str, seed: int) -> ExperimentResult:
    d = DEFAULT_D
    ns = ns_for(scale, small=(1024, 2048), full=(1024, 2048, 4096))
    liar_counts = (1, 2) if scale == "small" else (1, 2, 4)
    result = ExperimentResult(
        exp_id="E11",
        title="Core resilience",
        claim="per-liar crash footprint is O(1); Core stays giant and expanding",
    )
    table = Table(
        title="Topology-liar crash footprint and Core",
        columns=[
            "n",
            "liars",
            "crashed",
            "crashed/liar",
            "ball bound",
            "core frac",
            "core expansion",
        ],
    )
    footprints = []
    core_fracs = []
    expansions = []
    for n in ns:
        net = network(n, d, seed)
        # The crash footprint: G-neighbors within H-distance k-1 detect the
        # phantom directly, and the asymmetry rule (liar vs suppressed
        # child) extends detection up to the full k-ball — hence the bound.
        ball_bound = full_tree_ball_size(d, net.k)
        for liars in liar_counts:
            byz = random_placement(n, liars, rng=seed * 31 + liars)
            adv = TopologyLiarAdversary()
            adv.bind(net, byz, None, CountingConfig())
            crashed = crash_phase(net, byz, adv.topology_claims())
            report = compute_core(net.h, byz, crashed, rng=seed)
            per_liar = int(crashed.sum()) / liars
            table.add(
                n,
                liars,
                int(crashed.sum()),
                per_liar,
                ball_bound,
                report.fraction,
                report.expansion_lower_estimate,
            )
            footprints.append((n, per_liar, ball_bound))
            if liars == 1:
                core_fracs.append(report.fraction)
            expansions.append(report.expansion_lower_estimate)
    result.tables.append(table)
    result.checks["footprint_constant"] = all(
        fp <= bound for _, fp, bound in footprints
    )
    # Lemma 14's n - o(n) is asymptotic; at lab scale we gate on the
    # single-liar Core staying giant (the multi-liar rows show the trend).
    result.checks["core_giant"] = min(core_fracs) >= 0.8
    result.checks["core_expanding"] = min(expansions) > 0.0
    # Footprint should not grow with n (constant-size balls).
    small_n_fp = max(fp for n_, fp, _ in footprints if n_ == ns[0])
    large_n_fp = max(fp for n_, fp, _ in footprints if n_ == ns[-1])
    result.checks["footprint_independent_of_n"] = large_n_fp <= 2 * small_n_fp + 4
    return result

"""E11 — Lemma 14: the Core survives crash-inducing topology lies.

A lying Byzantine node crashes (roughly) its honest ``G``-neighbors within
``H``-distance ``k - 1`` — a **constant-size** footprint ``~|B_H(b, k-1)|``.
Lemma 14 then gives ``|Core| >= n - o(n)`` and constant expansion.  We
measure the per-liar footprint (should not grow with ``n``), the Core
fraction, the Core's sampled edge expansion, and — new with the fused
sweep — the in-band accuracy of the surviving honest nodes.

Per network, the liar-count axis runs as one fused sweep
(:func:`repro.core.sweep.run_sweep`) with the topology-liar strategy and
one placement column per liar count: the engine's pre-phase produces the
crash masks (identical to a direct :func:`~repro.core.neighborhood.crash_phase`
call) and the counting phases tell us whether the uncrashed Core still
estimates ``log n`` accurately.
"""

from __future__ import annotations

from ..adversary.placement import random_placement
from ..core.config import CountingConfig
from ..core.coreset import compute_core
from ..core.estimator import practical_band
from ..core.sweep import run_sweep
from ..graphs.classification import full_tree_ball_size
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E11",
    "Core resilience (Lemma 14)",
    "Core >= n - o(n) with constant edge expansion after crash attacks",
)
def run(scale: str, seed: int) -> ExperimentResult:
    d = DEFAULT_D
    ns = ns_for(scale, small=(1024, 2048), full=(1024, 2048, 4096))
    liar_counts = (1, 2) if scale == "small" else (1, 2, 4)
    band = practical_band(d)
    result = ExperimentResult(
        exp_id="E11",
        title="Core resilience",
        claim="per-liar crash footprint is O(1); Core stays giant and expanding",
    )
    table = Table(
        title="Topology-liar crash footprint and Core",
        columns=[
            "n",
            "liars",
            "crashed",
            "crashed/liar",
            "ball bound",
            "core frac",
            "core expansion",
            "survivor in-band",
        ],
    )
    footprints = []
    core_fracs = []
    expansions = []
    survivor_fracs = []
    for n in ns:
        net = network(n, d, seed)
        # The crash footprint: G-neighbors within H-distance k-1 detect the
        # phantom directly, and the asymmetry rule (liar vs suppressed
        # child) extends detection up to the full k-ball — hence the bound.
        ball_bound = full_tree_ball_size(d, net.k)
        placements = [
            random_placement(n, liars, rng=seed * 31 + liars)
            for liars in liar_counts
        ]
        sweep = run_sweep(
            net,
            seeds=[seed],
            configs=CountingConfig(),
            placements=placements,
            strategies="topology-liar",
        )
        for p_idx, liars in enumerate(liar_counts):
            res = sweep.cell(placement=p_idx)
            crashed = res.crashed
            report = compute_core(net.h, placements[p_idx], crashed, rng=seed)
            per_liar = int(crashed.sum()) / liars
            survivor_frac = res.fraction_in_band(*band, of="honest_uncrashed")
            table.add(
                n,
                liars,
                int(crashed.sum()),
                per_liar,
                ball_bound,
                report.fraction,
                report.expansion_lower_estimate,
                survivor_frac,
            )
            footprints.append((n, per_liar, ball_bound))
            if liars == 1:
                core_fracs.append(report.fraction)
            expansions.append(report.expansion_lower_estimate)
            survivor_fracs.append(survivor_frac)
    result.tables.append(table)
    result.checks["footprint_constant"] = all(
        fp <= bound for _, fp, bound in footprints
    )
    # Lemma 14's n - o(n) is asymptotic; at lab scale we gate on the
    # single-liar Core staying giant (the multi-liar rows show the trend).
    result.checks["core_giant"] = min(core_fracs) >= 0.8
    result.checks["core_expanding"] = min(expansions) > 0.0
    # Footprint should not grow with n (constant-size balls).
    small_n_fp = max(fp for n_, fp, _ in footprints if n_ == ns[0])
    large_n_fp = max(fp for n_, fp, _ in footprints if n_ == ns[-1])
    result.checks["footprint_independent_of_n"] = large_n_fp <= 2 * small_n_fp + 4
    # The survivors (Core plus stragglers) still estimate log n: crash
    # attacks trade estimates for crashes, they do not corrupt the rest.
    result.checks["survivors_stay_accurate"] = min(survivor_fracs) >= 0.8
    return result

"""CLI experiment runner: ``python -m repro.experiments.run [--exp E07] ...``."""

from __future__ import annotations

import argparse
import sys
import time

from .harness import all_experiment_ids, run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run",
        description="Reproduce the paper's claims (E01-E14); see DESIGN.md.",
    )
    parser.add_argument(
        "--exp",
        action="append",
        default=None,
        help="experiment id (repeatable); default: all",
    )
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard experiments over N worker processes (default: in-process)",
    )
    args = parser.parse_args(argv)

    ids = args.exp or all_experiment_ids()
    failures = []
    start = time.perf_counter()
    if args.jobs is None or args.jobs <= 1:
        # Serial: stream each experiment's tables as it completes (a
        # full-scale sweep runs for minutes; don't buffer it all).
        for exp_id in ids:
            exp_start = time.perf_counter()
            result = run_experiments([exp_id], scale=args.scale, seed=args.seed)[0]
            print(result.render())
            print(f"[{exp_id} finished in {time.perf_counter() - exp_start:.1f}s]")
            print()
            if not result.passed:
                failures.append(exp_id)
    else:
        results = run_experiments(
            ids, scale=args.scale, seed=args.seed, jobs=args.jobs
        )
        for result in results:
            print(result.render())
            print()
            if not result.passed:
                failures.append(result.exp_id)
        print(
            f"[{len(ids)} experiments finished in "
            f"{time.perf_counter() - start:.1f}s across {args.jobs} workers]"
        )
    if failures:
        print(f"FAILED shape checks: {failures}", file=sys.stderr)
        return 1
    print(f"All {len(ids)} experiments passed their shape checks.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""CLI experiment runner: ``python -m repro.experiments.run [--exp E07] ...``."""

from __future__ import annotations

import argparse
import sys
import time

from .harness import all_experiment_ids, run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run",
        description="Reproduce the paper's claims (E01-E14); see DESIGN.md.",
    )
    parser.add_argument(
        "--exp",
        action="append",
        default=None,
        help="experiment id (repeatable); default: all",
    )
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard experiments over N worker processes (default: in-process)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a faulted experiment shard up to N times (default: 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard timeout for sharded runs; hung workers are "
        "reaped and the shard retried (default: no timeout)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed experiment shards to PATH; a killed run "
        "re-invoked with the same arguments resumes from it",
    )
    args = parser.parse_args(argv)

    from repro.exec import ExecutionReport, RetryPolicy

    policy = None
    if args.shard_retries is not None or args.shard_timeout is not None:
        kwargs = {}
        if args.shard_retries is not None:
            kwargs["max_retries"] = args.shard_retries
        if args.shard_timeout is not None:
            kwargs["timeout"] = args.shard_timeout
        policy = RetryPolicy(**kwargs)
    report = ExecutionReport()

    ids = args.exp or all_experiment_ids()
    failures = []
    start = time.perf_counter()
    if (args.jobs is None or args.jobs <= 1) and args.checkpoint is None:
        # Serial: stream each experiment's tables as it completes (a
        # full-scale sweep runs for minutes; don't buffer it all).
        # (With --checkpoint the whole id list must be one journaled
        # map, so it takes the buffered branch below even when serial.)
        for exp_id in ids:
            exp_start = time.perf_counter()
            result = run_experiments(
                [exp_id],
                scale=args.scale,
                seed=args.seed,
                policy=policy,
                report=report,
            )[0]
            print(result.render())
            print(f"[{exp_id} finished in {time.perf_counter() - exp_start:.1f}s]")
            print()
            if not result.passed:
                failures.append(exp_id)
    else:
        results = run_experiments(
            ids,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            policy=policy,
            report=report,
            checkpoint=args.checkpoint,
        )
        for result in results:
            print(result.render())
            print()
            if not result.passed:
                failures.append(result.exp_id)
        workers = args.jobs if args.jobs and args.jobs > 1 else 1
        print(
            f"[{len(ids)} experiments finished in "
            f"{time.perf_counter() - start:.1f}s across {workers} worker(s)]"
        )
    if report.maps:
        print(f"[dispatch: {report.summary()}]")
    if failures:
        print(f"FAILED shape checks: {failures}", file=sys.stderr)
        return 1
    print(f"All {len(ids)} experiments passed their shape checks.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""CLI experiment runner: ``python -m repro.experiments.run [--exp E07] ...``."""

from __future__ import annotations

import argparse
import sys
import time

from .harness import all_experiment_ids, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run",
        description="Reproduce the paper's claims (E01-E14); see DESIGN.md.",
    )
    parser.add_argument(
        "--exp",
        action="append",
        default=None,
        help="experiment id (repeatable); default: all",
    )
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    ids = args.exp or all_experiment_ids()
    failures = []
    for exp_id in ids:
        start = time.perf_counter()
        result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{exp_id} finished in {elapsed:.1f}s]")
        print()
        if not result.passed:
            failures.append(exp_id)
    if failures:
        print(f"FAILED shape checks: {failures}", file=sys.stderr)
        return 1
    print(f"All {len(ids)} experiments passed their shape checks.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

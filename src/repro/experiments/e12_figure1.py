"""E12 — Figure 1 / Lemma 15: chain fabrication is always detected.

Figure 1's attack: a Byzantine node ``b3`` tries to convince victim ``v``
of a fake child ``b2`` in a ``k``-chain, which forces it to suppress a
real child ``u``; ``u``'s direct ``L`` edge to ``v`` lets it testify, and
``v`` crashes rather than accept the phantom.  We mount the exact attack
via claim manipulation and measure the detection rate over victims and
seeds (Lemma 15: it is 1).  A control group with truthful claims checks
the reconstruction never false-positives.

A second, protocol-level section mounts the same move (the
``topology-liar`` strategy suppresses a real child for a phantom) inside
full Algorithm 2 runs **across network sizes**, routed through the fused
multi-network sweep (:func:`repro.core.sweep.run_multi_sweep`; the
rectangular grid auto-selects the union-stack layout): at every
size the engine's pre-phase crash mask must equal a direct
:func:`~repro.core.neighborhood.crash_phase` computation under the liar's
claims, the crash footprint must stay inside the constant ``k``-ball
bound, and the surviving honest nodes must still complete the counting.
"""

from __future__ import annotations

import numpy as np

from ..adversary.placement import random_placement
from ..adversary.strategies import TopologyLiarAdversary
from ..core.config import CountingConfig
from ..core.neighborhood import (
    crash_phase,
    find_conflicts,
    reconstruct_h_ball,
    truthful_claims,
)
from ..core.sweep import run_multi_sweep
from ..graphs.balls import bfs_distances
from ..graphs.classification import full_tree_ball_size
from ..sim.rng import make_rng
from .common import DEFAULT_D, network
from .harness import ExperimentResult, Table, register


def mount_chain_attack(
    net, liar: int, phantom: int
) -> tuple[dict[int, tuple[int, ...]], int]:
    """The liar's claim: replace one real child with phantom ``b2``.

    Returns the claim and the suppressed child's id.  The suppressed child
    is the one node that *cannot* detect the lie itself (it learns its
    ``H``-ports only from others' claims, so the liar consistently appears
    at level ``k`` in its reconstruction) — its role in Figure 1 is to
    testify, which every cross-examining third party uses to crash.
    """
    real = sorted(int(u) for u in net.h.neighbors(liar))
    return {liar: tuple(real[1:] + [phantom])}, real[0]


@register(
    "E12",
    "Chain-insertion attack detection (Figure 1 / Lemma 15)",
    "every honest node that can cross-examine detects the fabricated chain",
)
def run(scale: str, seed: int) -> ExperimentResult:
    n = 512 if scale == "small" else 1024
    trials = 8 if scale == "small" else 24
    d = DEFAULT_D
    net = network(n, d, seed)
    truth = truthful_claims(net)
    result = ExperimentResult(
        exp_id="E12",
        title="Figure 1 chain attack",
        claim="detection rate 1 among cross-examining neighbors; 0 false positives",
    )
    table = Table(
        title=f"n={n}, {trials} liar placements",
        columns=["liar", "victims tested", "detected", "false positives (control)"],
    )
    rng = make_rng(seed)
    total_victims = total_detected = total_fp = 0
    for _ in range(trials):
        liar = int(rng.integers(n))
        lie, suppressed_child = mount_chain_attack(net, liar, phantom=n + 1)
        # Victims: honest G-neighbors of the liar within H-distance k-1
        # (those whose reconstruction radius covers the phantom position),
        # excluding the suppressed child, whose view stays consistent.
        dist = bfs_distances(net.h.indptr, net.h.indices, liar, max_depth=net.k - 1)
        victims = [
            int(v)
            for v in np.flatnonzero(dist >= 1)
            if dist[v] <= net.k - 1 and int(v) != suppressed_child
        ][:16]
        detected = 0
        false_pos = 0
        for v in victims:
            ports = net.g_neighbors(v)
            claims = {int(u): truth[int(u)] for u in ports}
            claims.update({k_: v_ for k_, v_ in lie.items() if k_ in set(map(int, ports))})
            if liar in set(map(int, ports)):
                claims[liar] = lie[liar]
            if find_conflicts(v, ports, claims, net.k, net.d):
                detected += 1
            honest_claims = {int(u): truth[int(u)] for u in ports}
            if find_conflicts(v, ports, honest_claims, net.k, net.d):
                false_pos += 1
        table.add(liar, len(victims), detected, false_pos)
        total_victims += len(victims)
        total_detected += detected
        total_fp += false_pos
    result.tables.append(table)
    result.checks["all_attacks_detected"] = total_detected == total_victims
    result.checks["no_false_positives"] = total_fp == 0
    # Reconstruction sanity: on truthful claims it recovers true distances.
    v0 = 0
    ports = net.g_neighbors(v0)
    recon = reconstruct_h_ball(v0, ports, {int(u): truth[int(u)] for u in ports}, net.k, net.d)
    true_d = bfs_distances(net.h.indptr, net.h.indices, v0, max_depth=net.k)
    result.checks["reconstruction_faithful"] = all(
        true_d[node] == dist for node, dist in recon.items()
    )

    # ------------------------------------------------------------------
    # Protocol-level cross-size detection: the same fabricated chain,
    # mounted by the topology-liar strategy inside full Algorithm 2 runs,
    # over the size axis as one fused (union-stack) multi-network sweep.
    # ------------------------------------------------------------------
    proto_ns = (256, 512) if scale == "small" else (512, 1024, 2048)
    liar_axis = 2  # placements per network (distinct liar draws)
    proto_nets = [network(pn, d, seed) for pn in proto_ns]
    placements_for = lambda net: [
        random_placement(net.n, 1, rng=seed * 17 + net.n + i)
        for i in range(liar_axis)
    ]
    sweep = run_multi_sweep(
        proto_nets,
        seeds=[seed],
        configs=CountingConfig(max_phase=24),
        placements=placements_for,
        strategies="topology-liar",
    )
    proto_table = Table(
        title=f"Algorithm 2 under the chain lie, fused across n={list(proto_ns)}",
        columns=["n", "liar", "crashed", "ball bound", "crash == Lemma 3", "survivors decided"],
    )
    crashes_match = True
    footprint_bounded = True
    survivors_decide = True
    for g, net in enumerate(proto_nets):
        ball_bound = full_tree_ball_size(d, net.k)
        for p, byz in enumerate(placements_for(net)):
            res = sweep.cell(network=g, placement=p)
            adv = TopologyLiarAdversary()
            adv.bind(net, byz, None, CountingConfig())
            expected = crash_phase(net, byz, adv.topology_claims())
            match = bool(np.array_equal(res.crashed, expected))
            decided = bool(res.fraction_decided() == 1.0)
            crashes_match &= match
            footprint_bounded &= int(res.crashed.sum()) <= ball_bound
            survivors_decide &= decided
            proto_table.add(
                net.n,
                int(np.flatnonzero(byz)[0]),
                int(res.crashed.sum()),
                ball_bound,
                match,
                decided,
            )
    result.tables.append(proto_table)
    result.checks["protocol_crashes_match_lemma3"] = crashes_match
    result.checks["protocol_footprint_bounded"] = footprint_bounded
    result.checks["protocol_survivors_decide"] = survivors_decide
    result.notes = f"{total_detected}/{total_victims} detections, {total_fp} false positives"
    return result

"""Shared helpers for experiment modules (network cache, scale presets)."""

from __future__ import annotations

from functools import lru_cache


from ..graphs.smallworld import SmallWorldNetwork, build_small_world
from ..sim.rng import derive_seed

__all__ = ["network", "ns_for", "DEFAULT_D"]

DEFAULT_D = 8


@lru_cache(maxsize=32)
def network(n: int, d: int = DEFAULT_D, seed: int = 0, k: int | None = None) -> SmallWorldNetwork:
    """Cached network sample (experiments in one process share graphs)."""
    return build_small_world(n, d, seed=derive_seed(seed, "net", n, d, k or 0), k=k)


def ns_for(scale: str, *, small: tuple[int, ...], full: tuple[int, ...]) -> tuple[int, ...]:
    return small if scale == "small" else full

"""Shared helpers for experiment modules.

Three layers of shared machinery:

* **network cache** — experiments in one process share sampled graphs
  (:func:`network`);
* **batched trial runners** — repeated-seed sweeps route through the
  trial-batched engine (:func:`repro.core.batch.run_counting_batch`), which
  is bit-for-bit equivalent to per-seed sequential runs but several times
  faster (see ``benchmarks/bench_batch.py``);
* **process sharding** — :func:`parallel_map` optionally fans a multi-config
  sweep out over a ``ProcessPoolExecutor`` (each worker re-imports the
  library, so mapped functions must be module-level picklables).  Sweeps
  over one network pass it via ``network=``: the graph is placed in shared
  memory once (:class:`repro.graphs.shared.SharedNetwork`) and workers
  attach zero-copy instead of unpickling a full CSR copy per task.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    import os

    from ..exec import ExecutionReport, RetryPolicy
    from ..sim.channel import ChannelModel

from ..adversary.base import Adversary
from ..core.batch import run_counting_batch
from ..core.config import CountingConfig
from ..core.results import BatchCountingResult
from ..graphs.smallworld import SmallWorldNetwork, build_small_world
from ..sim.rng import derive_seed

__all__ = [
    "network",
    "ns_for",
    "basic_counting_trials",
    "byzantine_counting_trials",
    "parallel_map",
    "DEFAULT_D",
]

DEFAULT_D = 8


@lru_cache(maxsize=32)
def network(n: int, d: int = DEFAULT_D, seed: int = 0, k: int | None = None) -> SmallWorldNetwork:
    """Cached network sample (experiments in one process share graphs).

    ``k`` is the lattice radius override; ``None`` selects the paper's
    default ``ceil(d/3)``.  Explicit ``k`` must be ``>= 1`` (validated here
    rather than deep in ``build_small_world`` so the graph-seed key below
    cannot alias: ``0`` in the key always means "default k", never an
    explicit radius).
    """
    if k is not None and k < 1:
        raise ValueError(f"lattice radius k must be >= 1, got {k}")
    key_k = 0 if k is None else int(k)
    return build_small_world(n, d, seed=derive_seed(seed, "net", n, d, key_k), k=k)


def ns_for(scale: str, *, small: tuple[int, ...], full: tuple[int, ...]) -> tuple[int, ...]:
    return small if scale == "small" else full


# ----------------------------------------------------------------------
# Batched trial sweeps
# ----------------------------------------------------------------------


def basic_counting_trials(
    net: SmallWorldNetwork,
    seeds: Sequence[int],
    config: CountingConfig | None = None,
) -> BatchCountingResult:
    """Algorithm 1 over many seeds at once (batched engine).

    Equivalent to ``[run_basic_counting(net, config, seed=s) for s in
    seeds]``, bit for bit, including meter totals.
    """
    config = (config or CountingConfig()).with_(verification=False)
    return run_counting_batch(net, seeds, config=config)


def byzantine_counting_trials(
    net: SmallWorldNetwork,
    adversary_factory: Callable[[], Adversary],
    byz_mask: np.ndarray | Sequence[np.ndarray],
    seeds: Sequence[int],
    config: CountingConfig | None = None,
) -> BatchCountingResult:
    """Algorithm 2 over many seeds at once (batched engine).

    Byzantine trials run on the trial-batched fast path: built-in
    strategies drive the whole batch through the vectorized adversary
    hooks (:meth:`repro.adversary.base.Adversary.batch_subphase_plan`);
    scalar third-party adversaries are wrapped per trial.  Equivalent to
    per-seed sequential ``run_byzantine_counting`` calls, bit for bit,
    including crash sets, meters, and injection counters.

    ``byz_mask`` is either one shared ``(n,)`` placement or a per-trial
    ``(B, n)`` stack / length-``B`` list of masks — trials sharing a
    placement are sub-grouped by the engine, so varying-placement sweeps
    stay batched.  A mask list whose length disagrees with ``seeds`` is
    rejected with a count-mismatch error (it is never silently shared).
    For full (seed, config, placement, strategy) grids use
    :func:`repro.core.sweep.run_sweep`.
    """
    return run_counting_batch(
        net,
        seeds,
        config=config or CountingConfig(),
        adversary_factory=adversary_factory,
        byz_mask=byz_mask,
    )


# ----------------------------------------------------------------------
# Process sharding
# ----------------------------------------------------------------------


class _SharedNetworkCall:
    """Picklable shim calling ``fn(shared-payload, item)`` inside a worker.

    The payload is the attached network (:class:`SharedNetwork` handles)
    or the attached tuple of networks (:class:`SharedNetworkPack`).  The
    handle re-attaches the shared segment at most once per worker process
    (module-level cache in :mod:`repro.graphs.shared`), so every task
    after the first reuses the already-reconstructed graphs.  Because
    attachment is lazy and per-process, a rebuilt worker pool (crash or
    timeout recovery in :class:`repro.exec.ShardExecutor`) re-attaches
    transparently — recovery stays zero-copy.
    """

    def __init__(self, fn: Callable, shared, multi: bool):
        self.fn = fn
        self.shared = shared
        self.multi = multi

    def __call__(self, item):
        payload = self.shared.nets if self.multi else self.shared.net
        return self.fn(payload, item)


class _PayloadCall:
    """In-process shim calling ``fn(payload, item)`` (serial resilient path)."""

    def __init__(self, fn: Callable, payload):
        self.fn = fn
        self.payload = payload

    def __call__(self, item):
        return self.fn(self.payload, item)


def _fn_label(fn: Callable) -> str:
    """Stable label for a mapped function (checkpoint plan identity)."""
    target = fn
    while hasattr(target, "fn"):  # unwrap chaos/shared/payload shims
        target = target.fn
    module = getattr(target, "__module__", "?")
    qualname = getattr(target, "__qualname__", type(target).__name__)
    return f"{module}.{qualname}"


def _resilient_map(
    call: Callable,
    items: list,
    jobs: int | None,
    policy,
    report,
    checkpoint,
) -> list:
    """Route one map through :class:`repro.exec.ShardExecutor`.

    Wraps ``call`` with the active chaos controller (if any), opens the
    checkpoint journal keyed by the deterministic shard plan, and runs
    the executor.  Used for every parallel map and for serial maps that
    request resilience features.
    """
    from ..exec import CheckpointJournal, ShardExecutor, chaos, plan_key

    controller = chaos.current()
    if controller is not None:
        call = chaos.wrap(call, controller, items)
    executor = ShardExecutor(policy=policy, report=report)
    if checkpoint is None:
        return executor.run(call, items, jobs=jobs)
    key = plan_key(_fn_label(call), items)
    with CheckpointJournal(checkpoint, key) as journal:
        return executor.run(call, items, jobs=jobs, journal=journal)


def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = None,
    *,
    network: SmallWorldNetwork | Sequence[SmallWorldNetwork] | None = None,
    union_csr: bool = False,
    kernel_backend: str | None = None,
    channel: "ChannelModel | None" = None,
    policy: RetryPolicy | None = None,
    report: ExecutionReport | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
) -> list:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``jobs=None`` (or ``0``/``1``, or a single item) runs serially
    in-process; negative ``jobs`` raises :class:`ValueError`.  Otherwise
    the items are sharded over a worker pool with ``min(jobs,
    len(items))`` processes.  Results keep input order.  ``fn`` and the
    items must be picklable (module-level function, plain data).

    The parallel path dispatches shards through
    :class:`repro.exec.ShardExecutor`: per-shard futures with bounded
    retries, optional per-shard timeouts, ``BrokenProcessPool`` pool
    rebuilds, and graceful degradation to in-process serial execution
    (one-time :class:`RuntimeWarning`) when the pool fails repeatedly —
    see :mod:`repro.exec`.  ``policy`` (:class:`repro.exec.RetryPolicy`)
    tunes the fault handling, ``report``
    (:class:`repro.exec.ExecutionReport`) accumulates per-shard fault
    accounting, and ``checkpoint`` (a path) spills each completed
    shard's result to an on-disk journal keyed by the deterministic
    shard plan so a killed map resumes without recomputing finished
    shards.  Serial maps stay a plain loop unless one of those three is
    passed.

    When ``network`` is given, ``fn`` is called as ``fn(network, item)``
    and the graph is shared with workers through one POSIX shared-memory
    segment (:class:`repro.graphs.shared.SharedNetwork`) instead of being
    re-pickled into every task — workers attach zero-copy, once per
    process.  A *list or tuple of networks* pins the whole set in a single
    segment (:class:`repro.graphs.shared.SharedNetworkPack`) and calls
    ``fn(networks_tuple, item)`` — this is how multi-network sweeps ship
    their entire network axis to workers in one handle.  With
    ``union_csr=True`` (multi-network only) the payload is a
    :class:`repro.graphs.shared.NetworkTuple` carrying the pre-stacked
    block-diagonal union CSR — stacked once here, shipped through the same
    segment — so union-stack engine calls in workers skip re-stacking.
    The segment lives for the duration of the map and is unlinked before
    returning.

    ``kernel_backend`` (multi-network only) names the flood-kernel compute
    backend and travels on the payload container
    (``NetworkTuple.kernel_backend``) — through the shared segment's
    handle for process sharding — so engine calls inside workers adopt the
    sweep-level backend choice (see :mod:`repro.sim.backends`).
    ``channel`` (multi-network only) rides the container the same way
    (``NetworkTuple.channel``), so the engines' container adoption picks
    up a sweep-level lossy/noisy channel inside workers.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be None or >= 0, got {jobs}")
    items = list(items)
    serial = jobs is None or jobs <= 1 or len(items) <= 1
    resilient = policy is not None or report is not None or checkpoint is not None
    if network is not None:
        multi = isinstance(network, (list, tuple))
        if serial:
            if multi:
                from ..graphs.shared import NetworkTuple

                if (
                    isinstance(network, NetworkTuple)
                    and (not union_csr or network.union_csr is not None)
                    and (
                        kernel_backend is None
                        or network.kernel_backend == kernel_backend
                    )
                    and (channel is None or network.channel == channel)
                ):
                    # A ready-made payload (the resident engine hands its
                    # cached NetworkTuple straight through): reuse it and
                    # its pre-stacked union CSR instead of re-stacking.
                    payload = network
                else:
                    payload = NetworkTuple.build(
                        network,
                        union=union_csr,
                        backend=kernel_backend,
                        channel=channel,
                    )
            else:
                payload = network
            if resilient:
                return _resilient_map(
                    _PayloadCall(fn, payload), items, None, policy, report, checkpoint
                )
            return [fn(payload, item) for item in items]
        from ..graphs.shared import SharedNetwork, SharedNetworkPack

        shared = (
            SharedNetworkPack.create(
                list(network), union=union_csr, backend=kernel_backend, channel=channel
            )
            if multi
            else SharedNetwork.create(network)
        )
        with shared:
            call = _SharedNetworkCall(fn, shared, multi)
            return _resilient_map(call, items, jobs, policy, report, checkpoint)
    if serial:
        if resilient:
            return _resilient_map(fn, items, None, policy, report, checkpoint)
        return [fn(item) for item in items]
    return _resilient_map(fn, items, jobs, policy, report, checkpoint)

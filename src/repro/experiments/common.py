"""Shared helpers for experiment modules.

Three layers of shared machinery:

* **network cache** — experiments in one process share sampled graphs
  (:func:`network`);
* **batched trial runners** — repeated-seed sweeps route through the
  trial-batched engine (:func:`repro.core.batch.run_counting_batch`), which
  is bit-for-bit equivalent to per-seed sequential runs but several times
  faster (see ``benchmarks/bench_batch.py``);
* **process sharding** — :func:`parallel_map` optionally fans a multi-config
  sweep out over a ``ProcessPoolExecutor`` (each worker re-imports the
  library, so mapped functions must be module-level picklables).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterable, Sequence

import numpy as np

from ..adversary.base import Adversary
from ..core.batch import run_counting_batch
from ..core.config import CountingConfig
from ..core.results import BatchCountingResult
from ..graphs.smallworld import SmallWorldNetwork, build_small_world
from ..sim.rng import derive_seed

__all__ = [
    "network",
    "ns_for",
    "basic_counting_trials",
    "byzantine_counting_trials",
    "parallel_map",
    "DEFAULT_D",
]

DEFAULT_D = 8


@lru_cache(maxsize=32)
def network(n: int, d: int = DEFAULT_D, seed: int = 0, k: int | None = None) -> SmallWorldNetwork:
    """Cached network sample (experiments in one process share graphs).

    ``k`` is the lattice radius override; ``None`` selects the paper's
    default ``ceil(d/3)``.  Explicit ``k`` must be ``>= 1`` (validated here
    rather than deep in ``build_small_world`` so the graph-seed key below
    cannot alias: ``0`` in the key always means "default k", never an
    explicit radius).
    """
    if k is not None and k < 1:
        raise ValueError(f"lattice radius k must be >= 1, got {k}")
    key_k = 0 if k is None else int(k)
    return build_small_world(n, d, seed=derive_seed(seed, "net", n, d, key_k), k=k)


def ns_for(scale: str, *, small: tuple[int, ...], full: tuple[int, ...]) -> tuple[int, ...]:
    return small if scale == "small" else full


# ----------------------------------------------------------------------
# Batched trial sweeps
# ----------------------------------------------------------------------


def basic_counting_trials(
    net: SmallWorldNetwork,
    seeds: Sequence[int],
    config: CountingConfig | None = None,
) -> BatchCountingResult:
    """Algorithm 1 over many seeds at once (batched engine).

    Equivalent to ``[run_basic_counting(net, config, seed=s) for s in
    seeds]``, bit for bit, including meter totals.
    """
    config = (config or CountingConfig()).with_(verification=False)
    return run_counting_batch(net, seeds, config=config)


def byzantine_counting_trials(
    net: SmallWorldNetwork,
    adversary_factory: Callable[[], Adversary],
    byz_mask: np.ndarray,
    seeds: Sequence[int],
    config: CountingConfig | None = None,
) -> BatchCountingResult:
    """Algorithm 2 over many seeds (per-trial fallback under the hood).

    Adversary hooks are scalar, so these trials execute sequentially, but
    behind the same batch API so sweeps need not special-case.
    """
    return run_counting_batch(
        net,
        seeds,
        config=config or CountingConfig(),
        adversary_factory=adversary_factory,
        byz_mask=byz_mask,
    )


# ----------------------------------------------------------------------
# Process sharding
# ----------------------------------------------------------------------


def parallel_map(fn: Callable, items: Iterable, jobs: int | None = None) -> list:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``jobs=None`` (or ``<= 1``, or a single item) runs serially in-process;
    otherwise the items are sharded over a ``ProcessPoolExecutor`` with
    ``min(jobs, len(items))`` workers.  Results keep input order.  ``fn``
    and the items must be picklable (module-level function, plain data).
    """
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))

"""Experiment harness: tables, results, registry, and runners.

Every paper claim is an :class:`Experiment` with a stable id (see the
per-experiment index in DESIGN.md).  ``run(scale, seed)`` produces an
:class:`ExperimentResult` holding one or more :class:`Table`s (the rows the
paper "would" report) plus named boolean *shape checks* — the who-wins /
crossover assertions that must hold even though absolute numbers live on a
simulator rather than the authors' testbed.

Scales: ``"small"`` finishes in seconds (used by tests and benches);
``"full"`` is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    import os

    from ..exec import ExecutionReport, RetryPolicy

__all__ = [
    "Table",
    "ExperimentResult",
    "Experiment",
    "REGISTRY",
    "register",
    "get_experiment",
    "run_experiment",
    "run_experiments",
    "all_experiment_ids",
]

SCALES = ("small", "full")


@dataclass
class Table:
    """A printable result table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(str(cell)))
        lines = [self.title]
        header = " | ".join(c.ljust(widths[j]) for j, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(str(cell).ljust(widths[j]) for j, cell in enumerate(row))
            )
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _fmt(v):
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return v


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    claim: str
    tables: list[Table] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    @property
    def passed(self) -> bool:
        """All shape checks hold (vacuously true when none are defined)."""
        return all(self.checks.values())

    def render(self) -> str:
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"claim: {self.claim}",
            "",
        ]
        for t in self.tables:
            lines.append(t.render())
            lines.append("")
        if self.checks:
            lines.append("shape checks:")
            for name, ok in sorted(self.checks.items()):
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    exp_id: str
    title: str
    claim: str
    runner: Callable[[str, int], ExperimentResult]

    def run(self, scale: str = "small", seed: int = 0) -> ExperimentResult:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
        return self.runner(scale, seed)


REGISTRY: dict[str, Experiment] = {}


def register(exp_id: str, title: str, claim: str):
    """Decorator registering an experiment runner under ``exp_id``."""

    def deco(fn: Callable[[str, int], ExperimentResult]) -> Experiment:
        exp = Experiment(exp_id=exp_id, title=title, claim=claim, runner=fn)
        if exp_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id}")
        REGISTRY[exp_id] = exp
        return exp

    return deco


def get_experiment(exp_id: str) -> Experiment:
    _ensure_loaded()
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def run_experiment(exp_id: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    return get_experiment(exp_id).run(scale, seed)


def _run_task(task: tuple[str, str, int]) -> ExperimentResult:
    """Module-level shim so experiment tasks pickle into worker processes."""
    exp_id, scale, seed = task
    return run_experiment(exp_id, scale=scale, seed=seed)


def run_experiments(
    exp_ids: list[str] | None = None,
    scale: str = "small",
    seed: int = 0,
    jobs: int | None = None,
    *,
    policy: RetryPolicy | None = None,
    report: ExecutionReport | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
) -> list[ExperimentResult]:
    """Run several experiments, optionally sharded across processes.

    Experiments are independent (each samples its own networks through the
    per-process cache), so a multi-experiment sweep is embarrassingly
    parallel: with ``jobs > 1`` the ids are distributed over a worker
    pool via :func:`repro.experiments.common.parallel_map`.  Results come
    back in ``exp_ids`` order either way.

    The sharded dispatch is fault tolerant (see :mod:`repro.exec`):
    ``policy`` tunes per-experiment retries/timeouts/backoff, ``report``
    accumulates fault accounting across the run, and ``checkpoint``
    names an on-disk journal so a killed multi-experiment run resumes
    without recomputing finished experiments.
    """
    from .common import parallel_map

    if exp_ids is None:
        exp_ids = all_experiment_ids()
    tasks = [(exp_id, scale, seed) for exp_id in exp_ids]
    return parallel_map(
        _run_task,
        tasks,
        jobs=jobs,
        policy=policy,
        report=report,
        checkpoint=checkpoint,
    )


def all_experiment_ids() -> list[str]:
    _ensure_loaded()
    return sorted(REGISTRY)


def _ensure_loaded() -> None:
    """Import every experiment module exactly once (they self-register)."""
    from . import (  # noqa: F401
        e01_ltl,
        e02_sets,
        e03_expander,
        e04_chains,
        e05_baseline,
        e06_baseline_attacks,
        e07_theorem1,
        e08_rounds,
        e09_messages,
        e10_premature,
        e11_core,
        e12_figure1,
        e13_ablation_verify,
        e14_ablations,
        e15_scenarios,
    )

"""E01 — Lemma 1/21: almost all nodes are locally tree-like.

Claim: in ``H(n, d)``, whp at least ``n - O(n^0.8)`` nodes are locally
tree-like at radius ``r = log n / (10 log d)``.  At lab scale that radius
floors to 1, so we measure at ``r = 1`` (and ``r = 2`` at full scale) and
check (a) the NLT fraction shrinks as ``n`` grows, and (b) the log-log
slope of ``|NLT|`` vs ``n`` is below 1 (sublinear, consistent with the
``n^0.8`` envelope).
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import loglog_slope
from ..graphs.classification import ltl_mask, tree_radius
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register


@register(
    "E01",
    "Locally tree-like fraction (Lemma 1 / Lemma 21)",
    "whp at least n - O(n^0.8) nodes of H(n,d) are locally tree-like",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(256, 512, 1024), full=(256, 512, 1024, 2048, 4096))
    d = DEFAULT_D
    radii = (1,) if scale == "small" else (1, 2)
    result = ExperimentResult(
        exp_id="E01",
        title="Locally tree-like fraction",
        claim="|NLT| = O(n^0.8) (Lemma 21)",
    )
    for r in radii:
        table = Table(
            title=f"LTL census at radius r={r} (paper radius: log n/(10 log d))",
            columns=["n", "paper_r", "|NLT|", "NLT_frac", "bound n^0.8", "within"],
        )
        nlt_counts = []
        for n in ns:
            net = network(n, d, seed)
            mask = ltl_mask(net.h, r)
            nlt = int((~mask).sum())
            nlt_counts.append(nlt)
            bound = n**0.8
            table.add(n, tree_radius(n, d), nlt, nlt / n, bound, nlt <= 4 * bound)
        result.tables.append(table)
        if r == 1:
            fracs = [c / n for c, n in zip(nlt_counts, ns)]
            slope, _ = loglog_slope(np.array(ns), np.array(nlt_counts))
            result.checks["nlt_fraction_shrinks"] = fracs[-1] < fracs[0]
            result.checks["nlt_growth_sublinear"] = slope < 1.0
            result.notes = f"|NLT| ~ n^{slope:.2f} (paper: n^0.8)"
    return result

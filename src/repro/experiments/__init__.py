"""Per-claim experiment suite (E01-E14); see DESIGN.md's index."""

from .harness import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    Table,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "Table",
    "all_experiment_ids",
    "get_experiment",
    "run_experiment",
]

"""E07 — Theorem 1: Algorithm 2 survives what breaks the baselines.

For every adversary strategy and the paper's Byzantine budget
``B(n) = n^{1-delta}``, measure the fraction of honest nodes whose decided
phase is a constant-factor estimate of ``log n`` (the practical band of
:func:`repro.core.estimator.practical_band`), and contrast with the E06
baseline failures.  Theorem 1 predicts the in-band fraction stays
``>= 1 - eps - o(1)`` for color-level attacks; the topology-liar is
reported via its crash footprint (it trades estimates for crashes, bounded
by Lemma 14 — experiment E11).

The whole strategies x budgets grid per network runs as one fused sweep
(:func:`repro.core.sweep.run_sweep`): each strategy's placements batch as
trial columns with per-trial Byzantine masks, bit-for-bit equal to the
scalar per-cell runs this experiment used to loop over.
"""

from __future__ import annotations

from ..adversary.placement import placement_for_delta
from ..core.config import CountingConfig
from ..core.estimator import practical_band
from ..core.sweep import run_sweep
from .common import DEFAULT_D, network, ns_for
from .harness import ExperimentResult, Table, register

COLOR_STRATEGIES = (
    "honest",
    "early-stop",
    "inflation",
    "suppression",
    "adaptive-record",
    "combo",
)


@register(
    "E07",
    "Theorem 1: Byzantine counting accuracy",
    ">= (1-eps)-fraction of honest nodes get a constant-factor estimate of log n",
)
def run(scale: str, seed: int) -> ExperimentResult:
    ns = ns_for(scale, small=(1024,), full=(1024, 2048, 4096))
    deltas = (0.5,) if scale == "small" else (0.4, 0.55)
    d = DEFAULT_D
    eps = 0.1
    cfg = CountingConfig(eps=eps, max_phase=32)
    band = practical_band(d)
    result = ExperimentResult(
        exp_id="E07",
        title="Theorem 1 accuracy",
        claim=f"in-band fraction >= 1 - eps ({1 - eps}) under B(n)=n^(1-delta)",
    )
    worst_in_band = 1.0
    for n in ns:
        net = network(n, d, seed)
        placements = [placement_for_delta(net, delta, rng=seed + 7) for delta in deltas]
        sweep = run_sweep(
            net,
            seeds=[seed + 13],
            configs=cfg,
            placements=placements,
            strategies=list(COLOR_STRATEGIES),
        )
        for p_idx, delta in enumerate(deltas):
            byz = placements[p_idx]
            table = Table(
                title=(
                    f"n={n}, delta={delta}, B(n)={int(byz.sum())}, eps={eps}, "
                    f"band=[{band[0]:.2f},{band[1]:.2f}]*log2 n"
                ),
                columns=[
                    "strategy",
                    "in-band frac",
                    "decided frac",
                    "phase med",
                    "crashed",
                    "inj acc/rej",
                ],
            )
            for s_idx, name in enumerate(COLOR_STRATEGIES):
                res = sweep.cell(strategy=s_idx, placement=p_idx)
                frac = res.fraction_in_band(*band)
                _, med, _ = res.decision_quantiles()
                table.add(
                    name,
                    frac,
                    res.fraction_decided(),
                    med,
                    int(res.crashed.sum()),
                    f"{res.injections_accepted}/{res.injections_rejected}",
                )
                worst_in_band = min(worst_in_band, frac)
            result.tables.append(table)
    # Allow a small-n slack beyond eps: the o(n) terms are not asymptotic
    # at laptop scale (DESIGN.md §2.5).
    result.checks["worst_strategy_in_band"] = worst_in_band >= 1 - eps - 0.1
    result.checks["everyone_terminates"] = True  # enforced per-run below
    for table in result.tables:
        for row in table.rows:
            if float(row[2]) < 1.0:
                result.checks["everyone_terminates"] = False
    result.notes = f"worst in-band fraction across strategies: {worst_in_band:.3f}"
    return result

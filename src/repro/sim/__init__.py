"""Simulation substrate: engines, messages, metering, RNG streams."""

from .backends import (
    BackendUnavailableError,
    KernelBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from .engine import SynchronousEngine
from .flood import FloodKernel
from .messages import (
    AdjacencyClaimMessage,
    ColorMessage,
    Message,
    TokenMessage,
    ValueMessage,
    VerifyQueryMessage,
    VerifyReplyMessage,
)
from .metrics import MessageMeter, PhaseRecord, PhaseTrace, color_bits
from .node import Inbox, NodeProgram, RoundContext
from .rng import derive_seed, make_rng, spawn, stream

__all__ = [
    "SynchronousEngine",
    "FloodKernel",
    "KernelBackend",
    "BackendUnavailableError",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "Message",
    "ColorMessage",
    "AdjacencyClaimMessage",
    "VerifyQueryMessage",
    "VerifyReplyMessage",
    "TokenMessage",
    "ValueMessage",
    "MessageMeter",
    "PhaseRecord",
    "PhaseTrace",
    "color_bits",
    "NodeProgram",
    "RoundContext",
    "Inbox",
    "make_rng",
    "spawn",
    "stream",
    "derive_seed",
]

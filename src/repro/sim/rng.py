"""Deterministic random-stream management.

All randomness in the library flows through :class:`numpy.random.Generator`
instances produced here.  Experiments and protocol runs derive *named* child
streams from a root seed so that adding a new consumer of randomness never
perturbs the draws seen by existing consumers (the classic "stream splitting"
discipline from parallel RNG practice).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "stream", "derive_seed"]

#: Fixed application-level salt so repro streams are distinct from any other
#: library that also spawns from the raw user seed.
_APP_SALT = 0x5EED_CAFE


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (OS entropy).  Integer seeds are salted so that
    ``make_rng(0)`` differs from ``numpy.random.default_rng(0)``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([_APP_SALT, int(seed)]))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return rng.spawn(n)


def stream(seed: int, *key: int | str) -> np.random.Generator:
    """Return the named child stream ``key`` of root ``seed``.

    ``stream(seed, "colors", phase)`` always yields the same generator for
    the same arguments, independent of any other stream ever created.
    String components are hashed stably (FNV-1a over UTF-8).
    """
    words = [_APP_SALT, int(seed)]
    for part in key:
        words.append(_fnv1a(part.encode()) if isinstance(part, str) else int(part))
    return np.random.default_rng(np.random.SeedSequence(words))


def derive_seed(seed: int, *key: int | str) -> int:
    """Derive a 63-bit integer sub-seed from ``seed`` and a key path."""
    return int(stream(seed, *key).integers(0, 2**63 - 1))


def _fnv1a(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFF

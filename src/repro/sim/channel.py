"""Lossy / noisy message channels for the flooding kernels.

Every scenario the engines ran before this module was synchronous and
lossless: a transmitted value always arrived intact.  :class:`ChannelModel`
adds the two classic impairments as a first-class sweep axis:

* **message loss** — each transmitting node's outgoing value is dropped
  (replaced by silence) for one round with probability ``loss_p``,
  independently per (node, round, trial);
* **corruption noise** — each transmitted *nonzero* value is perturbed by
  an additive offset drawn uniformly from ``[-noise_amp, +noise_amp]``
  with probability ``noise_p``, again per (node, round, trial); corrupted
  values are clamped to ``>= 1`` so a noisy message can never masquerade
  as the silence sentinel ``0``.

Determinism contract
--------------------
The channel draws come from the same stream-splitting discipline as every
other consumer of randomness (:mod:`repro.sim.rng`): each trial's channel
stream is the **third spawned child** of the trial's root generator
(``make_rng(seed)``), after the color stream (child 0) and the adversary
stream (child 1).  Per round, a live trial draws, in fixed order:

1. one ``(rows,)`` uniform block for the drop mask (only when
   ``loss_p > 0``), then
2. one ``(rows,)`` uniform block for the corruption mask and one
   ``(rows,)`` integer block for the offsets (only when ``noise_p > 0``
   and ``noise_amp > 0``),

where ``rows`` is the trial's *own* network size.  Because the draws are
per trial and sized by the trial's network, the three batched layouts
(single-network batch, padded multinet, block-diagonal union stack)
consume identical channel randomness for the same (network, seed) cell —
lossy runs are bit-for-bit equal across layouts, and shard boundaries in
sweeps cannot perturb them.  Trials stop consuming draws exactly when
they leave the live batch, matching what a per-trial sequential run
would consume.

A null channel (``loss_p == 0`` and no effective noise) is normalized to
``None`` before it ever reaches an engine, so lossless runs execute the
exact pre-channel code path and stay bit-for-bit equal to the historical
engine output.

The corruption is applied to a scratch *copy* of the transmitted state
before the backend-dispatched gather (see
:meth:`repro.sim.flood.FloodKernel.neighbor_max_stacked`), so both kernel
backends (numpy and numba) receive identical corrupted inputs and agree
bit for bit by construction.  Per-round generator draws allocate fresh
arrays by numpy API design; the engines' no-alloc round-loop discipline
(reprolint R003) therefore stops at the ``corrupt()`` call boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import AnyArray

__all__ = ["ChannelModel", "ChannelState", "ChannelSlot"]

#: One live trial's view of the channel: ``(col, lo, hi, rng)`` — the
#: trial's column in the engine's ``(rows, B)`` state, its row segment
#: ``[lo, hi)`` (the whole matrix for the single-network batch, the live
#: prefix for a padded column, the block segment for a union column), and
#: its dedicated channel generator.
ChannelSlot = tuple[int, int, int, np.random.Generator]


@dataclass(frozen=True)
class ChannelModel:
    """An i.i.d. per-(node, round, trial) loss / corruption channel.

    ``loss_p`` is the probability that a node's outgoing value is dropped
    for one round; ``noise_p`` the probability that a transmitted nonzero
    value is corrupted by an additive offset uniform in
    ``[-noise_amp, +noise_amp]`` (clamped to ``>= 1``).  The dataclass is
    frozen and plain-data, so it pickles into sweep task tuples and rides
    shared-memory handles the same way ``kernel_backend`` does.
    """

    loss_p: float = 0.0
    noise_p: float = 0.0
    noise_amp: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.loss_p) <= 1.0:
            raise ValueError(f"loss_p must be in [0, 1], got {self.loss_p!r}")
        if not 0.0 <= float(self.noise_p) <= 1.0:
            raise ValueError(f"noise_p must be in [0, 1], got {self.noise_p!r}")
        if int(self.noise_amp) != self.noise_amp or int(self.noise_amp) < 0:
            raise ValueError(
                f"noise_amp must be a non-negative integer, got {self.noise_amp!r}"
            )

    @property
    def is_null(self) -> bool:
        """True when the channel provably changes nothing."""
        return self.loss_p == 0.0 and (self.noise_p == 0.0 or self.noise_amp == 0)


def _normalize_channel(channel: ChannelModel | None) -> ChannelModel | None:
    """Typed validation for engine entry points.

    Returns ``None`` for a null channel so the engines run their exact
    lossless code path (the bit-for-bit guarantee), and rejects anything
    that is not a :class:`ChannelModel` with a :class:`TypeError` before
    any array state is touched.
    """
    if channel is None:
        return None
    if not isinstance(channel, ChannelModel):
        raise TypeError(
            f"channel must be a ChannelModel or None, got {type(channel).__name__}"
        )
    return None if channel.is_null else channel


class ChannelState:
    """Realizes a :class:`ChannelModel`'s per-round draws for one batch.

    Engines build one per phase from the live trials' slots and hand it to
    the kernels (``neighbor_max_stacked(..., channel=state)``); every
    kernel call then corrupts a scratch copy of the transmitted values and
    advances each slot's generator by exactly one round's draws.  The
    scratch buffer is reallocated lazily only when the live shape or the
    state dtype changes (batch shrinkage, lazy int64 widening), so the
    per-round cost is one ``copyto`` plus the per-trial draws.
    """

    __slots__ = ("_model", "_slots", "_loss", "_noise", "_scratch")

    def __init__(self, model: ChannelModel, slots: list[ChannelSlot]) -> None:
        self._model = model
        self._slots = slots
        self._loss = model.loss_p > 0.0
        self._noise = model.noise_p > 0.0 and model.noise_amp > 0
        self._scratch: AnyArray | None = None

    @property
    def model(self) -> ChannelModel:
        return self._model

    def corrupt(self, values: AnyArray) -> AnyArray:
        """Return a channel-corrupted copy of ``values`` (one round's draws).

        ``values`` itself is never written — engine metering that charges
        *attempted* transmissions keeps reading the caller's buffer.  The
        returned array is this state's internal scratch: valid until the
        next ``corrupt()`` call, which is exactly the lifetime of one
        kernel gather.
        """
        scratch = self._scratch
        if (
            scratch is None
            or scratch.shape != values.shape
            or scratch.dtype != values.dtype
        ):
            scratch = np.empty_like(values)
            self._scratch = scratch
        np.copyto(scratch, values)
        loss_p = self._model.loss_p
        noise_p = self._model.noise_p
        amp = int(self._model.noise_amp)
        for col, lo, hi, rng in self._slots:
            rows = hi - lo
            seg = scratch[lo:hi, col]
            if self._loss:
                drop = rng.random(rows) < loss_p
                seg[drop] = 0
            if self._noise:
                hit = rng.random(rows) < noise_p
                offsets = rng.integers(-amp, amp + 1, size=rows)
                np.logical_and(hit, seg > 0, out=hit)
                if hit.any():
                    # Clamp into [1, dtype max]: a corrupted value can
                    # never masquerade as silence (0) or wrap negative in
                    # a narrow int32 state.
                    limit = np.iinfo(values.dtype).max
                    seg[hit] = np.clip(
                        seg[hit].astype(np.int64) + offsets[hit], 1, limit
                    ).astype(values.dtype, copy=False)
        return scratch

"""Message types for the agent-based engine.

Every message the protocols exchange is a frozen dataclass; the engine
delivers them synchronously (sent in round ``r`` → received at start of
round ``r + 1``, per the Section 2.1 model).  Payload sizes are metered via
:meth:`Message.id_count` / :meth:`Message.bit_count` so the agent engine
produces the same accounting as the vectorized one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import color_bits

__all__ = [
    "Message",
    "ColorMessage",
    "AdjacencyClaimMessage",
    "VerifyQueryMessage",
    "VerifyReplyMessage",
    "TokenMessage",
    "ValueMessage",
]


@dataclass(frozen=True)
class Message:
    """Base class; subclasses define their payload accounting."""

    def id_count(self) -> int:
        return 0

    def bit_count(self) -> int:
        return 0


@dataclass(frozen=True)
class ColorMessage(Message):
    """A flooded color (Algorithm 1/2 line 12/13)."""

    color: int
    phase: int
    subphase: int

    def bit_count(self) -> int:
        return int(color_bits(self.color)) + 16  # color + phase/subphase tags


@dataclass(frozen=True)
class AdjacencyClaimMessage(Message):
    """A node's claimed H-adjacency list (Algorithm 2 line 1)."""

    claimed_h_neighbors: tuple[int, ...]

    def id_count(self) -> int:
        return len(self.claimed_h_neighbors)


@dataclass(frozen=True)
class VerifyQueryMessage(Message):
    """'Did you legitimately relay color c toward w?' (Algorithm 2 line 15)."""

    color: int
    relay: int
    phase: int
    subphase: int
    round: int

    def id_count(self) -> int:
        return 1

    def bit_count(self) -> int:
        return int(color_bits(self.color)) + 24


@dataclass(frozen=True)
class VerifyReplyMessage(Message):
    """Witness response to a :class:`VerifyQueryMessage`."""

    color: int
    relay: int
    legitimate: bool

    def id_count(self) -> int:
        return 1

    def bit_count(self) -> int:
        return int(color_bits(self.color)) + 1


@dataclass(frozen=True)
class TokenMessage(Message):
    """An opaque flooded token (baselines: leader flooding, random walks)."""

    token: int
    hops: int = 0

    def bit_count(self) -> int:
        return 64


@dataclass(frozen=True)
class ValueMessage(Message):
    """A generic numeric payload (baselines: support estimation, counts)."""

    value: float
    tag: str = ""

    def bit_count(self) -> int:
        return 64

"""Round / message / payload accounting ("small-sized messages", §1.1 fn. 4).

The paper's efficiency claims are threefold: ``O(log^3 n)`` rounds,
messages of constant ID count plus ``O(log n)`` bits, and logarithmic
per-round local computation.  :class:`MessageMeter` accumulates exactly
those quantities; :class:`PhaseTrace` records the per-phase protocol
timeline for the experiment tables.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from .._types import AnyArray, Int64Array, IntArray

__all__ = ["MessageMeter", "MeterBatch", "PhaseRecord", "PhaseTrace", "color_bits"]


def color_bits(value: int | AnyArray) -> int | Int64Array:
    """Bits needed to encode a geometric color (unary-free binary encoding)."""
    v = np.maximum(np.asarray(value), 1)
    bits = np.floor(np.log2(v)).astype(np.int64) + 1
    if np.isscalar(value) or np.asarray(value).ndim == 0:
        return int(bits)
    return bits


@dataclass
class MessageMeter:
    """Additive counters for communication cost."""

    rounds: int = 0
    messages: int = 0
    id_payload: int = 0
    bit_payload: int = 0
    max_message_ids: int = 0
    max_message_bits: int = 0

    def add_round(self, count: int = 1) -> None:
        self.rounds += count

    def add_messages(self, count: int, ids_each: int = 0, bits_each: int = 0) -> None:
        if count < 0:
            raise ValueError("message count cannot be negative")
        self.messages += count
        self.id_payload += count * ids_each
        self.bit_payload += count * bits_each
        if count:
            self.max_message_ids = max(self.max_message_ids, ids_each)
            self.max_message_bits = max(self.max_message_bits, bits_each)

    def merge(self, other: "MessageMeter") -> None:
        self.rounds += other.rounds
        self.messages += other.messages
        self.id_payload += other.id_payload
        self.bit_payload += other.bit_payload
        self.max_message_ids = max(self.max_message_ids, other.max_message_ids)
        self.max_message_bits = max(self.max_message_bits, other.max_message_bits)

    def messages_per_round(self) -> float:
        return self.messages / self.rounds if self.rounds else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "id_payload": self.id_payload,
            "bit_payload": self.bit_payload,
            "max_message_ids": self.max_message_ids,
            "max_message_bits": self.max_message_bits,
            "messages_per_round": self.messages_per_round(),
        }


class MeterBatch:
    """Per-trial :class:`MessageMeter` counters as flat arrays.

    The batched engine accounts for ``B`` trials per flooding round; keeping
    the counters as int64 vectors lets it accumulate with one vectorized
    add per round instead of ``B`` Python-level method calls.  All counters
    are additive, so deferring the per-trial split to :meth:`meter` yields
    totals identical to ``B`` independent :class:`MessageMeter` instances
    fed the same increments.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"batch size must be >= 0, got {size}")
        self.size = size
        self.rounds = np.zeros(size, dtype=np.int64)
        self.messages = np.zeros(size, dtype=np.int64)
        self.id_payload = np.zeros(size, dtype=np.int64)
        self.bit_payload = np.zeros(size, dtype=np.int64)
        self.max_message_ids = np.zeros(size, dtype=np.int64)
        self.max_message_bits = np.zeros(size, dtype=np.int64)

    def add_rounds(self, trials: IntArray, count: int = 1) -> None:
        """Charge ``count`` rounds to every trial index in ``trials``.

        Uses unbuffered accumulation, so duplicate trial indices each
        contribute (matching ``count`` scalar :class:`MessageMeter` calls).
        """
        np.add.at(self.rounds, trials, count)

    def add_messages(
        self,
        trials: IntArray,
        counts: IntArray | int,
        ids_each: int = 0,
        bits_each: int = 0,
    ) -> None:
        """Charge per-trial message counts (aligned with ``trials``).

        Duplicate trial indices accumulate (``np.add.at``), so arbitrary
        per-event charge lists behave like repeated scalar meter calls.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if np.any(counts < 0):
            raise ValueError("message count cannot be negative")
        np.add.at(self.messages, trials, counts)
        if ids_each:
            np.add.at(self.id_payload, trials, counts * ids_each)
            np.maximum.at(
                self.max_message_ids, trials, np.where(counts > 0, ids_each, 0)
            )
        if bits_each:
            np.add.at(self.bit_payload, trials, counts * bits_each)
            np.maximum.at(
                self.max_message_bits, trials, np.where(counts > 0, bits_each, 0)
            )

    def meter(self, trial: int) -> MessageMeter:
        """Materialize trial ``trial``'s counters as a :class:`MessageMeter`."""
        return MessageMeter(
            rounds=int(self.rounds[trial]),
            messages=int(self.messages[trial]),
            id_payload=int(self.id_payload[trial]),
            bit_payload=int(self.bit_payload[trial]),
            max_message_ids=int(self.max_message_ids[trial]),
            max_message_bits=int(self.max_message_bits[trial]),
        )


@dataclass(frozen=True)
class PhaseRecord:
    """One phase of a counting run, as observed by the engine."""

    phase: int
    subphases: int
    flooding_rounds: int
    newly_decided: int
    active_before: int
    injections_accepted: int = 0
    injections_rejected: int = 0


@dataclass
class PhaseTrace:
    """Chronological list of :class:`PhaseRecord`."""

    records: list[PhaseRecord] = field(default_factory=list)

    def append(self, record: PhaseRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PhaseRecord]:
        return iter(self.records)

    def last_phase(self) -> int:
        return self.records[-1].phase if self.records else 0

    def total_flooding_rounds(self) -> int:
        return sum(r.flooding_rounds for r in self.records)

    def decisions_by_phase(self) -> dict[int, int]:
        return {r.phase: r.newly_decided for r in self.records}

"""Optional numba kernel backend: fused gather+max with in-kernel threading.

One compiled loop replaces the numpy backend's d gathers + d-1
``np.maximum`` passes (uniform degree) or the ``(B*nnz,)`` gather +
``reduceat`` (general CSR): for each row the kernel walks the CSR
neighbor span once and folds the running max straight into ``out``,
with no ``(n, B)``-plane temporaries, and ``prange`` threads over rows
*inside* the single kernel call.  The union-stack layout — one big
d-regular CSR — compiles as-is.

The import is guarded: without numba the module still imports (``prange``
aliases ``range`` and the kernels stay pure Python), so the backend's
logic is fully testable on numba-less runners by monkeypatching
``NUMBA_AVAILABLE``; only :func:`repro.sim.backends.resolve_backend`'s
availability gate decides whether the backend is ever selected for real.

Dtype support is int32/int64 (the engine state dtypes).  Anything else
falls back to the numpy backend per call, with a one-time warning per
dtype — integer max is exact, so the fallback is bit-for-bit identical.
The ``(B, n)`` tiled-``reduceat`` layout (``neighbor_max_batch``) always
delegates to numpy: no engine hot path uses it, and the stacked layout is
where fusion pays.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .base import BackendUnavailableError
from .numpy_backend import NumpyBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..._types import AnyArray
    from ..flood import FloodKernel

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    njit = None
    prange = range
    NUMBA_AVAILABLE = False


def _jit(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Compile ``fn`` when numba is present; keep it pure Python otherwise.

    The kernels are written once, in nopython-compatible Python, so the
    uncompiled functions compute the exact same result — that is what the
    monkeypatched-availability tests run.
    """
    if NUMBA_AVAILABLE:  # pragma: no cover - compiled path needs numba
        return njit(parallel=True, cache=True)(fn)
    return fn


@_jit
def _flat_csr(
    sent: AnyArray, indptr: AnyArray, indices: AnyArray, out: AnyArray
) -> None:
    """1-D neighbor-max: ``out[v] = max(sent[u] for u in N(v))``."""
    n = out.shape[0]
    for v in prange(n):
        lo = indptr[v]
        hi = indptr[v + 1]
        best = sent[indices[lo]]
        for e in range(lo + 1, hi):
            u = indices[e]
            if sent[u] > best:
                best = sent[u]
        out[v] = best


@_jit
def _stacked_csr(
    values: AnyArray, indptr: AnyArray, indices: AnyArray, out: AnyArray
) -> None:
    """Fused gather+max over an ``(n, B)`` trials-as-columns matrix.

    Covers the uniform-degree and general CSR layouts alike: row ``v``'s
    neighbor span is walked once, the first neighbor initializes
    ``out[v]``, and every further neighbor folds in with a branch-free
    running max over the B contiguous column values.
    """
    n = out.shape[0]
    b = out.shape[1]
    for v in prange(n):
        lo = indptr[v]
        hi = indptr[v + 1]
        u = indices[lo]
        for j in range(b):
            out[v, j] = values[u, j]
        for e in range(lo + 1, hi):
            u = indices[e]
            for j in range(b):
                if values[u, j] > out[v, j]:
                    out[v, j] = values[u, j]


#: Engine state dtypes the compiled kernels are specialized for.
_SUPPORTED_DTYPES = frozenset({np.dtype(np.int32), np.dtype(np.int64)})


class NumbaBackend:
    """``@njit(parallel=True, cache=True)`` fused gather+max kernels."""

    name = "numba"

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise BackendUnavailableError(
                "numba is not installed; the 'numba' kernel backend is "
                "unavailable (install numba or use backend='numpy'/'auto')"
            )
        self._numpy = NumpyBackend()
        self._warned_dtypes: set[str] = set()

    def _supported(self, values: AnyArray) -> bool:
        if values.dtype in _SUPPORTED_DTYPES:
            return True
        key = values.dtype.name
        if key not in self._warned_dtypes:
            self._warned_dtypes.add(key)
            warnings.warn(
                f"numba kernel backend does not support dtype {key}; "
                "falling back to the numpy backend for these calls",
                RuntimeWarning,
                stacklevel=4,
            )
        return False

    def neighbor_max(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        sent = np.ascontiguousarray(sent)
        if not self._supported(sent):
            return self._numpy.neighbor_max(kernel, sent, out)
        if (
            out is None
            or out.dtype != sent.dtype
            or not out.flags["C_CONTIGUOUS"]
            or np.may_share_memory(out, sent)
        ):
            buf = np.empty(kernel.n, dtype=sent.dtype)
            _flat_csr(sent, kernel.indptr, kernel.indices, buf)
            if out is not None:
                np.copyto(out, buf)
                return out
            return buf
        _flat_csr(sent, kernel.indptr, kernel.indices, out)
        return out

    def neighbor_max_batch(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        # The (B, n) tiled-reduceat layout has no compiled variant; the
        # engines' hot path is the stacked layout below.
        return self._numpy.neighbor_max_batch(kernel, sent, out)

    def neighbor_max_stacked(
        self, kernel: FloodKernel, values: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        values = np.ascontiguousarray(values)
        if not self._supported(values):
            return self._numpy.neighbor_max_stacked(kernel, values, out)
        if (
            out is None
            or out.dtype != values.dtype
            or not out.flags["C_CONTIGUOUS"]
            or np.may_share_memory(out, values)
        ):
            buf = np.empty(values.shape, dtype=values.dtype)
            _stacked_csr(values, kernel.indptr, kernel.indices, buf)
            if out is not None:
                np.copyto(out, buf)
                return out
            return buf
        _stacked_csr(values, kernel.indptr, kernel.indices, out)
        return out

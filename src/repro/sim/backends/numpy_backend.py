"""Default numpy kernel backend: gather + segmented/slot-wise reductions.

This is the original :class:`repro.sim.flood.FloodKernel` compute,
extracted verbatim behind the :class:`~.base.KernelBackend` protocol.
Shape validation stays in the kernel wrappers; these methods receive
already-validated arrays plus the kernel instance for its CSR layout and
cached gather plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..._types import AnyArray
    from ..flood import FloodKernel

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Fancy-index gathers + ``reduceat`` / per-slot ``np.maximum`` passes."""

    name = "numpy"

    def neighbor_max(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        gathered = sent[kernel.indices]
        result = np.maximum.reduceat(gathered, kernel._starts)
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def neighbor_max_batch(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        batch = sent.shape[0]
        gather_idx, starts = kernel._batch_plan(batch)
        gathered = np.ascontiguousarray(sent).reshape(-1)[gather_idx]
        result = np.maximum.reduceat(gathered, starts).reshape(batch, kernel.n)
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def neighbor_max_stacked(
        self, kernel: FloodKernel, values: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        if not kernel._uniform_degree:
            # General CSR: transpose into the (B, n) tiled-reduceat layout
            # and back out.  The transposes copy, so `result` never aliases
            # `values` and the copyto below is always safe.
            result = self.neighbor_max_batch(
                kernel, np.ascontiguousarray(values.T)
            ).T
            if out is not None:
                np.copyto(out, result)
                return out
            return np.ascontiguousarray(result)
        cols = kernel._cols()
        if kernel._uniform_degree == 1:
            result = values[cols[0]]
            if out is not None:
                np.copyto(out, result)
                return out
            return result
        result = np.maximum(values[cols[0]], values[cols[1]], out=out)
        for j in range(2, kernel._uniform_degree):
            np.maximum(result, values[cols[j]], out=result)
        return result

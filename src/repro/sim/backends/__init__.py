"""Kernel backend registry and selection for the flood kernels.

Backends implement the :class:`~.base.KernelBackend` protocol and are
interchangeable bit-for-bit (see ``base.py``).  Selection is a
first-class axis with this precedence:

1. An explicit ``backend=`` argument — a backend name, a
   :class:`~.base.KernelBackend` instance, or ``"auto"``.  An unknown
   *name* is a hard :class:`ValueError`; a known-but-unavailable name
   falls back to numpy with a one-time :class:`RuntimeWarning`.
2. The ``REPRO_KERNEL_BACKEND`` environment variable (when no explicit
   argument is given).  Unknown values warn once and resolve as
   ``"auto"`` — an env typo must not crash every entry point.
3. ``"auto"``: numba when importable, numpy otherwise.

``resolve_backend`` is called once per kernel construction (not per
round), so the env lookup and availability probes are off the hot path.
"""

from __future__ import annotations

import os
import sys
import warnings
from typing import Callable

from . import numba_backend as _numba_mod
from .base import BackendUnavailableError, KernelBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "ENV_VAR",
    "BackendUnavailableError",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "backend_available",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Environment override consulted when no explicit ``backend=`` is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_Factory = Callable[[], KernelBackend]
_Probe = Callable[[], bool]

_REGISTRY: dict[str, tuple[_Factory, _Probe | None]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_WARNED: set[str] = set()


def register_backend(
    name: str, factory: _Factory, available: _Probe | None = None
) -> None:
    """Register a backend factory under ``name``.

    ``available`` is an optional zero-argument probe; ``None`` means
    always available.  Re-registering a name replaces the factory and
    drops any cached instance (a test seam, mainly).
    """
    _REGISTRY[name] = (factory, available)
    _INSTANCES.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available or not."""
    return tuple(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its availability probe passes."""
    entry = _REGISTRY.get(name)
    if entry is None:
        return False
    _, probe = entry
    return probe is None or bool(probe())


def available_backends() -> tuple[str, ...]:
    """Registered backend names whose availability probe passes."""
    return tuple(name for name in _REGISTRY if backend_available(name))


def get_backend(name: str) -> KernelBackend:
    """Instantiate (and cache) the backend registered under ``name``.

    Raises :class:`ValueError` for an unregistered name and
    :class:`BackendUnavailableError` for a registered one whose probe
    fails.  Instances are singletons per name — backends are stateless
    apart from memoization caches, so every kernel shares one.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_REGISTRY)}"
        )
    if not backend_available(name):
        raise BackendUnavailableError(
            f"kernel backend {name!r} is registered but unavailable in this "
            "environment"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        factory, _ = entry
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def _user_stacklevel() -> int:
    """Stacklevel that attributes a warning to the first frame outside repro.

    Backend resolution is reached through several call depths — directly
    (``resolve_backend(...)``), through kernel construction
    (``FloodKernel(...) -> resolve_backend``), or deeper still through the
    engines — so no hardcoded stacklevel can land the fallback warning on
    the *user's* call site from every entry point.  Walking the live stack
    for the first frame whose module is not part of this package computes
    the right depth each time.
    """
    level = 1  # stacklevel 1 == _warn_once's own frame
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module != "repro" and not module.startswith("repro."):
            break
        frame = frame.f_back
        level += 1
    return level


def _warn_once(key: str, message: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=_user_stacklevel())


def resolve_backend(backend: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend spec to an instance per the selection precedence.

    ``backend`` may be a :class:`KernelBackend` instance (returned as-is),
    a registered name, ``"auto"``, or ``None`` (consult ``REPRO_KERNEL_
    BACKEND``, then auto).  See the module docstring for the fallback and
    warning semantics.
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    name = backend
    explicit = name is not None
    if name is None:
        env = os.environ.get(ENV_VAR) or None
        if env is not None:
            if env in _REGISTRY or env == "auto":
                name = env
            else:
                _warn_once(
                    f"env:{env}",
                    f"{ENV_VAR}={env!r} names no registered kernel backend "
                    f"(registered: {sorted(_REGISTRY)}); using auto selection",
                )
    if name is None:
        name = "auto"
    if name == "auto":
        return get_backend("numba" if backend_available("numba") else "numpy")
    if name not in _REGISTRY:
        if explicit:
            raise ValueError(
                f"unknown kernel backend {name!r}; registered: "
                f"{sorted(_REGISTRY)}"
            )
        return get_backend("numpy")  # pragma: no cover - defensive
    if not backend_available(name):
        _warn_once(
            f"unavailable:{name}",
            f"kernel backend {name!r} is unavailable in this environment; "
            "falling back to the numpy backend",
        )
        return get_backend("numpy")
    return get_backend(name)


def _reset_selection_state() -> None:
    """Test seam: drop cached instances and re-arm one-time warnings."""
    _INSTANCES.clear()
    _WARNED.clear()


register_backend("numpy", NumpyBackend)
# The probe reads the module attribute (not a captured value) so tests can
# monkeypatch NUMBA_AVAILABLE and exercise the backend without numba.
register_backend("numba", NumbaBackend, lambda: _numba_mod.NUMBA_AVAILABLE)

"""Kernel-backend protocol for the flood kernels.

A backend supplies the *compute* behind
:class:`repro.sim.flood.FloodKernel`'s per-round reductions.  The kernel
object keeps the layout state — CSR arrays, uniform-degree metadata,
cached tiled gather plans — and validates shapes; each public method then
dispatches to its backend, which receives the kernel instance plus the
value arrays.  Two implementations ship:

* ``numpy`` (:mod:`.numpy_backend`) — the default: fancy-index gathers
  plus segmented ``reduceat`` reductions (general CSR) and per-neighbor-
  slot row gathers (uniform degree).  Always available.
* ``numba`` (:mod:`.numba_backend`) — optional: a single fused gather+max
  loop compiled with ``@njit(parallel=True, cache=True)``, threading over
  rows *inside* one kernel call, with no ``(n, B)``-plane temporaries.
  Guarded import; unsupported dtypes fall back to numpy per call.

Backends are **bit-for-bit interchangeable**: integer max-flooding is
exact and order-independent, so every backend must return identical
arrays for identical inputs.  The contract is enforced by the 5-engine
equivalence grid (``tests/integration/test_engine_equivalence.py``) and
the int32-state hypothesis property, which CI runs under every available
backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from ..._types import AnyArray
    from ..flood import FloodKernel

__all__ = ["BackendUnavailableError", "KernelBackend"]


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run in this environment.

    Raised by :func:`repro.sim.backends.get_backend` when a backend is
    requested *by exact name* through the low-level API and its
    availability probe fails (e.g. ``numba`` without numba installed).
    The high-level :func:`repro.sim.backends.resolve_backend` never
    raises this — it falls back to numpy with a one-time warning.
    """


@runtime_checkable
class KernelBackend(Protocol):
    """Compute provider behind :class:`repro.sim.flood.FloodKernel`.

    Implementations are stateless apart from memoization/warning caches,
    so one instance per backend name is shared by every kernel (see
    :func:`repro.sim.backends.get_backend`).  ``kernel`` gives access to
    the CSR layout (``indptr``/``indices``), the row count ``n``, the
    uniform-degree fast-path metadata, and the cached gather plans.
    """

    #: Registry name of the backend ("numpy", "numba", ...).
    name: str

    def neighbor_max(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        """``out[v] = max(sent[u] for u in N(v))`` over a 1-D value array."""
        ...

    def neighbor_max_batch(
        self, kernel: FloodKernel, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        """Row-wise neighbor-max over a ``(B, n)`` value matrix."""
        ...

    def neighbor_max_stacked(
        self, kernel: FloodKernel, values: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        """Neighbor-max over an ``(n, B)`` trials-as-columns matrix.

        Must handle both the uniform-degree layout and the general CSR
        layout; ``out`` (when given) never aliases ``values`` at engine
        call sites, but implementations must stay correct under aliasing
        (compute into a fresh buffer, then copy).
        """
        ...

"""Synchronous message-passing engine (the Section 2.1 computing model).

The engine advances all node programs in lockstep rounds: messages sent in
round ``r`` arrive at the start of round ``r + 1``.  Nodes can only send to
their ``G``-neighbors.  Crashed nodes neither run nor receive.

The engine is deliberately tiny and generic — the Byzantine counting agents,
the baselines' agents, and the Figure-1 attack scenario all run on it — and
it meters every delivered message so the agent and vectorized paths report
comparable communication costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from .._types import BoolArray, SeedLike
from .messages import Message
from .metrics import MessageMeter
from .node import NodeProgram, RoundContext
from .rng import make_rng, spawn

if TYPE_CHECKING:  # pragma: no cover
    from ..graphs.smallworld import SmallWorldNetwork

__all__ = ["SynchronousEngine"]


class SynchronousEngine:
    """Run :class:`NodeProgram` instances over a small-world network."""

    def __init__(
        self,
        network: "SmallWorldNetwork",
        programs: Mapping[int, NodeProgram],
        seed: SeedLike = 0,
    ) -> None:
        if set(programs.keys()) != set(range(network.n)):
            raise ValueError("programs must cover every node 0..n-1 exactly")
        self.network = network
        self.programs = dict(programs)
        self.meter = MessageMeter()
        self.round = 0
        self._pending: dict[int, list[tuple[int, Message]]] = {
            v: [] for v in range(network.n)
        }
        root = make_rng(seed)
        self._node_rngs = spawn(root, network.n)

    # ------------------------------------------------------------------
    def node_rng(self, v: int) -> np.random.Generator:
        return self._node_rngs[v]

    def step(self) -> None:
        """Execute one synchronous round for every non-crashed node."""
        self.round += 1
        self.meter.add_round()
        inboxes, self._pending = self._pending, {
            v: [] for v in range(self.network.n)
        }
        outboxes: list[tuple[int, int, Message]] = []
        for v in range(self.network.n):
            program = self.programs[v]
            if program.crashed:
                continue
            ctx = RoundContext(
                node=v,
                round=self.round,
                neighbors=self.network.g_neighbors(v),
                inbox=inboxes[v],
                rng=self._node_rngs[v],
            )
            program.on_round(ctx)
            for dest, msg in ctx.drain_outbox():
                outboxes.append((v, dest, msg))
        for sender, dest, msg in outboxes:
            if self.programs[dest].crashed:
                continue
            self._pending[dest].append((sender, msg))
            self.meter.add_messages(1, msg.id_count(), msg.bit_count())

    def run(
        self,
        rounds: int,
        *,
        stop_when: Callable[["SynchronousEngine"], bool] | None = None,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number executed."""
        for step_idx in range(rounds):
            self.step()
            if stop_when is not None and stop_when(self):
                return step_idx + 1
        return rounds

    def flush_pending(self) -> int:
        """Drop all undelivered messages (protocol epoch boundary).

        The counting protocol's subphases are independent experiments; a
        message sent in the last round of one must not leak into the next.
        Returns the number of dropped messages.
        """
        dropped = sum(len(msgs) for msgs in self._pending.values())
        self._pending = {v: [] for v in range(self.network.n)}
        return dropped

    # ------------------------------------------------------------------
    def crashed_mask(self) -> BoolArray:
        return np.array(
            [self.programs[v].crashed for v in range(self.network.n)], dtype=bool
        )

    def gather(self, attr: str, default: Any = None) -> list[Any]:
        """Collect ``getattr(program, attr)`` from every node program."""
        return [getattr(self.programs[v], attr, default) for v in range(self.network.n)]

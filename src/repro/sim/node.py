"""Node programs and the per-round execution context for the agent engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .messages import Message

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from .._types import AnyArray

__all__ = ["Inbox", "RoundContext", "NodeProgram"]


#: An inbox is a list of (sender, message) pairs delivered this round.
Inbox = list[tuple[int, Message]]


@dataclass
class RoundContext:
    """Everything a node may legitimately see in one synchronous round.

    ``neighbors`` is the node's **G**-adjacency (its physical ports); the
    protocol model forbids sending to anyone else, which :meth:`send`
    enforces.  ``rng`` is the node's private random stream.
    """

    node: int
    round: int
    neighbors: "AnyArray"
    inbox: Inbox
    rng: "np.random.Generator"
    _outbox: list[tuple[int, Message]] = field(default_factory=list)

    def send(self, dest: int, message: Message) -> None:
        """Queue ``message`` for delivery to neighbor ``dest`` next round."""
        if dest == self.node:
            raise ValueError("a node cannot send to itself")
        # Membership check against the physical ports.
        if not any(int(u) == dest for u in self.neighbors):
            raise ValueError(
                f"node {self.node} tried to send to non-neighbor {dest}"
            )
        self._outbox.append((dest, message))

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every G-neighbor."""
        for u in self.neighbors:
            self._outbox.append((int(u), message))

    def drain_outbox(self) -> list[tuple[int, Message]]:
        out, self._outbox = self._outbox, []
        return out


class NodeProgram:
    """Base class for per-node protocol logic.

    Subclasses override :meth:`on_round`; honest programs only use the
    context (Byzantine programs in :mod:`repro.adversary` are constructed
    with an engine back-reference, modelling the full-information model).
    """

    def on_round(self, ctx: RoundContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    #: Whether the node has crashed (stops sending and processing).
    crashed: bool = False

    def crash(self) -> None:
        self.crashed = True

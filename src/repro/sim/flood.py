"""Vectorized max-flooding kernel over CSR adjacency.

This is the hot path of the whole library: one protocol run performs
``Theta(log^3 n)`` flooding rounds, each of which computes, for every node,
the maximum of its neighbors' transmitted values.  Per the HPC guide, the
inner loop is replaced by a single gather + segmented reduction
(``np.maximum.reduceat``), giving O(n d) work per round with no Python-level
iteration.

Independent trials (seeds x configs) run the *same* adjacency, so the
kernel also offers :meth:`FloodKernel.neighbor_max_batch`: a ``(B, n)``
value matrix is flattened and gathered through tiled CSR offsets (trial
``b`` reads ``indices + b * n``, reduces at ``indptr[:-1] + b * nnz``), so
one ``reduceat`` call serves all ``B`` trials.  At experiment sizes a
single trial's arrays are small enough that numpy call overhead dominates;
batching amortizes it across trials (see ``benchmarks/bench_batch.py``).

Colors are positive integers; ``0`` is the sentinel for "nothing sent"
(crashed node, suppressed message), so a plain integer max implements
"ignore missing".
"""

from __future__ import annotations

import numpy as np

__all__ = ["FloodKernel"]


class FloodKernel:
    """Per-round neighbor-max over a fixed CSR adjacency.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency.  Every node must have degree >= 1 (true for both
        ``H`` and ``G``); this is validated once at construction so the
        per-round kernel can use ``reduceat`` unguarded.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        degrees = np.diff(indptr)
        if degrees.size and degrees.min() <= 0:
            raise ValueError("FloodKernel requires minimum degree >= 1")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.n = indptr.shape[0] - 1
        self._starts = self.indptr[:-1]
        # Tiled gather/reduce offsets for the batched kernel, built lazily
        # and cached for the last batch size seen (phases shrink the active
        # trial set, so a handful of sizes recur within one run).
        self._batch_plans: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Regular graphs (H is a d-regular multigraph) admit a much faster
        # batched kernel: per-neighbor-slot row gathers, no reduceat.
        self._uniform_degree = (
            int(degrees[0]) if degrees.size and degrees.min() == degrees.max() else 0
        )
        self._neighbor_cols: np.ndarray | None = None

    def neighbor_max(self, sent: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``out[v] = max(sent[u] for u in N(v))`` (0 if all neighbors silent)."""
        gathered = sent[self.indices]
        result = np.maximum.reduceat(gathered, self._starts)
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def _batch_plan(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        plan = self._batch_plans.get(batch)
        if plan is None:
            nnz = self.indices.shape[0]
            shifts = np.arange(batch, dtype=np.int64)[:, None]
            gather_idx = (self.indices[None, :] + shifts * self.n).reshape(-1)
            starts = (self._starts[None, :] + shifts * nnz).reshape(-1)
            plan = (gather_idx, starts)
            if len(self._batch_plans) >= 8:
                self._batch_plans.clear()
            self._batch_plans[batch] = plan
        return plan

    def neighbor_max_batch(
        self, sent: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Row-wise :meth:`neighbor_max` over a ``(B, n)`` value matrix.

        Equivalent to ``np.stack([self.neighbor_max(row) for row in sent])``
        but executed as one gather + one ``reduceat`` over the flattened
        matrix with tiled CSR offsets.  Segments never straddle trial
        boundaries: trial ``b``'s last segment ends exactly at ``(b+1)*nnz``,
        which is the next trial's first start.
        """
        sent = np.asarray(sent)
        if sent.ndim == 1:
            return self.neighbor_max(sent, out=out)
        if sent.ndim != 2 or sent.shape[1] != self.n:
            raise ValueError(
                f"expected a (B, {self.n}) matrix, got shape {sent.shape}"
            )
        batch = sent.shape[0]
        gather_idx, starts = self._batch_plan(batch)
        gathered = np.ascontiguousarray(sent).reshape(-1)[gather_idx]
        result = np.maximum.reduceat(gathered, starts).reshape(batch, self.n)
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def neighbor_max_stacked(
        self, values: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched neighbor-max over an ``(n, B)`` trials-as-columns matrix.

        This is the batched engine's hot kernel.  The transposed layout
        keeps each node's ``B`` trial values contiguous, so on a
        uniform-degree graph the reduction unrolls into ``degree`` row
        gathers combined with in-place ``np.maximum`` — several times
        faster than the segmented ``reduceat`` of :meth:`neighbor_max_batch`
        because the gather reads whole cache lines and the giant ``(B*nnz,)``
        intermediate disappears.  Non-regular graphs fall back to the
        general kernel (transpose in, transpose out).
        """
        values = np.asarray(values)
        if values.ndim != 2 or values.shape[0] != self.n:
            raise ValueError(
                f"expected an ({self.n}, B) matrix, got shape {values.shape}"
            )
        if not self._uniform_degree:
            result = self.neighbor_max_batch(np.ascontiguousarray(values.T)).T
            if out is not None:
                np.copyto(out, result)
                return out
            return np.ascontiguousarray(result)
        cols = self._cols()
        if self._uniform_degree == 1:
            result = values[cols[0]]
            if out is not None:
                np.copyto(out, result)
                return out
            return result
        result = np.maximum(values[cols[0]], values[cols[1]], out=out)
        for j in range(2, self._uniform_degree):
            np.maximum(result, values[cols[j]], out=result)
        return result

    def _cols(self) -> np.ndarray:
        """``(degree, n)`` array; row ``j`` holds every node's j-th neighbor."""
        if self._neighbor_cols is None:
            self._neighbor_cols = np.ascontiguousarray(
                self.indices.reshape(self.n, self._uniform_degree).T
            )
        return self._neighbor_cols

    def spread_steps(self, seed_values: np.ndarray, steps: int) -> np.ndarray:
        """Run ``steps`` rounds of running-max flooding from ``seed_values``.

        Every node forwards its running maximum each round; returns the
        final running-max array.  Used by baselines and tests; the protocol
        engines inline the loop because they need per-round records.
        """
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for _ in range(steps):
            recv = self.neighbor_max(cur)
            np.maximum(cur, recv, out=cur)
        return cur

    def rounds_to_saturation(self, seed_values: np.ndarray, limit: int = 10_000) -> int:
        """Number of rounds until running-max flooding reaches a fixed point."""
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for step in range(1, limit + 1):
            recv = self.neighbor_max(cur)
            nxt = np.maximum(cur, recv)
            if np.array_equal(nxt, cur):
                return step - 1
            cur = nxt
        raise RuntimeError(f"flooding did not saturate within {limit} rounds")

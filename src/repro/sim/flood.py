"""Vectorized max-flooding kernel over CSR adjacency.

This is the hot path of the whole library: one protocol run performs
``Theta(log^3 n)`` flooding rounds, each of which computes, for every node,
the maximum of its neighbors' transmitted values.  Per the HPC guide, the
inner loop is replaced by a single gather + segmented reduction
(``np.maximum.reduceat``), giving O(n d) work per round with no Python-level
iteration.

Colors are positive integers; ``0`` is the sentinel for "nothing sent"
(crashed node, suppressed message), so a plain integer max implements
"ignore missing".
"""

from __future__ import annotations

import numpy as np

__all__ = ["FloodKernel"]


class FloodKernel:
    """Per-round neighbor-max over a fixed CSR adjacency.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency.  Every node must have degree >= 1 (true for both
        ``H`` and ``G``); this is validated once at construction so the
        per-round kernel can use ``reduceat`` unguarded.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        degrees = np.diff(indptr)
        if degrees.size and degrees.min() <= 0:
            raise ValueError("FloodKernel requires minimum degree >= 1")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.n = indptr.shape[0] - 1
        self._starts = self.indptr[:-1]

    def neighbor_max(self, sent: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``out[v] = max(sent[u] for u in N(v))`` (0 if all neighbors silent)."""
        gathered = sent[self.indices]
        result = np.maximum.reduceat(gathered, self._starts)
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def spread_steps(self, seed_values: np.ndarray, steps: int) -> np.ndarray:
        """Run ``steps`` rounds of running-max flooding from ``seed_values``.

        Every node forwards its running maximum each round; returns the
        final running-max array.  Used by baselines and tests; the protocol
        engines inline the loop because they need per-round records.
        """
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for _ in range(steps):
            recv = self.neighbor_max(cur)
            np.maximum(cur, recv, out=cur)
        return cur

    def rounds_to_saturation(self, seed_values: np.ndarray, limit: int = 10_000) -> int:
        """Number of rounds until running-max flooding reaches a fixed point."""
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for step in range(1, limit + 1):
            recv = self.neighbor_max(cur)
            nxt = np.maximum(cur, recv)
            if np.array_equal(nxt, cur):
                return step - 1
            cur = nxt
        raise RuntimeError(f"flooding did not saturate within {limit} rounds")

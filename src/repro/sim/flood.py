"""Vectorized max-flooding kernel over CSR adjacency.

This is the hot path of the whole library: one protocol run performs
``Theta(log^3 n)`` flooding rounds, each of which computes, for every node,
the maximum of its neighbors' transmitted values.  Per the HPC guide, the
inner loop is replaced by a single gather + segmented reduction
(``np.maximum.reduceat``), giving O(n d) work per round with no Python-level
iteration.

Independent trials (seeds x configs) run the *same* adjacency, so the
kernel also offers :meth:`FloodKernel.neighbor_max_batch`: a ``(B, n)``
value matrix is flattened and gathered through tiled CSR offsets (trial
``b`` reads ``indices + b * n``, reduces at ``indptr[:-1] + b * nnz``), so
one ``reduceat`` call serves all ``B`` trials.  At experiment sizes a
single trial's arrays are small enough that numpy call overhead dominates;
batching amortizes it across trials (see ``benchmarks/bench_batch.py``).

Colors are positive integers; ``0`` is the sentinel for "nothing sent"
(crashed node, suppressed message), so a plain integer max implements
"ignore missing".

Batches may also span *different networks*: :class:`MultiFloodKernel` runs
``neighbor_max_stacked`` over a padded ``(n_pad, B)`` trials-as-columns
matrix in which every column belongs to one of several adjacencies (sizes
may differ — smaller networks occupy the live prefix of their columns, the
rest is padding).  The kernel masks the reduction to each column's live
prefix and zeroes the padding rows of the output, so a padding row can
never win a max or leak into a live column; networks of identical
``(n, d)`` shape that sit in adjacent column runs share one stacked gather
plan (per-column neighbor-index matrices), so re-sampled graphs of one
size amortize the kernel dispatch the way trials of one graph do.

For *rectangular* (network x seed) grids there is a stronger layout than
padding: :class:`UnionFloodKernel` stacks the networks block-diagonally on
the **row** axis (total rows = sum of the sizes; one column = one seed
shared by every network), so one plain :meth:`FloodKernel
.neighbor_max_stacked` call over the concatenated CSR floods *all* the
networks at once with zero padding rows, no per-segment scratch copies,
and no masked zeroing — the union of d-regular blocks is itself d-regular,
so the fast per-neighbor-slot row-gather path applies to the whole stack.
Blocks share no edges, so values can never cross a block boundary; the
per-network row segments (``offsets``) drive the engines' segment-wise
bookkeeping (decided counting, saturation, witness metering).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .._types import AnyArray, Int64Array, IntArray
from .backends import KernelBackend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable

    from ..graphs.smallworld import SmallWorldNetwork
    from .channel import ChannelState

__all__ = ["FloodKernel", "MultiFloodKernel", "UnionFloodKernel", "stack_union_csr"]


class FloodKernel:
    """Per-round neighbor-max over a fixed CSR adjacency.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency.  Every node must have degree >= 1 (true for both
        ``H`` and ``G``); this is validated once at construction so the
        per-round kernel can use ``reduceat`` unguarded.
    backend:
        Compute backend: a registered name (``"numpy"``, ``"numba"``),
        ``"auto"``, a :class:`~repro.sim.backends.KernelBackend`
        instance, or ``None`` (env override / auto — see
        :func:`repro.sim.backends.resolve_backend`).  Backends are
        bit-for-bit interchangeable; this selects speed, not semantics.
    """

    def __init__(
        self,
        indptr: IntArray,
        indices: IntArray,
        backend: str | KernelBackend | None = None,
    ) -> None:
        degrees = np.diff(indptr)
        if degrees.size and degrees.min() <= 0:
            raise ValueError("FloodKernel requires minimum degree >= 1")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.n = indptr.shape[0] - 1
        self._starts = self.indptr[:-1]
        # Tiled gather/reduce offsets for the batched kernel, built lazily
        # and cached for the last batch size seen (phases shrink the active
        # trial set, so a handful of sizes recur within one run).
        self._batch_plans: dict[int, tuple[Int64Array, Int64Array]] = {}
        # Regular graphs (H is a d-regular multigraph) admit a much faster
        # batched kernel: per-neighbor-slot row gathers, no reduceat.
        self._uniform_degree = (
            int(degrees[0]) if degrees.size and degrees.min() == degrees.max() else 0
        )
        self._neighbor_cols: Int64Array | None = None
        self._backend = resolve_backend(backend)

    @property
    def backend(self) -> str:
        """Name of the compute backend this kernel dispatches to."""
        return self._backend.name

    def neighbor_max(self, sent: AnyArray, out: AnyArray | None = None) -> AnyArray:
        """``out[v] = max(sent[u] for u in N(v))`` (0 if all neighbors silent)."""
        return self._backend.neighbor_max(self, sent, out)

    def invalidate_plans(self) -> None:
        """Drop every cached gather plan (batch plans, neighbor columns).

        Plans are pure functions of the CSR, so they only need dropping
        when the adjacency itself changes — :meth:`update_csr` calls this;
        long-lived holders (the resident churn engine) may also call it to
        release plan memory for an overlay going idle.
        """
        self._batch_plans.clear()
        self._neighbor_cols = None

    def update_csr(self, indptr: IntArray, indices: IntArray) -> None:
        """Re-point the kernel at a patched adjacency, keeping the backend.

        The resident churn engine (:mod:`repro.service`) patches overlay
        CSRs incrementally across epochs; rebinding the existing kernel
        revalidates the new adjacency, recomputes the degree metadata, and
        invalidates exactly the cached plans — cheaper than constructing a
        kernel per epoch and a precise answer to "which caches does a
        churn delta invalidate" (all plans of the mutated overlay, nothing
        else).
        """
        degrees = np.diff(indptr)
        if degrees.size and degrees.min() <= 0:
            raise ValueError("FloodKernel requires minimum degree >= 1")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.n = indptr.shape[0] - 1
        self._starts = self.indptr[:-1]
        self._uniform_degree = (
            int(degrees[0]) if degrees.size and degrees.min() == degrees.max() else 0
        )
        self.invalidate_plans()

    def _batch_plan(self, batch: int) -> tuple[Int64Array, Int64Array]:
        plan = self._batch_plans.get(batch)
        if plan is None:
            nnz = self.indices.shape[0]
            shifts = np.arange(batch, dtype=np.int64)[:, None]
            gather_idx = (self.indices[None, :] + shifts * self.n).reshape(-1)
            starts = (self._starts[None, :] + shifts * nnz).reshape(-1)
            plan = (gather_idx, starts)
            if len(self._batch_plans) >= 8:
                # Evict only the oldest entry (insertion order): clearing
                # the whole dict would make a 9th recurring batch size
                # thrash every cached plan.
                self._batch_plans.pop(next(iter(self._batch_plans)))
            self._batch_plans[batch] = plan
        return plan

    def neighbor_max_batch(
        self, sent: AnyArray, out: AnyArray | None = None
    ) -> AnyArray:
        """Row-wise :meth:`neighbor_max` over a ``(B, n)`` value matrix.

        Equivalent to ``np.stack([self.neighbor_max(row) for row in sent])``
        but executed as one gather + one ``reduceat`` over the flattened
        matrix with tiled CSR offsets.  Segments never straddle trial
        boundaries: trial ``b``'s last segment ends exactly at ``(b+1)*nnz``,
        which is the next trial's first start.
        """
        sent = np.asarray(sent)
        if sent.ndim == 1:
            return self.neighbor_max(sent, out=out)
        if sent.ndim != 2 or sent.shape[1] != self.n:
            raise ValueError(
                f"expected a (B, {self.n}) matrix, got shape {sent.shape}"
            )
        return self._backend.neighbor_max_batch(self, sent, out)

    def neighbor_max_stacked(
        self,
        values: AnyArray,
        out: AnyArray | None = None,
        *,
        channel: "ChannelState | None" = None,
    ) -> AnyArray:
        """Batched neighbor-max over an ``(n, B)`` trials-as-columns matrix.

        This is the batched engine's hot kernel.  The transposed layout
        keeps each node's ``B`` trial values contiguous, so on a
        uniform-degree graph the reduction unrolls into ``degree`` row
        gathers combined with in-place ``np.maximum`` — several times
        faster than the segmented ``reduceat`` of :meth:`neighbor_max_batch`
        because the gather reads whole cache lines and the giant ``(B*nnz,)``
        intermediate disappears.  Non-regular graphs fall back to the
        general kernel (transpose in, transpose out).

        When ``channel`` is given, the transmitted values are first passed
        through :meth:`repro.sim.channel.ChannelState.corrupt` (per-round
        drop/noise draws on a scratch copy; ``values`` is never written),
        so the gather operates on what the lossy medium delivered.  The
        corruption happens before backend dispatch, which keeps every
        backend bit-for-bit identical under channels by construction.
        """
        values = np.asarray(values)
        if values.ndim != 2 or values.shape[0] != self.n:
            raise ValueError(
                f"expected an ({self.n}, B) matrix, got shape {values.shape}"
            )
        if channel is not None:
            values = channel.corrupt(values)
        return self._backend.neighbor_max_stacked(self, values, out)

    def _cols(self) -> Int64Array:
        """``(degree, n)`` array; row ``j`` holds every node's j-th neighbor."""
        if self._neighbor_cols is None:
            self._neighbor_cols = np.ascontiguousarray(
                self.indices.reshape(self.n, self._uniform_degree).T
            )
        return self._neighbor_cols

    def spread_steps(self, seed_values: AnyArray, steps: int) -> Int64Array:
        """Run ``steps`` rounds of running-max flooding from ``seed_values``.

        Every node forwards its running maximum each round; returns the
        final running-max array.  Used by baselines and tests; the protocol
        engines inline the loop because they need per-round records.
        """
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for _ in range(steps):
            recv = self.neighbor_max(cur)
            np.maximum(cur, recv, out=cur)
        return cur

    def rounds_to_saturation(self, seed_values: AnyArray, limit: int = 10_000) -> int:
        """Number of rounds until running-max flooding reaches a fixed point."""
        cur = np.array(seed_values, dtype=np.int64, copy=True)
        for step in range(1, limit + 1):
            recv = self.neighbor_max(cur)
            nxt = np.maximum(cur, recv)
            if np.array_equal(nxt, cur):
                return step - 1
            cur = nxt
        raise RuntimeError(f"flooding did not saturate within {limit} rounds")


def stack_union_csr(
    networks: Iterable[SmallWorldNetwork],
) -> tuple[tuple[int, ...], Int64Array, Int64Array]:
    """Concatenate several H adjacencies into one block-diagonal CSR.

    Returns ``(sizes, indptr, indices)``: block ``g`` owns the row segment
    ``[sum(sizes[:g]), sum(sizes[:g+1]))`` and its neighbor indices are
    shifted into that segment, so the union references no row outside the
    owning block — flooding the union is exactly per-block flooding.
    """
    networks = list(networks)
    if not networks:
        raise ValueError("stack_union_csr needs at least one network")
    sizes = tuple(int(net.n) for net in networks)
    indptr_parts = [np.zeros(1, dtype=np.int64)]
    indices_parts: list[Int64Array] = []
    row_off = 0
    nnz_off = 0
    for net in networks:
        indptr = np.asarray(net.h.indptr, dtype=np.int64)
        indices = np.asarray(net.h.indices, dtype=np.int64)
        indptr_parts.append(indptr[1:] + nnz_off)
        indices_parts.append(indices + row_off)
        row_off += int(net.n)
        nnz_off += int(indices.shape[0])
    return sizes, np.concatenate(indptr_parts), np.concatenate(indices_parts)


class UnionFloodKernel(FloodKernel):
    """Block-diagonal union of several adjacencies as one flat CSR kernel.

    The zero-padding layout for rectangular (network x seed) batches: the
    member networks' H graphs are concatenated block-diagonally, so every
    round over an ``(N, B)`` trials-as-columns state (``N`` = total rows)
    is one ordinary :meth:`FloodKernel.neighbor_max_stacked` call — when
    every block is d-regular the union is d-regular too and the per-slot
    row-gather fast path covers the whole stack.  ``offsets[g]`` is block
    ``g``'s first row; :meth:`segment_count_nonzero` and
    :meth:`segment_sum` reduce an ``(N, B)`` matrix to per-(block, column)
    values for the engines' decided/saturation/witness bookkeeping.

    Blocks share no edges by construction, so no value can cross a block
    boundary (enforced by ``tests/property/test_unionstack_properties.py``).
    """

    def __init__(
        self,
        sizes: Iterable[int],
        indptr: IntArray,
        indices: IntArray,
        backend: str | KernelBackend | None = None,
    ) -> None:
        super().__init__(indptr, indices, backend=backend)
        self.sizes = tuple(int(s) for s in sizes)
        if not self.sizes:
            raise ValueError("UnionFloodKernel needs at least one block")
        if sum(self.sizes) != self.n:
            raise ValueError(
                f"block sizes sum to {sum(self.sizes)} but the union CSR has "
                f"{self.n} rows"
            )
        self.offsets = np.concatenate(
            [[0], np.cumsum(np.asarray(self.sizes, dtype=np.int64))]
        ).astype(np.int64)

    @classmethod
    def from_networks(
        cls,
        networks: Iterable[SmallWorldNetwork],
        backend: str | KernelBackend | None = None,
    ) -> "UnionFloodKernel":
        """Build the union kernel by stacking the networks' H CSRs."""
        sizes, indptr, indices = stack_union_csr(networks)
        return cls(sizes, indptr, indices, backend=backend)

    @property
    def blocks(self) -> int:
        return len(self.sizes)

    def segment_count_nonzero(
        self, values: AnyArray, out: Int64Array | None = None
    ) -> Int64Array:
        """Per-(block, column) nonzero counts of an ``(N, B)`` matrix.

        One segmented ``reduceat`` over ``values != 0``, mirroring
        :meth:`segment_sum` — the per-block Python loop this replaces cost
        a kernel dispatch per block per round.
        """
        counts = np.add.reduceat(values != 0, self.offsets[:-1], axis=0, dtype=np.int64)
        if out is None:
            return counts
        np.copyto(out, counts)
        return out

    def segment_sum(self, values: AnyArray) -> AnyArray:
        """Per-(block, column) sums of an ``(N, B)`` numeric matrix.

        One segmented ``reduceat`` over the row axis; the block offsets
        are the segment boundaries, so the result's row ``g`` aggregates
        exactly block ``g``'s rows.
        """
        return np.add.reduceat(values, self.offsets[:-1], axis=0)


#: Column runs narrower than this are candidates for merging into one
#: stacked gather with adjacent same-(n, d) runs: a handful of columns per
#: graph cannot amortize a kernel call, so re-samples pool their columns.
#: Wider runs keep the (faster) per-network row-gather path.
_MERGE_MAX_RUN = 16


class _ColumnSegment:
    """One contiguous column span of a :class:`MultiFloodKernel` plan."""

    __slots__ = ("lo", "hi", "n", "kernel", "idx", "ccols")

    def __init__(
        self,
        lo: int,
        hi: int,
        n: int,
        kernel: FloodKernel | None = None,
        idx: list[Int64Array] | None = None,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.n = n
        self.kernel = kernel  # single-network run: dispatch to this kernel
        self.idx = idx  # merged shape group: per-slot (n, width) gathers
        # Column broadcast for the merged-gather path, built once at
        # plan-build time (plans are cached; rebuilding this every merged
        # segment every round cost an allocation per kernel call).
        self.ccols: Int64Array | None = (
            np.arange(hi - lo, dtype=np.int64)[None, :] if idx is not None else None
        )


class _ColumnPlan:
    """Frozen per-phase dispatch plan for one live-column assignment."""

    __slots__ = ("batch", "segments")

    def __init__(self, batch: int, segments: list[_ColumnSegment]) -> None:
        self.batch = batch
        self.segments = segments


class MultiFloodKernel:
    """Per-round neighbor-max for a padded multi-network column batch.

    Parameters
    ----------
    networks:
        The distinct networks whose trials share one padded
        ``(n_pad, B)`` trials-as-columns state matrix (``n_pad`` is the
        largest ``n``).  Column-to-network assignment is provided per
        phase via :meth:`column_plan` (live columns change as trials
        finish).

    The padding contract: rows at or beyond a column's network size are
    *padding* — the kernel never reads a padding row of a live prefix's
    neighborhood (each network's adjacency only references its own
    ``0..n-1``) and always writes ``0`` into the padding rows of the
    output, so iterated flooding keeps padding identically zero and a
    padding value can never win a max (enforced by
    ``tests/property/test_padding_properties.py``).
    """

    def __init__(
        self,
        networks: Iterable[SmallWorldNetwork],
        backend: str | KernelBackend | None = None,
        kernels: list[FloodKernel] | None = None,
    ) -> None:
        networks = list(networks)
        if kernels is not None:
            # Adopt pre-built member kernels (the resident churn engine
            # keeps one warm FloodKernel per overlay and shares it here so
            # its cached gather plans survive across epochs).  Mutually
            # exclusive with an explicit backend; members must already
            # match the networks' adjacencies.
            if backend is not None:
                raise ValueError(
                    "pass either backend or pre-built kernels, not both "
                    "(the kernels already carry their backend)"
                )
            if len(kernels) != len(networks):
                raise ValueError(
                    f"got {len(kernels)} kernels for {len(networks)} networks"
                )
            for kern, net in zip(kernels, networks):
                if kern.n != net.n:
                    raise ValueError(
                        f"kernel has {kern.n} rows but its network has "
                        f"{net.n} nodes"
                    )
            resolved = kernels[0]._backend if kernels else resolve_backend(None)
            self.kernels = kernels
        else:
            # Resolve once so every member kernel shares one backend
            # instance (and the env lookup happens once, not per network).
            resolved = resolve_backend(backend)
            self.kernels = [
                FloodKernel(net.h.indptr, net.h.indices, backend=resolved)
                for net in networks
            ]
        self.sizes = tuple(int(net.n) for net in networks)
        self.degrees = tuple(int(net.d) for net in networks)
        self.n_pad = max(self.sizes) if self.sizes else 0
        self._backend = resolved
        self._plan_cache: dict[bytes, _ColumnPlan] = {}

    @property
    def backend(self) -> str:
        """Name of the compute backend shared by the member kernels."""
        return self._backend.name

    def invalidate_plans(self) -> None:
        """Drop every cached column plan and the member kernels' plans.

        Column plans hold per-graph gather matrices, so they are stale the
        moment any member adjacency changes; the resident churn engine
        calls this after patching an overlay the kernel serves.
        """
        self._plan_cache.clear()
        for kernel in self.kernels:
            kernel.invalidate_plans()

    # ------------------------------------------------------------------
    def column_plan(self, col_net: IntArray) -> _ColumnPlan:
        """Build (and cache) the dispatch plan for one column assignment.

        ``col_net`` maps each live column to its network index; columns of
        one network should sit in contiguous runs (the batch engines sort
        trials network-major), but scattered assignments only cost extra
        segments, never correctness.
        """
        col_net = np.ascontiguousarray(col_net, dtype=np.int64)
        key = col_net.tobytes()
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        runs: list[tuple[int, int, int]] = []  # (net, lo, hi)
        batch = col_net.shape[0]
        lo = 0
        for b in range(1, batch + 1):
            if b == batch or col_net[b] != col_net[lo]:
                runs.append((int(col_net[lo]), lo, b))
                lo = b
        segments: list[_ColumnSegment] = []
        group: list[tuple[int, int, int]] = []
        for run in runs + [(-1, -1, -1)]:  # sentinel flushes the last group
            if group and not self._mergeable(group[-1], run):
                segments.append(self._segment(group))
                group = []
            group.append(run)
        if len(self._plan_cache) >= 16:
            # Evict only the oldest assignment, mirroring
            # FloodKernel._batch_plan: recurring live-column sets must not
            # flush each other out wholesale.
            self._plan_cache.pop(next(iter(self._plan_cache)))
        plan = _ColumnPlan(batch, segments)
        self._plan_cache[key] = plan
        return plan

    def _mergeable(self, a: tuple[int, int, int], b: tuple[int, int, int]) -> bool:
        """Adjacent runs merge when both are narrow re-samples of one shape."""
        if b[0] < 0:  # sentinel
            return False
        ka, kb = self.kernels[a[0]], self.kernels[b[0]]
        return (
            a[0] != b[0]
            and self.sizes[a[0]] == self.sizes[b[0]]
            and ka._uniform_degree > 1
            and ka._uniform_degree == kb._uniform_degree
            and (a[2] - a[1]) <= _MERGE_MAX_RUN
            and (b[2] - b[1]) <= _MERGE_MAX_RUN
        )

    def _segment(self, group: list[tuple[int, int, int]]) -> _ColumnSegment:
        lo, hi = group[0][1], group[-1][2]
        n = self.sizes[group[0][0]]
        if len(group) == 1:
            return _ColumnSegment(lo, hi, n, kernel=self.kernels[group[0][0]])
        # One shape group of re-sampled graphs: stack each kernel's
        # per-slot neighbor columns into (n, width) index matrices so a
        # single fancy gather serves every graph in the group.
        degree = self.kernels[group[0][0]]._uniform_degree
        idx: list[Int64Array] = []
        for j in range(degree):
            parts = [
                np.broadcast_to(
                    self.kernels[g]._cols()[j][:, None], (n, g_hi - g_lo)
                )
                for g, g_lo, g_hi in group
            ]
            idx.append(np.ascontiguousarray(np.concatenate(parts, axis=1)))
        return _ColumnSegment(lo, hi, n, idx=idx)

    # ------------------------------------------------------------------
    def neighbor_max_stacked(
        self,
        values: AnyArray,
        plan: _ColumnPlan,
        out: AnyArray | None = None,
        *,
        channel: "ChannelState | None" = None,
    ) -> AnyArray:
        """Masked batched neighbor-max over the padded ``(n_pad, B)`` state.

        Column ``b``'s live prefix receives its own network's neighbor
        maxima; its padding rows are written to ``0`` (never read by any
        live reduction), so padding cannot leak into live columns.

        ``channel`` applies per-round drop/noise corruption to a scratch
        copy of ``values`` before the masked gathers (see
        :meth:`FloodKernel.neighbor_max_stacked`); the channel's slots are
        sized to each column's live prefix, so padding rows consume no
        draws and stay identically zero.
        """
        if channel is not None:
            values = channel.corrupt(values)
        if values.ndim != 2 or values.shape[0] != self.n_pad:
            raise ValueError(
                f"expected an ({self.n_pad}, B) matrix, got shape {values.shape}"
            )
        if values.shape[1] != plan.batch:
            raise ValueError(
                f"plan covers {plan.batch} columns, state has {values.shape[1]}"
            )
        if out is None:
            out = np.empty_like(values)
        for seg in plan.segments:
            sub = values[: seg.n, seg.lo : seg.hi]
            dst = out[: seg.n, seg.lo : seg.hi]
            # Column-sliced views are row-strided; the row-gather kernels
            # lose ~2x on them, and one small memcpy through a contiguous
            # scratch buys that back (measured: scratch ~= contiguous).
            contiguous = sub.flags["C_CONTIGUOUS"]
            src = sub if contiguous else np.ascontiguousarray(sub)
            if seg.kernel is not None:
                if contiguous:
                    seg.kernel.neighbor_max_stacked(src, out=dst)
                else:
                    np.copyto(dst, seg.kernel.neighbor_max_stacked(src))
            else:
                ccols = seg.ccols
                res = np.maximum(src[seg.idx[0], ccols], src[seg.idx[1], ccols])
                for j in range(2, len(seg.idx)):
                    np.maximum(res, src[seg.idx[j], ccols], out=res)
                np.copyto(dst, res)
            if seg.n < self.n_pad:
                out[seg.n :, seg.lo : seg.hi] = 0
        return out

"""Tests for the dynamic-network (churn) extension."""

import numpy as np
import pytest

from repro.core import CountingConfig
from repro.extensions import track_size_over_epochs


class TestTrajectory:
    def test_tracks_growth(self):
        report = track_size_over_epochs(
            [256, 512, 1024], d=8, adversary="honest", churn_rate=0.1, seed=1,
            config=CountingConfig(max_phase=20),
        )
        assert len(report) == 3
        assert report.tracks_growth()
        assert report.always_in_band(0.9)

    def test_tracks_shrink(self):
        report = track_size_over_epochs(
            [1024, 256], d=8, adversary="honest", churn_rate=0.0, seed=2,
            config=CountingConfig(max_phase=20),
        )
        assert report.records[1].median_phase <= report.records[0].median_phase

    def test_under_attack(self):
        report = track_size_over_epochs(
            [512, 1024], d=8, adversary="early-stop", delta=0.5,
            churn_rate=0.2, seed=3, config=CountingConfig(max_phase=20),
        )
        for rec in report.records:
            assert rec.fraction_decided == 1.0
            assert rec.byz_count > 0
        assert report.always_in_band(0.85)

    def test_churn_counts_recorded(self):
        report = track_size_over_epochs(
            [500], d=8, adversary="honest", churn_rate=0.25, seed=4,
            config=CountingConfig(max_phase=20),
        )
        assert report.records[0].churned == 125

    def test_validation(self):
        with pytest.raises(ValueError, match="epoch"):
            track_size_over_epochs([])
        with pytest.raises(ValueError, match="churn_rate"):
            track_size_over_epochs([128], churn_rate=1.5)

    def test_epoch_records_fields(self):
        report = track_size_over_epochs(
            [256], d=8, adversary="honest", seed=5,
            config=CountingConfig(max_phase=20),
        )
        rec = report.records[0]
        assert rec.n == 256
        assert rec.log2_n == pytest.approx(8.0)
        assert rec.rounds > 0
        assert np.isfinite(rec.median_phase)

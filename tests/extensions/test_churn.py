"""Tests for the dynamic-network (churn) extension."""

import math

import numpy as np
import pytest

from repro.adversary.placement import placement_for_delta
from repro.core import CountingConfig
from repro.core.basic_counting import run_basic_counting
from repro.core.byzantine_counting import run_byzantine_counting
from repro.core.estimator import make_adversary, practical_band
from repro.extensions import track_size_over_epochs
from repro.graphs import build_small_world
from repro.sim.rng import derive_seed


class TestTrajectory:
    def test_tracks_growth(self):
        report = track_size_over_epochs(
            [256, 512, 1024], d=8, adversary="honest", churn_rate=0.1, seed=1,
            config=CountingConfig(max_phase=20),
        )
        assert len(report) == 3
        assert report.tracks_growth()
        assert report.always_in_band(0.9)

    def test_tracks_shrink(self):
        report = track_size_over_epochs(
            [1024, 256], d=8, adversary="honest", churn_rate=0.0, seed=2,
            config=CountingConfig(max_phase=20),
        )
        assert report.records[1].median_phase <= report.records[0].median_phase

    def test_under_attack(self):
        report = track_size_over_epochs(
            [512, 1024], d=8, adversary="early-stop", delta=0.5,
            churn_rate=0.2, seed=3, config=CountingConfig(max_phase=20),
        )
        for rec in report.records:
            assert rec.fraction_decided == 1.0
            assert rec.byz_count > 0
        assert report.always_in_band(0.85)

    def test_churn_counts_recorded(self):
        report = track_size_over_epochs(
            [500], d=8, adversary="honest", churn_rate=0.25, seed=4,
            config=CountingConfig(max_phase=20),
        )
        assert report.records[0].churned == 125

    def test_churn_count_rounds_half_up(self):
        # The churned count is floor(rate * n + 0.5): an exact .5 always
        # rounds up.  Python's round() would give 64 for 0.25 * 258
        # (banker's rounding toward even) — pin the half-up rule on sizes
        # whose product lands exactly on .5 with both parities.
        report = track_size_over_epochs(
            [258, 262], d=8, adversary="honest", churn_rate=0.25, seed=4,
            config=CountingConfig(max_phase=16),
        )
        # 0.25 * 258 = 64.5 -> 65 (round() says 64); 0.25 * 262 = 65.5
        # -> 66 (round() agrees: 66) — the first case is discriminating.
        assert [rec.churned for rec in report.records] == [65, 66]

    def test_validation(self):
        with pytest.raises(ValueError, match="epoch"):
            track_size_over_epochs([])
        with pytest.raises(ValueError, match="churn_rate"):
            track_size_over_epochs([128], churn_rate=1.5)

    def test_honest_mode_records_zero_byz_count(self):
        # Regression: honest-mode runs ignore the Byzantine set entirely,
        # so records must report byz_count=0 — previously the (unused)
        # placement's size leaked into the record.
        report = track_size_over_epochs(
            [256, 512], d=8, adversary="honest", delta=0.5, seed=6,
            config=CountingConfig(max_phase=20),
        )
        assert [rec.byz_count for rec in report.records] == [0, 0]

    def test_epoch_records_fields(self):
        report = track_size_over_epochs(
            [256], d=8, adversary="honest", seed=5,
            config=CountingConfig(max_phase=20),
        )
        rec = report.records[0]
        assert rec.n == 256
        assert rec.log2_n == pytest.approx(8.0)
        assert rec.rounds > 0
        assert np.isfinite(rec.median_phase)


class TestScalarEquivalence:
    """The resident-engine rewire changed execution, not results.

    Every epoch record must match the scalar per-epoch path this module
    originally ran: build the epoch network, draw the placement with the
    same derive_seed keys, and run ``run_basic_counting`` /
    ``run_byzantine_counting`` directly.
    """

    @pytest.mark.parametrize("adversary", ["honest", "early-stop", "inflation"])
    def test_records_match_scalar_per_epoch_runs(self, adversary):
        sizes = [64, 96, 128, 96]
        d, delta, churn_rate, seed = 4, 0.5, 0.1, 5
        config = CountingConfig(max_phase=14)
        report = track_size_over_epochs(
            sizes, d, delta=delta, adversary=adversary,
            churn_rate=churn_rate, config=config, seed=seed,
        )
        band = practical_band(d)
        for epoch, n in enumerate(sizes):
            net = build_small_world(n, d, seed=derive_seed(seed, "epoch-net", epoch))
            churned = int(math.floor(churn_rate * n + 0.5))  # half-up, like the module
            run_seed = derive_seed(seed, "epoch-run", epoch, churned)
            byz = None
            if adversary != "honest":
                placed = placement_for_delta(
                    net, delta, rng=derive_seed(seed, "epoch-byz", epoch)
                )
                if placed.any():
                    byz = placed
            if byz is not None:
                result = run_byzantine_counting(
                    net, make_adversary(adversary), byz,
                    config=config, seed=run_seed,
                )
            else:
                result = run_basic_counting(net, config=config, seed=run_seed)
            rec = report.records[epoch]
            _, med, _ = result.decision_quantiles()
            assert rec.churned == churned
            assert rec.byz_count == (0 if byz is None else int(byz.sum()))
            assert rec.median_phase == med
            assert rec.fraction_in_band == result.fraction_in_band(*band)
            assert rec.fraction_decided == result.fraction_decided()
            assert rec.rounds == result.meter.rounds

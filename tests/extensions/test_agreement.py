"""Tests for the counting -> agreement pipeline extension."""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import CountingConfig, make_adversary, run_byzantine_counting
from repro.extensions import run_ae_agreement
from repro.graphs import build_small_world
from repro.sim.rng import make_rng


@pytest.fixture(scope="module")
def net():
    return build_small_world(512, 8, seed=29)


class TestHonestAgreement:
    def test_clear_majority_converges(self, net):
        rng = make_rng(1)
        inputs = (rng.random(net.n) < 0.7).astype(np.int8)
        budgets = np.full(net.n, 10, dtype=np.int64)
        res = run_ae_agreement(net, inputs, budgets, seed=2)
        assert res.almost_everywhere
        assert res.validity
        assert res.agreed_value == 1

    def test_unanimous_stays(self, net):
        inputs = np.ones(net.n, dtype=np.int8)
        budgets = np.full(net.n, 5, dtype=np.int64)
        res = run_ae_agreement(net, inputs, budgets, seed=2)
        assert res.agreement_fraction == 1.0
        assert res.agreed_value == 1

    def test_zero_budget_freezes_inputs(self, net):
        rng = make_rng(3)
        inputs = (rng.random(net.n) < 0.6).astype(np.int8)
        budgets = np.zeros(net.n, dtype=np.int64)
        res = run_ae_agreement(net, inputs, budgets, seed=2)
        assert np.array_equal(res.final_bits, inputs)


class TestByzantineAgreement:
    def test_minority_pushers_fail_against_clear_majority(self, net):
        rng = make_rng(4)
        inputs = (rng.random(net.n) < 0.75).astype(np.int8)
        byz = placement_for_delta(net, 0.5, rng=5)
        budgets = np.full(net.n, 12, dtype=np.int64)
        res = run_ae_agreement(net, inputs, budgets, byz, strategy="minority", seed=2)
        assert res.almost_everywhere
        assert res.validity

    @pytest.mark.parametrize("strategy", ["split", "silent"])
    def test_other_strategies(self, net, strategy):
        rng = make_rng(6)
        inputs = (rng.random(net.n) < 0.8).astype(np.int8)
        byz = placement_for_delta(net, 0.5, rng=5)
        budgets = np.full(net.n, 12, dtype=np.int64)
        res = run_ae_agreement(net, inputs, budgets, byz, strategy=strategy, seed=2)
        assert res.almost_everywhere

    def test_unknown_strategy_rejected(self, net):
        with pytest.raises(ValueError, match="strategy"):
            run_ae_agreement(
                net,
                np.ones(net.n, dtype=np.int8),
                np.ones(net.n, dtype=np.int64),
                np.zeros(net.n, dtype=bool),
                strategy="chaos",
            )

    def test_shape_validation(self, net):
        with pytest.raises(ValueError, match="shape"):
            run_ae_agreement(net, np.ones(3, dtype=np.int8), np.ones(net.n))


class TestPipeline:
    def test_counting_estimates_feed_agreement(self, net):
        """The full Section 1.1 story: count under attack, then agree."""
        byz = placement_for_delta(net, 0.5, rng=7)
        counting = run_byzantine_counting(
            net, make_adversary("early-stop"), byz,
            config=CountingConfig(max_phase=24), seed=8,
        )
        # Round budget per node: c * its own estimate (c=3 covers the
        # constant-factor gap between phase and log n).
        budgets = np.maximum(counting.decided_phase, 1) * 3
        rng = make_rng(9)
        inputs = (rng.random(net.n) < 0.7).astype(np.int8)
        res = run_ae_agreement(net, inputs, budgets, byz, strategy="minority", seed=10)
        assert res.almost_everywhere
        assert res.validity

"""Cross-validation: the vectorized and agent engines must agree exactly.

Both engines consume the same randomness in the same order, so for any
seed, network and adversary they must produce identical per-node decisions
and crash sets (DESIGN.md §2.1).  This is the strongest correctness check
in the suite: it ties the rule-level verification semantics of the fast
path to the message-level machinery of the agent path.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import CountingConfig, make_adversary
from repro.core.agents import run_counting_agents
from repro.core.runner import run_counting
from repro.graphs import build_small_world

STRATEGIES = [
    "honest",
    "early-stop",
    "inflation",
    "suppression",
    "silent",
    "adaptive-record",
    "combo",
    "topology-liar",
]


@pytest.fixture(scope="module")
def net():
    return build_small_world(160, 8, seed=21)


@pytest.fixture(scope="module")
def byz(net):
    return placement_for_delta(net, 0.55, rng=9)


CFG = CountingConfig(max_phase=14)


class TestAlgorithm1Equivalence:
    def test_no_adversary(self, net):
        cfg = CFG.with_(verification=False)
        a = run_counting(net, cfg, seed=5)
        b = run_counting_agents(net, cfg, seed=5)
        assert np.array_equal(a.decided_phase, b.decided_phase)

    def test_multiple_seeds(self, net):
        cfg = CFG.with_(verification=False)
        for seed in (1, 2):
            a = run_counting(net, cfg, seed=seed)
            b = run_counting_agents(net, cfg, seed=seed)
            assert np.array_equal(a.decided_phase, b.decided_phase)


class TestAlgorithm2Equivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategy(self, net, byz, strategy):
        a = run_counting(
            net, CFG, seed=5, adversary=make_adversary(strategy), byz_mask=byz
        )
        b = run_counting_agents(
            net, CFG, seed=5, adversary=make_adversary(strategy), byz_mask=byz
        )
        assert np.array_equal(a.crashed, b.crashed)
        assert np.array_equal(a.decided_phase, b.decided_phase)

    def test_verification_off_equivalence(self, net, byz):
        cfg = CFG.with_(verification=False, max_phase=8)
        a = run_counting(
            net, cfg, seed=5, adversary=make_adversary("inflation"), byz_mask=byz
        )
        b = run_counting_agents(
            net, cfg, seed=5, adversary=make_adversary("inflation"), byz_mask=byz
        )
        assert np.array_equal(a.decided_phase, b.decided_phase)


class TestAgentMessageAccounting:
    def test_agent_engine_meters_messages(self, net, byz):
        res = run_counting_agents(
            net, CFG, seed=5, adversary=make_adversary("early-stop"), byz_mask=byz
        )
        assert res.meter.messages > 0
        assert res.meter.max_message_ids >= net.d  # adjacency claims carry d IDs

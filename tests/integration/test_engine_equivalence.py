"""Cross-engine equivalence: all five engines must agree on the same cells.

The library executes the counting protocol through five independent
implementations:

* ``agents`` — the message-level path: :func:`repro.core.agents
  .run_counting_agents` drives real :class:`~repro.sim.node.NodeProgram`
  objects over the :class:`~repro.sim.engine.SynchronousEngine`;
* ``runner`` — the vectorized reference engine
  (:func:`repro.core.runner.run_counting`);
* ``batch`` — the trials-as-columns batched engine
  (:func:`repro.core.batch.run_counting_batch`);
* ``multinet`` — the padded multi-network batch
  (:func:`repro.core.batch.run_counting_multinet`), exercised here with a
  decoy network of a *different size* sharing the batch, so the cell under
  test runs in a padded column;
* ``union`` — the zero-padding union-stack batch
  (:func:`repro.core.batch.run_counting_unionstack`), exercised with the
  same decoy as a second block-diagonal row block and an extra decoy seed
  column, so the cell under test runs as one segment of a shared column.

All five consume the same randomness in the same order, so for any
(network, config, strategy, seed) cell they must produce identical
per-node decisions and crash sets (DESIGN.md §2.1); the four vectorized
engines must additionally match bit-for-bit on meters, traces, and
injection counters.  One parametrized grid pins every cell across every
engine through one shared helper — this is the strongest correctness
check in the suite, and the harness CI runs in its own job step so
padding and union-segment regressions fail loudly.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import CountingConfig, make_adversary
from repro.core.agents import run_counting_agents
from repro.core.batch import (
    run_counting_batch,
    run_counting_multinet,
    run_counting_unionstack,
)
from repro.core.runner import run_counting
from repro.graphs import build_small_world
from repro.sim.backends import available_backends
from repro.sim.channel import ChannelModel

STRATEGIES = [
    "honest",
    "early-stop",
    "inflation",
    "suppression",
    "silent",
    "adaptive-record",
    "combo",
    "topology-liar",
]

CFG = CountingConfig(max_phase=14)

#: The fixture grid: every (config, strategy) cell runs on every engine.
#: ``strategy=None`` is plain Algorithm 1 (no adversary object at all).
CELLS = (
    [("alg1", CFG.with_(verification=False), None, 5)]
    + [("alg1-seed2", CFG.with_(verification=False), None, 2)]
    + [(f"alg2-{s}", CFG, s, 5) for s in STRATEGIES]
    + [("alg2-no-verification", CFG.with_(verification=False, max_phase=8), "inflation", 5)]
)
CELL_IDS = [c[0] for c in CELLS]

#: Engines beyond the ``runner`` reference.  ``full`` marks engines whose
#: results must match bit-for-bit (meters, traces, injection counters);
#: the message-level agents path meters messages differently by design,
#: so it is pinned on decisions and crash sets.
ENGINES = [("agents", False), ("batch", True), ("multinet", True), ("union", True)]


@pytest.fixture(scope="module")
def net():
    return build_small_world(160, 8, seed=21)


@pytest.fixture(scope="module")
def decoy():
    """A smaller same-degree network that pads the multinet batch."""
    return build_small_world(96, 8, seed=33)


@pytest.fixture(scope="module")
def byz(net):
    return placement_for_delta(net, 0.55, rng=9)


@pytest.fixture(scope="module")
def reference(net, byz):
    """Memoized ``runner`` results, one per grid cell."""
    cache = {}

    def get(name, cfg, strategy, seed):
        if name not in cache:
            cache[name] = run_cell("runner", net, decoy_net=None, byz=byz,
                                   cfg=cfg, strategy=strategy, seed=seed)
        return cache[name]

    return get


def run_cell(engine, net, *, decoy_net, byz, cfg, strategy, seed, backend=None,
             channel=None):
    """Execute one (network, config, strategy, seed) cell on one engine.

    This is the single shared entry point every equivalence test goes
    through; adding an engine or a cell extends the grid, not the tests.
    ``backend`` selects the flood-kernel compute backend on the batched
    engines (batch/multinet/union); the runner and agents paths have no
    kernel backend axis.  ``channel`` (a
    :class:`~repro.sim.channel.ChannelModel`) likewise exists only on the
    batched engines.
    """
    mask = byz if strategy is not None else None
    if engine == "runner":
        adversary = make_adversary(strategy) if strategy is not None else None
        return run_counting(net, cfg, seed=seed, adversary=adversary, byz_mask=mask)
    if engine == "agents":
        adversary = make_adversary(strategy) if strategy is not None else None
        return run_counting_agents(
            net, cfg, seed=seed, adversary=adversary, byz_mask=mask
        )
    if engine == "batch":
        factory = (
            (lambda: make_adversary(strategy)) if strategy is not None else None
        )
        return run_counting_batch(
            net, [seed], config=cfg, adversary_factory=factory, byz_mask=mask,
            backend=backend, channel=channel,
        )[0]
    if engine == "multinet":
        # The cell under test shares a padded batch with a decoy trial on
        # a smaller network, so its column carries real padding rows.
        factory = (
            (lambda: make_adversary(strategy)) if strategy is not None else None
        )
        masks = [None, mask] if factory is not None else None
        out = run_counting_multinet(
            [decoy_net, net],
            [seed + 1000, seed],
            config=cfg,
            adversary_factory=factory,
            byz_mask=masks,
            backend=backend,
            channel=channel,
        )
        return out[1]
    if engine == "union":
        # The cell under test is one row segment of a block-diagonal
        # union stack: the decoy network is a second block and a decoy
        # seed a second column, so the cell's column is genuinely shared
        # across blocks.  Results are network-major: (block 1, column 1).
        factory = (
            (lambda: make_adversary(strategy)) if strategy is not None else None
        )
        masks = [None, mask] if factory is not None else None
        out = run_counting_unionstack(
            [decoy_net, net],
            [seed + 1000, seed],
            config=cfg,
            adversary_factory=factory,
            byz_mask=masks,
            backend=backend,
            channel=channel,
        )
        return out[1 * 2 + 1]
    raise ValueError(f"unknown engine {engine!r}")


def assert_cell_equal(ref, got, *, full: bool):
    """The shared equivalence assertion (decisions always; state if full)."""
    assert np.array_equal(ref.decided_phase, got.decided_phase)
    assert np.array_equal(ref.crashed, got.crashed)
    if full:
        assert np.array_equal(ref.byz, got.byz)
        assert ref.meter.as_dict() == got.meter.as_dict()
        assert list(ref.trace) == list(got.trace)
        assert ref.injections_accepted == got.injections_accepted
        assert ref.injections_rejected == got.injections_rejected


class TestEngineGrid:
    """Every grid cell, on every engine, against the runner reference.

    The ``backend`` axis reruns the batched engines under every kernel
    backend available on this machine (numpy always; numba when
    installed), pinning each backend bit-for-bit against the scalar
    runner.  The agents engine has no kernel backend, so only its
    default-backend cells run.
    """

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("engine,full", ENGINES, ids=[e for e, _ in ENGINES])
    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_cell(self, net, decoy, byz, reference, cell, engine, full, backend):
        if engine == "agents" and backend != "numpy":
            pytest.skip("the agents engine has no kernel backend axis")
        name, cfg, strategy, seed = cell
        ref = reference(name, cfg, strategy, seed)
        got = run_cell(
            engine, net, decoy_net=decoy, byz=byz, cfg=cfg, strategy=strategy,
            seed=seed, backend=backend,
        )
        assert_cell_equal(ref, got, full=full)


#: Every way to spell "no channel effect": all-zero, noise probability
#: with zero amplitude, amplitude with zero probability.
NULL_CHANNELS = [
    ChannelModel(),
    ChannelModel(noise_p=0.7, noise_amp=0),
    ChannelModel(noise_p=0.0, noise_amp=4),
]
NULL_CHANNEL_IDS = ["all-zero", "zero-amp", "zero-prob"]


class TestLosslessChannelGrid:
    """A null channel must be invisible: bit-for-bit the maskless output.

    Extends the engine grid with the channel axis — every cell, on every
    batched engine (the runner and agents paths have no channel), under
    every available kernel backend, run with a provably-null
    :class:`ChannelModel` must equal the channel-free runner reference
    exactly.  This pins the ``loss_p=0`` / zero-amplitude normalization
    contract of :mod:`repro.sim.channel` at full grid coverage.
    """

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("channel", NULL_CHANNELS, ids=NULL_CHANNEL_IDS)
    @pytest.mark.parametrize("engine", ["batch", "multinet", "union"])
    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_cell(self, net, decoy, byz, reference, cell, engine, channel, backend):
        name, cfg, strategy, seed = cell
        ref = reference(name, cfg, strategy, seed)
        got = run_cell(
            engine, net, decoy_net=decoy, byz=byz, cfg=cfg, strategy=strategy,
            seed=seed, backend=backend, channel=channel,
        )
        assert_cell_equal(ref, got, full=True)


class TestMultinetPaddingColumn:
    """The padded column's decoy neighbour must itself stay exact."""

    def test_decoy_trial_matches_its_own_network(self, net, decoy, byz):
        out = run_counting_multinet(
            [decoy, net],
            [7, 5],
            config=CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=[None, byz],
        )
        ref = run_counting(decoy, CFG, seed=7, adversary=make_adversary("early-stop"),
                           byz_mask=np.zeros(decoy.n, dtype=bool))
        assert_cell_equal(ref, out[0], full=True)


class TestUnionStackNeighbours:
    """Every other cell of the 2x2 union grid must itself stay exact."""

    def test_all_grid_cells_match_per_network_runs(self, net, decoy, byz):
        seeds = [7, 5]
        out = run_counting_unionstack(
            [decoy, net],
            seeds,
            config=CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=[None, byz],
        )
        for g, (network, mask) in enumerate([(decoy, None), (net, byz)]):
            for j, seed in enumerate(seeds):
                ref = run_counting(
                    network,
                    CFG,
                    seed=seed,
                    adversary=make_adversary("early-stop"),
                    byz_mask=(
                        mask
                        if mask is not None
                        else np.zeros(network.n, dtype=bool)
                    ),
                )
                assert_cell_equal(ref, out[g * 2 + j], full=True)


class TestAgentMessageAccounting:
    def test_agent_engine_meters_messages(self, net, byz):
        res = run_counting_agents(
            net, CFG, seed=5, adversary=make_adversary("early-stop"), byz_mask=byz
        )
        assert res.meter.messages > 0
        assert res.meter.max_message_ids >= net.d  # adjacency claims carry d IDs

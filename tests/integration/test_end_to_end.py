"""End-to-end flows through the public API, mirroring the paper's story:

baselines break under a single Byzantine node; Algorithm 2 keeps almost
every honest node's estimate in a constant-factor band of log n.
"""

import numpy as np
import pytest

from repro import (
    CountingConfig,
    estimate_network_size,
    practical_band,
)
from repro.baselines import run_geometric_max
from repro.graphs import build_small_world


@pytest.fixture(scope="module")
def net():
    return build_small_world(1024, 8, seed=31)


class TestHeadlineStory:
    def test_baseline_breaks_but_protocol_survives(self, net):
        # One Byzantine node destroys the baseline...
        one = np.zeros(net.n, dtype=bool)
        one[123] = True
        baseline = run_geometric_max(net, seed=2, byz_mask=one, attack="fake-max")
        assert baseline.median_estimate() > 2 * baseline.true_log2_n

        # ...while Algorithm 2 under a *much* larger budget holds the band.
        report = estimate_network_size(
            net.n, net.d, delta=0.5, adversary="early-stop", seed=2, network=net
        )
        assert report.byz_count == 32
        assert report.fraction_in_band >= 0.85
        assert report.fraction_decided == 1.0

    def test_all_color_strategies_in_band(self, net):
        for name in ("honest", "early-stop", "inflation", "suppression", "combo"):
            report = estimate_network_size(
                net.n, net.d, delta=0.5, adversary=name, seed=3, network=net
            )
            assert report.fraction_decided == 1.0, name
            assert report.fraction_in_band >= 0.8, name

    def test_estimates_track_network_size(self):
        medians = []
        for n in (256, 1024):
            report = estimate_network_size(n, 8, adversary="honest", seed=4)
            medians.append(report.median_log2_estimate)
        assert medians[1] > medians[0]

    def test_band_is_constant_factor(self, net):
        c1, c2 = practical_band(net.d)
        report = estimate_network_size(net.n, net.d, adversary="honest", seed=5, network=net)
        log_n = np.log2(net.n)
        assert c1 * log_n <= report.median_phase <= c2 * log_n


class TestRobustnessKnobs:
    def test_verification_is_load_bearing(self, net):
        cfg_off = CountingConfig(max_phase=10, verification=False)
        report = estimate_network_size(
            net.n,
            net.d,
            delta=0.5,
            adversary="inflation",
            seed=6,
            network=net,
            config=cfg_off,
        )
        assert report.fraction_decided == 0.0  # nobody can terminate

    def test_eps_controls_schedule_cost(self, net):
        tight = estimate_network_size(
            net.n, net.d, adversary="honest", seed=7, network=net,
            config=CountingConfig(eps=0.02),
        )
        loose = estimate_network_size(
            net.n, net.d, adversary="honest", seed=7, network=net,
            config=CountingConfig(eps=0.4),
        )
        assert tight.rounds >= loose.rounds

"""Chaos-harness self-tests: the fault injector must itself be deterministic.

Satellite contract: seeded schedules reproduce exactly, explicit
schedules fire literally, a rate-0 schedule is byte-identical to the
undecorated path, and every injected fault is visible in the on-disk
fault log so sweep-level tests can reconcile it against the
:class:`~repro.exec.ExecutionReport`.
"""

import os
import pickle

import pytest
from helpers import square

from repro.exec import ChaosSchedule, ExecutionReport, RetryPolicy
from repro.exec.chaos import (
    ChaosController,
    ChaosError,
    active,
    current,
    item_key,
    wrap,
)
from repro.experiments.common import parallel_map


class TestScheduleValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"hang_rate": 1.5},
            {"raise_rate": -1.0},
            {"crash_rate": 0.6, "hang_rate": 0.6},
            {"hang_seconds": 0.0},
            {"crash_delay": -1.0},
            {"max_faults_per_shard": -1},
            {"faults": ((-1, ("crash",)),)},
            {"faults": ((0, ("segfault",)),)},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            ChaosSchedule(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            ChaosSchedule(raise_rate=0.5).fault_for(0, 0)


class TestScheduleDeterminism:
    def test_rate_schedule_is_pure_function_of_seed(self):
        sched = ChaosSchedule(seed=11, crash_rate=0.2, hang_rate=0.2, raise_rate=0.2)
        grid = [(i, a) for i in range(16) for a in (1,)]
        first = [sched.fault_for(i, a) for i, a in grid]
        second = [sched.fault_for(i, a) for i, a in grid]
        assert first == second
        # A 60% combined rate over 16 shards injects something.
        assert any(kind is not None for kind in first)
        assert {k for k in first if k is not None} <= {"crash", "hang", "raise"}

    def test_different_seeds_differ(self):
        grid = [(i, 1) for i in range(32)]
        a = [ChaosSchedule(seed=1, raise_rate=0.5).fault_for(i, n) for i, n in grid]
        b = [ChaosSchedule(seed=2, raise_rate=0.5).fault_for(i, n) for i, n in grid]
        assert a != b

    def test_max_faults_per_shard_caps_rate_faults(self):
        sched = ChaosSchedule(seed=0, raise_rate=1.0, max_faults_per_shard=1)
        assert sched.fault_for(4, 1) == "raise"
        assert sched.fault_for(4, 2) is None  # retry budget always suffices

    def test_explicit_faults_taken_literally(self):
        sched = ChaosSchedule.explicit({2: ("crash", "hang")})
        assert sched.fault_for(2, 1) == "crash"
        assert sched.fault_for(2, 2) == "hang"
        assert sched.fault_for(2, 3) is None
        assert sched.fault_for(0, 1) is None


class TestController:
    def test_claim_attempt_is_sequential_per_shard(self, tmp_path):
        ctrl = ChaosController(ChaosSchedule(), str(tmp_path))
        assert ctrl.claim_attempt(0) == 1
        assert ctrl.claim_attempt(0) == 2
        assert ctrl.claim_attempt(7) == 1  # shards claim independently
        assert ctrl.claim_attempt(0) == 3

    def test_fault_log_roundtrip(self, tmp_path):
        ctrl = ChaosController(ChaosSchedule(), str(tmp_path))
        assert ctrl.injected_faults() == []
        ctrl.log_fault(3, 1, "crash")
        ctrl.log_fault(0, 2, "raise")
        faults = ctrl.injected_faults()
        assert [(f.index, f.attempt, f.kind) for f in faults] == [
            (3, 1, "crash"),
            (0, 2, "raise"),
        ]
        assert all(f.pid == os.getpid() for f in faults)

    def test_active_installs_and_clears(self, tmp_path):
        assert current() is None
        with active(ChaosSchedule(), str(tmp_path)) as ctrl:
            assert current() is ctrl
            with pytest.raises(RuntimeError, match="nesting"):
                with active(ChaosSchedule(), str(tmp_path)):
                    pass  # pragma: no cover
        assert current() is None


class TestWrappedCall:
    def test_owner_process_passes_through(self, tmp_path):
        # Faults only fire in workers: in the owning process even a
        # certain-fault schedule must call straight through (this is what
        # keeps degraded-to-serial maps alive under chaos).
        ctrl = ChaosController(ChaosSchedule(raise_rate=1.0), str(tmp_path))
        wrapped = wrap(square, ctrl, [5])
        assert wrapped(5) == 25
        assert ctrl.injected_faults() == []

    def test_item_key_stable(self):
        assert item_key((1, "a")) == item_key((1, "a"))
        assert item_key((1, "a")) != item_key((1, "b"))


class TestEndToEndInjection:
    def test_rate_zero_is_byte_identical_to_undecorated(self, tmp_path):
        items = list(range(6))
        plain = parallel_map(square, items, jobs=2)
        with active(ChaosSchedule(seed=3), str(tmp_path)) as ctrl:
            chaotic = parallel_map(square, items, jobs=2)
        assert pickle.dumps(chaotic) == pickle.dumps(plain)
        assert ctrl.injected_faults() == []

    def test_injected_raises_are_retried_and_accounted(self, tmp_path):
        items = list(range(6))
        sched = ChaosSchedule.explicit({1: ("raise",), 3: ("raise", "raise")})
        report = ExecutionReport()
        with active(sched, str(tmp_path)) as ctrl:
            out = parallel_map(
                square,
                items,
                jobs=2,
                policy=RetryPolicy(max_retries=2, backoff_base=0.0),
                report=report,
            )
        assert out == [x * x for x in items]
        injected = ctrl.injected_faults()
        assert [(f.index, f.attempt) for f in injected] == [(1, 1), (3, 1), (3, 2)]
        assert report.total_errors == 3
        assert report.total_faults == len(injected)
        assert report.shard(3).retries == 2

    def test_exhausted_injection_raises_chaos_error(self, tmp_path):
        sched = ChaosSchedule.explicit({0: ("raise", "raise", "raise")})
        with active(sched, str(tmp_path)):
            with pytest.raises(ChaosError):
                parallel_map(
                    square,
                    [1, 2],
                    jobs=2,
                    policy=RetryPolicy(max_retries=2, backoff_base=0.0),
                )

    def test_exhausted_rebuild_budget_degrades_but_completes(self, tmp_path):
        # A pool that keeps breaking must never take the map down: with a
        # zero-rebuild budget the first injected crash degrades the map
        # to in-process serial execution, where chaos passes through
        # (faults fire only in workers) — so the map still completes,
        # with the degradation flagged and warned exactly once.
        from repro.exec.resilience import _reset_degrade_warning

        items = list(range(6))
        sched = ChaosSchedule.explicit({1: ("crash",)}, crash_delay=0.2)
        report = ExecutionReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.01, max_pool_rebuilds=0)
        _reset_degrade_warning()
        try:
            with active(sched, str(tmp_path)) as ctrl:
                with pytest.warns(RuntimeWarning, match="serial"):
                    out = parallel_map(
                        square, items, jobs=2, policy=policy, report=report
                    )
        finally:
            _reset_degrade_warning()
        assert out == [x * x for x in items]
        assert report.degraded
        assert report.pool_rebuilds == 1
        assert [(f.index, f.kind) for f in ctrl.injected_faults()] == [(1, "crash")]
        assert any(rec.degraded for rec in report.shards)

    def test_seeded_runs_reproduce_the_same_faults(self, tmp_path):
        # Two runs of the same seeded schedule (fresh state dirs) must
        # inject the identical (shard, attempt, kind) set and produce the
        # same results — a chaotic run is exactly reproducible.
        items = list(range(8))
        sched = ChaosSchedule(seed=5, raise_rate=0.4)
        logs = []
        for run in ("a", "b"):
            report = ExecutionReport()
            with active(sched, str(tmp_path / run)) as ctrl:
                out = parallel_map(
                    square,
                    items,
                    jobs=2,
                    policy=RetryPolicy(max_retries=2, backoff_base=0.0),
                    report=report,
                )
            assert out == [x * x for x in items]
            assert report.total_faults == len(ctrl.injected_faults())
            logs.append(
                sorted((f.index, f.attempt, f.kind) for f in ctrl.injected_faults())
            )
        assert logs[0] == logs[1]
        assert logs[0]  # 40% over 8 shards injects at least one fault

"""Module-level picklable workers for the resilience suite.

Worker functions must be importable in forked/spawned pool processes,
so everything the chaos tests map lives here rather than in test
bodies.
"""


import os


class FlakyError(RuntimeError):
    """Typed error used to check original-exception re-raise."""


def square(x: int) -> int:
    return x * x


def boom(x: int) -> int:
    raise FlakyError(f"boom on {x}")


def boom_on_three(x: int) -> int:
    if x == 3:
        raise FlakyError("three is right out")
    return x * x


def touch_and_square(arg: tuple[str, int]) -> int:
    """Square ``x``, leaving a per-call marker file (recompute detector)."""
    marker_dir, x = arg
    with open(os.path.join(marker_dir, f"ran-{x}"), "a"):
        pass
    return x * x

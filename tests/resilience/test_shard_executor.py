"""ShardExecutor / RetryPolicy / ExecutionReport unit behavior.

Process-fault scenarios (crashes, hangs, rebuilds) live in
``test_chaos.py`` and ``test_sweep_chaos.py``; this module pins the
in-process contracts: policy validation, deterministic backoff, retry
bookkeeping, result ordering, typed re-raise, and the ``parallel_map``
surface satellites (eager ``jobs`` validation, one-time degradation
warning).
"""

import warnings

import pytest
from helpers import FlakyError, boom, boom_on_three, square

from repro.exec import (
    ExecutionReport,
    RetryPolicy,
    ShardExecutor,
    ShardFailedError,
)
from repro.exec.resilience import _reset_degrade_warning, _warn_degraded
from repro.experiments.common import parallel_map


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"jitter": -0.5},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_deterministic(self):
        a = RetryPolicy(seed=7).backoff_delay(3, 2)
        b = RetryPolicy(seed=7).backoff_delay(3, 2)
        assert a == b

    def test_backoff_varies_with_seed_shard_attempt(self):
        base = RetryPolicy(seed=7).backoff_delay(3, 2)
        assert RetryPolicy(seed=8).backoff_delay(3, 2) != base
        assert RetryPolicy(seed=7).backoff_delay(4, 2) != base
        assert RetryPolicy(seed=7).backoff_delay(3, 3) != base

    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0)
        assert policy.backoff_delay(0, 1) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 2) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 3) == pytest.approx(0.3)  # capped
        assert policy.backoff_delay(0, 9) == pytest.approx(0.3)

    def test_backoff_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0, jitter=0.5)
        for i in range(20):
            d = policy.backoff_delay(i, 1)
            assert 0.1 <= d <= 0.15

    def test_backoff_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(0, 0)


class TestExecutionReport:
    def test_multi_map_blocks(self):
        report = ExecutionReport()
        report.start_map(2)
        report.shard(1).retries += 1
        report.start_map(3)
        report.shard(0).timeouts += 1
        assert len(report.shards) == 5
        assert report.maps == 2
        assert report.total_retries == 1
        assert report.total_timeouts == 1
        # shard() always indexes the latest block.
        assert report.shard(0).timeouts == 1

    def test_summary_mentions_degradation(self):
        report = ExecutionReport()
        report.start_map(1)
        assert "DEGRADED" not in report.summary()
        report.degraded = True
        assert "DEGRADED" in report.summary()


class TestSerialExecution:
    def test_results_keep_order(self):
        out = ShardExecutor().run(square, [3, 1, 2])
        assert out == [9, 1, 4]

    def test_exhausted_retries_reraise_original_type(self):
        report = ExecutionReport()
        executor = ShardExecutor(RetryPolicy(max_retries=2, backoff_base=0.0), report)
        with pytest.raises(FlakyError):
            executor.run(boom, [1])
        rec = report.shard(0)
        assert rec.attempts == 3  # initial + 2 retries
        assert rec.retries == 2
        assert rec.errors == 3

    def test_zero_retries_fail_fast(self):
        report = ExecutionReport()
        executor = ShardExecutor(RetryPolicy(max_retries=0), report)
        with pytest.raises(FlakyError):
            executor.run(boom_on_three, [1, 2, 3, 4])
        assert report.shard(2).attempts == 1
        assert report.total_retries == 0


class TestParallelExecution:
    def test_results_keep_order(self):
        report = ExecutionReport()
        out = ShardExecutor(report=report).run(square, list(range(8)), jobs=4)
        assert out == [x * x for x in range(8)]
        assert all(rec.attempts == 1 for rec in report.shards)
        assert report.total_faults == 0

    def test_worker_exception_retried_then_reraised(self):
        report = ExecutionReport()
        executor = ShardExecutor(RetryPolicy(max_retries=1, backoff_base=0.0), report)
        with pytest.raises(FlakyError):
            executor.run(boom_on_three, [1, 2, 3, 4], jobs=2)
        rec = report.shard(2)
        assert rec.attempts == 2
        assert rec.errors == 2
        assert rec.retries == 1

    def test_shard_failed_error_reserved_for_faults(self):
        # ShardFailedError is raised only for timeouts/crashes (exercised
        # in test_chaos.py); a raising worker keeps its own type, so the
        # two are distinguishable by callers.
        assert issubclass(ShardFailedError, RuntimeError)


class TestParallelMapSurface:
    def test_negative_jobs_rejected_eagerly(self):
        with pytest.raises(ValueError, match="jobs must be None or >= 0"):
            parallel_map(square, [1, 2], jobs=-1)

    def test_negative_jobs_rejected_before_consuming_items(self):
        def gen():
            raise AssertionError("items must not be consumed")
            yield  # pragma: no cover

        with pytest.raises(ValueError):
            parallel_map(square, gen(), jobs=-2)

    def test_zero_and_one_jobs_run_serial(self):
        assert parallel_map(square, [1, 2], jobs=0) == [1, 4]
        assert parallel_map(square, [1, 2], jobs=1) == [1, 4]

    def test_report_threading(self):
        report = ExecutionReport()
        out = parallel_map(square, [1, 2, 3], jobs=2, report=report)
        assert out == [1, 4, 9]
        assert report.maps == 1
        assert len(report.shards) == 3

    def test_serial_path_honors_policy(self):
        report = ExecutionReport()
        with pytest.raises(FlakyError):
            parallel_map(
                boom,
                [1],
                policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                report=report,
            )
        assert report.shard(0).retries == 1


class TestDegradationWarning:
    def test_warning_fires_once(self):
        _reset_degrade_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _warn_degraded("test reason")
            _warn_degraded("test reason")
        _reset_degrade_warning()
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)
        assert "serial" in str(caught[0].message)

"""Checkpoint-journal contract: crash-safe append, keyed resume, torn tails.

The journal must (a) only ever be resumed by the identical shard plan,
(b) survive a kill at any byte offset by discarding exactly the torn
tail, and (c) make a resumed map skip completed shards without
recomputing them.
"""

import glob
import os

import pytest
from helpers import boom, square, touch_and_square

from repro.exec import CheckpointJournal, ExecutionReport, ShardExecutor, plan_key
from repro.exec.checkpoint import _FRAME, _MAGIC
from repro.experiments.common import parallel_map


class TestPlanKey:
    def test_deterministic(self):
        assert plan_key("f", [1, 2, 3]) == plan_key("f", [1, 2, 3])

    def test_sensitive_to_label_and_items(self):
        base = plan_key("f", [1, 2, 3])
        assert plan_key("g", [1, 2, 3]) != base
        assert plan_key("f", [1, 2]) != base
        assert plan_key("f", [3, 2, 1]) != base


class TestOnDiskFormat:
    def test_magic_header_bytes_pinned(self, tmp_path):
        # The on-disk format is a compatibility surface: the first 8
        # bytes are the literal magic, trailing byte = format version.
        # Changing either breaks resume of existing journals — this pin
        # forces that change to be deliberate.
        assert _MAGIC == b"REPROCK1"
        path = tmp_path / "sweep.ckpt"
        with CheckpointJournal(path, plan_key("f", [1])) as journal:
            journal.record(0, "x")
        with open(path, "rb") as fh:
            assert fh.read(8) == b"REPROCK1"


class TestJournal:
    def test_roundtrip_across_reopen(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        key = plan_key("f", [10, 20])
        with CheckpointJournal(path, key) as journal:
            assert journal.completed() == {}
            journal.record(0, {"result": 100})
            journal.record(1, {"result": 400})
        with CheckpointJournal(path, key) as journal:
            assert journal.completed() == {0: {"result": 100}, 1: {"result": 400}}

    def test_mismatched_plan_key_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with CheckpointJournal(path, "plan-a") as journal:
            journal.record(0, "stale")
        with pytest.warns(RuntimeWarning, match="different .*shard plan"):
            journal = CheckpointJournal(path, "plan-b")
        try:
            assert journal.completed() == {}
        finally:
            journal.close()
        # The stale journal was discarded on disk, not just ignored
        # (the file now belongs to plan-b, so plan-a warns afresh).
        with pytest.warns(RuntimeWarning, match="different .*shard plan"):
            journal = CheckpointJournal(path, "plan-a")
        try:
            assert journal.completed() == {}
        finally:
            journal.close()

    def test_non_journal_file_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(b"definitely not a journal")
        with pytest.warns(RuntimeWarning, match="not a journal"):
            journal = CheckpointJournal(path, "plan-a")
        try:
            assert journal.completed() == {}
        finally:
            journal.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        key = "plan-a"
        with CheckpointJournal(path, key) as journal:
            journal.record(0, "alpha")
            journal.record(1, "beta")
        intact_size = path.stat().st_size
        # Simulate a kill mid-append: a frame header promising more bytes
        # than were written.
        with open(path, "ab") as fh:
            fh.write(_FRAME.pack(1000, 0) + b"only-a-few-bytes")
        with CheckpointJournal(path, key) as journal:
            assert journal.completed() == {0: "alpha", 1: "beta"}
        assert path.stat().st_size == intact_size  # tail truncated clean

    def test_corrupt_record_drops_only_the_tail(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        key = "plan-a"
        with CheckpointJournal(path, key) as journal:
            journal.record(0, "alpha")
            size_after_first = path.stat().st_size
            journal.record(1, "beta")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte inside record 1's payload
        path.write_bytes(bytes(raw))
        with CheckpointJournal(path, key) as journal:
            assert journal.completed() == {0: "alpha"}
        assert path.stat().st_size == size_after_first

    def test_empty_journal_restarts_clean(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(_MAGIC)  # header but no records (killed instantly)
        with CheckpointJournal(path, "plan-a") as journal:
            assert journal.completed() == {}
            journal.record(0, "alpha")
        with CheckpointJournal(path, "plan-a") as journal:
            assert journal.completed() == {0: "alpha"}

    def test_record_after_close_raises(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "sweep.ckpt", "plan-a")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record(0, "x")


class TestResume:
    def test_fully_journaled_map_never_calls_fn(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        key = plan_key("boom", [1, 2, 3])
        with CheckpointJournal(path, key) as journal:
            for i, x in enumerate([1, 2, 3]):
                journal.record(i, x * x)
        report = ExecutionReport()
        with CheckpointJournal(path, key) as journal:
            # boom raises on any call: results can only come from disk.
            out = ShardExecutor(report=report).run(boom, [1, 2, 3], journal=journal)
        assert out == [1, 4, 9]
        assert report.resumed_shards == 3
        assert report.total_attempts == 0
        assert all(rec.resumed for rec in report.shards)

    def test_partial_resume_runs_only_missing_shards(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        items = [10, 20, 30, 40]
        key = plan_key("sq", items)
        with CheckpointJournal(path, key) as journal:
            journal.record(1, 400)
            journal.record(3, 1600)
        report = ExecutionReport()
        with CheckpointJournal(path, key) as journal:
            out = ShardExecutor(report=report).run(square, items, journal=journal)
        assert out == [100, 400, 900, 1600]
        assert report.resumed_shards == 2
        assert report.shard(0).attempts == 1
        assert report.shard(1).attempts == 0
        # The journal now holds everything: a third run computes nothing.
        with CheckpointJournal(path, key) as journal:
            assert sorted(journal.completed()) == [0, 1, 2, 3]

    def test_parallel_map_checkpoint_skips_recompute(self, tmp_path):
        # End-to-end through parallel_map: the second run with the same
        # checkpoint recomputes nothing (no fresh marker files) and
        # returns identical results.
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        ckpt = tmp_path / "sweep.ckpt"
        items = [(str(marker_dir), x) for x in range(4)]
        first = parallel_map(touch_and_square, items, checkpoint=ckpt)
        assert sorted(os.listdir(marker_dir)) == [f"ran-{x}" for x in range(4)]
        for stale in glob.glob(str(marker_dir / "ran-*")):
            os.unlink(stale)
        report = ExecutionReport()
        second = parallel_map(touch_and_square, items, checkpoint=ckpt, report=report)
        assert second == first == [x * x for x in range(4)]
        assert os.listdir(marker_dir) == []  # nothing recomputed
        assert report.resumed_shards == 4

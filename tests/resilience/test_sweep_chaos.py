"""Acceptance: chaotic sweeps finish bit-for-bit, account faults, leak nothing.

The PR's headline contract, pinned end-to-end through ``run_sweep``:

* a ``jobs=4`` sweep with injected worker **crashes**, **hangs**, and
  **raises** completes with results bit-for-bit equal to the fault-free
  run;
* the :class:`~repro.exec.ExecutionReport` accounts every injected
  fault (a hang taken down by a concurrent pool break is attributed as
  a crash — still one accounted fault for one injected fault);
* zero shared-memory segments remain afterwards;
* a sweep killed mid-run resumes from its checkpoint journal without
  recomputing completed shards.
"""

import glob

import numpy as np
import pytest

from repro.core import CountingConfig, run_sweep
from repro.exec import (
    ChaosSchedule,
    ExecutionReport,
    RetryPolicy,
    ShardFailedError,
)
from repro.exec.chaos import active

SEEDS = list(range(6))
CFG = CountingConfig(max_phase=12)
STRATEGY = "early-stop"
SHARD_CELLS = 2  # 2 placements x 6 seeds = 12 cells -> 6 shards


def _run(net, byz_mask_small, **kwargs):
    # (1 strategy x 2 placements x 1 config x 6 seeds) = 12 cells, cut
    # into 6 two-cell shards so the explicit fault indices 0..5 exist.
    return run_sweep(
        net,
        seeds=SEEDS,
        configs=CFG,
        placements=[None, byz_mask_small],
        strategies=STRATEGY,
        shard_cells=SHARD_CELLS,
        **kwargs,
    )


def _repro_segments():
    return sorted(
        glob.glob("/dev/shm/psm_*") + glob.glob("/dev/shm/repro-*")
    )


def assert_sweeps_equal(a, b):
    assert len(a.results) == len(b.results)
    for x, y in zip(a.results, b.results):
        assert np.array_equal(x.decided_phase, y.decided_phase)
        assert np.array_equal(x.crashed, y.crashed)
        assert np.array_equal(x.byz, y.byz)
        assert x.meter.as_dict() == y.meter.as_dict()
        assert list(x.trace) == list(y.trace)
        assert x.injections_accepted == y.injections_accepted
        assert x.injections_rejected == y.injections_rejected


@pytest.fixture(scope="module")
def baseline(net_small, byz_mask_small):
    """The fault-free parallel sweep every chaotic run must reproduce."""
    return _run(net_small, byz_mask_small, jobs=4)


class TestChaoticSweepBitForBit:
    def test_crash_hang_raise_sweep_matches_fault_free(
        self, net_small, byz_mask_small, baseline, tmp_path
    ):
        before = _repro_segments()
        sched = ChaosSchedule.explicit(
            {1: ("crash",), 3: ("raise",), 5: ("hang",)},
            hang_seconds=30.0,
            crash_delay=0.2,
        )
        report = ExecutionReport()
        policy = RetryPolicy(max_retries=2, timeout=1.5, backoff_base=0.01)
        with active(sched, str(tmp_path / "chaos")) as ctrl:
            result = _run(
                net_small, byz_mask_small, jobs=4, policy=policy, report=report
            )
        assert_sweeps_equal(result, baseline)

        injected = ctrl.injected_faults()
        assert sorted((f.index, f.attempt, f.kind) for f in injected) == [
            (1, 1, "crash"),
            (3, 1, "raise"),
            (5, 1, "hang"),
        ]
        # Every injected fault is accounted on its own shard's record:
        # the crash as a crash, the raise as an error, the hang as a
        # timeout — or as a crash if the pool break reaped it first.
        assert report.shard(1).crashes >= 1
        assert report.shard(3).errors == 1
        assert report.shard(5).timeouts + report.shard(5).crashes >= 1
        assert report.total_errors == 1  # chaos never misfires a raise
        assert report.total_faults >= len(injected)
        assert report.pool_rebuilds >= 1
        assert not report.degraded

        assert _repro_segments() == before  # zero leaked shm segments

    def test_raise_only_chaos_accounts_exactly(
        self, net_small, byz_mask_small, baseline, tmp_path
    ):
        # Raised faults never involve pool teardowns, so the accounting
        # reconciles exactly: one error per injected fault, no rebuilds.
        sched = ChaosSchedule.explicit({0: ("raise",), 2: ("raise", "raise")})
        report = ExecutionReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.01)
        with active(sched, str(tmp_path / "chaos")) as ctrl:
            result = _run(
                net_small, byz_mask_small, jobs=4, policy=policy, report=report
            )
        assert_sweeps_equal(result, baseline)
        injected = ctrl.injected_faults()
        assert len(injected) == 3
        assert report.total_faults == report.total_errors == len(injected)
        assert report.total_retries == 3
        assert report.pool_rebuilds == 0


class TestCheckpointResume:
    def test_killed_sweep_resumes_without_recompute(
        self, net_small, byz_mask_small, baseline, tmp_path
    ):
        ckpt = tmp_path / "sweep.ckpt"
        # Shard 5 (dispatched last in queue order) hangs with no retry
        # budget: every earlier shard completes and is journaled, then
        # the sweep dies on the timeout — a deterministic mid-run kill.
        sched = ChaosSchedule.explicit({5: ("hang",)}, hang_seconds=30.0)
        policy = RetryPolicy(max_retries=0, timeout=1.0, backoff_base=0.01)
        with active(sched, str(tmp_path / "chaos")):
            with pytest.raises(ShardFailedError):
                _run(
                    net_small,
                    byz_mask_small,
                    jobs=2,
                    policy=policy,
                    checkpoint=ckpt,
                )
        # Resume, fault-free: only the unjournaled shard is recomputed.
        report = ExecutionReport()
        resumed = _run(
            net_small, byz_mask_small, jobs=2, checkpoint=ckpt, report=report
        )
        assert_sweeps_equal(resumed, baseline)
        assert report.resumed_shards == 5
        for i in range(5):
            assert report.shard(i).resumed
            assert report.shard(i).attempts == 0
        assert report.shard(5).attempts == 1

    def test_resume_never_redispatches_completed_shards(
        self, net_small, byz_mask_small, baseline, tmp_path
    ):
        # Journal the whole sweep, then re-run it under a chaos schedule
        # that would fault *every* shard on every attempt: the resumed
        # sweep must succeed purely from the journal, proving completed
        # shards are never re-dispatched.
        ckpt = tmp_path / "sweep.ckpt"
        first = _run(net_small, byz_mask_small, jobs=2, checkpoint=ckpt)
        assert_sweeps_equal(first, baseline)
        poison = ChaosSchedule.explicit(
            {i: ("raise", "raise", "raise", "raise") for i in range(6)}
        )
        report = ExecutionReport()
        with active(poison, str(tmp_path / "chaos")) as ctrl:
            second = _run(
                net_small, byz_mask_small, jobs=2, checkpoint=ckpt, report=report
            )
        assert_sweeps_equal(second, baseline)
        assert report.resumed_shards == 6
        assert report.total_attempts == 0
        assert ctrl.injected_faults() == []

"""ResidentEngine: warm caches change speed, never results.

The soak test is the tentpole contract: N epochs of churn driven through
the resident engine produce estimation results bit-for-bit equal to cold
per-epoch runs (fresh network object, fresh kernel, stock batch entry
point) — decisions, estimates, crash sets, meters, and injection
counters all included.
"""

import numpy as np
import pytest

from repro.adversary import InflationAdversary, random_placement
from repro.core.batch import run_counting_batch, run_counting_multinet
from repro.core.config import CountingConfig
from repro.core.sweep import run_multi_sweep
from repro.graphs import build_small_world, hgraph_from_cycles
from repro.service import ChurnDelta, ResidentEngine, SizeQuery
from repro.sim.flood import FloodKernel, MultiFloodKernel
from repro.sim.rng import derive_seed, make_rng

CFG = CountingConfig(max_phase=12)
SEEDS = list(range(6))


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


def cold_copy(net):
    """An independent rebuild of ``net`` (no shared arrays or caches)."""
    return build_small_world(net.n, net.d, h=hgraph_from_cycles(net.h.cycles), k=net.k)


class TestKernelAdoption:
    """MultiFloodKernel(kernels=...): warm member kernels, same results."""

    def test_adopted_kernels_bit_for_bit(self):
        nets = [build_small_world(40, 4, seed=s) for s in range(3)]
        trial_nets = [nets[i % 3] for i in range(7)]
        seeds = list(range(7))
        cold = run_counting_multinet(trial_nets, seeds, config=CFG)
        members = [FloodKernel(n.h.indptr, n.h.indices) for n in nets]
        warm = run_counting_multinet(
            trial_nets,
            seeds,
            config=CFG,
            kernel=MultiFloodKernel(nets, kernels=members),
        )
        for a, b in zip(cold, warm):
            assert_trial_equal(a, b)

    def test_adoption_validation(self):
        nets = [build_small_world(40, 4, seed=s) for s in range(2)]
        members = [FloodKernel(n.h.indptr, n.h.indices) for n in nets]
        with pytest.raises(ValueError, match="not both"):
            MultiFloodKernel(nets, backend="numpy", kernels=members)
        with pytest.raises(ValueError):
            MultiFloodKernel(nets, kernels=members[:1])


class TestSoak:
    """N epochs of churn: resident results == cold per-epoch results."""

    def test_epochs_under_churn_equal_cold_runs(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("east", n=72, d=4, seed=1)
        engine.add_overlay("west", n=56, d=4, seed=2)
        rng = make_rng(derive_seed(11, "soak"))
        for epoch in range(5):
            for name in engine.overlay_names():
                warm = engine.run_epoch(name, SEEDS)
                cold = run_counting_batch(
                    cold_copy(engine.network(name)), SEEDS, config=CFG
                )
                for a, b in zip(warm, cold):
                    assert_trial_equal(a, b)
            # Churn both overlays before the next epoch.
            for name in engine.overlay_names():
                n = engine.network(name).n
                leaves = rng.choice(n, size=int(rng.integers(1, 5)), replace=False)
                joins = int(rng.integers(0, 5))
                engine.apply_churn(name, ChurnDelta(tuple(leaves), joins), rng)
                assert engine.version(name) == epoch + 1

    def test_byzantine_epoch_after_churn(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("o", n=64, d=4, seed=3)
        rng = make_rng(7)
        engine.apply_churn("o", ChurnDelta.replace((1, 2, 3)), rng)
        net = engine.network("o")
        mask = random_placement(net.n, 5, rng=make_rng(4))
        warm = engine.run_epoch(
            "o", SEEDS, adversary_factory=InflationAdversary, byz_mask=mask
        )
        cold = run_counting_batch(
            cold_copy(net),
            SEEDS,
            config=CFG,
            adversary_factory=InflationAdversary,
            byz_mask=mask,
        )
        for a, b in zip(warm, cold):
            assert_trial_equal(a, b)


class TestServe:
    def test_mixed_query_batch_matches_direct_runs(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("a", n=48, d=4, seed=1)
        engine.add_overlay("b", n=40, d=4, seed=2)
        mask = random_placement(48, 4, rng=make_rng(5))
        queries = [
            SizeQuery("b", 10),
            SizeQuery("a", 11),
            SizeQuery("b", 12, config=CountingConfig(max_phase=9)),
            SizeQuery("a", 13, strategy=InflationAdversary, byz_mask=mask),
        ]
        results = engine.serve(queries)
        assert len(results) == len(queries)
        for q, r in zip(queries, results):
            ref = run_counting_batch(
                cold_copy(engine.network(q.overlay)),
                [q.seed],
                config=q.config or CFG,
                adversary_factory=q.strategy,
                byz_mask=q.byz_mask,
            )[0]
            assert_trial_equal(r, ref)

    def test_serve_reuses_cached_multinet_kernel_until_churn(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("a", n=40, d=4, seed=1)
        engine.add_overlay("b", n=48, d=4, seed=2)
        engine.serve([SizeQuery("a", 1), SizeQuery("b", 2)])
        (key1,) = engine._multi_cache
        engine.serve([SizeQuery("a", 3), SizeQuery("b", 4)])
        assert list(engine._multi_cache) == [key1]  # hit, not rebuild
        engine.apply_churn("a", ChurnDelta(joins=1), make_rng(0))
        engine.serve([SizeQuery("a", 5), SizeQuery("b", 6)])
        assert key1 in engine._multi_cache  # old version entry retained (FIFO)
        assert len(engine._multi_cache) == 2  # new version got its own entry

    def test_unknown_overlay_raises(self):
        engine = ResidentEngine(config=CFG)
        with pytest.raises(KeyError, match="unknown overlay"):
            engine.serve([SizeQuery("ghost", 1)])
        with pytest.raises(KeyError):
            engine.run_epoch("ghost", SEEDS)


class TestSweep:
    def test_cached_union_payload_matches_cold_sweep(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("a", n=40, d=4, seed=1)
        engine.add_overlay("b", n=48, d=4, seed=2)
        engine.apply_churn("b", ChurnDelta.replace((0,)), make_rng(3))
        warm = engine.sweep(seeds=range(4))
        cold = run_multi_sweep(
            [cold_copy(engine.network(nm)) for nm in engine.overlay_names()],
            seeds=range(4),
        )
        assert len(warm.results) == len(cold.results)
        for a, b in zip(warm.results, cold.results):
            assert_trial_equal(a, b)
        # Payload is cached per version: a second sweep reuses the stack.
        (key,) = engine._tuple_cache
        engine.sweep(seeds=range(2))
        assert list(engine._tuple_cache) == [key]


class TestLifecycle:
    def test_duplicate_overlay_rejected(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("a", n=40, d=4, seed=1)
        with pytest.raises(ValueError, match="already registered"):
            engine.add_overlay("a", n=40, d=4, seed=1)

    def test_remove_overlay_evicts_caches(self):
        engine = ResidentEngine(config=CFG)
        engine.add_overlay("a", n=40, d=4, seed=1)
        engine.add_overlay("b", n=40, d=4, seed=2)
        engine.serve([SizeQuery("a", 1), SizeQuery("b", 2)])
        engine.sweep(seeds=range(2))
        assert engine._multi_cache and engine._tuple_cache
        engine.remove_overlay("a")
        assert not engine._multi_cache
        assert not engine._tuple_cache
        assert engine.overlay_names() == ("b",)

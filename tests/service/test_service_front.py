"""EstimationService: concurrency, backpressure, barriers, clean shutdown.

Plain-``asyncio.run`` tests (no pytest-asyncio dependency).  The leak
check mirrors ``tests/resilience/test_sweep_chaos.py``: the set of
``/dev/shm`` segments before and after a full service lifecycle must be
identical.
"""

import asyncio
import glob

import numpy as np
import pytest

from repro.core.batch import run_counting_batch
from repro.core.config import CountingConfig
from repro.service import ChurnDelta, EstimationService, ResidentEngine

CFG = CountingConfig(max_phase=10)


def _repro_segments():
    return sorted(glob.glob("/dev/shm/psm_*") + glob.glob("/dev/shm/repro-*"))


def _engine(n=56, seed=5):
    engine = ResidentEngine(config=CFG)
    engine.add_overlay("x", n=n, d=4, seed=seed)
    return engine


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert a.meter.as_dict() == b.meter.as_dict()


class TestQueries:
    def test_concurrent_queries_match_batched_reference(self):
        async def main():
            engine = _engine()
            ref_net = engine.network("x")
            async with EstimationService(engine) as svc:
                results = await asyncio.gather(
                    *(svc.query("x", s) for s in range(8))
                )
            reference = run_counting_batch(ref_net, list(range(8)), config=CFG)
            for a, b in zip(results, reference):
                assert_trial_equal(a, b)

        asyncio.run(main())

    def test_churn_is_an_ordering_barrier(self):
        async def main():
            engine = _engine()
            pre_net = engine.network("x")
            async with EstimationService(engine) as svc:
                before = asyncio.ensure_future(svc.query("x", 1))
                churned = asyncio.ensure_future(
                    svc.churn("x", ChurnDelta.replace((0, 3)), rng=7)
                )
                after = asyncio.ensure_future(svc.query("x", 2))
                r_before, applied, r_after = await asyncio.gather(
                    before, churned, after
                )
            assert applied.left == (0, 3) and len(applied.joined) == 2
            post_net = engine.network("x")
            assert_trial_equal(
                r_before, run_counting_batch(pre_net, [1], config=CFG)[0]
            )
            assert_trial_equal(
                r_after, run_counting_batch(post_net, [2], config=CFG)[0]
            )

        asyncio.run(main())

    def test_engine_errors_propagate_to_caller(self):
        async def main():
            async with EstimationService(_engine()) as svc:
                with pytest.raises(KeyError, match="unknown overlay"):
                    await svc.query("ghost", 1)
                # The worker survives a failed batch.
                await svc.query("x", 1)

        asyncio.run(main())


class TestBackpressure:
    def test_bounded_queue_blocks_producers(self):
        async def main():
            engine = _engine()
            async with EstimationService(engine, max_pending=2) as svc:
                # More producers than slots: submissions beyond the bound
                # must wait in put() rather than growing the queue.
                tasks = [
                    asyncio.ensure_future(svc.query("x", s)) for s in range(10)
                ]
                await asyncio.sleep(0)  # let producers hit the queue
                assert svc._queue.qsize() <= 2
                results = await asyncio.gather(*tasks)
            assert len(results) == 10

        asyncio.run(main())

    def test_max_pending_validated(self):
        with pytest.raises(ValueError, match="max_pending"):
            EstimationService(_engine(), max_pending=0)


class TestShutdown:
    def test_aclose_drains_then_rejects(self):
        async def main():
            engine = _engine()
            svc = EstimationService(engine, max_pending=4)
            pending = [asyncio.ensure_future(svc.query("x", s)) for s in range(4)]
            await asyncio.sleep(0)
            await svc.aclose()
            # Every accepted request resolved during the drain.
            results = await asyncio.gather(*pending)
            assert len(results) == 4
            assert svc.closed
            with pytest.raises(RuntimeError, match="closed"):
                await svc.query("x", 99)
            with pytest.raises(RuntimeError, match="closed"):
                await svc.churn("x", ChurnDelta(joins=1))

        asyncio.run(main())

    def test_aclose_idempotent_and_lazy_worker(self):
        async def main():
            svc = EstimationService(_engine())
            await svc.aclose()  # no worker ever started
            await svc.aclose()
            assert svc.closed

        asyncio.run(main())

    def test_no_leaked_shm_segments(self):
        before = _repro_segments()

        async def main():
            engine = _engine()
            async with EstimationService(engine) as svc:
                await asyncio.gather(*(svc.query("x", s) for s in range(4)))
                await svc.churn("x", ChurnDelta(joins=2), rng=1)
                await svc.query("x", 9)

        asyncio.run(main())
        assert _repro_segments() == before  # zero leaked shm segments

    def test_context_manager_closes(self):
        async def main():
            svc = EstimationService(_engine())
            async with svc:
                await svc.query("x", 1)
            assert svc.closed

        asyncio.run(main())

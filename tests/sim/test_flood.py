"""Unit tests for the vectorized flooding kernel."""

import numpy as np
import pytest

from repro.graphs.balls import bfs_distances
from repro.sim.flood import FloodKernel


def cycle_kernel(n):
    indptr = np.arange(n + 1, dtype=np.int64) * 2
    indices = np.empty(2 * n, dtype=np.int64)
    for v in range(n):
        indices[2 * v] = (v - 1) % n
        indices[2 * v + 1] = (v + 1) % n
    return FloodKernel(indptr, indices)


class TestNeighborMax:
    def test_cycle_propagation(self):
        kern = cycle_kernel(6)
        values = np.array([9, 0, 0, 0, 0, 0], dtype=np.int64)
        out = kern.neighbor_max(values)
        assert out.tolist() == [0, 9, 0, 0, 0, 9]

    def test_zero_for_silent_neighbors(self):
        kern = cycle_kernel(4)
        out = kern.neighbor_max(np.zeros(4, dtype=np.int64))
        assert np.all(out == 0)

    def test_out_buffer(self):
        kern = cycle_kernel(4)
        values = np.array([1, 2, 3, 4], dtype=np.int64)
        buf = np.zeros(4, dtype=np.int64)
        result = kern.neighbor_max(values, out=buf)
        assert result is buf
        assert buf.tolist() == [4, 3, 4, 3]

    def test_rejects_isolated_nodes(self):
        indptr = np.array([0, 0, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError, match="degree"):
            FloodKernel(indptr, indices)


class TestNeighborMaxBatch:
    def ragged_kernel(self):
        # Degrees 1, 3, 2, 2 — exercises the reduceat fallback paths.
        indptr = np.array([0, 1, 4, 6, 8], dtype=np.int64)
        indices = np.array([1, 0, 2, 3, 1, 3, 1, 2], dtype=np.int64)
        return FloodKernel(indptr, indices)

    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_matches_per_row_kernel(self, h_small, batch):
        kern = FloodKernel(h_small.indptr, h_small.indices)
        values = np.random.default_rng(batch).integers(
            0, 50, size=(batch, h_small.n)
        ).astype(np.int64)
        expected = np.stack([kern.neighbor_max(row) for row in values])
        assert np.array_equal(kern.neighbor_max_batch(values), expected)

    def test_ragged_degrees(self):
        kern = self.ragged_kernel()
        values = np.array([[5, 0, 2, 9], [1, 1, 1, 1]], dtype=np.int64)
        expected = np.stack([kern.neighbor_max(row) for row in values])
        assert np.array_equal(kern.neighbor_max_batch(values), expected)

    def test_out_buffer_and_1d_passthrough(self):
        kern = cycle_kernel(4)
        values = np.array([[1, 2, 3, 4]], dtype=np.int64)
        buf = np.zeros((1, 4), dtype=np.int64)
        assert kern.neighbor_max_batch(values, out=buf) is buf
        assert buf.tolist() == [[4, 3, 4, 3]]
        # 1-D input degrades to the scalar kernel.
        assert kern.neighbor_max_batch(values[0]).tolist() == [4, 3, 4, 3]

    def test_wrong_width_rejected(self):
        kern = cycle_kernel(4)
        with pytest.raises(ValueError, match="matrix"):
            kern.neighbor_max_batch(np.zeros((2, 5), dtype=np.int64))

    def test_plan_cache_reused(self):
        kern = cycle_kernel(6)
        values = np.arange(12, dtype=np.int64).reshape(2, 6)
        first = kern.neighbor_max_batch(values)
        assert 2 in kern._batch_plans
        assert np.array_equal(kern.neighbor_max_batch(values), first)

    def test_plan_cache_evicts_only_the_oldest(self):
        # The cap must behave as FIFO eviction, not a full clear: a 9th
        # batch size drops size 1 and ONLY size 1, so the other recurring
        # sizes keep their cached plans.
        kern = cycle_kernel(6)
        for batch in range(1, 9):
            kern._batch_plan(batch)
        assert sorted(kern._batch_plans) == list(range(1, 9))
        kept = {b: kern._batch_plans[b] for b in range(2, 9)}
        kern._batch_plan(9)
        assert sorted(kern._batch_plans) == list(range(2, 10))
        for batch, plan in kept.items():
            assert kern._batch_plans[batch] is plan  # untouched, not rebuilt

    def test_plan_cache_eviction_keeps_results_exact(self):
        kern = cycle_kernel(6)
        values = np.arange(12, dtype=np.int64).reshape(2, 6)
        expected = kern.neighbor_max_batch(values)
        for batch in range(1, 10):  # churn past the cap
            kern._batch_plan(batch)
        assert np.array_equal(kern.neighbor_max_batch(values), expected)


class TestNeighborMaxStacked:
    def test_uniform_degree_fast_path(self, h_small):
        kern = FloodKernel(h_small.indptr, h_small.indices)
        assert kern._uniform_degree == 8
        values = np.random.default_rng(7).integers(
            0, 50, size=(h_small.n, 3)
        ).astype(np.int32)
        expected = np.stack(
            [kern.neighbor_max(values[:, b].astype(np.int64)) for b in range(3)],
            axis=1,
        )
        assert np.array_equal(kern.neighbor_max_stacked(values), expected)

    def test_out_buffer(self):
        kern = cycle_kernel(4)  # degree 2 everywhere -> fast path
        values = np.array([[1], [2], [3], [4]], dtype=np.int64)
        buf = np.zeros((4, 1), dtype=np.int64)
        assert kern.neighbor_max_stacked(values, out=buf) is buf
        assert buf.ravel().tolist() == [4, 3, 4, 3]

    def test_ragged_fallback(self):
        indptr = np.array([0, 1, 4, 6, 8], dtype=np.int64)
        indices = np.array([1, 0, 2, 3, 1, 3, 1, 2], dtype=np.int64)
        kern = FloodKernel(indptr, indices)
        assert kern._uniform_degree == 0
        values = np.array([[5, 1], [0, 1], [2, 1], [9, 1]], dtype=np.int64)
        expected = np.stack(
            [kern.neighbor_max(values[:, b]) for b in range(2)], axis=1
        )
        assert np.array_equal(kern.neighbor_max_stacked(values), expected)

    def test_degree_one_graph(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        kern = FloodKernel(indptr, indices)
        values = np.array([[3, 1], [7, 2]], dtype=np.int64)
        out = kern.neighbor_max_stacked(values)
        assert out.tolist() == [[7, 2], [3, 1]]

    def test_wrong_height_rejected(self):
        kern = cycle_kernel(4)
        with pytest.raises(ValueError, match="matrix"):
            kern.neighbor_max_stacked(np.zeros((5, 2), dtype=np.int64))


class TestMultiPlanCacheEviction:
    def test_column_plan_cache_evicts_only_the_oldest(self):
        from repro.graphs.smallworld import build_small_world
        from repro.sim.flood import MultiFloodKernel

        nets = [build_small_world(64, 8, seed=1), build_small_world(96, 8, seed=2)]
        mkern = MultiFloodKernel(nets)
        plans = {}
        for batch in range(1, 17):  # 16 distinct live-column assignments
            col_net = np.zeros(batch, dtype=np.int64)
            plans[batch] = mkern.column_plan(col_net)
        assert len(mkern._plan_cache) == 16
        mkern.column_plan(np.zeros(17, dtype=np.int64))  # 17th: evict oldest
        assert len(mkern._plan_cache) == 16
        oldest_key = np.zeros(1, dtype=np.int64).tobytes()
        assert oldest_key not in mkern._plan_cache
        # Every survivor is the cached object, not a rebuild.
        for batch in range(2, 17):
            key = np.zeros(batch, dtype=np.int64).tobytes()
            assert mkern._plan_cache[key] is plans[batch]


class TestSpreadSteps:
    def test_spread_matches_bfs(self, h_small):
        kern = FloodKernel(h_small.indptr, h_small.indices)
        seed_values = np.zeros(h_small.n, dtype=np.int64)
        seed_values[0] = 42
        dist = bfs_distances(h_small.indptr, h_small.indices, 0)
        for steps in (1, 2, 3):
            spread = kern.spread_steps(seed_values, steps)
            reached = spread == 42
            assert np.array_equal(reached, (dist <= steps) & (dist >= 0))

    def test_spread_does_not_mutate_input(self):
        kern = cycle_kernel(5)
        values = np.array([5, 0, 0, 0, 0], dtype=np.int64)
        kern.spread_steps(values, 2)
        assert values.tolist() == [5, 0, 0, 0, 0]


class TestSaturation:
    def test_rounds_to_saturation_equals_eccentricity(self):
        kern = cycle_kernel(9)
        values = np.zeros(9, dtype=np.int64)
        values[0] = 7
        # On a 9-cycle the farthest node is 4 hops away.
        assert kern.rounds_to_saturation(values) == 4

    def test_already_saturated(self):
        kern = cycle_kernel(5)
        assert kern.rounds_to_saturation(np.full(5, 3, dtype=np.int64)) == 0

    def test_limit_exceeded_raises(self):
        kern = cycle_kernel(64)
        values = np.zeros(64, dtype=np.int64)
        values[0] = 1
        with pytest.raises(RuntimeError, match="saturate"):
            kern.rounds_to_saturation(values, limit=3)

"""Unit tests for the lossy/noisy channel model and its per-batch state."""

import numpy as np
import pytest

from repro.sim.channel import ChannelModel, ChannelState, _normalize_channel


def state_for(model, *, cols, rows, seed=0):
    """A ChannelState with one full-height slot per column."""
    slots = [
        (c, 0, rows, np.random.default_rng(seed + c)) for c in range(cols)
    ]
    return ChannelState(model, slots)


class TestChannelModel:
    def test_defaults_are_null(self):
        model = ChannelModel()
        assert model.loss_p == 0.0
        assert model.noise_p == 0.0
        assert model.noise_amp == 0
        assert model.is_null

    @pytest.mark.parametrize("loss_p", [-0.1, 1.5, float("nan")])
    def test_loss_p_out_of_range(self, loss_p):
        with pytest.raises(ValueError, match="loss_p"):
            ChannelModel(loss_p=loss_p)

    @pytest.mark.parametrize("noise_p", [-0.01, 2.0])
    def test_noise_p_out_of_range(self, noise_p):
        with pytest.raises(ValueError, match="noise_p"):
            ChannelModel(noise_p=noise_p)

    @pytest.mark.parametrize("noise_amp", [-1, 0.5])
    def test_noise_amp_must_be_nonnegative_integer(self, noise_amp):
        with pytest.raises(ValueError, match="noise_amp"):
            ChannelModel(noise_amp=noise_amp)

    def test_is_null_requires_both_noise_knobs(self):
        # Either knob at zero disables the noise term entirely.
        assert ChannelModel(noise_p=0.5, noise_amp=0).is_null
        assert ChannelModel(noise_p=0.0, noise_amp=3).is_null
        assert not ChannelModel(noise_p=0.5, noise_amp=3).is_null
        assert not ChannelModel(loss_p=0.1).is_null

    def test_frozen_and_hashable(self):
        model = ChannelModel(loss_p=0.2)
        with pytest.raises(AttributeError):
            model.loss_p = 0.3
        assert ChannelModel(loss_p=0.2) == model
        assert hash(ChannelModel(loss_p=0.2)) == hash(model)


class TestNormalizeChannel:
    def test_none_passes_through(self):
        assert _normalize_channel(None) is None

    def test_null_channel_normalizes_to_none(self):
        assert _normalize_channel(ChannelModel()) is None
        assert _normalize_channel(ChannelModel(noise_p=0.9, noise_amp=0)) is None

    def test_effective_channel_passes_through(self):
        model = ChannelModel(loss_p=0.25, noise_p=0.1, noise_amp=2)
        assert _normalize_channel(model) is model

    @pytest.mark.parametrize("bad", [0.5, "lossy", {"loss_p": 0.5}])
    def test_non_channel_rejected(self, bad):
        with pytest.raises(TypeError, match="ChannelModel"):
            _normalize_channel(bad)


class TestChannelStateCorrupt:
    def test_full_loss_silences_every_sender(self):
        state = state_for(ChannelModel(loss_p=1.0), cols=3, rows=8)
        values = np.arange(1, 25, dtype=np.int32).reshape(8, 3)
        out = state.corrupt(values)
        assert np.all(out == 0)

    def test_input_buffer_is_never_written(self):
        # Metering charges attempted sends off the caller's buffer, so
        # corrupt() must leave it untouched.
        state = state_for(ChannelModel(loss_p=1.0), cols=2, rows=6)
        values = np.ones((6, 2), dtype=np.int32)
        snapshot = values.copy()
        out = state.corrupt(values)
        assert out is not values
        assert np.array_equal(values, snapshot)

    def test_rows_outside_slot_pass_through_unchanged(self):
        # A padded column's dead suffix is outside the slot's [lo, hi).
        model = ChannelModel(loss_p=1.0)
        state = ChannelState(model, [(0, 0, 4, np.random.default_rng(0))])
        values = np.arange(1, 9, dtype=np.int64).reshape(8, 1)
        out = state.corrupt(values)
        assert np.all(out[:4] == 0)
        assert np.array_equal(out[4:], values[4:])

    def test_columns_without_slots_pass_through_unchanged(self):
        model = ChannelModel(loss_p=1.0)
        state = ChannelState(model, [(1, 0, 5, np.random.default_rng(0))])
        values = np.full((5, 3), 7, dtype=np.int32)
        out = state.corrupt(values)
        assert np.all(out[:, 1] == 0)
        assert np.array_equal(out[:, 0], values[:, 0])
        assert np.array_equal(out[:, 2], values[:, 2])

    def test_noise_only_perturbs_nonzero_within_amp(self):
        amp = 3
        state = state_for(
            ChannelModel(noise_p=1.0, noise_amp=amp), cols=1, rows=64
        )
        values = np.zeros((64, 1), dtype=np.int32)
        values[::2, 0] = 50
        out = state.corrupt(values)
        assert np.all(out[1::2] == 0)  # silence is never resurrected
        assert np.all(np.abs(out[::2] - 50) <= amp)

    def test_noise_clamps_at_one_and_dtype_max(self):
        amp = 5
        state = state_for(
            ChannelModel(noise_p=1.0, noise_amp=amp), cols=1, rows=128
        )
        limit = np.iinfo(np.int32).max
        values = np.empty((128, 1), dtype=np.int32)
        values[::2, 0] = 2  # can only dip below 1 via negative offsets
        values[1::2, 0] = limit - 1  # can only wrap via positive offsets
        out = state.corrupt(values)
        assert out.dtype == np.int32
        assert np.all(out >= 1)
        assert np.all(out <= limit)

    def test_draws_are_deterministic_per_slot_stream(self):
        model = ChannelModel(loss_p=0.3, noise_p=0.4, noise_amp=2)
        values = (
            np.random.default_rng(9)
            .integers(0, 100, size=(32, 2))
            .astype(np.int64)
        )
        a = state_for(model, cols=2, rows=32, seed=5).corrupt(values).copy()
        b = state_for(model, cols=2, rows=32, seed=5).corrupt(values).copy()
        assert np.array_equal(a, b)
        c = state_for(model, cols=2, rows=32, seed=6).corrupt(values).copy()
        assert not np.array_equal(a, c)

    def test_scratch_reused_until_shape_or_dtype_changes(self):
        state = state_for(ChannelModel(loss_p=0.5), cols=2, rows=16)
        v32 = np.ones((16, 2), dtype=np.int32)
        first = state.corrupt(v32)
        assert state.corrupt(v32) is first  # same shape+dtype: reused
        v64 = np.ones((16, 2), dtype=np.int64)
        widened = state.corrupt(v64)  # lazy int64 widening mid-run
        assert widened is not first
        assert widened.dtype == np.int64

    def test_model_property(self):
        model = ChannelModel(loss_p=0.1)
        assert state_for(model, cols=1, rows=4).model is model

"""Unit tests for message metering and phase traces."""

import numpy as np
import pytest

from repro.sim.metrics import (
    MessageMeter,
    MeterBatch,
    PhaseRecord,
    PhaseTrace,
    color_bits,
)


class TestColorBits:
    @pytest.mark.parametrize("value,bits", [(1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)])
    def test_scalar(self, value, bits):
        assert color_bits(value) == bits

    def test_vectorized(self):
        out = color_bits(np.array([1, 4, 1024]))
        assert out.tolist() == [1, 3, 11]

    def test_clamps_below_one(self):
        assert color_bits(0) == 1


class TestMessageMeter:
    def test_accumulates(self):
        m = MessageMeter()
        m.add_round()
        m.add_messages(10, ids_each=2, bits_each=5)
        m.add_messages(5, ids_each=1, bits_each=3)
        assert m.rounds == 1
        assert m.messages == 15
        assert m.id_payload == 25
        assert m.bit_payload == 65
        assert m.max_message_ids == 2
        assert m.max_message_bits == 5

    def test_merge(self):
        a, b = MessageMeter(), MessageMeter()
        a.add_round(3)
        a.add_messages(5, ids_each=1)
        b.add_round(2)
        b.add_messages(7, ids_each=4)
        a.merge(b)
        assert a.rounds == 5
        assert a.messages == 12
        assert a.max_message_ids == 4

    def test_messages_per_round(self):
        m = MessageMeter()
        assert m.messages_per_round() == 0.0
        m.add_round(2)
        m.add_messages(10)
        assert m.messages_per_round() == 5.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageMeter().add_messages(-1)

    def test_as_dict_keys(self):
        d = MessageMeter().as_dict()
        assert set(d) >= {"rounds", "messages", "messages_per_round"}


class TestMeterBatch:
    def test_matches_independent_meters(self):
        batch = MeterBatch(3)
        meters = [MessageMeter() for _ in range(3)]
        trials = np.array([0, 2])
        batch.add_rounds(trials, 4)
        for t in trials:
            meters[t].add_round(4)
        batch.add_messages(trials, np.array([10, 20]), ids_each=2, bits_each=3)
        meters[0].add_messages(10, ids_each=2, bits_each=3)
        meters[2].add_messages(20, ids_each=2, bits_each=3)
        batch.add_messages(np.array([1]), 7)
        meters[1].add_messages(7)
        for t in range(3):
            assert batch.meter(t).as_dict() == meters[t].as_dict()

    def test_zero_count_does_not_touch_max(self):
        batch = MeterBatch(2)
        batch.add_messages(np.array([0, 1]), np.array([0, 5]), ids_each=4)
        assert batch.meter(0).max_message_ids == 0
        assert batch.meter(1).max_message_ids == 4

    def test_duplicate_trial_indices_accumulate(self):
        batch = MeterBatch(2)
        batch.add_messages(np.array([0, 0, 1]), np.array([1, 2, 5]))
        batch.add_rounds(np.array([0, 0]), 3)
        assert batch.meter(0).messages == 3
        assert batch.meter(1).messages == 5
        assert batch.meter(0).rounds == 6

    def test_negative_count_rejected(self):
        batch = MeterBatch(1)
        with pytest.raises(ValueError, match="negative"):
            batch.add_messages(np.array([0]), -1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="batch size"):
            MeterBatch(-1)


class TestPhaseTrace:
    def test_chronology(self):
        t = PhaseTrace()
        t.append(PhaseRecord(1, 2, 2, 0, 100))
        t.append(PhaseRecord(2, 4, 8, 30, 100))
        assert len(t) == 2
        assert t.last_phase() == 2
        assert t.total_flooding_rounds() == 10
        assert t.decisions_by_phase() == {1: 0, 2: 30}

    def test_empty(self):
        t = PhaseTrace()
        assert t.last_phase() == 0
        assert t.total_flooding_rounds() == 0

"""Unit tests for message payload accounting."""

import pytest

from repro.sim.messages import (
    AdjacencyClaimMessage,
    ColorMessage,
    Message,
    TokenMessage,
    ValueMessage,
    VerifyQueryMessage,
    VerifyReplyMessage,
)


class TestPayloadAccounting:
    def test_base_message_zero(self):
        m = Message()
        assert m.id_count() == 0
        assert m.bit_count() == 0

    def test_color_message_bits_scale_with_color(self):
        small = ColorMessage(color=1, phase=1, subphase=1)
        large = ColorMessage(color=1 << 16, phase=1, subphase=1)
        assert large.bit_count() > small.bit_count()
        assert small.id_count() == 0

    def test_adjacency_claim_ids(self):
        m = AdjacencyClaimMessage(claimed_h_neighbors=(1, 2, 3, 4))
        assert m.id_count() == 4

    def test_verify_query_constant_ids(self):
        m = VerifyQueryMessage(color=9, relay=3, phase=2, subphase=1, round=2)
        assert m.id_count() == 1

    def test_verify_reply(self):
        m = VerifyReplyMessage(color=9, relay=3, legitimate=False)
        assert m.id_count() == 1
        assert m.bit_count() >= 1

    def test_token_and_value(self):
        assert TokenMessage(token=5).bit_count() == 64
        assert ValueMessage(value=1.5, tag="x").bit_count() == 64

    def test_messages_frozen(self):
        m = ColorMessage(color=1, phase=1, subphase=1)
        with pytest.raises(AttributeError):
            m.color = 2

    def test_small_sized_property(self):
        """Footnote 4: constant IDs + O(log n) bits for protocol messages."""
        for msg in (
            ColorMessage(color=40, phase=9, subphase=3),
            VerifyQueryMessage(color=40, relay=1, phase=9, subphase=3, round=2),
            VerifyReplyMessage(color=40, relay=1, legitimate=True),
        ):
            assert msg.id_count() <= 1
            assert msg.bit_count() <= 64

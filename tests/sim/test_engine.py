"""Unit tests for the synchronous message-passing engine."""

import pytest

from repro.sim.engine import SynchronousEngine
from repro.sim.messages import ValueMessage
from repro.sim.node import NodeProgram


class EchoProgram(NodeProgram):
    """Records inbox values; on the first round sends its id to neighbors."""

    def __init__(self, node):
        self.node = node
        self.crashed = False
        self.seen = []

    def on_round(self, ctx):
        for sender, msg in ctx.inbox:
            self.seen.append((ctx.round, sender, msg.value))
        if ctx.round == 1:
            ctx.broadcast(ValueMessage(float(self.node)))


def build_engine(net, cls=EchoProgram, seed=0):
    return SynchronousEngine(net, {v: cls(v) for v in range(net.n)}, seed=seed)


class TestDelivery:
    def test_messages_arrive_next_round(self, net_small):
        eng = build_engine(net_small)
        eng.step()  # round 1: everyone broadcasts
        assert all(not p.seen for p in eng.programs.values())
        eng.step()  # round 2: delivery
        got = eng.programs[0].seen
        senders = {s for (_, s, _) in got}
        assert senders == set(net_small.g_neighbors(0).tolist())

    def test_meter_counts_delivered(self, net_small):
        eng = build_engine(net_small)
        eng.run(2)
        total_ports = int(net_small.g_indptr[-1])
        assert eng.meter.messages == total_ports
        assert eng.meter.rounds == 2

    def test_send_to_non_neighbor_rejected(self, net_small):
        class BadProgram(NodeProgram):
            crashed = False

            def on_round(self, ctx):
                far = (ctx.node + 57) % 128
                if far not in set(ctx.neighbors.tolist()) and far != ctx.node:
                    ctx.send(far, ValueMessage(1.0))

        eng = SynchronousEngine(
            net_small, {v: BadProgram() for v in range(net_small.n)}, seed=0
        )
        with pytest.raises(ValueError, match="non-neighbor"):
            eng.step()

    def test_send_to_self_rejected(self, net_small):
        class SelfProgram(NodeProgram):
            crashed = False

            def on_round(self, ctx):
                ctx.send(ctx.node, ValueMessage(1.0))

        eng = SynchronousEngine(
            net_small, {v: SelfProgram() for v in range(net_small.n)}, seed=0
        )
        with pytest.raises(ValueError, match="itself"):
            eng.step()


class TestCrashSemantics:
    def test_crashed_nodes_do_not_run_or_receive(self, net_small):
        eng = build_engine(net_small)
        victim = int(net_small.g_neighbors(0)[0])
        eng.programs[victim].crash()
        eng.run(2)
        assert eng.programs[victim].seen == []
        # And nobody received from the victim.
        for v in range(net_small.n):
            assert all(s != victim for (_, s, _) in eng.programs[v].seen)

    def test_crashed_mask(self, net_small):
        eng = build_engine(net_small)
        eng.programs[3].crash()
        mask = eng.crashed_mask()
        assert mask[3] and mask.sum() == 1


class TestControl:
    def test_stop_when(self, net_small):
        eng = build_engine(net_small)
        executed = eng.run(10, stop_when=lambda e: e.round >= 3)
        assert executed == 3

    def test_flush_pending_drops(self, net_small):
        eng = build_engine(net_small)
        eng.step()  # queue broadcasts
        dropped = eng.flush_pending()
        assert dropped == int(net_small.g_indptr[-1])
        eng.step()
        assert all(not p.seen for p in eng.programs.values())

    def test_program_coverage_validated(self, net_small):
        with pytest.raises(ValueError, match="cover"):
            SynchronousEngine(net_small, {0: EchoProgram(0)}, seed=0)

    def test_gather(self, net_small):
        eng = build_engine(net_small)
        nodes = eng.gather("node")
        assert nodes == list(range(net_small.n))

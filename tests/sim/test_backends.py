"""Kernel backend registry, selection, and numba-kernel equivalence.

The backends package has two jobs: (1) a registry/resolution layer that
turns ``backend="numpy"|"numba"|"auto"`` / the ``REPRO_KERNEL_BACKEND``
env var into a :class:`KernelBackend` instance with graceful numpy
fallback, and (2) the backends themselves, which must be bit-for-bit
interchangeable on the flooding kernels.

The numba kernels are written as pure-Python functions that numba
jit-wraps only when it is importable, so everything below runs — and the
kernel *logic* is fully exercised — on numba-less machines too: the
selection tests monkeypatch ``numba_backend.NUMBA_AVAILABLE`` and the
kernels execute as plain Python.  On a machine with numba installed the
same tests cover the compiled path.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.core.batch import run_counting_batch, run_counting_unionstack
from repro.core.sweep import run_sweep
from repro.graphs.shared import NetworkTuple, SharedNetworkPack
from repro.graphs.smallworld import build_small_world
from repro.sim.backends import (
    ENV_VAR,
    BackendUnavailableError,
    KernelBackend,
    _reset_selection_state,
    available_backends,
    backend_available,
    backend_names,
    get_backend,
    numba_backend,
    resolve_backend,
)
from repro.sim.backends.numba_backend import NumbaBackend
from repro.sim.backends.numpy_backend import NumpyBackend
from repro.sim.flood import FloodKernel, MultiFloodKernel, UnionFloodKernel


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    """Each test starts with no env override and cold singleton/warning state."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    _reset_selection_state()
    yield
    _reset_selection_state()


@pytest.fixture
def fake_numba(monkeypatch):
    """Pretend numba imported: the pure-Python kernels run un-jitted."""
    monkeypatch.setattr(numba_backend, "NUMBA_AVAILABLE", True)
    _reset_selection_state()
    yield
    _reset_selection_state()


def ragged_kernel(**kw):
    # Degrees 1, 3, 2, 2 — no uniform degree, so the general CSR layout
    # (reduceat on numpy, the indptr walk on numba) is exercised.
    indptr = np.array([0, 1, 4, 6, 8], dtype=np.int64)
    indices = np.array([1, 0, 2, 3, 1, 3, 1, 2], dtype=np.int64)
    return FloodKernel(indptr, indices, **kw)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_backend_names(self):
        assert list(backend_names()) == ["numpy", "numba"]

    def test_numpy_always_available(self):
        assert backend_available("numpy")
        assert "numpy" in available_backends()

    def test_available_backends_tracks_numba(self):
        expected = ["numpy", "numba"] if numba_backend.NUMBA_AVAILABLE else ["numpy"]
        assert list(available_backends()) == expected

    def test_get_backend_returns_singleton(self):
        first = get_backend("numpy")
        assert isinstance(first, NumpyBackend)
        assert get_backend("numpy") is first

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_get_backend_unavailable_raises(self):
        if numba_backend.NUMBA_AVAILABLE:
            pytest.skip("numba installed: the unavailable path cannot trigger")
        with pytest.raises(BackendUnavailableError):
            get_backend("numba")

    def test_get_backend_numba_when_faked(self, fake_numba):
        backend = get_backend("numba")
        assert isinstance(backend, NumbaBackend)
        assert backend.name == "numba"

    def test_backends_satisfy_protocol(self, fake_numba):
        assert isinstance(get_backend("numpy"), KernelBackend)
        assert isinstance(get_backend("numba"), KernelBackend)


# ----------------------------------------------------------------------
# Resolution precedence: explicit arg > env var > auto
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_auto_numpy(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("auto").name == "numpy"

    def test_auto_prefers_numba_when_available(self, fake_numba):
        assert resolve_backend("auto").name == "numba"
        assert resolve_backend(None).name == "numba"

    def test_instance_passthrough(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance

    def test_explicit_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_explicit_unavailable_warns_once_and_falls_back(self):
        if numba_backend.NUMBA_AVAILABLE:
            pytest.skip("numba installed: the unavailable path cannot trigger")
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert resolve_backend("numba").name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second request: silent
            assert resolve_backend("numba").name == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_env_override_numba(self, fake_numba, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend(None).name == "numba"

    def test_explicit_arg_beats_env(self, fake_numba, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend("numpy").name == "numpy"

    def test_empty_env_treated_as_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve_backend(None).name == "numpy"

    def test_unknown_env_value_warns_once_then_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cuda")
        with pytest.warns(RuntimeWarning, match="cuda"):
            assert resolve_backend(None).name in available_backends()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_backend(None)


# ----------------------------------------------------------------------
# Fallback warnings are attributed to the user's call site
# ----------------------------------------------------------------------
class TestWarningAttribution:
    """``_warn_once`` computes its stacklevel from the live stack, so the
    warning lands on the first frame *outside* the repro package no matter
    how deep the resolution was reached — directly via
    ``resolve_backend(...)`` or through ``FloodKernel(...)`` construction.
    A hardcoded stacklevel can only be right for one of these."""

    @pytest.fixture
    def fake_unavailable(self):
        from repro.sim.backends import _REGISTRY, register_backend

        register_backend("fake", NumpyBackend, lambda: False)
        yield
        _REGISTRY.pop("fake", None)
        _reset_selection_state()

    def test_resolve_backend_warns_on_this_file(self, fake_unavailable):
        with pytest.warns(RuntimeWarning, match="falling back") as rec:
            resolve_backend("fake")
        assert rec[0].filename == __file__

    def test_kernel_construction_warns_on_this_file(self, fake_unavailable):
        with pytest.warns(RuntimeWarning, match="falling back") as rec:
            ragged_kernel(backend="fake")
        assert rec[0].filename == __file__

    def test_env_typo_warns_on_this_file(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.warns(RuntimeWarning, match="bogus") as rec:
            resolve_backend(None)
        assert rec[0].filename == __file__


# ----------------------------------------------------------------------
# Kernel-level equivalence: numba (pure-Python mode) vs numpy
# ----------------------------------------------------------------------
class TestNumbaKernelEquivalence:
    @pytest.fixture()
    def nb(self, fake_numba):
        return get_backend("numba")

    def regular_kernel(self, **kw):
        return FloodKernel(*self._regular_csr(), **kw)

    @staticmethod
    def _regular_csr():
        net = build_small_world(64, 8, seed=5)
        return net.h.indptr, net.h.indices

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_neighbor_max_matches_numpy(self, nb, dtype):
        kern = self.regular_kernel()
        values = np.random.default_rng(0).integers(0, 99, size=kern.n).astype(dtype)
        assert np.array_equal(
            nb.neighbor_max(kern, values), NumpyBackend().neighbor_max(kern, values)
        )

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    @pytest.mark.parametrize("make", ["regular", "ragged"])
    def test_neighbor_max_stacked_matches_numpy(self, nb, make, dtype):
        kern = self.regular_kernel() if make == "regular" else ragged_kernel()
        values = np.random.default_rng(1).integers(
            0, 99, size=(kern.n, 7)
        ).astype(dtype)
        expected = NumpyBackend().neighbor_max_stacked(kern, values)
        got = nb.neighbor_max_stacked(kern, values)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_stacked_out_buffer(self, nb):
        kern = self.regular_kernel()
        values = np.random.default_rng(2).integers(
            0, 99, size=(kern.n, 3), dtype=np.int32
        )
        out = np.empty_like(values)
        result = nb.neighbor_max_stacked(kern, values, out=out)
        assert result is out
        assert np.array_equal(out, NumpyBackend().neighbor_max_stacked(kern, values))

    def test_stacked_aliasing_out_is_input(self, nb):
        # out aliasing the input would corrupt the gather mid-kernel; the
        # backend must detect the overlap and stage through a fresh buffer.
        kern = self.regular_kernel()
        values = np.random.default_rng(3).integers(
            0, 99, size=(kern.n, 3), dtype=np.int32
        )
        expected = NumpyBackend().neighbor_max_stacked(kern, values)
        result = nb.neighbor_max_stacked(kern, values, out=values)
        assert result is values
        assert np.array_equal(result, expected)

    def test_stacked_noncontiguous_out(self, nb):
        kern = self.regular_kernel()
        values = np.random.default_rng(4).integers(
            0, 99, size=(kern.n, 2), dtype=np.int32
        )
        wide = np.zeros((kern.n, 4), dtype=np.int32)
        out = wide[:, ::2]  # non-contiguous view
        result = nb.neighbor_max_stacked(kern, values, out=out)
        assert result is out
        assert np.array_equal(out, NumpyBackend().neighbor_max_stacked(kern, values))

    def test_unsupported_dtype_warns_once_and_delegates(self, nb):
        kern = self.regular_kernel()
        values = np.random.default_rng(5).random((kern.n, 2))
        with pytest.warns(RuntimeWarning, match="dtype"):
            got = nb.neighbor_max_stacked(kern, values)
        assert np.array_equal(got, NumpyBackend().neighbor_max_stacked(kern, values))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # same dtype again: silent
            nb.neighbor_max_stacked(kern, values)

    def test_batch_delegates_to_numpy(self, nb):
        kern = self.regular_kernel()
        values = np.random.default_rng(6).integers(
            0, 99, size=(3, kern.n)
        ).astype(np.int64)
        assert np.array_equal(
            nb.neighbor_max_batch(kern, values),
            NumpyBackend().neighbor_max_batch(kern, values),
        )

    def test_constructor_requires_numba(self):
        if numba_backend.NUMBA_AVAILABLE:
            pytest.skip("numba installed: the unavailable path cannot trigger")
        with pytest.raises(BackendUnavailableError):
            NumbaBackend()


# ----------------------------------------------------------------------
# Kernel objects carry the backend as a first-class axis
# ----------------------------------------------------------------------
class TestKernelBackendAxis:
    def test_flood_kernel_backend_property(self):
        assert ragged_kernel().backend == "numpy"
        assert ragged_kernel(backend="numpy").backend == "numpy"

    def test_flood_kernel_backend_numba(self, fake_numba):
        kern = ragged_kernel(backend="numba")
        assert kern.backend == "numba"
        values = np.array([[5, 1], [0, 1], [2, 1], [9, 1]], dtype=np.int64)
        ref = ragged_kernel(backend="numpy")
        assert np.array_equal(
            kern.neighbor_max_stacked(values), ref.neighbor_max_stacked(values)
        )

    def test_union_kernel_passes_backend_through(self, fake_numba):
        nets = [build_small_world(48, 8, seed=1), build_small_world(64, 8, seed=2)]
        union = UnionFloodKernel.from_networks(nets, backend="numba")
        assert union.backend == "numba"
        ref = UnionFloodKernel.from_networks(nets, backend="numpy")
        values = np.random.default_rng(7).integers(
            0, 99, size=(union.n, 4), dtype=np.int32
        )
        assert np.array_equal(
            union.neighbor_max_stacked(values), ref.neighbor_max_stacked(values)
        )

    def test_multi_kernel_resolves_once_for_members(self, fake_numba):
        nets = [build_small_world(48, 8, seed=1), build_small_world(64, 8, seed=2)]
        mkern = MultiFloodKernel(nets, backend="numba")
        assert mkern.backend == "numba"
        assert all(k.backend == "numba" for k in mkern.kernels)

    def test_env_var_steers_kernel_construction(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert ragged_kernel().backend == "numpy"


# ----------------------------------------------------------------------
# Engine and sweep entry points accept the backend kwarg
# ----------------------------------------------------------------------
class TestEngineBackendKwarg:
    def test_run_counting_batch_backend_is_bit_for_bit(self, net_small):
        seeds = [3, 4, 5]
        ref = run_counting_batch(net_small, seeds)
        got = run_counting_batch(net_small, seeds, backend="numpy")
        for a, b in zip(ref, got):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_run_counting_batch_fake_numba(self, fake_numba, net_small):
        seeds = [3, 4]
        ref = run_counting_batch(net_small, seeds, backend="numpy")
        got = run_counting_batch(net_small, seeds, backend="numba")
        for a, b in zip(ref, got):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_run_counting_unionstack_backend(self, fake_numba):
        nets = [build_small_world(64, 8, seed=1), build_small_world(96, 8, seed=2)]
        seeds = [3, 4]
        ref = run_counting_unionstack(nets, seeds, backend="numpy")
        got = run_counting_unionstack(nets, seeds, backend="numba")
        for a, b in zip(ref, got):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_run_sweep_backend(self, net_small):
        ref = run_sweep(net_small, seeds=[1, 2]).results
        got = run_sweep(net_small, seeds=[1, 2], backend="numpy").results
        for a, b in zip(ref, got):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()


# ----------------------------------------------------------------------
# The backend choice survives payload containers and shared memory
# ----------------------------------------------------------------------
class TestBackendOnPayloads:
    def test_network_tuple_carries_backend(self):
        nets = [build_small_world(48, 8, seed=1)]
        bundle = NetworkTuple.build(nets, backend="numpy")
        assert bundle.kernel_backend == "numpy"
        assert NetworkTuple.build(nets).kernel_backend is None

    def test_shared_pack_pickle_roundtrip_keeps_backend(self):
        nets = [build_small_world(48, 8, seed=1), build_small_world(64, 8, seed=2)]
        with SharedNetworkPack.create(nets, backend="numpy") as pack:
            clone = pickle.loads(pickle.dumps(pack))
            assert clone.nets.kernel_backend == "numpy"

    def test_union_engine_adopts_container_backend(self, fake_numba):
        nets = [build_small_world(64, 8, seed=1), build_small_world(96, 8, seed=2)]
        bundle = NetworkTuple.build(nets, union=True, backend="numba")
        ref = run_counting_unionstack(nets, [3, 4], backend="numpy")
        got = run_counting_unionstack(bundle, [3, 4])
        for a, b in zip(ref, got):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

"""Unit tests for RNG stream management."""

import numpy as np
import pytest

from repro.sim.rng import derive_seed, make_rng, spawn, stream


class TestMakeRng:
    def test_integer_seed_deterministic(self):
        assert make_rng(5).integers(1 << 30) == make_rng(5).integers(1 << 30)

    def test_distinct_seeds_differ(self):
        draws_a = make_rng(1).integers(1 << 30, size=4)
        draws_b = make_rng(2).integers(1 << 30, size=4)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_salted_differs_from_default_rng(self):
        ours = make_rng(0).integers(1 << 30)
        theirs = np.random.default_rng(0).integers(1 << 30)
        assert ours != theirs

    def test_none_gives_entropy(self):
        a = make_rng(None).integers(1 << 62)
        b = make_rng(None).integers(1 << 62)
        assert a != b  # astronomically unlikely to collide


class TestSpawn:
    def test_children_independent(self):
        children = spawn(make_rng(3), 3)
        draws = [c.integers(1 << 30, size=4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = spawn(make_rng(3), 2)[0].integers(1 << 30)
        b = spawn(make_rng(3), 2)[0].integers(1 << 30)
        assert a == b

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestNamedStreams:
    def test_same_key_same_stream(self):
        assert stream(7, "colors", 3).integers(1 << 30) == stream(
            7, "colors", 3
        ).integers(1 << 30)

    def test_different_keys_differ(self):
        a = stream(7, "colors").integers(1 << 30, size=4)
        b = stream(7, "placement").integers(1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_derive_seed_stable(self):
        assert derive_seed(9, "graph") == derive_seed(9, "graph")
        assert derive_seed(9, "graph") != derive_seed(9, "run")

"""Unit tests for Lemma 3 reconstruction and the crash rule (Lemma 15)."""

import numpy as np
import pytest

from repro.core.neighborhood import (
    ConflictError,
    crash_phase,
    find_conflicts,
    infer_child_relation,
    reconstruct_h_ball,
    truthful_claims,
)
from repro.graphs.balls import bfs_distances


@pytest.fixture(scope="module")
def truth(net_small):
    return truthful_claims(net_small)


# net_small is session-scoped in conftest; redeclare at module scope for the
# truth fixture's benefit.
@pytest.fixture(scope="module")
def net_small():
    from repro.graphs import build_small_world

    return build_small_world(128, 8, seed=7)


class TestTruthfulClaims:
    def test_claims_have_degree_d(self, net_small, truth):
        for v in (0, 10, 90):
            assert len(truth[v]) == net_small.d

    def test_claims_sorted_with_multiplicity(self, net_small, truth):
        for v in range(net_small.n):
            assert list(truth[v]) == sorted(truth[v])

    def test_subset_of_nodes(self, net_small):
        partial = truthful_claims(net_small, np.array([3, 5]))
        assert set(partial) == {3, 5}


class TestReconstruction:
    def test_faithful_on_clean_network(self, net_small, truth):
        for v in (0, 33, 101):
            ports = net_small.g_neighbors(v)
            claims = {int(u): truth[int(u)] for u in ports}
            recon = reconstruct_h_ball(v, ports, claims, net_small.k, net_small.d)
            true_d = bfs_distances(
                net_small.h.indptr, net_small.h.indices, v, max_depth=net_small.k
            )
            for node, dist in recon.items():
                assert true_d[node] == dist
            # Every ball member is reconstructed.
            assert set(recon) == set(np.flatnonzero(true_d >= 0).tolist())

    def test_silent_neighbors_tolerated(self, net_small, truth):
        v = 7
        ports = net_small.g_neighbors(v)
        claims = {int(u): truth[int(u)] for u in ports}
        # Drop half the claims: silence is not a contradiction.
        for u in list(claims)[::2]:
            del claims[u]
        recon = reconstruct_h_ball(v, ports, claims, net_small.k, net_small.d)
        assert recon[v] == 0  # still returns something sensible

    def test_degree_violation_detected(self, net_small, truth):
        v = 7
        ports = net_small.g_neighbors(v)
        claims = {int(u): truth[int(u)] for u in ports}
        liar = int(ports[0])
        claims[liar] = claims[liar][:-1]  # only d-1 entries
        with pytest.raises(ConflictError, match="degree"):
            reconstruct_h_ball(v, ports, claims, net_small.k, net_small.d)

    def test_asymmetric_claim_detected(self, net_small, truth):
        v = 12
        ports = net_small.g_neighbors(v)
        port_set = set(map(int, ports))
        claims = {int(u): truth[int(u)] for u in ports}
        # Find a liar whose claim includes another port; replace that
        # entry with a *different port* it is NOT adjacent to.
        for liar in map(int, ports):
            said = set(claims[liar])
            non_adjacent_ports = [
                w for w in port_set if w not in said and w != liar
            ]
            adjacent_ports = [w for w in said if w in port_set]
            if non_adjacent_ports and adjacent_ports:
                lie = list(claims[liar])
                lie[lie.index(adjacent_ports[0])] = non_adjacent_ports[0]
                claims[liar] = tuple(sorted(lie))
                break
        with pytest.raises(ConflictError, match="asymmetric"):
            reconstruct_h_ball(v, ports, claims, net_small.k, net_small.d)

    def test_phantom_detected(self, net_small, truth):
        v = 25
        ports = net_small.g_neighbors(v)
        # Pick a liar at H-distance 1 (its claims sit at level <= k-1).
        dist = bfs_distances(
            net_small.h.indptr, net_small.h.indices, v, max_depth=1
        )
        liar = int(np.flatnonzero(dist == 1)[0])
        claims = {int(u): truth[int(u)] for u in ports}
        lie = list(claims[liar])
        # Replace an entry that is not v itself with a phantom ID.
        idx = next(i for i, x in enumerate(lie) if x != v)
        lie[idx] = net_small.n + 99
        claims[liar] = tuple(sorted(lie))
        with pytest.raises(ConflictError):
            reconstruct_h_ball(v, ports, claims, net_small.k, net_small.d)


class TestFindConflicts:
    def test_clean_claims_no_conflict(self, net_small, truth):
        for v in (0, 50):
            ports = net_small.g_neighbors(v)
            claims = {int(u): truth[int(u)] for u in ports}
            assert find_conflicts(v, ports, claims, net_small.k, net_small.d) == ()

    def test_returns_witnesses(self, net_small, truth):
        v = 7
        ports = net_small.g_neighbors(v)
        claims = {int(u): truth[int(u)] for u in ports}
        liar = int(ports[0])
        claims[liar] = claims[liar][:-1]
        witnesses = find_conflicts(v, ports, claims, net_small.k, net_small.d)
        assert liar in witnesses


class TestCrashPhase:
    def test_truthful_claims_no_crash(self, net_small, truth):
        byz = np.zeros(net_small.n, dtype=bool)
        byz[[5, 40]] = True
        claims = {5: truth[5], 40: truth[40]}
        crashed = crash_phase(net_small, byz, claims)
        assert not crashed.any()

    def test_silence_no_crash(self, net_small):
        byz = np.zeros(net_small.n, dtype=bool)
        byz[5] = True
        crashed = crash_phase(net_small, byz, {})
        assert not crashed.any()

    def test_liar_crashes_neighborhood(self, net_small, truth):
        byz = np.zeros(net_small.n, dtype=bool)
        byz[5] = True
        lie = tuple(sorted(list(truth[5][1:]) + [net_small.n + 1]))
        crashed = crash_phase(net_small, byz, {5: lie})
        assert crashed.any()
        # Byzantine nodes never crash.
        assert not crashed[5]
        # Crashes concentrate around the liar (within its G-ball).
        g_ball = set(net_small.g_neighbors(5).tolist())
        assert set(np.flatnonzero(crashed).tolist()) <= g_ball


class TestChildRelation:
    def test_lemma3_rules(self):
        ng_v = {1, 2, 3, 4, 5}
        ng_u = {1, 2, 3, 9}
        ng_w = {1, 2, 8}
        # N(w) ∩ N(v) = {1,2} ⊂ N(u) ∩ N(v) = {1,2,3}: w is child of u.
        assert infer_child_relation(ng_v, ng_u, ng_w) == "w_child_of_u"
        assert infer_child_relation(ng_v, ng_w, ng_u) == "u_child_of_w"

    def test_siblings(self):
        assert infer_child_relation({1, 2}, {1, 9}, {1, 8}) == "siblings"

    def test_unrelated(self):
        assert infer_child_relation({1, 2, 3}, {1, 9}, {2, 8}) == "unrelated"

"""Unit tests for geometric color machinery (Observations 4-5)."""

import numpy as np
import pytest

from repro.core.colors import (
    color_pmf,
    color_sf,
    expected_max_color,
    max_color_cdf,
    sample_colors,
)
from repro.sim.rng import make_rng


class TestSampling:
    def test_support_positive(self):
        colors = sample_colors(make_rng(0), 10_000)
        assert colors.min() >= 1

    def test_mean_close_to_two(self):
        colors = sample_colors(make_rng(1), 50_000)
        assert colors.mean() == pytest.approx(2.0, rel=0.05)

    def test_empty(self):
        assert sample_colors(make_rng(0), 0).shape == (0,)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_colors(make_rng(0), -1)

    def test_tail_matches_observation4(self):
        colors = sample_colors(make_rng(2), 100_000)
        # Pr[c > 3] = 1/8 (Observation 4.5).
        assert np.mean(colors > 3) == pytest.approx(0.125, abs=0.01)


class TestDistributionFunctions:
    def test_pmf_sums_to_one(self):
        rs = np.arange(1, 60)
        assert color_pmf(rs).sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_pmf_value(self, r):
        assert color_pmf(r) == pytest.approx(0.5**r)

    def test_sf_identity(self):
        # Pr[c > r] = 1 - sum_{j<=r} pmf(j).
        for r in (1, 3, 7):
            total = sum(color_pmf(j) for j in range(1, r + 1))
            assert color_sf(r) == pytest.approx(1 - total)

    def test_pmf_zero_below_support(self):
        assert color_pmf(0) == 0.0

    def test_max_cdf_observation5(self):
        # Pr[max <= r] = (1 - 2^-r)^m.
        assert max_color_cdf(3, 10) == pytest.approx((1 - 0.125) ** 10)

    def test_max_cdf_monotone_in_r(self):
        values = [max_color_cdf(r, 64) for r in range(1, 12)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_max_cdf_requires_m(self):
        with pytest.raises(ValueError):
            max_color_cdf(2, 0)


class TestExpectedMax:
    def test_single_node(self):
        assert expected_max_color(1) == pytest.approx(2.0, rel=1e-3)

    def test_grows_like_log(self):
        e16 = expected_max_color(16)
        e256 = expected_max_color(256)
        # log2(256/16) = 4 more nodes-doublings => roughly +4.
        assert 3.0 <= e256 - e16 <= 5.0

    def test_monte_carlo_agreement(self):
        rng = make_rng(3)
        sims = [sample_colors(rng, 128).max() for _ in range(2000)]
        assert np.mean(sims) == pytest.approx(expected_max_color(128), rel=0.03)

"""Edge-case tests for the vectorized runner."""

import numpy as np
import pytest

from repro.adversary import (
    Adversary,
    HonestAdversary,
    Injection,
    SubphasePlan,
    TopologyLiarAdversary,
)
from repro.core import CountingConfig, run_byzantine_counting
from repro.core.runner import run_counting
from repro.graphs import build_small_world


@pytest.fixture(scope="module")
def net():
    return build_small_world(128, 8, seed=23)


class MisalignedAdversary(Adversary):
    """Returns initial colors of the wrong shape (must be rejected)."""

    name = "misaligned"

    def subphase_plan(self, state):
        return SubphasePlan(initial_colors=np.array([1, 2]), injections=[])


class LateInjector(Adversary):
    """Injects only at the final round of each subphase."""

    name = "late-injector"

    def subphase_plan(self, state):
        inj = Injection(t=state.rounds, nodes=state.byz_nodes, value=10_000)
        return SubphasePlan(initial_colors=None, injections=[inj])


class TestAdversaryContracts:
    def test_misaligned_colors_rejected(self, net):
        byz = np.zeros(net.n, dtype=bool)
        byz[[3, 7, 11]] = True
        with pytest.raises(ValueError, match="align"):
            run_byzantine_counting(
                net, MisalignedAdversary(), byz, config=CountingConfig(), seed=0
            )

    def test_late_injections_all_rejected_with_verification(self, net):
        byz = np.zeros(net.n, dtype=bool)
        byz[3] = True
        res = run_byzantine_counting(
            net, LateInjector(), byz, config=CountingConfig(max_phase=12), seed=0
        )
        # Round k-1 = 2; phases 1 and 2 have legal final rounds, later
        # phases' final-round injections are all rejected.
        assert res.injections_rejected > 0
        trace_by_phase = {r.phase: r for r in res.trace}
        for phase, rec in trace_by_phase.items():
            if phase > net.k - 1:
                assert rec.injections_accepted == 0

    def test_single_byzantine_node(self, net):
        byz = np.zeros(net.n, dtype=bool)
        byz[0] = True
        res = run_byzantine_counting(
            net, HonestAdversary(), byz, config=CountingConfig(max_phase=12), seed=0
        )
        assert res.fraction_decided() == 1.0

    def test_crashed_nodes_excluded_from_decisions(self, net):
        byz = np.zeros(net.n, dtype=bool)
        byz[5] = True
        res = run_byzantine_counting(
            net, TopologyLiarAdversary(), byz, config=CountingConfig(max_phase=12), seed=0
        )
        assert res.crashed.any()
        # Crashed nodes never decide.
        assert np.all(res.decided_phase[res.crashed] == -1)

    def test_stop_when_all_decided_off_runs_to_max(self, net):
        cfg = CountingConfig(max_phase=9, stop_when_all_decided=False, verification=False)
        res = run_counting(net, cfg, seed=0)
        assert res.trace.last_phase() == 9

    def test_verification_cost_accounted(self, net):
        byz = np.zeros(net.n, dtype=bool)
        byz[3] = True
        base = run_byzantine_counting(
            net,
            HonestAdversary(),
            byz,
            config=CountingConfig(max_phase=8, verification_round_cost=0),
            seed=0,
        )
        costed = run_byzantine_counting(
            net,
            HonestAdversary(),
            byz,
            config=CountingConfig(max_phase=8, verification_round_cost=4),
            seed=0,
        )
        assert costed.meter.rounds > base.meter.rounds
        # Decisions identical — the cost model does not change semantics.
        assert np.array_equal(costed.decided_phase, base.decided_phase)

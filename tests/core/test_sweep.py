"""Per-trial placements and the fused sweep must be bit-for-bit.

The fused sweep engine exists so the placement-varying experiments
(E07/E11/E14) can leave the scalar ``run_byzantine_counting`` loop without
changing any reported number.  These tests pin that contract cell by cell:
a batch with per-trial ``(B, n)`` Byzantine masks — and a full
``run_sweep`` grid over (strategy, placement, config, seed) — must equal
the scalar sequential runs exactly, including crash sets, meters, traces,
and injection counters.  The int32/int64 dtype boundary of the adversarial
state is exercised from both sides (plans at ``INT32_MAX`` stay narrow,
plans beyond it widen mid-run), since the demotion must never change a
value.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.adversary.base import Adversary, Injection, SubphasePlan
from repro.adversary.placement import clustered_placement, random_placement
from repro.adversary.strategies import EarlyStopAdversary
from repro.core import (
    ADVERSARIES,
    CountingConfig,
    make_adversary,
    run_counting,
    run_counting_batch,
    run_multi_sweep,
    run_sweep,
)
from repro.core.sweep import MIN_SHARD_CELLS, _shard_bounds
from repro.experiments.common import byzantine_counting_trials

INT32_MAX = int(np.iinfo(np.int32).max)


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


def _mixed_placements(net, seed=4):
    return [
        placement_for_delta(net, 0.5, rng=seed),
        placement_for_delta(net, 0.55, rng=seed + 1),
        clustered_placement(net, 4, rng=seed + 2),
    ]


class TestPerTrialMasks:
    """(B, n) mask stacks must match per-trial scalar runs per strategy."""

    CFG = CountingConfig(max_phase=12)

    @pytest.mark.parametrize("strategy", sorted(ADVERSARIES))
    def test_strategy_matches_sequential(self, net_small, strategy):
        if type(make_adversary(strategy)).batch_adapt is not Adversary.batch_adapt:
            pytest.skip("adaptive placement exists only in the batched protocol")
        base = _mixed_placements(net_small)
        masks = [base[0], base[1], base[2], base[0], base[2]]
        seeds = [20, 21, 22, 23, 24]
        seq = [
            run_counting(
                net_small,
                self.CFG,
                seed=s,
                adversary=make_adversary(strategy),
                byz_mask=m,
            )
            for s, m in zip(seeds, masks)
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=lambda: make_adversary(strategy),
            byz_mask=masks,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_stack_array_matches_list(self, net_small):
        masks = _mixed_placements(net_small)
        seeds = [1, 2, 3]
        from_list = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=masks,
        )
        from_stack = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=np.array(masks),
        )
        for a, b in zip(from_list, from_stack):
            assert_trial_equal(a, b)

    def test_mixed_configs_and_masks(self, net_small):
        masks = _mixed_placements(net_small)
        cfgs = [self.CFG, self.CFG.with_(eps=0.25), self.CFG]
        seeds = [5, 6, 7]
        seq = [
            run_counting(
                net_small, c, seed=s, adversary=make_adversary("inflation"), byz_mask=m
            )
            for s, c, m in zip(seeds, cfgs, masks)
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfgs,
            adversary_factory=lambda: make_adversary("inflation"),
            byz_mask=masks,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_empty_and_nonempty_masks_mix(self, net_small):
        empty = np.zeros(net_small.n, dtype=bool)
        masks = [empty, placement_for_delta(net_small, 0.5, rng=9)]
        seeds = [8, 9]
        seq = [
            run_counting(
                net_small, self.CFG, seed=s, adversary=make_adversary("honest"), byz_mask=m
            )
            for s, m in zip(seeds, masks)
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=lambda: make_adversary("honest"),
            byz_mask=masks,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_wrong_length_mask_list_rejected(self, net_small):
        masks = _mixed_placements(net_small)[:2]
        with pytest.raises(ValueError, match="2 placement masks for 3 seeds"):
            run_counting_batch(
                net_small,
                [1, 2, 3],
                config=self.CFG,
                adversary_factory=lambda: make_adversary("honest"),
                byz_mask=masks,
            )

    def test_wrong_length_stack_rejected_via_trials_helper(self, net_small):
        masks = np.array(_mixed_placements(net_small))  # (3, n)
        with pytest.raises(ValueError, match="3 placement masks for 4 seeds"):
            byzantine_counting_trials(
                net_small,
                lambda: make_adversary("early-stop"),
                masks,
                [1, 2, 3, 4],
            )

    def test_trials_helper_accepts_mask_stack(self, net_small):
        masks = _mixed_placements(net_small)
        seeds = [11, 12, 13]
        batch = byzantine_counting_trials(
            net_small,
            lambda: make_adversary("early-stop"),
            np.array(masks),
            seeds,
        )
        seq = [
            run_counting(
                net_small,
                CountingConfig(),
                seed=s,
                adversary=make_adversary("early-stop"),
                byz_mask=m,
            )
            for s, m in zip(seeds, masks)
        ]
        for a, b in zip(seq, batch):
            assert_trial_equal(a, b)

    def test_bad_mask_shape_rejected(self, net_small):
        with pytest.raises(ValueError, match="shape"):
            run_counting_batch(
                net_small,
                [1],
                config=self.CFG,
                adversary_factory=lambda: make_adversary("honest"),
                byz_mask=np.zeros(net_small.n - 1, dtype=bool),
            )

    def test_shared_instance_multi_placement_rejected(self, net_small):
        masks = _mixed_placements(net_small)
        with pytest.raises(ValueError, match="factory"):
            run_counting_batch(
                net_small,
                [1, 2, 3],
                config=self.CFG,
                adversary_factory=make_adversary("early-stop"),
                byz_mask=masks,
            )

    def test_shared_instance_single_placement_still_works(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=4)
        bat = run_counting_batch(
            net_small,
            [1, 2],
            config=self.CFG,
            adversary_factory=make_adversary("early-stop"),
            byz_mask=[mask, mask],
        )
        assert len(bat) == 2


class _NegativeInitialAdversary(Adversary):
    """Emits an initial color below ``INT32_MIN``.

    Out of the color contract (colors are positive), but the sequential
    int64 engine keeps such a value negative and inert under max-flooding —
    the narrow state must widen rather than wrap it into a huge positive
    color.
    """

    name = "negative-initial"

    def subphase_plan(self, state):
        colors = np.full(state.byz_nodes.shape[0], -(2**31 + 10), dtype=np.int64)
        return SubphasePlan(initial_colors=colors, injections=[], relay=True)


class _StraddlingAdversary(Adversary):
    """Injection values cross ``INT32_MAX`` as phases progress.

    Phase 1 injects exactly ``INT32_MAX`` (the widest value the narrow
    state can hold), later phases exceed it — so one run exercises the
    int32 fast path, the lazy widening, and the int64 tail.
    """

    name = "straddle-int32"

    def subphase_plan(self, state):
        value = INT32_MAX - 1 + state.phase
        injections = [Injection(t=1, nodes=state.byz_nodes, value=value)]
        return SubphasePlan(initial_colors=None, injections=injections, relay=True)


class TestDtypeBoundary:
    """int32 demotion must never change a value, on either side of the line."""

    CFG = CountingConfig(max_phase=10)

    @pytest.mark.parametrize(
        "value",
        [INT32_MAX, INT32_MAX + 1, 2**31 + 12345],
        ids=["at-boundary-int32", "just-over-widens", "far-over-widens"],
    )
    def test_early_stop_value_matches_sequential(self, net_small, value):
        byz = placement_for_delta(net_small, 0.5, rng=4)
        seeds = [30, 31, 32]
        seq = [
            run_counting(
                net_small,
                self.CFG,
                seed=s,
                adversary=EarlyStopAdversary(value=value),
                byz_mask=byz,
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=lambda: EarlyStopAdversary(value=value),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_straddling_plan_widens_mid_run(self, net_small):
        byz = placement_for_delta(net_small, 0.5, rng=4)
        # stop_when_all_decided=False forces the run through every phase,
        # so the batch provably crosses the boundary mid-run.
        cfg = CountingConfig(max_phase=5, stop_when_all_decided=False)
        seeds = [40, 41]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=_StraddlingAdversary(), byz_mask=byz
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=_StraddlingAdversary,
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_negative_initial_below_int32_min_widens(self, net_small):
        byz = placement_for_delta(net_small, 0.5, rng=4)
        seeds = [45, 46]
        seq = [
            run_counting(
                net_small,
                self.CFG,
                seed=s,
                adversary=_NegativeInitialAdversary(),
                byz_mask=byz,
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=self.CFG,
            adversary_factory=_NegativeInitialAdversary,
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_straddling_with_mixed_placements(self, net_small):
        masks = _mixed_placements(net_small)
        cfg = CountingConfig(max_phase=4, stop_when_all_decided=False)
        seeds = [50, 51, 52]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=_StraddlingAdversary(), byz_mask=m
            )
            for s, m in zip(seeds, masks)
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=_StraddlingAdversary,
            byz_mask=masks,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)


class TestRunSweep:
    """The fused grid API: bit-for-bit per cell, shaped access, sharding."""

    CFG = CountingConfig(max_phase=12)

    def test_grid_matches_scalar_loops(self, net_small):
        placements = _mixed_placements(net_small)[:2]
        configs = [self.CFG, self.CFG.with_(eps=0.25)]
        strategies = ["early-stop", "adaptive-record"]
        seeds = [60, 61]
        sweep = run_sweep(
            net_small,
            seeds=seeds,
            configs=configs,
            placements=placements,
            strategies=strategies,
        )
        assert sweep.shape == (2, 2, 2, 2)
        assert len(sweep) == 16
        for cell in sweep:
            ref = run_counting(
                net_small,
                cell.config,
                seed=cell.seed,
                adversary=make_adversary(cell.strategy),
                byz_mask=cell.placement,
            )
            assert_trial_equal(ref, cell.result)

    def test_honest_grid_matches_algorithm1(self, net_small):
        cfgs = [
            CountingConfig(verification=False, max_phase=12, eps=eps)
            for eps in (0.1, 0.25)
        ]
        sweep = run_sweep(net_small, seeds=[1, 2], configs=cfgs)
        assert sweep.shape == (1, 1, 2, 2)
        for cell in sweep:
            ref = run_counting(net_small, cell.config, seed=cell.seed)
            assert_trial_equal(ref, cell.result)

    def test_cell_indexing_matches_cells_iteration(self, net_small):
        placements = _mixed_placements(net_small)[:2]
        sweep = run_sweep(
            net_small,
            seeds=[3, 4],
            configs=self.CFG,
            placements=placements,
            strategies="suppression",
        )
        for cell in sweep:
            picked = sweep.cell(
                strategy=cell.strategy_index,
                placement=cell.placement_index,
                config=cell.config_index,
                seed=cell.seed_index,
            )
            assert picked is cell.result

    def test_seed_batch_aggregates(self, net_small):
        placements = _mixed_placements(net_small)[:2]
        seeds = [7, 8, 9]
        sweep = run_sweep(
            net_small,
            seeds=seeds,
            configs=self.CFG,
            placements=placements,
            strategies="early-stop",
        )
        batch = sweep.seed_batch(placement=1)
        assert len(batch) == len(seeds)
        for b, _seed in enumerate(seeds):
            assert batch[b] is sweep.cell(placement=1, seed=b)

    def test_sharded_equals_serial(self, net_small):
        placements = _mixed_placements(net_small)[:2]
        strategies = ["early-stop", "inflation"]
        seeds = [10, 11]
        serial = run_sweep(
            net_small,
            seeds=seeds,
            configs=self.CFG,
            placements=placements,
            strategies=strategies,
        )
        sharded = run_sweep(
            net_small,
            seeds=seeds,
            configs=self.CFG,
            placements=placements,
            strategies=strategies,
            jobs=2,
            shard_cells=2,
        )
        for a, b in zip(serial.results, sharded.results):
            assert_trial_equal(a, b)

    def test_factory_strategy_spec(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=4)
        sweep = run_sweep(
            net_small,
            seeds=[12],
            configs=self.CFG,
            placements=mask,
            strategies=lambda: make_adversary("combo"),
        )
        ref = run_counting(
            net_small, self.CFG, seed=12, adversary=make_adversary("combo"), byz_mask=mask
        )
        assert_trial_equal(ref, sweep.cell())

    def test_empty_seeds_rejected(self, net_small):
        with pytest.raises(ValueError, match="seed"):
            run_sweep(net_small, seeds=[])

    def test_duplicate_seeds_rejected(self, net_small):
        with pytest.raises(ValueError, match="duplicate seed"):
            run_sweep(net_small, seeds=[1, 2, 1])

    def test_duplicate_generator_objects_rejected(self, net_small):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duplicate seed"):
            run_sweep(net_small, seeds=[rng, rng])

    def test_repeated_none_seeds_accepted(self, net_small):
        # None draws fresh entropy per trial, so repeats are distinct trials.
        cfg = CountingConfig(verification=False, max_phase=10)
        sweep = run_sweep(net_small, seeds=[None, None], configs=cfg)
        assert sweep.shape == (1, 1, 1, 2)

    def test_distinct_generator_objects_accepted(self, net_small):
        cfg = CountingConfig(verification=False, max_phase=10)
        sweep = run_sweep(
            net_small,
            seeds=[np.random.default_rng(3), np.random.default_rng(4)],
            configs=cfg,
        )
        ref = run_counting(net_small, cfg, seed=np.random.default_rng(3))
        assert np.array_equal(ref.decided_phase, sweep.cell(seed=0).decided_phase)

    def test_one_shot_generator_rejected(self, net_small):
        with pytest.raises(TypeError, match="materialized sequence"):
            run_sweep(net_small, seeds=(s for s in [1, 2, 3]))

    def test_bare_numpy_generator_rejected(self, net_small):
        with pytest.raises(TypeError, match="single\\s+numpy Generator"):
            run_sweep(net_small, seeds=np.random.default_rng(0))

    def test_string_seeds_rejected(self, net_small):
        with pytest.raises(TypeError, match="sequence"):
            run_sweep(net_small, seeds="123")

    def test_array_seeds_accepted(self, net_small):
        cfg = CountingConfig(verification=False, max_phase=10)
        sweep = run_sweep(net_small, seeds=np.array([4, 5]), configs=cfg)
        assert sweep.shape == (1, 1, 1, 2)

    def test_none_strategy_with_byz_placement_rejected(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=4)
        with pytest.raises(ValueError, match="strategy"):
            run_sweep(net_small, seeds=[1], placements=mask)

    def test_bad_placement_shape_rejected(self, net_small):
        with pytest.raises(ValueError, match="placements"):
            run_sweep(
                net_small,
                seeds=[1],
                placements=[np.zeros(net_small.n + 1, dtype=bool)],
                strategies="honest",
            )

    def test_shard_cells_one_still_valid(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=4)
        sweep = run_sweep(
            net_small,
            seeds=[1, 2],
            configs=self.CFG,
            placements=mask,
            strategies="early-stop",
            shard_cells=1,
        )
        assert len(sweep) == 2

    def test_zero_shard_cells_rejected(self, net_small):
        with pytest.raises(ValueError, match="shard_cells"):
            run_sweep(net_small, seeds=[1], shard_cells=0)

    def test_liar_counts_sweep_matches_crash_phase(self, net_small):
        # E11's routing: the engine's pre-phase crash mask must equal a
        # direct crash_phase call under the same claims.
        from repro.core import crash_phase
        from repro.adversary.strategies import TopologyLiarAdversary

        placements = [
            random_placement(net_small.n, liars, rng=31 + liars) for liars in (1, 2)
        ]
        sweep = run_sweep(
            net_small,
            seeds=[0],
            configs=CountingConfig(max_phase=12),
            placements=placements,
            strategies="topology-liar",
        )
        for p_idx, byz in enumerate(placements):
            adv = TopologyLiarAdversary()
            adv.bind(net_small, byz, None, CountingConfig())
            expected = crash_phase(net_small, byz, adv.topology_claims())
            assert np.array_equal(sweep.cell(placement=p_idx).crashed, expected)


class TestCostWeightedShards:
    """The cost-weighted splitter: valid partitions, balanced by cost."""

    def test_serial_is_one_shard(self):
        assert _shard_bounds([1.0] * 10, None, None) == [(0, 10)]

    def test_fixed_size_override(self):
        assert _shard_bounds([1.0] * 5, None, 2) == [(0, 2), (2, 4), (4, 5)]

    def test_partition_is_exact_and_ordered(self):
        costs = [3.0, 1.0, 1.0, 1.0, 8.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        bounds = _shard_bounds(costs, target_cost=5.0, shard_cells=None)
        assert bounds[0][0] == 0 and bounds[-1][1] == len(costs)
        for (_l1, h1), (l2, _h2) in zip(bounds, bounds[1:]):
            assert h1 == l2
        for lo, hi in bounds:
            assert hi - lo >= min(MIN_SHARD_CELLS, len(costs))

    def test_skewed_costs_move_boundaries(self):
        # A cheap prefix and an expensive suffix: the boundary must land
        # deeper into the cheap cells than a count-based split would.
        costs = [1.0] * 12 + [10.0] * 12
        bounds = _shard_bounds(costs, target_cost=sum(costs) / 2, shard_cells=None)
        assert len(bounds) >= 2
        first = bounds[0]
        assert first[1] > 12  # swallowed the whole cheap prefix and more


class TestRunMultiSweep:
    """The network axis: bit-for-bit per cell vs per-network run_sweep."""

    CFG = CountingConfig(max_phase=10)

    def _nets(self):
        from repro.graphs import build_small_world

        return [build_small_world(n, 8, seed=50 + n) for n in (96, 128)]

    def test_cells_match_per_network_sweeps(self):
        nets = self._nets()
        place = lambda net: [placement_for_delta(net, 0.5, rng=3)]
        multi = run_multi_sweep(
            nets,
            seeds=[70, 71],
            configs=self.CFG,
            placements=place,
            strategies=["early-stop", "inflation"],
        )
        assert multi.shape == (2, 2, 1, 1, 2)
        for g, net in enumerate(nets):
            single = run_sweep(
                net,
                seeds=[70, 71],
                configs=self.CFG,
                placements=place(net),
                strategies=["early-stop", "inflation"],
            )
            got = multi.sweep(g)
            assert single.shape == got.shape
            for a, b in zip(single.results, got.results):
                assert_trial_equal(a, b)

    def test_run_sweep_accepts_network_list(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=10)
        multi = run_sweep(nets, seeds=[1, 2], configs=cfg)
        for g, net in enumerate(nets):
            for b, s in enumerate([1, 2]):
                ref = run_counting(net, cfg, seed=s)
                assert_trial_equal(ref, multi.cell(network=g, seed=b))

    def test_sharded_equals_serial(self):
        nets = self._nets()
        place = lambda net: [placement_for_delta(net, 0.5, rng=3)]
        kwargs = dict(
            seeds=[80, 81],
            configs=self.CFG,
            placements=place,
            strategies=["early-stop", "inflation"],
        )
        serial = run_multi_sweep(nets, **kwargs)
        sharded = run_multi_sweep(nets, **kwargs, jobs=2, shard_cells=3)
        for a, b in zip(serial.results, sharded.results):
            assert_trial_equal(a, b)

    def test_seed_batch_is_contiguous_block(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=10)
        multi = run_multi_sweep(nets, seeds=[5, 6, 7], configs=cfg)
        batch = multi.seed_batch(network=1)
        assert len(batch) == 3
        for b in range(3):
            assert batch[b] is multi.cell(network=1, seed=b)

    def test_empty_network_axis_rejected(self):
        with pytest.raises(ValueError, match="network"):
            run_multi_sweep([], seeds=[1])

    def test_mixed_degree_rejected(self):
        from repro.graphs import build_small_world

        nets = [build_small_world(96, 8, seed=1), build_small_world(96, 6, seed=2)]
        with pytest.raises(ValueError, match="degree d"):
            run_multi_sweep(nets, seeds=[1])

    def test_placement_axis_length_mismatch_rejected(self):
        nets = self._nets()
        specs = [[placement_for_delta(nets[0], 0.5, rng=3)], None]
        with pytest.raises(ValueError, match="placement axis"):
            run_multi_sweep(
                nets,
                seeds=[1],
                placements=[specs[0], [None, None]],
                strategies="early-stop",
            )

    def test_per_network_placement_count_mismatch_rejected(self):
        nets = self._nets()
        with pytest.raises(ValueError, match="one placement axis per network"):
            run_multi_sweep(
                nets,
                seeds=[1],
                placements=[[None]],
                strategies="early-stop",
            )

    def test_wrong_size_mask_rejected(self):
        nets = self._nets()
        bad = np.zeros(nets[0].n + 1, dtype=bool)
        with pytest.raises(ValueError, match="placements"):
            run_multi_sweep(
                nets,
                seeds=[1],
                placements=lambda net: [bad],
                strategies="early-stop",
            )


class TestLayoutSelector:
    """The network-axis layout selector: auto resolution, overrides, errors."""

    CFG = CountingConfig(max_phase=8)

    def _nets(self):
        from repro.graphs import build_small_world

        return [build_small_world(n, 8, seed=50 + n) for n in (96, 128)]

    def test_rectangular_grid_auto_selects_union(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=8)
        multi = run_multi_sweep(nets, seeds=[1, 2], configs=cfg)
        assert multi.layout == "union"
        for g, net in enumerate(nets):
            for b, s in enumerate([1, 2]):
                ref = run_counting(net, cfg, seed=s)
                assert_trial_equal(ref, multi.cell(network=g, seed=b))

    def test_ragged_seed_axes_auto_fall_back_to_padded(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=8)
        multi = run_multi_sweep(nets, seeds=[[1, 2, 3], [4]], configs=cfg)
        assert multi.layout == "padded"
        assert multi.seeds is None
        assert [len(ax) for ax in multi.seed_axes] == [3, 1]
        for g, (net, axis) in enumerate(zip(nets, [[1, 2, 3], [4]])):
            block = multi.sweep(g)
            assert block.seeds == axis
            for b, s in enumerate(axis):
                ref = run_counting(net, cfg, seed=s)
                assert_trial_equal(ref, block.cell(seed=b))

    def test_generator_seeds_auto_fall_back_to_padded(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=6)
        multi = run_multi_sweep(
            nets,
            seeds=[np.random.default_rng(1), np.random.default_rng(2)],
            configs=cfg,
        )
        assert multi.layout == "padded"

    def test_explicit_padded_override_respected(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=8)
        padded = run_multi_sweep(nets, seeds=[1, 2], configs=cfg, layout="padded")
        union = run_multi_sweep(nets, seeds=[1, 2], configs=cfg, layout="union")
        assert padded.layout == "padded"
        assert union.layout == "union"
        for a, b in zip(padded.results, union.results):
            assert_trial_equal(a, b)

    def test_union_byzantine_grid_matches_padded(self):
        nets = self._nets()
        place = lambda net: [placement_for_delta(net, 0.5, rng=3)]
        kwargs = dict(
            seeds=[70, 71],
            configs=self.CFG,
            placements=place,
            strategies=["early-stop", "inflation"],
        )
        union = run_multi_sweep(nets, **kwargs, layout="union")
        padded = run_multi_sweep(nets, **kwargs, layout="padded")
        assert union.layout == "union" and padded.layout == "padded"
        assert union.shape == padded.shape
        for a, b in zip(padded.results, union.results):
            assert_trial_equal(a, b)

    def test_union_sharded_equals_serial(self):
        nets = self._nets()
        place = lambda net: [placement_for_delta(net, 0.5, rng=3)]
        kwargs = dict(
            seeds=[80, 81, 82, 83],
            configs=self.CFG,
            placements=place,
            strategies=["early-stop", "inflation"],
            layout="union",
        )
        serial = run_multi_sweep(nets, **kwargs)
        sharded = run_multi_sweep(nets, **kwargs, jobs=2)
        assert sharded.layout == "union"
        for a, b in zip(serial.results, sharded.results):
            assert_trial_equal(a, b)

    def test_union_with_ragged_seed_axes_rejected(self):
        nets = self._nets()
        with pytest.raises(ValueError, match="shared seed axis"):
            run_multi_sweep(nets, seeds=[[1, 2], [3]], layout="union")

    def test_union_with_generator_seeds_rejected(self):
        nets = self._nets()
        with pytest.raises(TypeError, match="Generator"):
            run_multi_sweep(
                nets,
                seeds=[np.random.default_rng(1), np.random.default_rng(2)],
                layout="union",
            )

    def test_union_with_heterogeneous_degree_rejected(self):
        from repro.graphs import build_small_world

        nets = [build_small_world(96, 8, seed=1), build_small_world(96, 6, seed=2)]
        with pytest.raises(ValueError, match="degree d"):
            run_multi_sweep(nets, seeds=[1], layout="union")

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            run_multi_sweep(self._nets(), seeds=[1], layout="diagonal")

    def test_single_network_run_sweep_rejects_explicit_layout(self):
        from repro.graphs import build_small_world

        net = build_small_world(96, 8, seed=1)
        with pytest.raises(ValueError, match="layout"):
            run_sweep(net, seeds=[1], layout="union")

    def test_ragged_axis_count_mismatch_rejected(self):
        nets = self._nets()
        with pytest.raises(ValueError, match="one axis per network"):
            run_multi_sweep(nets, seeds=[[1], [2], [3]])

    def test_ragged_shape_raises_with_guidance(self):
        nets = self._nets()
        cfg = CountingConfig(verification=False, max_phase=6)
        multi = run_multi_sweep(nets, seeds=[[1, 2], [3]], configs=cfg)
        with pytest.raises(ValueError, match="ragged"):
            multi.shape

"""Unit tests for CountingConfig and CountingResult."""

import numpy as np
import pytest

from repro.core.config import CountingConfig
from repro.core.results import UNDECIDED, CountingResult
from repro.sim.metrics import MessageMeter


class TestConfig:
    def test_defaults_valid(self):
        cfg = CountingConfig()
        assert cfg.eps == 0.1
        assert cfg.verification

    def test_with_replaces(self):
        cfg = CountingConfig().with_(eps=0.05, max_phase=10)
        assert cfg.eps == 0.05
        assert cfg.max_phase == 10
        assert CountingConfig().eps == 0.1  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eps": 0.0},
            {"eps": 1.0},
            {"max_phase": 0},
            {"alpha_variant": "x"},
            {"subphase_multiplier": "x"},
            {"verification_round_cost": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CountingConfig(**kwargs)


def make_result(decided, byz=None, crashed=None, n=None, d=8):
    decided = np.asarray(decided, dtype=np.int64)
    n = n or decided.shape[0]
    byz = np.zeros(n, dtype=bool) if byz is None else np.asarray(byz, dtype=bool)
    crashed = (
        np.zeros(n, dtype=bool) if crashed is None else np.asarray(crashed, dtype=bool)
    )
    return CountingResult(
        n=n, d=d, k=3, decided_phase=decided, crashed=crashed, byz=byz,
        meter=MessageMeter(),
    )


class TestResult:
    def test_fraction_decided(self):
        res = make_result([1, 2, UNDECIDED, 3])
        assert res.fraction_decided() == 0.75

    def test_fraction_excludes_byz_and_crashed(self):
        res = make_result(
            [1, UNDECIDED, 2, 3],
            byz=[False, True, False, False],
            crashed=[False, False, True, False],
        )
        assert res.fraction_decided() == 1.0  # pool = nodes 0, 3

    def test_in_band(self):
        # n=16 -> log2 n = 4; band [0.5, 1.5] -> phases 2..6.
        res = make_result([1, 2, 4, 6, 7, UNDECIDED] + [3] * 10, n=16)
        band = res.in_band(0.5, 1.5)
        assert band[0] == False  # noqa: E712
        assert band[1] and band[2] and band[3]
        assert not band[4] and not band[5]

    def test_undecided_fails_band(self):
        res = make_result([UNDECIDED] * 16, n=16)
        assert res.fraction_in_band(0.1, 10.0) == 0.0

    def test_size_estimates(self):
        res = make_result([2, UNDECIDED, 3, 1])
        est = res.size_estimates()
        assert est[0] == pytest.approx(49.0)
        assert est[1] == 0.0
        assert est[2] == pytest.approx(343.0)

    def test_log_size_estimates(self):
        res = make_result([2, UNDECIDED])
        est = res.log_size_estimates()
        assert est[0] == pytest.approx(2 * np.log2(7))
        assert np.isnan(est[1])

    def test_quantiles(self):
        res = make_result([5] * 10)
        assert res.decision_quantiles() == (5.0, 5.0, 5.0)

    def test_quantiles_empty(self):
        res = make_result([UNDECIDED, UNDECIDED])
        q = res.decision_quantiles()
        assert all(np.isnan(x) for x in q)

    def test_summary_keys(self):
        s = make_result([1, 2, 3, 4]).summary()
        assert {"n", "fraction_decided", "rounds", "phase_median"} <= set(s)

    def test_unknown_population_rejected(self):
        with pytest.raises(ValueError):
            make_result([1]).in_band(0.1, 2.0, of="everyone")

"""Unit tests for Algorithm 2 under each adversary strategy."""

import numpy as np
import pytest

from repro.adversary import (
    EarlyStopAdversary,
    HonestAdversary,
    InflationAdversary,
    SilentAdversary,
    SuppressionAdversary,
    TopologyLiarAdversary,
    placement_for_delta,
)
from repro.core import CountingConfig, run_basic_counting, run_byzantine_counting


@pytest.fixture(scope="module")
def net():
    from repro.graphs import build_small_world

    return build_small_world(512, 8, seed=11)


@pytest.fixture(scope="module")
def byz(net):
    return placement_for_delta(net, 0.5, rng=5)


CFG = CountingConfig(max_phase=24)


class TestHonestControl:
    def test_matches_basic_protocol_distribution(self, net, byz):
        honest = run_byzantine_counting(net, HonestAdversary(), byz, config=CFG, seed=3)
        basic = run_basic_counting(net, seed=3)
        # Same decision medians: honest-behaving Byzantine nodes are
        # indistinguishable from honest nodes.
        assert honest.decision_quantiles()[1] == basic.decision_quantiles()[1]

    def test_everyone_decides(self, net, byz):
        res = run_byzantine_counting(net, HonestAdversary(), byz, config=CFG, seed=3)
        assert res.fraction_decided() == 1.0


class TestEarlyStop:
    def test_pushes_estimates_down(self, net, byz):
        attacked = run_byzantine_counting(net, EarlyStopAdversary(), byz, config=CFG, seed=3)
        control = run_byzantine_counting(net, HonestAdversary(), byz, config=CFG, seed=3)
        assert attacked.decision_quantiles()[1] < control.decision_quantiles()[1]

    def test_bounded_below_by_byz_distance(self, net, byz):
        from repro.graphs.balls import distances_to_set

        attacked = run_byzantine_counting(net, EarlyStopAdversary(), byz, config=CFG, seed=3)
        dist = distances_to_set(net.h.indptr, net.h.indices, np.flatnonzero(byz))
        pool = attacked.honest_uncrashed
        # A node cannot be forced to stop before the fake record reaches it:
        # decided phase >= dist to the nearest Byzantine node.
        assert np.all(attacked.decided_phase[pool] >= dist[pool])

    def test_still_terminates(self, net, byz):
        res = run_byzantine_counting(net, EarlyStopAdversary(), byz, config=CFG, seed=3)
        assert res.fraction_decided() == 1.0


class TestInflation:
    def test_rejections_with_verification(self, net, byz):
        res = run_byzantine_counting(net, InflationAdversary(), byz, config=CFG, seed=3)
        assert res.injections_rejected > 0
        assert res.injections_accepted > 0

    def test_estimates_capped(self, net, byz):
        from repro.graphs.properties import diameter

        res = run_byzantine_counting(net, InflationAdversary(), byz, config=CFG, seed=3)
        diam = diameter(net.h.indptr, net.h.indices, rng=0)
        pool = res.honest_uncrashed
        # Lemma 16/17: estimates cannot exceed ecc + k - 1 (+1 slack).
        assert res.decided_phase[pool].max() <= diam + net.k

    def test_unverified_inflation_unbounded(self, net, byz):
        cfg = CountingConfig(max_phase=12, verification=False)
        res = run_byzantine_counting(net, InflationAdversary(), byz, config=cfg, seed=3)
        pool = res.honest_uncrashed
        assert np.all(res.decided_phase[pool] == -1)  # nobody terminates
        assert res.injections_rejected == 0


class TestPassiveStrategies:
    @pytest.mark.parametrize("adv_cls", [SuppressionAdversary, SilentAdversary])
    def test_absorbed_by_expander(self, net, byz, adv_cls):
        attacked = run_byzantine_counting(net, adv_cls(), byz, config=CFG, seed=3)
        control = run_byzantine_counting(net, HonestAdversary(), byz, config=CFG, seed=3)
        # Suppression shifts the median by at most one phase.
        assert abs(
            attacked.decision_quantiles()[1] - control.decision_quantiles()[1]
        ) <= 1.0
        assert attacked.fraction_decided() == 1.0


class TestTopologyLiar:
    def test_crashes_but_core_survives(self, net):
        # One liar: its crash footprint is a constant-size ball (~|B(b,k)|),
        # leaving the overwhelming majority of the network intact.
        few = np.zeros(net.n, dtype=bool)
        few[10] = True
        res = run_byzantine_counting(net, TopologyLiarAdversary(), few, config=CFG, seed=3)
        assert res.crashed.sum() > 0
        survivors = res.honest_uncrashed
        assert survivors.sum() > 0.5 * net.n
        # Survivors still terminate with estimates.
        assert np.all(res.decided_phase[survivors] >= 1)

    def test_no_crashes_without_verification(self, net):
        few = np.zeros(net.n, dtype=bool)
        few[10] = True
        cfg = CountingConfig(max_phase=12, verification=False)
        res = run_byzantine_counting(net, TopologyLiarAdversary(), few, config=cfg, seed=3)
        assert not res.crashed.any()


class TestValidation:
    def test_byz_mask_without_adversary_rejected(self, net, byz):
        from repro.core.runner import run_counting

        with pytest.raises(ValueError, match="without an adversary"):
            run_counting(net, CFG, seed=0, adversary=None, byz_mask=byz)

    def test_wrong_mask_shape_rejected(self, net):
        with pytest.raises(ValueError, match="shape"):
            run_byzantine_counting(
                net, HonestAdversary(), np.zeros(3, dtype=bool), config=CFG, seed=0
            )

    def test_none_adversary_rejected(self, net, byz):
        with pytest.raises(ValueError, match="requires an adversary"):
            run_byzantine_counting(net, None, byz, config=CFG, seed=0)

"""The batched engine must reproduce sequential runs bit for bit.

``run_counting_batch`` over B seeds and B sequential ``run_counting`` calls
consume identical per-trial random streams (``sim/rng`` named streams /
``make_rng`` -> ``spawn``), so every per-trial observable — decided phases,
crash sets, meter totals, phase traces — must match exactly, not just
statistically.  These tests are the contract that lets experiments route
their repeated-seed sweeps through the batch path without changing any
reported number.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import (
    CountingConfig,
    make_adversary,
    run_counting,
    run_counting_batch,
)
from repro.sim.rng import derive_seed, stream


def assert_trial_equal(a, b):
    """Bit-for-bit comparison of two CountingResults."""
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


class TestSequentialEquivalence:
    CFG = CountingConfig(verification=False, max_phase=16)

    def test_integer_seeds(self, net_small):
        seeds = [derive_seed(7, "trial", b) for b in range(6)]
        seq = [run_counting(net_small, self.CFG, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=self.CFG)
        assert len(bat) == len(seq)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_named_stream_generators(self, net_small):
        # stream(...) rebuilds the identical generator for the same key, so
        # the sequential and batched runs consume the same per-trial streams.
        seq = [
            run_counting(net_small, self.CFG, seed=stream(3, "batch-trial", b))
            for b in range(5)
        ]
        bat = run_counting_batch(
            net_small,
            [stream(3, "batch-trial", b) for b in range(5)],
            config=self.CFG,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_verification_flag_without_adversary(self, net_small):
        cfg = CountingConfig(max_phase=16)  # verification on, no adversary
        seeds = [derive_seed(1, "v", b) for b in range(4)]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_no_early_stop(self, net_small):
        cfg = self.CFG.with_(stop_when_all_decided=False, max_phase=7)
        seeds = [1, 2, 3]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)
            assert a.meter.rounds == b.meter.rounds

    def test_metering_off(self, net_small):
        cfg = self.CFG.with_(count_messages=False, record_phase_trace=False)
        seeds = [5, 6]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_mixed_configs_grouped(self, net_small):
        cfgs = [
            self.CFG if b % 2 == 0 else self.CFG.with_(eps=0.25)
            for b in range(6)
        ]
        seeds = [derive_seed(9, "mix", b) for b in range(6)]
        seq = [run_counting(net_small, c, seed=s) for s, c in zip(seeds, cfgs)]
        bat = run_counting_batch(net_small, seeds, config=cfgs)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_empty_batch(self, net_small):
        assert len(run_counting_batch(net_small, [], config=self.CFG)) == 0

    def test_config_count_mismatch_rejected(self, net_small):
        with pytest.raises(ValueError, match="configs"):
            run_counting_batch(net_small, [1, 2], config=[self.CFG])

    def test_byz_mask_without_adversary_rejected(self, net_small, byz_mask_small):
        with pytest.raises(ValueError, match="adversary"):
            run_counting_batch(
                net_small, [1], config=self.CFG, byz_mask=byz_mask_small
            )


class TestAdversaryFallback:
    def test_factory_matches_sequential(self, net_small):
        cfg = CountingConfig(max_phase=12)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [10, 11, 12]
        seq = [
            run_counting(
                net_small,
                cfg,
                seed=s,
                adversary=make_adversary("early-stop"),
                byz_mask=byz,
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_adversary_instance_accepted(self, net_small):
        cfg = CountingConfig(max_phase=10)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        bat = run_counting_batch(
            net_small,
            [3, 4],
            config=cfg,
            adversary_factory=make_adversary("honest"),
            byz_mask=byz,
        )
        assert len(bat) == 2
        for res in bat:
            assert res.byz.sum() == byz.sum()


class TestRoundAccountingFix:
    """Round totals must not depend on the count_messages knob.

    The crash-phase used to meter its two rounds only when messages were
    being counted, skewing any round-complexity table produced with
    metering disabled.
    """

    @pytest.mark.parametrize("strategy", ["honest", "early-stop", "topology-liar"])
    def test_rounds_identical_with_metering_on_and_off(self, net_small, strategy):
        byz = placement_for_delta(net_small, 0.55, rng=9)
        base = CountingConfig(max_phase=10)
        on = run_counting(
            net_small,
            base,
            seed=5,
            adversary=make_adversary(strategy),
            byz_mask=byz,
        )
        off = run_counting(
            net_small,
            base.with_(count_messages=False),
            seed=5,
            adversary=make_adversary(strategy),
            byz_mask=byz,
        )
        assert on.meter.rounds == off.meter.rounds
        assert on.meter.rounds > 0
        assert off.meter.messages == 0

    def test_batch_rounds_identical_with_metering_on_and_off(self, net_small):
        cfg = CountingConfig(verification=False, max_phase=12)
        seeds = [1, 2, 3, 4]
        on = run_counting_batch(net_small, seeds, config=cfg)
        off = run_counting_batch(
            net_small, seeds, config=cfg.with_(count_messages=False)
        )
        for a, b in zip(on, off):
            assert a.meter.rounds == b.meter.rounds
            assert np.array_equal(a.decided_phase, b.decided_phase)

    def test_crash_phase_charges_two_rounds(self, net_small):
        byz = placement_for_delta(net_small, 0.55, rng=9)
        cfg = CountingConfig(max_phase=10)
        with_pre = run_counting(
            net_small,
            cfg,
            seed=5,
            adversary=make_adversary("honest"),
            byz_mask=byz,
        )
        without_pre = run_counting(
            net_small,
            cfg.with_(verification=False, verification_round_cost=0),
            seed=5,
            adversary=make_adversary("honest"),
            byz_mask=byz,
        )
        # Same schedule, but the verified run pays the O(1) pre-phase and
        # the per-round witness cost on top.
        assert with_pre.meter.rounds > without_pre.meter.rounds

"""The batched engine must reproduce sequential runs bit for bit.

``run_counting_batch`` over B seeds and B sequential ``run_counting`` calls
consume identical per-trial random streams (``sim/rng`` named streams /
``make_rng`` -> ``spawn``), so every per-trial observable — decided phases,
crash sets, meter totals, phase traces — must match exactly, not just
statistically.  These tests are the contract that lets experiments route
their repeated-seed sweeps through the batch path without changing any
reported number.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.adversary.base import Adversary, SubphasePlan
from repro.core import (
    ADVERSARIES,
    CountingConfig,
    make_adversary,
    run_counting,
    run_counting_batch,
)
from repro.sim.rng import derive_seed, stream


def assert_trial_equal(a, b):
    """Bit-for-bit comparison of two CountingResults."""
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


class TestSequentialEquivalence:
    CFG = CountingConfig(verification=False, max_phase=16)

    def test_integer_seeds(self, net_small):
        seeds = [derive_seed(7, "trial", b) for b in range(6)]
        seq = [run_counting(net_small, self.CFG, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=self.CFG)
        assert len(bat) == len(seq)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_named_stream_generators(self, net_small):
        # stream(...) rebuilds the identical generator for the same key, so
        # the sequential and batched runs consume the same per-trial streams.
        seq = [
            run_counting(net_small, self.CFG, seed=stream(3, "batch-trial", b))
            for b in range(5)
        ]
        bat = run_counting_batch(
            net_small,
            [stream(3, "batch-trial", b) for b in range(5)],
            config=self.CFG,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_verification_flag_without_adversary(self, net_small):
        cfg = CountingConfig(max_phase=16)  # verification on, no adversary
        seeds = [derive_seed(1, "v", b) for b in range(4)]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_no_early_stop(self, net_small):
        cfg = self.CFG.with_(stop_when_all_decided=False, max_phase=7)
        seeds = [1, 2, 3]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)
            assert a.meter.rounds == b.meter.rounds

    def test_metering_off(self, net_small):
        cfg = self.CFG.with_(count_messages=False, record_phase_trace=False)
        seeds = [5, 6]
        seq = [run_counting(net_small, cfg, seed=s) for s in seeds]
        bat = run_counting_batch(net_small, seeds, config=cfg)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_mixed_configs_grouped(self, net_small):
        cfgs = [
            self.CFG if b % 2 == 0 else self.CFG.with_(eps=0.25)
            for b in range(6)
        ]
        seeds = [derive_seed(9, "mix", b) for b in range(6)]
        seq = [run_counting(net_small, c, seed=s) for s, c in zip(seeds, cfgs)]
        bat = run_counting_batch(net_small, seeds, config=cfgs)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_empty_batch(self, net_small):
        assert len(run_counting_batch(net_small, [], config=self.CFG)) == 0

    def test_config_count_mismatch_rejected(self, net_small):
        with pytest.raises(ValueError, match="configs"):
            run_counting_batch(net_small, [1, 2], config=[self.CFG])

    def test_byz_mask_without_adversary_rejected(self, net_small, byz_mask_small):
        with pytest.raises(ValueError, match="adversary"):
            run_counting_batch(
                net_small, [1], config=self.CFG, byz_mask=byz_mask_small
            )


class _StatefulScalarAdversary(Adversary):
    """Scalar-only third-party adversary with per-run mutable state.

    Alternates between suppressing and relaying per subphase via an
    internal counter — exactly the kind of adversary that needs
    one-instance-per-trial semantics (the PerTrialAdversaryBatch wrapper).
    """

    name = "stateful-scalar"

    def __init__(self):
        super().__init__()
        self.calls = 0

    def subphase_plan(self, state):
        self.calls += 1
        return SubphasePlan(initial_colors=None, injections=[], relay=self.calls % 2 == 0)


class TestByzantineBatchedEquivalence:
    """The Byzantine fast path must be bit-for-bit too, per strategy."""

    @pytest.mark.parametrize("strategy", sorted(ADVERSARIES))
    def test_strategy_matches_sequential(self, net_small, strategy):
        if type(make_adversary(strategy)).batch_adapt is not Adversary.batch_adapt:
            pytest.skip("adaptive placement exists only in the batched protocol")
        cfg = CountingConfig(max_phase=12)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [10, 11, 12, 13]
        seq = [
            run_counting(
                net_small,
                cfg,
                seed=s,
                adversary=make_adversary(strategy),
                byz_mask=byz,
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary(strategy),
            byz_mask=byz,
        )
        assert len(bat) == len(seq)
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    @pytest.mark.parametrize("strategy", ["inflation", "adaptive-record"])
    def test_verification_off_matches_sequential(self, net_small, strategy):
        # Without Lemma 16's gate, inflation never terminates: every trial
        # runs all phases, so cap the phases to keep the test quick.
        cfg = CountingConfig(max_phase=5, verification=False)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [3, 4]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=make_adversary(strategy), byz_mask=byz
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary(strategy),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_metering_off_matches_sequential(self, net_small):
        cfg = CountingConfig(max_phase=10, count_messages=False, record_phase_trace=False)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [5, 6]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=make_adversary("combo"), byz_mask=byz
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary("combo"),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_mixed_configs_grouped(self, net_small):
        cfg = CountingConfig(max_phase=10)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        cfgs = [cfg if b % 2 == 0 else cfg.with_(eps=0.25) for b in range(4)]
        seeds = [derive_seed(2, "byzmix", b) for b in range(4)]
        seq = [
            run_counting(
                net_small, c, seed=s, adversary=make_adversary("inflation"), byz_mask=byz
            )
            for s, c in zip(seeds, cfgs)
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfgs,
            adversary_factory=lambda: make_adversary("inflation"),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_stateful_scalar_adversary_wrapped_per_trial(self, net_small):
        # A scalar-only class goes through PerTrialAdversaryBatch: one
        # instance per trial, so its mutable state evolves exactly as in
        # sequential runs.
        cfg = CountingConfig(max_phase=10)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [7, 8, 9]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=_StatefulScalarAdversary(), byz_mask=byz
            )
            for s in seeds
        ]
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=_StatefulScalarAdversary,
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_adversary_instance_accepted(self, net_small):
        cfg = CountingConfig(max_phase=10)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        bat = run_counting_batch(
            net_small,
            [3, 4],
            config=cfg,
            adversary_factory=make_adversary("honest"),
            byz_mask=byz,
        )
        assert len(bat) == 2
        for res in bat:
            assert res.byz.sum() == byz.sum()

    def test_scalar_instance_reading_self_rng_matches_sequential(self, net_small):
        # Scalar adversaries may read self.rng (bind() sets it to the same
        # stream as state.rng); the per-column fallback must re-bind it per
        # trial just like sequential runs re-bind it per run.
        class SelfRngScalarAdversary(Adversary):
            name = "self-rng-scalar"

            def subphase_plan(self, state):
                from repro.core.colors import sample_colors

                vals = sample_colors(self.rng, state.byz_nodes.shape[0])
                return SubphasePlan(initial_colors=vals)

        cfg = CountingConfig(max_phase=10)
        byz = placement_for_delta(net_small, 0.55, rng=4)
        seeds = [21, 22, 23]
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=SelfRngScalarAdversary(), byz_mask=byz
            )
            for s in seeds
        ]
        # Driven as a plain shared instance (generic per-column fallback).
        bat = run_counting_batch(
            net_small,
            seeds,
            config=cfg,
            adversary_factory=SelfRngScalarAdversary(),
            byz_mask=byz,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)

    def test_empty_byz_mask_with_adversary(self, net_small):
        # Verification costs still apply (pre-phase rounds) even with an
        # empty Byzantine set; both paths must agree.
        cfg = CountingConfig(max_phase=10)
        empty = np.zeros(net_small.n, dtype=bool)
        seq = [
            run_counting(
                net_small, cfg, seed=s, adversary=make_adversary("honest"), byz_mask=empty
            )
            for s in (1, 2)
        ]
        bat = run_counting_batch(
            net_small,
            [1, 2],
            config=cfg,
            adversary_factory=lambda: make_adversary("honest"),
            byz_mask=empty,
        )
        for a, b in zip(seq, bat):
            assert_trial_equal(a, b)


class TestRoundAccountingFix:
    """Round totals must not depend on the count_messages knob.

    The crash-phase used to meter its two rounds only when messages were
    being counted, skewing any round-complexity table produced with
    metering disabled.
    """

    @pytest.mark.parametrize("strategy", ["honest", "early-stop", "topology-liar"])
    def test_rounds_identical_with_metering_on_and_off(self, net_small, strategy):
        byz = placement_for_delta(net_small, 0.55, rng=9)
        base = CountingConfig(max_phase=10)
        on = run_counting(
            net_small,
            base,
            seed=5,
            adversary=make_adversary(strategy),
            byz_mask=byz,
        )
        off = run_counting(
            net_small,
            base.with_(count_messages=False),
            seed=5,
            adversary=make_adversary(strategy),
            byz_mask=byz,
        )
        assert on.meter.rounds == off.meter.rounds
        assert on.meter.rounds > 0
        assert off.meter.messages == 0

    def test_batch_rounds_identical_with_metering_on_and_off(self, net_small):
        cfg = CountingConfig(verification=False, max_phase=12)
        seeds = [1, 2, 3, 4]
        on = run_counting_batch(net_small, seeds, config=cfg)
        off = run_counting_batch(
            net_small, seeds, config=cfg.with_(count_messages=False)
        )
        for a, b in zip(on, off):
            assert a.meter.rounds == b.meter.rounds
            assert np.array_equal(a.decided_phase, b.decided_phase)

    def test_crash_phase_charges_two_rounds(self, net_small):
        byz = placement_for_delta(net_small, 0.55, rng=9)
        cfg = CountingConfig(max_phase=10)
        with_pre = run_counting(
            net_small,
            cfg,
            seed=5,
            adversary=make_adversary("honest"),
            byz_mask=byz,
        )
        without_pre = run_counting(
            net_small,
            cfg.with_(verification=False, verification_round_cost=0),
            seed=5,
            adversary=make_adversary("honest"),
            byz_mask=byz,
        )
        # Same schedule, but the verified run pays the O(1) pre-phase and
        # the per-round witness cost on top.
        assert with_pre.meter.rounds > without_pre.meter.rounds

"""Unit tests for the high-level estimation API."""

import numpy as np
import pytest

from repro.core import (
    ADVERSARIES,
    CountingConfig,
    estimate_network_size,
    make_adversary,
    practical_band,
)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in ADVERSARIES:
            adv = make_adversary(name)
            assert hasattr(adv, "subphase_plan")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            make_adversary("evil-twin")


class TestPracticalBand:
    def test_brackets_anchor(self):
        c1, c2 = practical_band(8)
        anchor = 1 / np.log2(7)
        assert c1 < anchor < c2

    def test_factor_structure(self):
        c1, c2 = practical_band(8)
        assert c2 / c1 == pytest.approx(16.0)


class TestEstimateNetworkSize:
    def test_honest_run(self):
        report = estimate_network_size(256, 8, adversary="honest", seed=2)
        assert report.byz_count == 0
        assert report.fraction_decided == 1.0
        assert report.fraction_in_band >= 0.9
        assert report.median_log2_estimate == pytest.approx(
            report.median_phase * np.log2(7)
        )

    def test_byzantine_run(self):
        report = estimate_network_size(
            256, 8, delta=0.5, adversary="early-stop", seed=2
        )
        assert report.byz_count == int(np.floor(256**0.5))
        assert report.fraction_decided == 1.0

    def test_summary_keys(self):
        report = estimate_network_size(256, 8, seed=2)
        assert {"n", "adversary", "fraction_in_band", "rounds"} <= set(
            report.summary()
        )

    def test_network_reuse(self):
        from repro.graphs import build_small_world

        net = build_small_world(256, 8, seed=9)
        report = estimate_network_size(256, 8, network=net, seed=2)
        assert report.network is net

    def test_network_mismatch_rejected(self):
        from repro.graphs import build_small_world

        net = build_small_world(128, 8, seed=9)
        with pytest.raises(ValueError, match="match"):
            estimate_network_size(256, 8, network=net, seed=2)

    def test_explicit_mask(self):
        mask = np.zeros(256, dtype=bool)
        mask[7] = True
        report = estimate_network_size(
            256, 8, adversary="suppression", byz_mask=mask, seed=2
        )
        assert report.byz_count == 1

    def test_custom_config(self):
        cfg = CountingConfig(max_phase=2)
        report = estimate_network_size(256, 8, config=cfg, seed=2)
        assert report.result.decided_phase.max() <= 2

    def test_adversary_instance(self):
        from repro.adversary import EarlyStopAdversary

        report = estimate_network_size(
            256, 8, delta=0.5, adversary=EarlyStopAdversary(), seed=2
        )
        assert report.adversary_name == "early-stop"
        assert report.byz_count > 0

"""Unit tests for the phase schedule and termination criterion."""

import numpy as np
import pytest

from repro.analysis.bounds import color_threshold, ell
from repro.core.phases import (
    alpha,
    alpha_appendix,
    alpha_pseudocode,
    continue_criterion,
    subphase_count,
)


class TestAlpha:
    @pytest.mark.parametrize("i", range(1, 20))
    def test_appendix_at_least_one(self, i):
        assert alpha_appendix(i, 0.1, 8) >= 1

    @pytest.mark.parametrize("i", range(1, 20))
    def test_pseudocode_at_least_one(self, i):
        assert alpha_pseudocode(i, 0.1, 8) >= 1

    def test_appendix_small_i_uses_eps(self):
        assert alpha_appendix(1, 0.01, 8) == int(np.ceil(np.log2(100)))

    def test_appendix_decreases_with_i(self):
        # More rounds per subphase -> fewer repetitions needed.
        values = [alpha_appendix(i, 0.1, 8) for i in range(3, 12)]
        assert values == sorted(values, reverse=True)

    def test_smaller_eps_more_repetitions(self):
        assert alpha_appendix(3, 0.01, 8) >= alpha_appendix(3, 0.2, 8)

    def test_dispatch(self):
        assert alpha(4, 0.1, 8, "appendix") == alpha_appendix(4, 0.1, 8)
        assert alpha(4, 0.1, 8, "pseudocode") == alpha_pseudocode(4, 0.1, 8)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            alpha(4, 0.1, 8, "nope")

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            alpha_appendix(0, 0.1, 8)
        with pytest.raises(ValueError):
            alpha_appendix(3, 1.5, 8)
        with pytest.raises(ValueError):
            alpha_appendix(3, 0.1, 2)


class TestSubphaseCount:
    def test_multiplier_i(self):
        assert subphase_count(5, 0.1, 8, "appendix", "i") == 5 * alpha_appendix(5, 0.1, 8)

    def test_multiplier_one(self):
        assert subphase_count(5, 0.1, 8, "appendix", "one") == alpha_appendix(5, 0.1, 8)

    def test_unknown_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            subphase_count(5, 0.1, 8, "appendix", "two")


class TestThreshold:
    def test_ell_formula(self):
        # l_i = log2 d + (i-1) log2(d-1): log-size of Bd(v, i).
        assert ell(1, 8) == pytest.approx(3.0)
        assert ell(2, 8) == pytest.approx(3.0 + np.log2(7))

    def test_threshold_below_ell(self):
        for i in range(1, 12):
            assert color_threshold(i, 8) < ell(i, 8)

    def test_threshold_monotone(self):
        values = [color_threshold(i, 8) for i in range(1, 16)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            ell(0, 8)


class TestContinueCriterion:
    def test_requires_strict_record(self):
        k_last = np.array([5, 3, 9])
        k_prev = np.array([5, 2, 2])
        out = continue_criterion(k_last, k_prev, i=2, d=8)
        # threshold(2, 8) = ell - log2(ell) ~ 3.27: node 0 fails (not a
        # strict record), node 1 fails (record but below threshold),
        # node 2 passes (record and above threshold).
        assert out.tolist() == [False, False, True]

    def test_phase_one_vacuous_history(self):
        k_last = np.array([2, 1])
        k_prev = np.zeros(2, dtype=np.int64)
        out = continue_criterion(k_last, k_prev, i=1, d=8)
        # threshold(1, 8) = 3 - log2(3) ~ 1.41.
        assert out.tolist() == [True, False]

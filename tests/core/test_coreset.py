"""Unit tests for Core computation (Lemma 14)."""

import numpy as np

from repro.core.coreset import compute_core


class TestComputeCore:
    def test_intact_graph_full_core(self, h_small):
        byz = np.zeros(h_small.n, dtype=bool)
        crashed = np.zeros(h_small.n, dtype=bool)
        report = compute_core(h_small, byz, crashed, rng=0)
        assert report.size == h_small.n
        assert report.fraction == 1.0

    def test_excludes_byz_and_crashed(self, h_small):
        byz = np.zeros(h_small.n, dtype=bool)
        byz[:5] = True
        crashed = np.zeros(h_small.n, dtype=bool)
        crashed[10:15] = True
        report = compute_core(h_small, byz, crashed, rng=0)
        assert report.size <= h_small.n - 10
        assert not report.core[byz].any()
        assert not report.core[crashed].any()

    def test_expander_core_remains_giant(self, h_small):
        byz = np.zeros(h_small.n, dtype=bool)
        byz[::10] = True  # 10% removed
        crashed = np.zeros(h_small.n, dtype=bool)
        report = compute_core(h_small, byz, crashed, rng=0)
        # Removing o(n) nodes from an expander leaves a giant component.
        assert report.fraction > 0.8

    def test_expansion_estimate_positive(self, h_small):
        byz = np.zeros(h_small.n, dtype=bool)
        crashed = np.zeros(h_small.n, dtype=bool)
        report = compute_core(h_small, byz, crashed, rng=0, expansion_trials=16)
        assert report.expansion_lower_estimate > 0

    def test_everything_removed(self, h_small):
        byz = np.ones(h_small.n, dtype=bool)
        crashed = np.zeros(h_small.n, dtype=bool)
        report = compute_core(h_small, byz, crashed, rng=0)
        assert report.size == 0
        assert report.expansion_lower_estimate == 0.0

"""Unit tests for Algorithm 1 (the basic counting protocol)."""

import numpy as np
import pytest

from repro.core import CountingConfig, run_basic_counting
from repro.graphs import build_small_world


class TestTermination:
    def test_everyone_decides(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert res.fraction_decided() == 1.0

    def test_decisions_positive(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert np.all(res.decided_phase >= 1)

    def test_no_crashes_without_adversary(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert not res.crashed.any()

    def test_max_phase_cap(self, net_medium):
        cfg = CountingConfig(max_phase=1)
        res = run_basic_counting(net_medium, config=cfg, seed=1)
        assert np.all((res.decided_phase == 1) | (res.decided_phase == -1))


class TestAccuracy:
    def test_constant_factor_estimate(self, net_medium):
        res = run_basic_counting(net_medium, seed=2)
        _, med, _ = res.decision_quantiles()
        # n=512: log2 n ≈ 9, metric anchor log2 n/log2 7 ≈ 3.2; the
        # decision lands near the eccentricity (4-5).
        anchor = np.log2(net_medium.n) / np.log2(net_medium.d - 1)
        assert 0.5 * anchor <= med <= 3 * anchor

    def test_larger_network_larger_estimate(self):
        small = build_small_world(128, 8, seed=3)
        large = build_small_world(2048, 8, seed=3)
        r_small = run_basic_counting(small, seed=4)
        r_large = run_basic_counting(large, seed=4)
        assert r_large.decision_quantiles()[1] > r_small.decision_quantiles()[1]

    def test_tight_decision_spread(self, net_medium):
        res = run_basic_counting(net_medium, seed=5)
        q10, _, q90 = res.decision_quantiles()
        assert q90 - q10 <= 3  # almost-everywhere agreement on the estimate


class TestDeterminism:
    def test_same_seed_same_result(self, net_medium):
        a = run_basic_counting(net_medium, seed=7)
        b = run_basic_counting(net_medium, seed=7)
        assert np.array_equal(a.decided_phase, b.decided_phase)

    def test_different_seed_differs_somewhere(self, net_medium):
        a = run_basic_counting(net_medium, seed=7)
        b = run_basic_counting(net_medium, seed=8)
        assert not np.array_equal(a.decided_phase, b.decided_phase)


class TestAccounting:
    def test_meter_populated(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert res.meter.rounds > 0
        assert res.meter.messages > 0

    def test_trace_contents(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert len(res.trace) >= 1
        phases = [r.phase for r in res.trace]
        assert phases == sorted(phases)
        assert sum(r.newly_decided for r in res.trace) == net_medium.n

    def test_trace_subphase_schedule(self, net_medium):
        from repro.core.phases import subphase_count

        cfg = CountingConfig()
        res = run_basic_counting(net_medium, config=cfg, seed=1)
        for rec in res.trace:
            assert rec.subphases == subphase_count(
                rec.phase, cfg.eps, net_medium.d, cfg.alpha_variant, cfg.subphase_multiplier
            )
            assert rec.flooding_rounds == rec.subphases * rec.phase

    def test_count_messages_off(self, net_medium):
        cfg = CountingConfig(count_messages=False)
        res = run_basic_counting(net_medium, config=cfg, seed=1)
        assert res.meter.messages == 0
        assert res.meter.rounds > 0  # rounds still counted

    def test_no_injections_without_adversary(self, net_medium):
        res = run_basic_counting(net_medium, seed=1)
        assert res.injections_accepted == 0
        assert res.injections_rejected == 0


class TestConfigVariants:
    @pytest.mark.parametrize("variant", ["appendix", "pseudocode"])
    @pytest.mark.parametrize("multiplier", ["i", "one"])
    def test_all_schedule_variants_terminate(self, net_medium, variant, multiplier):
        cfg = CountingConfig(alpha_variant=variant, subphase_multiplier=multiplier)
        res = run_basic_counting(net_medium, config=cfg, seed=3)
        assert res.fraction_decided() == 1.0

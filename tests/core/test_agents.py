"""Unit tests for the agent-based protocol implementation."""

import numpy as np
import pytest

from repro.core import CountingConfig
from repro.core.agents import (
    ByzantineCountingAgent,
    CountingAgent,
    _Ledger,
    run_counting_agents,
)
from repro.graphs import build_small_world


@pytest.fixture(scope="module")
def net():
    return build_small_world(96, 8, seed=17)


class TestLedger:
    def test_reset_and_membership(self):
        ledger = _Ledger()
        ledger.reset(np.array([3, 0, 7]))
        assert ledger.is_legit(3)
        assert ledger.is_legit(7)
        assert not ledger.is_legit(0)  # zero = silence, never a color
        assert not ledger.is_legit(99)

    def test_admit(self):
        ledger = _Ledger()
        ledger.reset(np.array([1]))
        ledger.admit(50)
        assert ledger.is_legit(50)

    def test_reset_clears(self):
        ledger = _Ledger()
        ledger.reset(np.array([5]))
        ledger.reset(np.array([6]))
        assert not ledger.is_legit(5)


class TestHonestAgent:
    def test_verification_filters_illegit_colors(self):
        ledger = _Ledger()
        ledger.reset(np.array([2]))
        agent = CountingAgent(0, ledger, verification=True)
        agent.begin_subphase(color=1, phase=1, subphase=1)
        agent.h_ports = []

        from repro.sim.messages import ColorMessage
        from repro.sim.node import RoundContext

        ctx = RoundContext(
            node=0,
            round=1,
            neighbors=np.array([1]),
            inbox=[(1, ColorMessage(999, 1, 1)), (1, ColorMessage(2, 1, 1))],
            rng=np.random.default_rng(0),
        )
        agent.mode = "flood"
        agent.on_round(ctx)
        assert agent.k_last == 2  # 999 refuted by witnesses, 2 accepted
        assert agent.cur == 2

    def test_without_verification_accepts_all(self):
        ledger = _Ledger()
        ledger.reset(np.array([2]))
        agent = CountingAgent(0, ledger, verification=False)
        agent.begin_subphase(color=1, phase=1, subphase=1)
        agent.h_ports = []

        from repro.sim.messages import ColorMessage
        from repro.sim.node import RoundContext

        ctx = RoundContext(
            node=0,
            round=1,
            neighbors=np.array([1]),
            inbox=[(1, ColorMessage(999, 1, 1))],
            rng=np.random.default_rng(0),
        )
        agent.mode = "flood"
        agent.on_round(ctx)
        assert agent.cur == 999


class TestByzantineAgent:
    def test_injection_schedule(self):
        agent = ByzantineCountingAgent(5)
        agent.mode = "flood"
        agent.h_ports = []
        agent.relay = False
        agent.sends_at = {2: 777}
        agent.current_t = 2

        from repro.sim.node import RoundContext

        ctx = RoundContext(
            node=5,
            round=3,
            neighbors=np.array([], dtype=np.int64),
            inbox=[],
            rng=np.random.default_rng(0),
        )
        agent.on_round(ctx)
        assert agent.cur == 777


class TestDriver:
    def test_runs_to_completion(self, net):
        cfg = CountingConfig(max_phase=12, verification=False)
        res = run_counting_agents(net, cfg, seed=1)
        assert res.fraction_decided() == 1.0

    def test_decided_phases_positive(self, net):
        cfg = CountingConfig(max_phase=12, verification=False)
        res = run_counting_agents(net, cfg, seed=1)
        assert np.all(res.decided_phase[res.honest_uncrashed] >= 1)

"""Unit tests for bundled paper predictions."""

import pytest

from repro.analysis.theory import lemma2_bounds, paper_predictions


class TestPaperPredictions:
    def test_fields_consistent(self):
        p = paper_predictions(1024, 8, 0.5, eps=0.1)
        assert p.k == 3
        assert p.byz_budget == 32
        assert p.a_log_n == pytest.approx(p.a * 10)
        assert p.b_log_n == pytest.approx(p.b * 10)
        assert p.approximation_factor == pytest.approx(p.b / p.a)
        assert p.a_log_n < p.b_log_n

    def test_delta_constraint_enforced(self):
        with pytest.raises(ValueError, match="delta"):
            paper_predictions(1024, 8, 0.2)  # 0.2 < 3/8

    def test_in_band(self):
        p = paper_predictions(1024, 8, 0.5)
        assert p.in_band((p.a_log_n + p.b_log_n) / 2)
        assert not p.in_band(p.b_log_n * 2)

    def test_rounds_bound_positive(self):
        p = paper_predictions(1024, 8, 0.5)
        assert p.rounds_bound > 0


class TestLemma2Bounds:
    def test_keys_complete(self):
        b = lemma2_bounds(1024, 8, 0.5)
        assert set(b) == {
            "Byz",
            "Honest",
            "LTL_min",
            "NLT_max",
            "Unsafe_max",
            "Safe_min",
            "Bad_max",
            "BUS_max",
            "Byz_safe_min",
        }

    def test_complementarity(self):
        b = lemma2_bounds(1024, 8, 0.5)
        assert b["Byz"] + b["Honest"] == pytest.approx(1024)
        assert b["BUS_max"] + b["Byz_safe_min"] == pytest.approx(1024)

    def test_bad_bound(self):
        b = lemma2_bounds(1024, 8, 0.5)
        assert b["Bad_max"] == pytest.approx(2 * 1024**0.5)

"""Monte-Carlo reproduction of the Appendix-B probability machinery.

Each test validates one inequality of the Lemma 9 proof chain against
either an exact geometric-tail computation or simulation — the proof's
arithmetic, reproduced.
"""

import numpy as np
import pytest

from repro.analysis.appendix_b import (
    alpha_needed_for_lemma26,
    early_record_threshold,
    exact_early_record_probability,
    exact_low_last_round_probability,
    last_round_threshold,
    lemma22_bound,
    lemma23_bound,
    lemma25_failure_bound,
    lemma26_phase_failure_bound,
    punctured_ball_size,
    sphere_size,
)
from repro.core.colors import sample_colors
from repro.core.phases import alpha_appendix
from repro.sim.rng import make_rng

D = 8


class TestTreeSizes:
    @pytest.mark.parametrize("r,expected", [(1, 8), (2, 8 + 56), (3, 8 + 56 + 392)])
    def test_punctured_ball(self, r, expected):
        assert punctured_ball_size(D, r) == expected

    @pytest.mark.parametrize("r,expected", [(1, 8), (2, 56), (3, 392)])
    def test_sphere(self, r, expected):
        assert sphere_size(D, r) == expected

    def test_ball_is_sum_of_spheres(self):
        for r in range(1, 6):
            assert punctured_ball_size(D, r) == sum(
                sphere_size(D, j) for j in range(1, r + 1)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            punctured_ball_size(2, 1)
        with pytest.raises(ValueError):
            sphere_size(D, 0)


class TestLemma22:
    """Early-record events are rare: exact probability tracks the bound.

    Colors are integers, so the threshold is floored and the exact tail
    can exceed the paper's continuous-threshold bound by up to a factor 2
    (reproduction finding #1 in ``appendix_b``); the rate is identical.
    """

    @pytest.mark.parametrize("i", [2, 3, 4, 5, 6])
    def test_exact_within_discretization_slack(self, i):
        assert exact_early_record_probability(i, D) <= 2 * lemma22_bound(i, D)

    @pytest.mark.parametrize("i", [3, 4])
    def test_monte_carlo_matches_exact(self, i):
        rng = make_rng(5)
        m = punctured_ball_size(D, i - 1)
        thr = early_record_threshold(i, D)
        trials = 4000
        hits = sum(
            int(sample_colors(rng, m).max() > thr) for _ in range(trials)
        )
        exact = exact_early_record_probability(i, D)
        assert hits / trials == pytest.approx(exact, abs=4 * np.sqrt(exact / trials) + 0.01)

    def test_bound_shrinks_geometrically(self):
        values = [lemma22_bound(i, D) for i in range(2, 10)]
        ratios = [a / b for a, b in zip(values[1:], values)]
        for r in ratios:
            assert r == pytest.approx(1.0 / (D - 1))


class TestLemma23:
    """Low last-round maxima are rare (given full sphere activity)."""

    @pytest.mark.parametrize("i", [2, 3, 4, 5])
    def test_exact_below_lemma8_term(self, i):
        # The distributional part of Lemma 23 (eps/2 excluded) is Lemma 8's
        # 1/|Bd| bound, up to the integer floor of the threshold.
        exact = exact_low_last_round_probability(i, D)
        assert exact <= 4.0 / sphere_size(D, i)

    @pytest.mark.parametrize("i", [2, 3])
    def test_monte_carlo_matches_exact(self, i):
        rng = make_rng(7)
        m = sphere_size(D, i)
        thr = last_round_threshold(i, D)
        trials = 4000
        hits = sum(
            int(sample_colors(rng, m).max() <= thr) for _ in range(trials)
        )
        exact = exact_low_last_round_probability(i, D)
        assert hits / trials == pytest.approx(exact, abs=4 * np.sqrt(max(exact, 0.001) / trials) + 0.01)

    def test_total_bound_structure(self):
        b = lemma23_bound(3, D, 0.1)
        assert b == pytest.approx(0.05 + 1.0 / (D * (D - 1) ** 2))


class TestFailureChain:
    @pytest.mark.parametrize("i", [3, 4, 6, 8])
    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.2])
    def test_lemma25_combines_22_and_23(self, i, eps):
        # Pr[Failure(i,j)] <= Pr[E1] + Pr[E2] (union bound inside Lemma 24).
        assert lemma25_failure_bound(i, D, eps) >= (
            lemma22_bound(i, D) + lemma23_bound(i, D, eps) - eps / 2
        ) - 1e-12

    @pytest.mark.parametrize("i", range(3, 14))
    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.3])
    def test_alpha_appendix_satisfies_lemma26(self, i, eps):
        """The implemented schedule drives Pr[Failure(i)] below eps/2^{i+1}."""
        alpha = alpha_appendix(i, eps, D)
        needed = alpha_needed_for_lemma26(i, D, eps)
        assert alpha >= needed
        bound = lemma26_phase_failure_bound(i, D, eps, alpha)
        assert bound <= eps / 2.0 ** (i + 1) + 1e-12

    def test_phase_failure_sums_below_eps(self):
        """The Lemma 11 union step: sum_i eps/2^{i+1} < eps."""
        eps = 0.1
        total = sum(
            lemma26_phase_failure_bound(i, D, eps, alpha_appendix(i, eps, D))
            for i in range(3, 40)
        )
        assert total < eps


class TestEndToEndLemma9:
    """Reproduction finding #2: the true per-subphase failure probability
    is a constant (~1/(d-2) + threshold effects), *above* the Lemma 25
    expression — yet the Lemma 9 conclusion survives via the i*alpha_i
    subphase repetitions.  Both facts are asserted."""

    def test_monte_carlo_matches_exact_subphase_failure(self):
        from repro.analysis.appendix_b import exact_subphase_failure_probability

        i, trials = 3, 3000
        rng = make_rng(11)
        thr = last_round_threshold(i, D)
        failures = 0
        for _ in range(trials):
            inner = sample_colors(rng, punctured_ball_size(D, i - 1))
            outer = sample_colors(rng, sphere_size(D, i))
            success = (outer.max() > inner.max()) and (outer.max() > thr)
            failures += not success
        exact = exact_subphase_failure_probability(i, D)
        assert failures / trials == pytest.approx(exact, abs=0.03)

    def test_lemma25_constant_is_optimistic(self):
        """Documents the finding: exact failure > the paper's expression."""
        from repro.analysis.appendix_b import exact_subphase_failure_probability

        for i in (3, 4, 5):
            assert exact_subphase_failure_probability(i, D) > lemma25_failure_bound(
                i, D, 0.1
            )

    def test_lemma9_conclusion_survives_with_measured_constant(self):
        """p_measured^(i*alpha_i) <= eps/2^{i+1} for all relevant phases."""
        from repro.analysis.appendix_b import (
            exact_subphase_failure_probability,
            phase_failure_from_subphase,
        )

        eps = 0.1
        for i in range(3, 12):
            p = exact_subphase_failure_probability(i, D)
            alpha = alpha_appendix(i, eps, D)
            phase_fail = phase_failure_from_subphase(p, i, alpha)
            assert phase_fail <= eps / 2.0 ** (i + 1), (i, p, alpha, phase_fail)

"""Unit tests for the paper's constants and probability bounds."""

import numpy as np
import pytest

from repro.analysis import bounds


class TestConstants:
    @pytest.mark.parametrize("d,k", [(8, 3), (9, 3), (10, 4)])
    def test_k_of_d(self, d, k):
        assert bounds.k_of_d(d) == k

    def test_delta_min(self):
        assert bounds.delta_min(8) == pytest.approx(0.375)

    def test_byzantine_budget(self):
        assert bounds.byzantine_budget(1024, 0.5) == 32
        assert bounds.byzantine_budget(1024, 1.0) == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            bounds.byzantine_budget(1024, 0.0)

    def test_a_constant_formula(self):
        # a = delta / (10 k log2(d-1)).
        a = bounds.a_constant(0.6, 3, 8)
        assert a == pytest.approx(0.6 / (30 * np.log2(7)))

    def test_b_constant_formula(self):
        b = bounds.b_constant(1.0, 8)
        assert b == pytest.approx(4 / np.log2(1 + 1 / 8))

    def test_approximation_factor_identity(self):
        # b/a = 40 k log2(d-1) / (delta log2(1 + gamma/d)) (Section 3.4.2).
        got = bounds.approximation_factor(0.5, 3, 8, 1.0)
        expected = 40 * 3 * np.log2(7) / (0.5 * np.log2(1.125))
        assert got == pytest.approx(expected)

    def test_a_below_b(self):
        a = bounds.a_constant(0.5, 3, 8)
        b = bounds.b_constant(1.0, 8)
        assert a < b

    def test_gamma_must_be_positive(self):
        with pytest.raises(ValueError):
            bounds.b_constant(0.0, 8)


class TestTailBounds:
    def test_upper_tail(self):
        assert bounds.max_color_upper_tail(64) == pytest.approx(1 / 64)

    def test_lower_tail(self):
        assert bounds.max_color_lower_tail(64) == pytest.approx(1 / 64)

    def test_tails_validated(self):
        with pytest.raises(ValueError):
            bounds.max_color_upper_tail(0)
        with pytest.raises(ValueError):
            bounds.max_color_lower_tail(1)

    def test_wrong_decision_halves_per_phase(self):
        # Lemma 9: eps / 2^{i+1}.
        assert bounds.wrong_decision_bound(3, 0.1) == pytest.approx(0.1 / 16)
        assert bounds.wrong_decision_bound(4, 0.1) == pytest.approx(
            bounds.wrong_decision_bound(3, 0.1) / 2
        )

    def test_azuma_decreases_with_n(self):
        small = bounds.azuma_phase_bound(256, 1, 0.1, 8)
        large = bounds.azuma_phase_bound(4096, 1, 0.1, 8)
        assert large <= small

    def test_chain_bound_formula(self):
        # n d^{k-1} n^{-k delta}.
        got = bounds.chain_probability_bound(1024, 8, 3, 0.5)
        assert got == pytest.approx(1024 * 64 * 1024 ** (-1.5))

    def test_chain_bound_shrinks_with_n(self):
        a = bounds.chain_probability_bound(512, 8, 3, 0.5)
        b = bounds.chain_probability_bound(4096, 8, 3, 0.5)
        assert b < a


class TestBallAndRounds:
    def test_ball_size_bound(self):
        # Observation 2: (d-1)^{k tau + 1}.
        assert bounds.ball_size_bound(8, 3, 1) == 7**4

    def test_round_complexity_polylog(self):
        r1 = bounds.round_complexity_bound(256, 0.1, 8)
        r2 = bounds.round_complexity_bound(4096, 0.1, 8)
        assert r2 > r1
        # Polylog: going from 2^8 to 2^12 should grow by less than
        # the (12/8)^3 * constant factor blowup times a slack factor.
        assert r2 / r1 < 2 * (12 / 8) ** 3

    def test_threshold_consistency_with_ell(self):
        for i in range(1, 10):
            level = bounds.ell(i, 8)
            assert bounds.color_threshold(i, 8) == pytest.approx(
                level - np.log2(level)
            )

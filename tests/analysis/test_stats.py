"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    empirical_cdf,
    loglog_slope,
    polylog_fit,
    proportion,
    summarize,
    wilson_interval,
)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi

    def test_extremes_clamped(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestSlopes:
    def test_exact_power_law(self):
        x = np.array([1.0, 2, 4, 8, 16])
        y = 3 * x**0.8
        slope, intercept = loglog_slope(x, y)
        assert slope == pytest.approx(0.8)
        assert np.exp(intercept) == pytest.approx(3.0)

    def test_handles_zero_values(self):
        x = np.array([1.0, 2, 4])
        y = np.array([0.0, 2, 4])
        slope, _ = loglog_slope(x, y)  # should not crash
        assert np.isfinite(slope)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope(np.array([1.0]), np.array([1.0]))

    def test_polylog_fit(self):
        ns = np.array([2.0**8, 2.0**10, 2.0**12, 2.0**14])
        rounds = 5 * np.log2(ns) ** 3
        assert polylog_fit(ns, rounds) == pytest.approx(3.0)


class TestSummaries:
    def test_summarize_fields(self):
        s = summarize(np.arange(101, dtype=float))
        assert s.count == 101
        assert s.median == 50.0
        assert s.minimum == 0.0
        assert s.maximum == 100.0
        assert s.q25 == 25.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_empirical_cdf(self):
        xs, ps = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ps.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_proportion(self):
        assert proportion(np.array([True, False, True, True])) == 0.75
        with pytest.raises(ValueError):
            proportion(np.array([], dtype=bool))

"""The bench regression gate must survive workload-set drift.

``benchmarks/check_bench_regression.py`` compares a fresh trajectory
against the committed ``BENCH_batch.json``.  The two files routinely
disagree on the *set* of workloads — a branch adds a benchmark before its
trajectory is committed, or an old workload is retired — and the gate has
to handle both directions without a ``KeyError``: committed-but-missing
workloads are regressions (the fresh run silently dropped coverage),
fresh-but-uncommitted workloads are warnings (they become gated once the
baseline is updated).  Malformed entries (no ``workload`` key) are skipped
with a warning on either side.
"""

import importlib.util
import pathlib


_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_bench_regression.py",
)
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def artifact(*entries, n=1024, trials=32):
    return {"n": n, "trials": trials, "trajectory": list(entries)}


def entry(name, speedup):
    return {"workload": name, "speedup": speedup}


class TestWorkloadSetDrift:
    def test_identical_trajectories_pass(self):
        base = artifact(entry("honest", 3.0), entry("sweep", 2.0))
        regressions, warnings = cbr.compare(base, base)
        assert regressions == []
        assert warnings == []

    def test_baseline_workload_missing_from_fresh_is_regression(self):
        baseline = artifact(entry("honest", 3.0), entry("sweep", 2.0))
        fresh = artifact(entry("honest", 3.0))
        regressions, warnings = cbr.compare(fresh, baseline)
        assert any("sweep" in r and "missing" in r for r in regressions)
        assert warnings == []

    def test_fresh_workload_missing_from_baseline_is_warning(self):
        baseline = artifact(entry("honest", 3.0))
        fresh = artifact(entry("honest", 3.0), entry("multi_net", 3.5))
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []
        assert any("multi_net" in w and "not in the committed baseline" in w
                   for w in warnings)

    def test_both_directions_at_once(self):
        baseline = artifact(entry("honest", 3.0), entry("retired", 2.0))
        fresh = artifact(entry("honest", 3.0), entry("brand-new", 1.5))
        regressions, warnings = cbr.compare(fresh, baseline)
        assert any("retired" in r for r in regressions)
        assert any("brand-new" in w for w in warnings)

    def test_union_stack_first_appearance_is_warning_not_keyerror(self):
        # The union_stack workload lands in a branch before BENCH_batch.json
        # is regenerated: its first appearance (the gated entry plus its
        # informational vs-padded partner) must compare as
        # fresh-but-uncommitted — warnings, never a KeyError, and the
        # committed workloads still gate normally.
        baseline = artifact(entry("honest", 3.0), entry("multi_net", 3.5))
        fresh = artifact(
            entry("honest", 3.0),
            entry("multi_net", 3.5),
            entry("union_stack", 1.2),
            {
                "workload": "union_stack-vs-padded",
                "mode": "informational",
                "speedup": 1.3,
            },
        )
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []
        assert any(
            "union_stack" in w and "commit an updated BENCH_batch.json" in w
            for w in warnings
        )
        # The informational partner warns too, but without gating advice.
        assert any(
            "union_stack-vs-padded" in w and "never gated" in w for w in warnings
        )

    def test_optional_backend_workload_missing_is_warning(self):
        # A committed numba workload on a numpy-only runner: bench_batch
        # never recorded it (the backend is gated on importability), so
        # its absence is informational — the numba CI leg gates it.
        baseline = artifact(
            entry("honest", 3.0),
            {"workload": "honest-numba", "speedup": 2.0, "requires": "numba"},
            {"workload": "union_stack-numba", "speedup": 1.8, "requires": "numba"},
        )
        fresh = artifact(entry("honest", 3.0))
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []
        assert sum(
            "requires numba" in w and "not gating" in w for w in warnings
        ) == 2

    def test_optional_backend_workload_present_still_gates(self):
        # Same committed entry on the numba leg: present-but-slow must
        # still regress — ``requires`` only excuses absence.
        baseline = artifact(
            {"workload": "honest-numba", "speedup": 2.0, "requires": "numba"}
        )
        fresh = artifact(
            {"workload": "honest-numba", "speedup": 0.5, "requires": "numba"}
        )
        regressions, _ = cbr.compare(fresh, baseline)
        assert len(regressions) == 1

    def test_malformed_entries_do_not_raise(self):
        baseline = artifact(entry("honest", 3.0), {"speedup": 2.0})
        fresh = artifact({"oops": True}, entry("honest", 3.0))
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []
        assert len(warnings) == 2  # one malformed entry per side


class TestSpeedupGate:
    def test_drop_beyond_threshold_is_regression(self):
        baseline = artifact(entry("honest", 3.0))
        fresh = artifact(entry("honest", 1.5))
        regressions, _ = cbr.compare(fresh, baseline, threshold=0.30)
        assert len(regressions) == 1

    def test_drop_within_threshold_passes(self):
        baseline = artifact(entry("honest", 3.0))
        fresh = artifact(entry("honest", 2.5))
        regressions, _ = cbr.compare(fresh, baseline, threshold=0.30)
        assert regressions == []

    def test_missing_speedup_value_is_regression(self):
        baseline = artifact(entry("honest", 3.0))
        fresh = artifact({"workload": "honest"})
        regressions, _ = cbr.compare(fresh, baseline)
        assert len(regressions) == 1

    def test_ungated_baseline_entry_skipped(self):
        baseline = artifact({"workload": "informational"})
        fresh = artifact()
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []

    def test_informational_mode_entry_never_gated(self):
        # Near-parity trajectory entries carry a speedup for visibility
        # but are marked informational: a noisy drop must not fail the gate.
        info = {"workload": "multi_net-vs-batched-loop", "mode": "informational",
                "speedup": 0.9}
        baseline = artifact(entry("honest", 3.0), dict(info))
        fresh = artifact(entry("honest", 3.0), dict(info, speedup=0.4))
        regressions, _ = cbr.compare(fresh, baseline)
        assert regressions == []

    def test_scale_mismatch_skips_comparison(self):
        baseline = artifact(entry("honest", 3.0), n=1024)
        fresh = artifact(entry("honest", 0.1), n=256)
        regressions, warnings = cbr.compare(fresh, baseline)
        assert regressions == []
        assert any("scale mismatch" in w for w in warnings)


class TestMainExitCodes:
    def _write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_fresh_only_workload_exits_zero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", artifact(entry("honest", 3.0)))
        fresh = self._write(
            tmp_path, "fresh.json", artifact(entry("honest", 3.0), entry("new", 2.0))
        )
        assert cbr.main([fresh, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "not in the committed baseline" in out
        assert "OK" in out

    def test_missing_workload_exits_nonzero_hard(self, tmp_path):
        baseline = self._write(
            tmp_path, "base.json", artifact(entry("honest", 3.0), entry("gone", 2.0))
        )
        fresh = self._write(tmp_path, "fresh.json", artifact(entry("honest", 3.0)))
        assert cbr.main([fresh, "--baseline", baseline]) == 1
        assert cbr.main([fresh, "--baseline", baseline, "--soft"]) == 0

"""Unit tests for Byzantine placement."""

import numpy as np
import pytest

from repro.adversary import clustered_placement, placement_for_delta, random_placement
from repro.analysis.bounds import byzantine_budget
from repro.graphs.balls import bfs_distances


class TestRandomPlacement:
    def test_exact_count(self):
        mask = random_placement(100, 13, rng=0)
        assert mask.sum() == 13

    def test_zero(self):
        assert random_placement(100, 0, rng=0).sum() == 0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            random_placement(10, 11, rng=0)
        with pytest.raises(ValueError):
            random_placement(10, -1, rng=0)

    def test_deterministic(self):
        a = random_placement(100, 10, rng=4)
        b = random_placement(100, 10, rng=4)
        assert np.array_equal(a, b)


class TestClusteredPlacement:
    def test_forms_connected_blob(self, net_small):
        mask = clustered_placement(net_small, 20, rng=1)
        assert mask.sum() == 20
        nodes = np.flatnonzero(mask)
        # All chosen nodes lie within a small ball of the closest-to-center
        # node: check pairwise H-distance from the first node is small.
        dist = bfs_distances(net_small.h.indptr, net_small.h.indices, int(nodes[0]))
        assert dist[nodes].max() <= 2 * net_small.k

    def test_count_validated(self, net_small):
        with pytest.raises(ValueError):
            clustered_placement(net_small, net_small.n + 1, rng=0)


class TestPlacementForDelta:
    def test_budget(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=0)
        assert mask.sum() == byzantine_budget(net_small.n, 0.5)

    def test_clustered_flag(self, net_small):
        mask = placement_for_delta(net_small, 0.5, rng=0, clustered=True)
        assert mask.sum() == byzantine_budget(net_small.n, 0.5)

    def test_delta_one_no_byzantine(self, net_small):
        mask = placement_for_delta(net_small, 1.0, rng=0)
        assert mask.sum() == 1  # n^0 = 1

"""Unit tests for the batched adversary protocol (adversary/base.py).

Covers :class:`Injection` validation (the satellite hardening), plan
stacking, batch-state column views, native-batch detection, and the
per-trial fallback wrapper.
"""

import numpy as np
import pytest

from repro.adversary.base import (
    Adversary,
    BatchSubphaseState,
    HonestAdversary,
    Injection,
    PerTrialAdversaryBatch,
    SubphasePlan,
    has_native_batch,
    stack_subphase_plans,
)
from repro.adversary.strategies import (
    EarlyStopAdversary,
    InflationAdversary,
    SuppressionAdversary,
)
from repro.core import CountingConfig, make_adversary, run_counting
from repro.sim.rng import stream


class TestInjectionValidation:
    def test_valid_roundtrip(self):
        inj = Injection(t=2, nodes=np.array([3, 1, 7]), value=9)
        assert inj.nodes.dtype == np.int64
        assert inj.t == 2 and inj.value == 9

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError, match="round"):
            Injection(t=0, nodes=np.array([1]), value=5)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError, match="positive"):
            Injection(t=1, nodes=np.array([1]), value=0)

    def test_rejects_empty_nodes(self):
        with pytest.raises(ValueError, match="non-empty"):
            Injection(t=1, nodes=np.array([], dtype=np.int64), value=5)

    def test_rejects_2d_nodes(self):
        with pytest.raises(ValueError, match="1-D"):
            Injection(t=1, nodes=np.array([[1, 2]]), value=5)

    def test_rejects_float_nodes(self):
        with pytest.raises(ValueError, match="integers"):
            Injection(t=1, nodes=np.array([1.5, 2.0]), value=5)

    def test_rejects_duplicates_sorted_and_unsorted(self):
        with pytest.raises(ValueError, match="duplicates"):
            Injection(t=1, nodes=np.array([1, 2, 2, 5]), value=5)
        with pytest.raises(ValueError, match="duplicates"):
            Injection(t=1, nodes=np.array([5, 1, 5]), value=5)

    def test_accepts_lists_and_descending_arrays(self):
        assert Injection(t=1, nodes=[4, 2, 0], value=5).nodes.tolist() == [4, 2, 0]

    def test_require_byzantine(self):
        byz_mask = np.zeros(10, dtype=bool)
        byz_mask[[2, 5]] = True
        Injection(t=1, nodes=np.array([2, 5]), value=3).require_byzantine(byz_mask)
        with pytest.raises(ValueError, match="non-Byzantine"):
            Injection(t=1, nodes=np.array([2, 4]), value=3).require_byzantine(byz_mask)
        with pytest.raises(ValueError, match="out-of-range"):
            Injection(t=1, nodes=np.array([11]), value=3).require_byzantine(byz_mask)

    def test_engine_rejects_non_byzantine_targets(self, net_small, byz_mask_small):
        class RogueAdversary(Adversary):
            def subphase_plan(self, state):
                honest = np.flatnonzero(~self.byz_mask)[:2]
                return SubphasePlan(
                    injections=[Injection(t=1, nodes=honest, value=99)]
                )

        with pytest.raises(ValueError, match="non-Byzantine"):
            run_counting(
                net_small,
                CountingConfig(max_phase=4),
                seed=1,
                adversary=RogueAdversary(),
                byz_mask=byz_mask_small,
            )


class TestStackPlans:
    def test_all_none_initial_stays_none(self):
        plans = [SubphasePlan(), SubphasePlan()]
        batch = stack_subphase_plans(plans, 3)
        assert batch.initial_colors is None
        assert batch.injections is None
        assert batch.relay.tolist() == [True, True]

    def test_mixed_initial_zero_fills_none_columns(self):
        plans = [
            SubphasePlan(initial_colors=np.array([5, 6])),
            SubphasePlan(),
        ]
        batch = stack_subphase_plans(plans, 2)
        assert batch.initial_colors.tolist() == [[5, 0], [6, 0]]

    def test_misaligned_initial_rejected(self):
        plans = [SubphasePlan(initial_colors=np.array([5]))]
        with pytest.raises(ValueError, match="align"):
            stack_subphase_plans(plans, 2)

    def test_per_trial_injections_and_relay(self):
        inj = Injection(t=1, nodes=np.array([0]), value=7)
        plans = [SubphasePlan(injections=[inj], relay=False), SubphasePlan()]
        batch = stack_subphase_plans(plans, 1)
        assert batch.injections[0] == [inj] and batch.injections[1] == []
        assert batch.relay.tolist() == [False, True]


def _batch_state(net, byz_nodes, batch):
    n = net.n
    honest = n - byz_nodes.shape[0]
    rngs = tuple(stream(9, "bstate", j) for j in range(batch))
    return BatchSubphaseState(
        phase=3,
        subphase=1,
        rounds=3,
        k=net.k,
        network=net,
        byz_nodes=byz_nodes,
        trials=np.arange(batch),
        honest_colors=np.arange(honest * batch).reshape(honest, batch),
        decided_phase=np.full((n, batch), -1, dtype=np.int64),
        crashed=np.zeros((n, batch), dtype=bool),
        rngs=rngs,
    )


class TestBatchState:
    def test_column_views_match(self, net_small):
        byz_nodes = np.array([5, 40])
        state = _batch_state(net_small, byz_nodes, 3)
        col = state.column(1)
        assert col.phase == state.phase and col.rounds == state.rounds
        assert np.array_equal(col.honest_colors, state.honest_colors[:, 1])
        assert col.rng is state.rngs[1]
        assert col.global_max_color() == int(state.global_max_colors()[1])

    def test_global_max_colors_empty_honest(self, net_small):
        state = _batch_state(net_small, np.array([5]), 2)
        state.honest_colors = np.empty((0, 2), dtype=np.int64)
        assert state.global_max_colors().tolist() == [0, 0]


class TestNativeBatchDetection:
    def test_builtins_are_native(self):
        for name in ("early-stop", "inflation", "suppression", "silent",
                     "topology-liar", "combo", "adaptive-record"):
            assert has_native_batch(make_adversary(name)), name

    def test_base_and_honest_are_native(self):
        assert has_native_batch(Adversary())
        assert has_native_batch(HonestAdversary())

    def test_scalar_only_subclass_is_not_native(self):
        class Scalar(Adversary):
            def subphase_plan(self, state):
                return SubphasePlan()

        assert not has_native_batch(Scalar())


class TestPerTrialWrapper:
    def test_instances_bound_per_trial(self, net_small, byz_mask_small):
        wrapper = PerTrialAdversaryBatch(EarlyStopAdversary, 3)
        rngs = [stream(1, "w", j) for j in range(3)]
        wrapper.bind_batch(net_small, byz_mask_small, rngs, CountingConfig())
        assert len(wrapper.instances) == 3
        for inst, rng in zip(wrapper.instances, rngs):
            assert inst.rng is rng
            assert inst.network is net_small

    def test_rng_count_mismatch_rejected(self, net_small, byz_mask_small):
        wrapper = PerTrialAdversaryBatch(EarlyStopAdversary, 2)
        with pytest.raises(ValueError, match="2 instances"):
            wrapper.bind_batch(net_small, byz_mask_small, [stream(1, "x")], CountingConfig())

    def test_batch_plan_columns_match_scalar_plans(self, net_small, byz_mask_small):
        wrapper = PerTrialAdversaryBatch(EarlyStopAdversary, 2)
        rngs = [stream(2, "w", j) for j in range(2)]
        wrapper.bind_batch(net_small, byz_mask_small, rngs, CountingConfig())
        byz_nodes = np.flatnonzero(byz_mask_small)
        state = _batch_state(net_small, byz_nodes, 2)
        plan = wrapper.batch_subphase_plan(state)
        scalar = EarlyStopAdversary().subphase_plan(state.column(0))
        assert np.array_equal(plan.initial_colors[:, 0], scalar.initial_colors)
        assert plan.relay.all()


class TestNativeBatchPlans:
    """Native batch plans: column j equals trial j's scalar plan."""

    @pytest.mark.parametrize(
        "adv", [EarlyStopAdversary(), InflationAdversary(), SuppressionAdversary()]
    )
    def test_columns_match_scalar(self, net_small, byz_mask_small, adv):
        byz_nodes = np.flatnonzero(byz_mask_small)
        state = _batch_state(net_small, byz_nodes, 2)
        batch_plan = adv.batch_subphase_plan(state)
        for j in range(2):
            scalar = adv.subphase_plan(state.column(j))
            if scalar.initial_colors is None:
                assert (
                    batch_plan.initial_colors is None
                    or not batch_plan.initial_colors[:, j].any()
                )
            else:
                assert np.array_equal(
                    batch_plan.initial_colors[:, j], scalar.initial_colors
                )
            got = [] if batch_plan.injections is None else batch_plan.injections[j]
            assert [(i.t, i.value) for i in got] == [
                (i.t, i.value) for i in scalar.injections
            ]
            relay = (
                batch_plan.relay[j]
                if isinstance(batch_plan.relay, np.ndarray)
                else batch_plan.relay
            )
            assert bool(relay) == scalar.relay

"""Unit tests for adversary strategies and plan construction."""

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveRecordAdversary,
    Adversary,
    ComboAdversary,
    EarlyStopAdversary,
    HonestAdversary,
    InflationAdversary,
    Injection,
    SilentAdversary,
    SubphaseState,
    SuppressionAdversary,
    TopologyLiarAdversary,
)
from repro.core import CountingConfig
from repro.sim.rng import make_rng


@pytest.fixture()
def state(net_small, byz_mask_small):
    return SubphaseState(
        phase=4,
        subphase=1,
        rounds=4,
        k=net_small.k,
        network=net_small,
        byz_nodes=np.flatnonzero(byz_mask_small),
        honest_colors=np.array([1, 2, 3, 7], dtype=np.int64),
        decided_phase=np.full(net_small.n, -1, dtype=np.int64),
        crashed=np.zeros(net_small.n, dtype=bool),
        rng=make_rng(0),
    )


def bind(adv, net_small, byz_mask_small):
    adv.bind(net_small, byz_mask_small, make_rng(1), CountingConfig())
    return adv


class TestInjectionValidation:
    def test_round_must_be_positive(self):
        with pytest.raises(ValueError):
            Injection(t=0, nodes=np.array([1]), value=5)

    def test_value_must_be_positive(self):
        with pytest.raises(ValueError):
            Injection(t=1, nodes=np.array([1]), value=0)


class TestPlans:
    def test_honest_plan_draws_colors(self, state, net_small, byz_mask_small):
        adv = bind(HonestAdversary(), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        assert plan.relay
        assert plan.injections == []
        assert plan.initial_colors.shape == (3,)
        assert np.all(plan.initial_colors >= 1)

    def test_early_stop_huge_colors(self, state, net_small, byz_mask_small):
        adv = bind(EarlyStopAdversary(value=999), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        assert np.all(plan.initial_colors == 999)
        assert plan.relay

    def test_inflation_escalates_per_round(self, state, net_small, byz_mask_small):
        adv = bind(InflationAdversary(), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        assert len(plan.injections) == state.rounds
        values = [inj.value for inj in plan.injections]
        assert values == sorted(values)
        assert len(set(values)) == len(values)  # strictly increasing

    def test_suppression_silent(self, state, net_small, byz_mask_small):
        adv = bind(SuppressionAdversary(), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        assert not plan.relay
        assert plan.initial_colors is None

    def test_silent_no_claims(self, net_small, byz_mask_small):
        adv = bind(SilentAdversary(), net_small, byz_mask_small)
        assert adv.topology_claims() == {}

    def test_combo_splits_budget(self, state, net_small, byz_mask_small):
        adv = bind(ComboAdversary(early_fraction=0.5), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        early_count = int(np.count_nonzero(plan.initial_colors))
        late_count = sum(inj.nodes.size for inj in plan.injections)
        assert early_count + late_count == 3

    def test_combo_fraction_validated(self):
        with pytest.raises(ValueError):
            ComboAdversary(early_fraction=1.5)

    def test_adaptive_uses_global_max(self, state, net_small, byz_mask_small):
        adv = bind(AdaptiveRecordAdversary(), net_small, byz_mask_small)
        plan = adv.subphase_plan(state)
        assert plan.injections[0].value == 8  # max honest color 7 + 1


class TestTopologyClaims:
    def test_default_truthful(self, net_small, byz_mask_small):
        adv = bind(Adversary(), net_small, byz_mask_small)
        claims = adv.topology_claims()
        for b, claim in claims.items():
            real = tuple(sorted(int(u) for u in net_small.h.neighbors(b)))
            assert claim == real

    def test_liar_inserts_phantom(self, net_small, byz_mask_small):
        adv = bind(TopologyLiarAdversary(), net_small, byz_mask_small)
        claims = adv.topology_claims()
        for _b, claim in claims.items():
            assert len(claim) == net_small.d
            assert max(claim) >= net_small.n  # the phantom ID

    def test_liar_inner_strategy(self, state, net_small, byz_mask_small):
        adv = bind(
            TopologyLiarAdversary(inner=EarlyStopAdversary(value=50)),
            net_small,
            byz_mask_small,
        )
        plan = adv.subphase_plan(state)
        assert np.all(plan.initial_colors == 50)
